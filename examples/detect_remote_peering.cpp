// detect_remote_peering: the §3 methodology, from raw pings to verdicts.
//
// Instead of the high-level SpreadStudy facade, this example drives the
// lower-level measure:: API directly on a hand-built exchange, so you can
// see every stage: the testbed, the looking-glass campaign, the raw samples,
// the six filters, and the remoteness classification — including how each
// injected measurement artefact is caught by the filter built for it.
#include <cstdio>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "measure/classifier.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"

using namespace rp;

namespace {

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

}  // namespace

int main() {
  // --- Build one exchange by hand -----------------------------------------
  // A mid-sized IXP in Amsterdam with both PCH and RIPE NCC looking glasses.
  ixp::Ixp ams(0, "DEMO-IX", "Demo Internet Exchange", city("Amsterdam"), 1.0,
               *net::Ipv4Prefix::parse("198.18.0.0/24"));
  net::HostAllocator addrs(ams.peering_lan());
  ams.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
  ams.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));

  struct Roster {
    std::uint32_t asn;
    ixp::AttachmentKind kind;
    const char* home;
    const char* note;
  };
  const Roster roster[] = {
      {64500, ixp::AttachmentKind::kDirectColo, "Amsterdam",
       "co-located router"},
      {64501, ixp::AttachmentKind::kIpTransport, "Amsterdam",
       "metro IP transport (still direct peering per the paper)"},
      {64502, ixp::AttachmentKind::kRemoteViaProvider, "Budapest",
       "remote peer via a layer-2 provider (like Invitel via Atrato)"},
      {64503, ixp::AttachmentKind::kRemoteViaProvider, "Ankara",
       "remote transit provider (like Turk Telecom)"},
      {64504, ixp::AttachmentKind::kPartnerIxp, "Hong Kong",
       "partner-IXP interconnect (like AMS-IX Hong Kong)"},
      {64505, ixp::AttachmentKind::kRemoteViaProvider, "Sao Paulo",
       "intercontinental remote peer"},
  };
  for (const auto& member : roster) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{member.asn};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(member.asn);
    iface.kind = member.kind;
    iface.equipment_city = city(member.home);
    if (iface.is_remote_ground_truth()) {
      iface.circuit_one_way = geo::propagation_delay(
          iface.equipment_city.position, ams.city().position, 1.5);
    }
    ams.add_interface(iface);
  }

  // --- Run the campaign -----------------------------------------------------
  // Probes go out as LG queries (5 echos per PCH query, 3 per RIPE query),
  // one query a minute at most, spread over simulated days. Fault injection
  // uses the library defaults, so an interface may catch an artefact.
  measure::CampaignConfig campaign;
  campaign.length = util::SimDuration::days(10);
  campaign.queries_per_pch_lg = 6;
  campaign.queries_per_ripe_lg = 4;
  util::Rng rng(1234);
  const measure::IxpMeasurement raw =
      measure::run_ixp_campaign(ams, campaign, rng);

  std::printf("campaign at %s: %zu interfaces probed\n\n",
              raw.ixp_acronym.c_str(), raw.interfaces.size());
  for (const auto& obs : raw.interfaces) {
    std::size_t sent = 0;
    for (const auto& [op, samples] : obs.samples) sent += samples.size();
    std::printf("  %-14s %3zu probes, %3zu replies\n",
                obs.addr.to_string().c_str(), sent, obs.reply_count());
  }

  // --- Filter and classify ---------------------------------------------------
  const measure::FilterConfig filters;         // The paper's six filters.
  const measure::ClassifierConfig classifier;  // 10 ms threshold.
  const measure::IxpAnalysis analysis = measure::apply_filters(raw, filters);

  std::printf("\n%-14s %-10s %-8s %-22s %s\n", "interface", "min RTT",
              "verdict", "band", "ground truth");
  for (std::size_t i = 0; i < analysis.interfaces.size(); ++i) {
    const auto& iface = analysis.interfaces[i];
    const auto& who = roster[i];
    if (!iface.analyzed()) {
      std::printf("%-14s %-10s discarded by %s  [%s]\n",
                  iface.addr.to_string().c_str(), "-",
                  to_string(*iface.discarded_by).c_str(), who.note);
      continue;
    }
    const bool remote = measure::is_remote(iface.min_rtt, classifier);
    std::printf("%-14s %-10s %-8s %-22s %s\n",
                iface.addr.to_string().c_str(),
                iface.min_rtt.to_string().c_str(),
                remote ? "REMOTE" : "direct",
                to_string(measure::band_of(iface.min_rtt, classifier)).c_str(),
                who.note);
  }

  std::printf(
      "\nhow to read this: direct members answer in well under 10 ms\n"
      "(facility cross-connect or metro transport); remote members' minimum\n"
      "RTT is dominated by their layer-2 circuit, placing them in the\n"
      "intercity/intercountry/intercontinental bands exactly as in Fig. 3.\n");
  return 0;
}

// rpworld — manage versioned binary world snapshots.
//
// Subcommands:
//   rpworld save [opts]          build (or cache-hit) a world and snapshot it
//   rpworld info <file>          print container layout and world summary
//   rpworld verify <file>        checksums + full decode + graph validation
//   rpworld diff <a> <b>         compare two snapshots section by section
//
// `save` goes through Scenario::build_cached, so a rerun with the same
// configuration prints "cache hit" and costs a load, not a build — the same
// path examples and benches use.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/config_fields.hpp"
#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "io/snapshot.hpp"
#include "obs_cli.hpp"

namespace {

using namespace rp;

int usage() {
  std::fprintf(stderr,
               "usage: rpworld save [--fast] [--table1] [--seed N] [--scale F]"
               " [--cache-dir DIR] [--out FILE] [--with-rib] [--no-cones]\n"
               "       rpworld info <file>\n"
               "       rpworld verify <file>\n"
               "       rpworld diff <a> <b>\n"
               "Global flags: --metrics (counter table on exit),"
               " --trace FILE (Perfetto phase trace)\n"
               "Exit codes (verify/diff classify failures):\n"
               "  0 OK / identical    1 worlds differ     2 usage or other\n"
               "  3 io error          4 corrupt           5 truncated\n"
               "  6 future version    7 invariant violation\n");
  return 2;
}

/// The example-scale world of quickstart.cpp; --fast shrinks the build the
/// same way RP_BENCH_FAST=1 shrinks the benches.
core::ScenarioConfig make_config(bool fast, bool table1, std::uint64_t seed,
                                 double scale) {
  core::ScenarioConfig config;
  config.seed = seed;
  config.euroix = !table1;
  config.membership_scale = scale;
  if (fast) core::apply_fast_mode(config);
  return config;
}

int cmd_save(int argc, char** argv) {
  bool fast = false, table1 = false, with_rib = false, with_cones = true;
  std::uint64_t seed = 2014;
  double scale = 1.0;
  std::filesystem::path cache_dir = io::default_cache_dir();
  std::optional<std::filesystem::path> out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpworld save: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fast") fast = true;
    else if (arg == "--table1") table1 = true;
    else if (arg == "--with-rib") with_rib = true;
    else if (arg == "--no-cones") with_cones = false;
    else if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--scale") scale = std::strtod(value(), nullptr);
    else if (arg == "--cache-dir") cache_dir = value();
    else if (arg == "--out") out = value();
    else { std::fprintf(stderr, "rpworld save: unknown option %s\n", arg.c_str()); return 2; }
  }

  const core::ScenarioConfig config = make_config(fast, table1, seed, scale);
  core::SnapshotCacheResult cache;
  const core::Scenario scenario =
      core::Scenario::build_cached(config, cache_dir, &cache);
  switch (cache.outcome) {
    case core::SnapshotCacheResult::Outcome::kHit:
      std::printf("cache hit: %s\n", cache.path.string().c_str());
      break;
    case core::SnapshotCacheResult::Outcome::kMiss:
      std::printf("cache miss: built world and wrote %s\n",
                  cache.path.string().c_str());
      break;
    case core::SnapshotCacheResult::Outcome::kFallback:
      std::printf("cache fallback (%s): rebuilt and rewrote %s\n",
                  cache.message.c_str(), cache.path.string().c_str());
      break;
  }
  std::printf("config digest: %s\n", io::config_digest_hex(config).c_str());
  std::printf("world: %zu ASes, %zu IXPs, vantage %s\n",
              scenario.graph().as_count(),
              scenario.ecosystem().ixps().size(),
              scenario.vantage().to_string().c_str());

  if (out) {
    io::SaveOptions options;
    options.with_cones = with_cones;
    std::optional<bgp::Rib> rib;
    if (with_rib) {
      rib = bgp::Rib::build(scenario.graph(), scenario.vantage());
      options.rib = &*rib;
    }
    io::save_scenario(scenario, *out, options);
    std::printf("wrote %s (%ju bytes)\n", out->string().c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(*out)));
  }
  return 0;
}

int cmd_info(const char* file) {
  const io::SnapshotInfo info = io::snapshot_info(file);
  std::printf("%s: rp-snapshot format v%u, %ju bytes\n", file,
              info.format_version, static_cast<std::uintmax_t>(info.file_size));
  std::printf("%-12s %12s %18s\n", "section", "bytes", "fnv1a64");
  for (const auto& s : info.sections)
    std::printf("%-12s %12ju   %016llx\n", io::section_name(s.id),
                static_cast<std::uintmax_t>(s.size),
                static_cast<unsigned long long>(s.checksum));
  std::printf("config digest: %016llx (seed %llu)\n",
              static_cast<unsigned long long>(info.config_digest),
              static_cast<unsigned long long>(info.seed));
  std::printf("world: %zu ASes (%zu transit, %zu peering links), "
              "%zu IXPs / %zu interfaces, %zu providers, %zu measured\n",
              info.as_count, info.transit_links, info.peering_links,
              info.ixp_count, info.interface_count, info.provider_count,
              info.measured_ixp_count);
  std::printf("vantage: AS%u; cones: %s; rib: %s\n", info.vantage_asn,
              info.has_cones ? "embedded" : "absent",
              info.has_rib
                  ? ("embedded (" + std::to_string(info.rib_destinations) +
                     " destinations)").c_str()
                  : "absent");
  return 0;
}

int cmd_verify(const char* file) {
  if (const auto failure = io::verify_snapshot(file)) {
    std::printf("%s: FAILED (%d): %s\n", file, failure->exit_code(),
                failure->message.c_str());
    return failure->exit_code();
  }
  std::printf("%s: OK (checksums, decode, graph invariants)\n", file);
  return 0;
}

int cmd_diff(const char* file_a, const char* file_b) {
  const io::SnapshotInfo a = io::snapshot_info(file_a);
  const io::SnapshotInfo b = io::snapshot_info(file_b);
  int differences = 0;
  auto report = [&differences](const char* what, const std::string& va,
                               const std::string& vb) {
    if (va == vb) return;
    std::printf("  %-12s %s != %s\n", what, va.c_str(), vb.c_str());
    ++differences;
  };
  std::printf("diff %s %s\n", file_a, file_b);
  report("version", std::to_string(a.format_version),
         std::to_string(b.format_version));
  report("digest", std::to_string(a.config_digest),
         std::to_string(b.config_digest));
  for (std::uint32_t id = 1; id <= 7; ++id) {
    auto find = [id](const io::SnapshotInfo& info) -> std::string {
      for (const auto& s : info.sections)
        if (s.id == id)
          return std::to_string(s.size) + "B/" + std::to_string(s.checksum);
      return "(absent)";
    };
    report(io::section_name(id), find(a), find(b));
  }
  report("as_count", std::to_string(a.as_count), std::to_string(b.as_count));
  report("interfaces", std::to_string(a.interface_count),
         std::to_string(b.interface_count));
  if (differences == 0) {
    std::printf("  identical worlds (all section checksums match)\n");
    return 0;
  }
  std::printf("  %d difference(s)\n", differences);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  int rc = 2;
  try {
    if (cmd == "save") rc = cmd_save(argc - 2, argv + 2);
    else if (cmd == "info" && argc == 3) rc = cmd_info(argv[2]);
    else if (cmd == "verify" && argc == 3) rc = cmd_verify(argv[2]);
    else if (cmd == "diff" && argc == 4) rc = cmd_diff(argv[2], argv[3]);
    else return usage();
  } catch (const io::SnapshotError& e) {
    // info/diff surface the same per-class exit codes as verify.
    std::fprintf(stderr, "rpworld %s: %s\n", cmd.c_str(), e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rpworld %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
  examples::finish_obs(obs_opts);
  return rc;
}

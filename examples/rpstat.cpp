// rpstat — run the full pipeline once with metrics enabled and report what
// the instrumentation saw: one command that exercises every instrumented
// layer (core scenario build/cache, thread pool, BGP RIB, measurement
// campaign, offload analysis, snapshot io) and prints the counter table.
//
//   rpstat [--fast] [--seed N] [--scale F] [--json FILE] [--trace FILE]
//
// --json writes the same snapshot as a flat JSON object (CI validates it
// with `python3 -m json.tool`); --trace writes a Chrome/Perfetto trace of
// the phase spans. Metrics are always enabled here — that is the point.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/config_fields.hpp"
#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "io/snapshot.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rp;

int usage() {
  std::fprintf(stderr,
               "usage: rpstat [--fast] [--seed N] [--scale F]"
               " [--json FILE] [--trace FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::uint64_t seed = 7;
  double scale = 0.15;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpstat: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fast") fast = true;
    else if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--scale") scale = std::strtod(value(), nullptr);
    else if (arg == "--json") json_path = value();
    else if (arg == "--trace") trace_path = value();
    else return usage();
  }

  obs::set_metrics_enabled(true);
  if (!trace_path.empty() && !obs::start_trace(trace_path)) {
    obs::stop_trace();  // RP_TRACE opened a session; the flag wins.
    obs::start_trace(trace_path);
  }

  core::ScenarioConfig config;
  config.seed = seed;
  config.euroix = false;
  config.membership_scale = scale;
  config.topology.tier2_count = 40;
  config.topology.access_count = 200;
  config.topology.content_count = 60;
  config.topology.cdn_count = 10;
  config.topology.nren_count = 8;
  config.topology.enterprise_count = 150;
  if (fast) core::apply_fast_mode(config);

  core::SnapshotCacheResult cache;
  const core::Scenario scenario =
      core::Scenario::build_cached(config, io::default_cache_dir(), &cache);
  std::printf("world: %zu ASes, %zu IXPs (%s)\n",
              scenario.graph().as_count(),
              scenario.ecosystem().ixps().size(),
              cache.outcome == core::SnapshotCacheResult::Outcome::kHit
                  ? "snapshot cache hit"
                  : "built");

  // Explicit snapshot round-trip so both the write and the read side of
  // rp.io show up even on a cache hit.
  const std::filesystem::path roundtrip =
      std::filesystem::temp_directory_path() /
      ("rpstat-" + io::config_digest_hex(config) + ".rpsnap");
  io::save_scenario(scenario, roundtrip);
  const io::LoadedWorld loaded = io::load_scenario(roundtrip);
  std::filesystem::remove(roundtrip);
  std::printf("snapshot round-trip: %zu ASes preserved\n",
              loaded.scenario.graph().as_count());

  core::SpreadStudyConfig study_config;
  study_config.campaign.length = util::SimDuration::days(fast ? 2 : 7);
  study_config.campaign.queries_per_pch_lg = fast ? 2 : 4;
  study_config.campaign.queries_per_ripe_lg = fast ? 2 : 3;
  const core::SpreadStudy study =
      core::SpreadStudy::run(scenario, study_config);
  std::printf("spread study: %zu probed, %zu analyzed\n",
              study.report().total_probed(), study.report().total_analyzed());

  core::OffloadStudyConfig offload_config;
  offload_config.rate_model.span = util::SimDuration::days(fast ? 3 : 14);
  const core::OffloadStudy offload =
      core::OffloadStudy::run(scenario, offload_config);
  const auto steps =
      offload.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 4);
  std::printf("offload: %zu eligible peers, greedy picked %zu IXPs\n\n",
              offload.analyzer().eligible_peers().size(), steps.size());

  if (!obs::dump_global_metrics(std::cout, json_path)) {
    std::fprintf(stderr, "rpstat: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!json_path.empty())
    std::fprintf(stderr, "metrics json: %s\n", json_path.c_str());
  if (!trace_path.empty()) {
    const std::size_t events = obs::stop_trace();
    std::fprintf(stderr, "trace: wrote %zu events to %s\n", events,
                 trace_path.c_str());
  }
  return 0;
}

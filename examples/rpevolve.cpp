// rpevolve — replay declarative epoch timelines over a base world
// (DESIGN.md §17).
//
//   rpevolve plan TIMELINE [--dir DIR]    parse + canonicalize, write the
//                                         manifest, print the epoch plan
//   rpevolve replay TIMELINE [--dir DIR] [--cache-dir DIR] [--group N]
//            [--steps N] [--no-snapshots]
//                                         plan + replay every epoch +
//                                         summarize (resumable)
//   rpevolve resume --dir DIR [...]       finish an interrupted replay from
//                                         its manifest and epoch records
//   rpevolve summarize --dir DIR          collate records into
//                                         results.csv/json
//   rpevolve diff --dir DIR K1 K2         compare two epoch snapshots
//                                         (membership/interface deltas — the
//                                         same numbers `rpworld diff` prints
//                                         for any two snapshots)
//
// --dir defaults to $RP_EVOLVE_DIR/<timeline name> when RP_EVOLVE_DIR is
// set, otherwise ./rpevolve-<timeline name>. The base world builds through
// the scenario snapshot cache ($RP_SNAPSHOT_CACHE / .rpsnap-cache;
// --cache-dir overrides). --metrics / --trace work as on every example. A
// replay killed mid-timeline (Ctrl-C, or an armed RP_FAULT=evolve.apply:...
// site) is resumable: completed epochs are on disk and `rpevolve resume`
// produces records and snapshots byte-identical to an uninterrupted run.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "evolve/replay.hpp"
#include "evolve/timeline.hpp"
#include "io/snapshot.hpp"
#include "obs_cli.hpp"

namespace {

using namespace rp;

int usage() {
  std::fprintf(
      stderr,
      "usage: rpevolve plan TIMELINE [--dir DIR]\n"
      "       rpevolve replay TIMELINE [--dir DIR] [--cache-dir DIR]\n"
      "                [--group N] [--steps N] [--no-snapshots]\n"
      "       rpevolve resume --dir DIR [--cache-dir DIR] [--group N]\n"
      "                [--steps N] [--no-snapshots]\n"
      "       rpevolve summarize --dir DIR\n"
      "       rpevolve diff --dir DIR K1 K2\n"
      "       (all subcommands also accept --metrics / --trace FILE)\n");
  return 2;
}

std::filesystem::path default_dir(const evolve::Timeline& timeline) {
  if (const char* base = std::getenv("RP_EVOLVE_DIR");
      base != nullptr && *base != '\0')
    return std::filesystem::path(base) / timeline.name;
  return std::filesystem::path("rpevolve-" + timeline.name);
}

void print_plan(const evolve::Timeline& timeline,
                const std::filesystem::path& dir) {
  std::printf("timeline '%s' (digest %s): %zu epochs, %zu events\n",
              timeline.name.c_str(),
              evolve::timeline_digest_hex(timeline).c_str(),
              timeline.epochs.size(), timeline.event_count());
  for (const evolve::TimelineEpoch& epoch : timeline.epochs)
    std::printf("  epoch %-20s %zu event(s)\n", epoch.label.c_str(),
                epoch.events.size());
  std::printf("  base world: %s\n",
              io::config_digest_hex(timeline.base_config()).c_str());
  std::printf("  directory:  %s\n", dir.string().c_str());
}

void print_outcome(const evolve::ReplayOutcome& outcome) {
  std::printf("replayed %zu epoch(s) (%zu skipped via completion records)\n",
              outcome.executed, outcome.skipped);
}

/// Epoch-snapshot diff: the same membership numbers `rpworld diff` derives,
/// computed from the two decoded worlds.
int diff_epochs(const std::filesystem::path& dir, std::size_t k1,
                std::size_t k2) {
  const evolve::EvolvePaths paths(dir);
  const io::SnapshotInfo a = io::snapshot_info(paths.snapshot(k1));
  const io::SnapshotInfo b = io::snapshot_info(paths.snapshot(k2));
  std::printf("epoch %zu -> %zu\n", k1, k2);
  std::printf("  ixps        %8zu -> %-8zu (%+lld)\n", a.ixp_count,
              b.ixp_count,
              static_cast<long long>(b.ixp_count) -
                  static_cast<long long>(a.ixp_count));
  std::printf("  interfaces  %8zu -> %-8zu (%+lld)\n", a.interface_count,
              b.interface_count,
              static_cast<long long>(b.interface_count) -
                  static_cast<long long>(a.interface_count));
  std::printf("  ases        %8zu -> %-8zu (%+lld)\n", a.as_count, b.as_count,
              static_cast<long long>(b.as_count) -
                  static_cast<long long>(a.as_count));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::string timeline_path;
  std::filesystem::path dir;
  evolve::ReplayOptions options;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpevolve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") dir = value();
    else if (arg == "--cache-dir") options.cache_dir = value();
    else if (arg == "--group") options.group = std::atoi(value());
    else if (arg == "--steps")
      options.steps = static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--no-snapshots") options.snapshots = false;
    else if (arg.rfind("--", 0) == 0) return usage();
    else positional.push_back(arg);
  }
  if (!positional.empty()) timeline_path = positional[0];

  int rc = 0;
  try {
    if (command == "plan" || command == "replay") {
      if (timeline_path.empty()) return usage();
      const evolve::Timeline timeline = evolve::load_timeline(timeline_path);
      if (dir.empty()) dir = default_dir(timeline);
      evolve::write_manifest(timeline, dir);
      print_plan(timeline, dir);
      if (command == "replay") {
        print_outcome(evolve::replay_timeline(timeline, dir, options));
        const std::size_t rows = evolve::summarize_replay(timeline, dir);
        std::printf("results: %zu rows -> %s\n", rows,
                    evolve::EvolvePaths(dir).results_csv().string().c_str());
      }
    } else if (command == "resume" || command == "summarize") {
      if (!timeline_path.empty() || dir.empty()) return usage();
      const evolve::Timeline timeline = evolve::read_manifest(dir);
      if (command == "resume")
        print_outcome(evolve::replay_timeline(timeline, dir, options));
      const std::size_t rows = evolve::summarize_replay(timeline, dir);
      std::printf("results: %zu rows -> %s\n", rows,
                  evolve::EvolvePaths(dir).results_csv().string().c_str());
    } else if (command == "diff") {
      if (dir.empty() || positional.size() != 2) return usage();
      rc = diff_epochs(dir,
                       static_cast<std::size_t>(std::atoll(positional[0].c_str())),
                       static_cast<std::size_t>(std::atoll(positional[1].c_str())));
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rpevolve: %s\n", e.what());
    rc = 1;
  }
  examples::finish_obs(obs_opts);
  return rc;
}

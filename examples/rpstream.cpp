// rpstream — record and replay streaming flow ingests.
//
// Subcommands:
//   rpstream log [opts] --out FILE     build a world, stream its rate model's
//                                      bins (transit-endpoint schema) into an
//                                      RPSNAP bin log
//   rpstream ingest [opts] --log FILE  replay a bin log through the streaming
//                                      ingest + incremental offload and print
//                                      a deterministic summary on stdout
//
// The summary is the byte-identity surface of the ci.sh stream smoke: a run
// killed mid-ingest (stream.bin fault site) and resumed from its checkpoint
// must print exactly the bytes of an uninterrupted run. Progress notes go to
// stderr so stdout stays comparable.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/config_fields.hpp"
#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "obs_cli.hpp"
#include "stream/session.hpp"

namespace {

using namespace rp;

int usage() {
  std::fprintf(
      stderr,
      "usage: rpstream log [--fast] [--seed N] [--scale F] [--span-days D]\n"
      "                    [--bins N] [--cache-dir DIR] --out FILE\n"
      "       rpstream ingest [--fast] [--seed N] [--scale F] [--span-days D]\n"
      "                    [--cache-dir DIR] --log FILE [--group 1..4]\n"
      "                    [--checkpoint FILE --every N] [--resume]\n"
      "                    [--max-bins N] [--steps N]\n"
      "Global flags: --metrics, --trace FILE\n"
      "Exit codes: 0 OK, 2 usage, 9 injected fault (RP_FAULT=stream.bin:...),\n"
      "            3..7 snapshot failure classes (see rpworld)\n");
  return 2;
}

struct WorldOptions {
  bool fast = false;
  std::uint64_t seed = 2014;
  double scale = 1.0;
  std::int64_t span_days = 28;
  std::filesystem::path cache_dir = io::default_cache_dir();
};

/// Builds the scenario + §4 study both subcommands share. The log and the
/// ingest must be given the same world options: the ingest validates the
/// log's schema against the rebuilt analyzer's transit endpoints. The
/// scenario lives on the heap because the study's analyzer keeps pointers
/// into it — its address must outlive the bundle's moves.
struct StudyBundle {
  std::unique_ptr<core::Scenario> scenario;
  core::OffloadStudy study;
};

StudyBundle build_study(const WorldOptions& options) {
  core::ScenarioConfig config;
  config.seed = options.seed;
  config.membership_scale = options.scale;
  if (options.fast) core::apply_fast_mode(config);
  auto scenario = std::make_unique<core::Scenario>(
      core::Scenario::build_cached(config, options.cache_dir));
  core::OffloadStudyConfig study_config;
  study_config.rate_model.span = util::SimDuration::days(options.span_days);
  core::OffloadStudy study = core::OffloadStudy::run(*scenario, study_config);
  return {std::move(scenario), std::move(study)};
}

bool parse_world_flag(const std::string& arg, WorldOptions& options, int argc,
                      char** argv, int& i) {
  auto value = [&]() -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "rpstream: %s needs a value\n", arg.c_str());
      std::exit(2);
    }
    return argv[++i];
  };
  if (arg == "--fast") options.fast = true;
  else if (arg == "--seed") options.seed = std::strtoull(value(), nullptr, 10);
  else if (arg == "--scale") options.scale = std::strtod(value(), nullptr);
  else if (arg == "--span-days") options.span_days = std::strtoll(value(), nullptr, 10);
  else if (arg == "--cache-dir") options.cache_dir = value();
  else return false;
  return true;
}

stream::BinSchema endpoint_schema(const offload::OffloadAnalyzer& analyzer) {
  stream::BinSchema schema;
  for (const auto& endpoint : analyzer.transit_endpoints())
    schema.networks.push_back(endpoint.asn);
  return schema;
}

int cmd_log(int argc, char** argv) {
  WorldOptions world;
  std::filesystem::path out;
  std::uint64_t bins = 0;  // 0 = the model's full span.
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_world_flag(arg, world, argc, argv, i)) continue;
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpstream log: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") out = value();
    else if (arg == "--bins") bins = std::strtoull(value(), nullptr, 10);
    else { std::fprintf(stderr, "rpstream log: unknown option %s\n", arg.c_str()); return 2; }
  }
  if (out.empty()) return usage();

  const StudyBundle bundle = build_study(world);
  stream::RateModelBinSource source(
      bundle.study.rates(), endpoint_schema(bundle.study.analyzer()).networks);
  if (bins == 0) bins = source.bin_count();
  const std::uint64_t written = stream::write_bin_log(source, bins, out);
  std::fprintf(stderr,
               "rpstream: wrote %llu bins x %zu networks to %s (%ju bytes)\n",
               static_cast<unsigned long long>(written),
               source.schema().size(), out.string().c_str(),
               static_cast<std::uintmax_t>(std::filesystem::file_size(out)));
  return 0;
}

int cmd_ingest(int argc, char** argv) {
  WorldOptions world;
  std::filesystem::path log_path;
  stream::StreamSessionConfig session_config;
  bool resume = false;
  std::uint64_t max_bins = ~std::uint64_t{0};
  std::size_t steps = 8;
  int group = 4;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_world_flag(arg, world, argc, argv, i)) continue;
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpstream ingest: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--log") log_path = value();
    else if (arg == "--checkpoint") session_config.checkpoint_path = value();
    else if (arg == "--every")
      session_config.checkpoint_every = std::strtoull(value(), nullptr, 10);
    else if (arg == "--resume") resume = true;
    else if (arg == "--max-bins") max_bins = std::strtoull(value(), nullptr, 10);
    else if (arg == "--steps") steps = std::strtoull(value(), nullptr, 10);
    else if (arg == "--group") group = std::atoi(value());
    else { std::fprintf(stderr, "rpstream ingest: unknown option %s\n", arg.c_str()); return 2; }
  }
  if (log_path.empty() || group < 1 || group > 4) return usage();

  const StudyBundle bundle = build_study(world);
  const offload::OffloadAnalyzer& analyzer = bundle.study.analyzer();
  stream::BinLogSource source(log_path);
  stream::StreamSession session(source, analyzer,
                                bundle.scenario->ecosystem(),
                                static_cast<offload::PeerGroup>(group),
                                session_config);
  if (resume && session.resume())
    std::fprintf(stderr, "rpstream: resumed at bin %llu\n",
                 static_cast<unsigned long long>(session.ingest().next_bin()));
  const std::uint64_t consumed = session.run(max_bins);
  std::fprintf(stderr, "rpstream: consumed %llu bins (total %llu)\n",
               static_cast<unsigned long long>(consumed),
               static_cast<unsigned long long>(session.ingest().bins()));

  // --- The deterministic summary (stdout; %.17g keeps doubles exact) -------
  const stream::StreamIngest& ingest = session.ingest();
  std::printf("bins %llu\n",
              static_cast<unsigned long long>(ingest.bins()));
  std::printf("transit.p95.in %.17g\n",
              ingest.transit_p95(flow::Direction::kInbound));
  std::printf("transit.p95.out %.17g\n",
              ingest.transit_p95(flow::Direction::kOutbound));
  std::printf("offload.p95.in %.17g\n",
              ingest.offload_p95(flow::Direction::kInbound));
  std::printf("offload.p95.out %.17g\n",
              ingest.offload_p95(flow::Direction::kOutbound));

  stream::IncrementalOffload& engine = session.incremental();
  if (engine.has_live_bin()) {
    const offload::Potential live = engine.live_potential();
    std::printf("live.bin %llu\n",
                static_cast<unsigned long long>(engine.live_bin()));
    std::printf("live.offload.in %.17g\n", live.inbound_bps);
    std::printf("live.offload.out %.17g\n", live.outbound_bps);
  }

  const auto all = analyzer.all_ixps();
  engine.reset(all);
  const offload::Potential everywhere = engine.potential();
  std::printf("potential.all.in %.17g\n", everywhere.inbound_bps);
  std::printf("potential.all.out %.17g\n", everywhere.outbound_bps);
  std::printf("potential.all.covered %zu\n", everywhere.covered_networks);

  const auto curve = engine.greedy(steps);
  std::printf("greedy.steps %zu\n", curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("greedy.%zu %s %.17g %.17g %.17g %.17g\n", i,
                curve[i].acronym.c_str(), curve[i].gained, curve[i].remaining,
                curve[i].remaining_inbound_bps,
                curve[i].remaining_outbound_bps);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  int rc = 2;
  try {
    if (command == "log") rc = cmd_log(argc - 2, argv + 2);
    else if (command == "ingest") rc = cmd_ingest(argc - 2, argv + 2);
    else rc = usage();
  } catch (const rp::fault::InjectedFault& fault) {
    std::fprintf(stderr, "rpstream: injected fault at %s call %llu\n",
                 fault.site().c_str(),
                 static_cast<unsigned long long>(fault.call()));
    rc = 9;
  } catch (const rp::io::SnapshotError& error) {
    std::fprintf(stderr, "rpstream: %s\n", error.what());
    rc = error.exit_code();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "rpstream: %s\n", error.what());
    rc = 2;
  }
  rp::examples::finish_obs(obs_opts);
  return rc;
}

// offload_study: the §4 pipeline for a RedIRIS-like vantage network.
//
// Builds a synthetic world, derives the vantage's traffic matrix and BGP
// tables, applies the exclusion rules and peer groups, and answers the
// operational questions the paper poses: how much transit traffic could
// remote peering take over, which IXPs matter, how fast do returns
// diminish, and what does that do to the 95th-percentile transit bill?
// Pass --metrics to print the instrumentation counters on exit, or
// --trace FILE to record a Perfetto-loadable phase trace (see DESIGN.md §10).
#include <algorithm>
#include <cstdio>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "io/snapshot.hpp"
#include "obs_cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace rp;

int main(int argc, char** argv) {
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);
  // A mid-sized world keeps this example interactive (~10 s). Drop the
  // overrides for the full paper-scale run.
  core::ScenarioConfig config;
  config.seed = 99;
  config.membership_scale = 0.25;
  config.topology.tier2_count = 300;
  config.topology.access_count = 800;
  config.topology.content_count = 200;
  config.topology.cdn_count = 12;
  config.topology.nren_count = 10;
  config.topology.enterprise_count = 1200;
  // Reruns load the snapshot from .rpsnap-cache/ instead of rebuilding.
  const core::Scenario scenario =
      core::Scenario::build_cached(config, io::default_cache_dir());

  core::OffloadStudyConfig study_config;
  study_config.rate_model.span = util::SimDuration::days(14);
  const core::OffloadStudy study =
      core::OffloadStudy::run(scenario, study_config);
  const auto& analyzer = study.analyzer();

  std::printf("vantage: %s, transit traffic %s in / %s out\n",
              scenario.graph().node(scenario.vantage()).name.c_str(),
              util::fmt_rate_bps(analyzer.transit_inbound_bps()).c_str(),
              util::fmt_rate_bps(analyzer.transit_outbound_bps()).c_str());
  std::printf("candidate peers after exclusion rules: %zu\n\n",
              analyzer.eligible_peers().size());

  // --- Where is the traffic? The vantage's BGP view -------------------------
  std::printf("top transit endpoints and the AS paths that carry them:\n");
  for (std::size_t i = 0; i < 5 && i < analyzer.transit_endpoints().size();
       ++i) {
    const auto& endpoint = analyzer.transit_endpoints()[i];
    const bgp::Route* route = study.rib().route_to(endpoint.asn);
    std::string path;
    if (route != nullptr) {
      for (net::Asn hop : route->as_path) path += " " + hop.to_string();
    }
    std::printf("  %-22s %9s in  path:%s\n",
                scenario.graph().node(endpoint.asn).name.c_str(),
                util::fmt_rate_bps(endpoint.inbound_bps).c_str(),
                path.c_str());
  }

  // --- Greedy IXP expansion under the four peer groups ----------------------
  std::printf("\ngreedy expansion (how many IXPs are worth reaching?):\n");
  const double initial =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
  for (auto group : {offload::PeerGroup::kOpen, offload::PeerGroup::kAll}) {
    const auto steps = analyzer.greedy_by_traffic(group, 8);
    std::printf("  %s:\n", to_string(group).c_str());
    for (const auto& step : steps) {
      std::printf("    + %-12s offloads %9s, transit left %5.1f%%\n",
                  step.acronym.c_str(), util::fmt_rate_bps(step.gained).c_str(),
                  100.0 * step.remaining / initial);
    }
  }

  // --- What the offload does to the transit bill ----------------------------
  // Transit is billed at the 95th percentile of 5-minute rates (§2.1), so
  // offload only pays if it trims the peaks — Fig. 5b's point is that it
  // does, because offload-potential peaks coincide with transit peaks.
  const auto series = study.time_series(flow::Direction::kInbound);
  std::vector<double> residual(series.transit_bps.size());
  for (std::size_t i = 0; i < residual.size(); ++i)
    residual[i] = series.transit_bps[i] - series.offload_bps[i];
  const double bill_before = util::p95_billing_rate(series.transit_bps);
  const double bill_after = util::p95_billing_rate(residual);
  std::printf("\ninbound 95th-percentile billing rate: %s -> %s (%s saved)\n",
              util::fmt_rate_bps(bill_before).c_str(),
              util::fmt_rate_bps(bill_after).c_str(),
              util::fmt_percent(1.0 - bill_after / bill_before).c_str());

  // --- Fig. 8 in miniature: the second IXP is worth less ---------------------
  const auto all_steps = analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 2);
  if (all_steps.size() >= 2) {
    const std::vector<ixp::IxpId> first{all_steps[0].ixp_id};
    const auto full = analyzer.potential_at(
        std::vector<ixp::IxpId>{all_steps[1].ixp_id}, offload::PeerGroup::kAll);
    const auto after = analyzer.remaining_potential_at(
        all_steps[1].ixp_id, first, offload::PeerGroup::kAll);
    std::printf(
        "\nsecond IXP (%s): full potential %s, but only %s remains after\n"
        "realizing %s first — shared members cannibalize the value (Fig. 8).\n",
        all_steps[1].acronym.c_str(), util::fmt_rate_bps(full.total_bps()).c_str(),
        util::fmt_rate_bps(after.total_bps()).c_str(),
        all_steps[0].acronym.c_str());
  }
  examples::finish_obs(obs_opts);
  return 0;
}

// rpserve-daemon — the resident rp::serve query daemon.
//
// Usage:
//   rpserve-daemon [--port N] [--worlds N] [--queue N] [--batch N]
//                  [--cache-dir DIR] [--port-file FILE]
//                  [--metrics] [--trace FILE]
//
// Listens on 127.0.0.1 (loopback only — this is a local compute server, not
// an internet-facing service) and answers rp::serve protocol queries until a
// client sends `shutdown` or the process receives SIGINT/SIGTERM.
//
// Environment: RP_SERVE_PORT, RP_SERVE_WORLDS, RP_SERVE_QUEUE seed the
// defaults (flags win); RP_THREADS sizes the execution pool; RP_CACHE_DIR is
// honoured through the snapshot cache the worlds load from.
//
// --port-file writes the bound port (one line) once the listener is up, so
// scripts using --port 0 (ephemeral) can find the daemon without racing it.
//
// Exit codes: 0 clean shutdown, 2 usage, 3 cannot bind/listen.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs_cli.hpp"
#include "serve/daemon.hpp"

namespace {

rp::serve::Daemon* g_daemon = nullptr;

void on_signal(int) {
  // request_shutdown() is what a `shutdown` frame triggers too; the main
  // thread wakes from wait() and stops the daemon in an orderly way.
  if (g_daemon != nullptr) g_daemon->stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--worlds N] [--queue N] [--batch N]\n"
               "          [--cache-dir DIR] [--port-file FILE]"
               " [--metrics] [--trace FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = rp::examples::strip_obs_flags(argc, argv);

  rp::serve::DaemonConfig config = rp::serve::DaemonConfig::from_env();
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--worlds") {
      config.worlds = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--queue") {
      config.queue_capacity = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--batch") {
      config.max_batch = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--cache-dir") {
      config.cache_dir = value();
    } else if (arg == "--port-file") {
      port_file = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  rp::serve::Daemon daemon(std::move(config));
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rpserve-daemon: %s\n", e.what());
    return 3;
  }

  g_daemon = &daemon;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("rpserve-daemon: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(daemon.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "rpserve-daemon: cannot write %s: %s\n",
                   port_file.c_str(), std::strerror(errno));
      daemon.stop();
      return 3;
    }
  }

  daemon.wait();
  daemon.stop();
  g_daemon = nullptr;
  std::printf("rpserve-daemon: shut down\n");

  rp::examples::finish_obs(obs_options);
  return 0;
}

// Shared --metrics / --trace handling for the example binaries.
//
// Examples call strip_obs_flags(argc, argv) first thing in main: it removes
// the two observability flags from argv (so subcommand parsers never see
// them), enables the metrics registry and/or opens a trace session, and
// returns what it did so finish_obs can flush on exit. RP_METRICS=1 and
// RP_TRACE=<file> behave like the flags without touching the command line.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::examples {

struct ObsOptions {
  bool metrics = false;       ///< Print the metrics table on exit.
  std::string trace_path;     ///< Non-empty: write a Perfetto trace here.
};

/// Strips `--metrics` and `--trace FILE` out of argv in place, arming the
/// requested instrumentation. Call before any subcommand parsing.
inline ObsOptions strip_obs_flags(int& argc, char** argv) {
  ObsOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      opts.metrics = true;
      continue;
    }
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --trace needs a file argument\n", argv[0]);
        std::exit(2);
      }
      opts.trace_path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  if (opts.metrics || obs::metrics_env_requested())
    obs::set_metrics_enabled(true);
  if (!opts.trace_path.empty() && !obs::start_trace(opts.trace_path)) {
    // RP_TRACE already opened a session; the explicit flag wins.
    obs::stop_trace();
    obs::start_trace(opts.trace_path);
  }
  return opts;
}

/// Renders the metrics table (when requested) and flushes the trace file.
/// Call once, at the end of main.
inline void finish_obs(const ObsOptions& opts) {
  if (opts.metrics) {
    std::printf("\n");
    obs::dump_global_metrics(std::cout);
  }
  if (!opts.trace_path.empty()) {
    const std::size_t events = obs::stop_trace();
    std::fprintf(stderr, "trace: wrote %zu events to %s\n", events,
                 opts.trace_path.c_str());
  }
}

}  // namespace rp::examples

// Quickstart: build a small world, detect remote peers at one IXP, and ask
// the economic model whether remote peering pays off.
//
// This walks the three layers of the library in ~100 lines:
//   1. core::Scenario        — a deterministic synthetic Internet
//   2. core::SpreadStudy     — the ping-based detection method (paper §3)
//   3. core::ViabilityStudy  — the cost model (paper §5)
// Pass --metrics to print the instrumentation counters on exit, or
// --trace FILE to record a Perfetto-loadable phase trace (see DESIGN.md §10).
#include <cstdio>

#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "core/viability_study.hpp"
#include "io/snapshot.hpp"
#include "obs_cli.hpp"

int main(int argc, char** argv) {
  using namespace rp;
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);

  // 1. A small world: shrink the AS counts and IXP rosters so the example
  //    runs in a couple of seconds. Everything is seeded — rerunning gives
  //    identical output.
  core::ScenarioConfig config;
  config.seed = 7;
  config.euroix = false;          // Just the 22 measured IXPs of Table 1.
  config.membership_scale = 0.15; // ~15% of the real member counts.
  config.topology.tier2_count = 40;
  config.topology.access_count = 200;
  config.topology.content_count = 60;
  config.topology.cdn_count = 10;
  config.topology.nren_count = 8;
  config.topology.enterprise_count = 150;

  // build_cached snapshots the world under .rpsnap-cache/ (or
  // $RP_SNAPSHOT_CACHE); reruns load the snapshot instead of rebuilding.
  core::SnapshotCacheResult cache;
  const core::Scenario scenario =
      core::Scenario::build_cached(config, io::default_cache_dir(), &cache);
  std::printf("world (%s): %zu ASes, %zu transit links, %zu peering links, %zu IXPs\n",
              cache.outcome == core::SnapshotCacheResult::Outcome::kHit
                  ? "snapshot cache hit"
                  : "built",
              scenario.graph().as_count(),
              scenario.graph().transit_link_count(),
              scenario.graph().peering_link_count(),
              scenario.ecosystem().ixps().size());

  // 2. Run the §3 measurement study: ping campaigns from the looking
  //    glasses, six conservative filters, 10 ms remoteness threshold.
  core::SpreadStudyConfig study_config;
  study_config.campaign.length = util::SimDuration::days(7);
  study_config.campaign.queries_per_pch_lg = 4;
  study_config.campaign.queries_per_ripe_lg = 3;

  const core::SpreadStudy study = core::SpreadStudy::run(scenario, study_config);
  const measure::SpreadReport& report = study.report();

  std::printf("\nmeasurement study: %zu interfaces probed, %zu analyzed\n",
              report.total_probed(), report.total_analyzed());
  std::printf("remote peering detected at %.0f%% of the %zu measured IXPs\n",
              100.0 * report.ixps_with_remote_fraction(),
              report.rows().size());
  std::printf("classifier vs ground truth: precision %.3f, recall %.3f\n",
              report.validation().precision(), report.validation().recall());

  std::printf("\n%-10s %8s %8s %8s\n", "IXP", "analyzed", "remote", "share");
  for (const auto& row : report.rows()) {
    if (row.analyzed == 0) continue;
    std::printf("%-10s %8zu %8zu %7.1f%%\n", row.acronym.c_str(), row.analyzed,
                row.remote_interfaces,
                100.0 * static_cast<double>(row.remote_interfaces) /
                    static_cast<double>(row.analyzed));
  }

  // 3. Feed the diminishing-returns curve into the §5 cost model. Here we
  //    use a typical fitted decay; see the offload_study example for the
  //    full pipeline that fits b from traffic data.
  econ::CostParameters prices;  // Defaults: p=1, g=0.02, u=0.2, h=0.006, v=0.45.
  const auto viability = core::ViabilityStudy::from_decay(0.5, prices);
  std::printf("\neconomic model (b = %.2f):\n", viability.fitted_decay());
  std::printf("  optimal direct-peering IXPs  n~ = %.2f (offloads %.0f%% of traffic)\n",
              viability.optimal_direct_n(),
              100.0 * viability.optimal_direct_fraction());
  std::printf("  optimal remote-peering IXPs  m~ = %.2f\n",
              viability.optimal_remote_m());
  std::printf("  remote peering viable: %s\n",
              viability.remote_viable() ? "yes" : "no");
  examples::finish_obs(obs_opts);
  return 0;
}

// rpsweep — the multi-scenario sweep engine's CLI (DESIGN.md §12).
//
//   rpsweep fields                       list every sweepable field
//   rpsweep plan SPEC [--dir DIR]        expand the grid, write the manifest
//   rpsweep run SPEC [--dir DIR] [--cache-dir DIR]
//                                        plan + execute + summarize
//   rpsweep resume --dir DIR [--cache-dir DIR]
//                                        finish an interrupted sweep from its
//                                        manifest and completion records
//   rpsweep summarize --dir DIR          collate records into results.csv/json
//
// --dir defaults to $RP_SWEEP_DIR/<spec name> when RP_SWEEP_DIR is set,
// otherwise ./rpsweep-<spec name>. The scenario snapshot cache defaults to
// $RP_SNAPSHOT_CACHE / .rpsnap-cache as everywhere else; --cache-dir
// overrides it. RP_SWEEP_JOBS caps the sweep's own worker pool, RP_THREADS
// still governs the per-world studies. --metrics / --trace work as on every
// example. A sweep killed mid-flight (Ctrl-C, or an armed
// RP_FAULT=sweep.run:... site) is resumable: completed runs are on disk and
// `rpsweep resume` produces a results table byte-identical to an
// uninterrupted run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>

#include "core/config_fields.hpp"
#include "obs_cli.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec.hpp"

namespace {

using namespace rp;

int usage() {
  std::fprintf(
      stderr,
      "usage: rpsweep fields\n"
      "       rpsweep plan SPEC [--dir DIR]\n"
      "       rpsweep run SPEC [--dir DIR] [--cache-dir DIR]\n"
      "       rpsweep resume --dir DIR [--cache-dir DIR]\n"
      "       rpsweep summarize --dir DIR\n"
      "       (all subcommands also accept --metrics / --trace FILE)\n");
  return 2;
}

int list_fields() {
  std::printf("scenario-config fields (change the world and its cache key):\n");
  for (const auto& field : core::scenario_config_fields())
    std::printf("  %-28s %.*s\n", std::string(field.name).c_str(),
                static_cast<int>(field.description.size()),
                field.description.data());
  std::printf("\necon fields (reprice the §5 model on the same world):\n");
  for (const auto& field : sweep::econ_fields())
    std::printf("  %-28s %.*s\n", std::string(field.name).c_str(),
                static_cast<int>(field.description.size()),
                field.description.data());
  std::printf(
      "\nepoch axis (specs with a `timeline <path>` line only):\n"
      "  %-28s epoch index into the embedded rp::evolve timeline\n",
      "evolve.epoch");
  return 0;
}

std::filesystem::path default_dir(const sweep::SweepSpec& spec) {
  if (const char* base = std::getenv("RP_SWEEP_DIR");
      base != nullptr && *base != '\0')
    return std::filesystem::path(base) / spec.name;
  return std::filesystem::path("rpsweep-" + spec.name);
}

void print_plan(const sweep::SweepSpec& spec,
                const std::filesystem::path& dir) {
  std::printf("sweep '%s' (spec %s): %zu runs over %zu axes\n",
              spec.name.c_str(), sweep::spec_digest_hex(spec).c_str(),
              spec.run_count(), spec.axes.size());
  for (const auto& axis : spec.axes)
    std::printf("  axis %-26s %zu values\n", axis.field.c_str(),
                axis.values.size());
  std::printf("  directory: %s\n", dir.string().c_str());
}

void print_outcome(const sweep::ExecuteOutcome& outcome) {
  std::printf(
      "executed %zu runs (%zu skipped via completion records), "
      "%zu world(s) realized\n",
      outcome.executed, outcome.skipped, outcome.worlds_built);
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ObsOptions obs_opts = examples::strip_obs_flags(argc, argv);
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::string spec_path;
  std::filesystem::path dir;
  sweep::EngineOptions engine_options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rpsweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") dir = value();
    else if (arg == "--cache-dir") engine_options.cache_dir = value();
    else if (arg.rfind("--", 0) == 0) return usage();
    else if (spec_path.empty()) spec_path = arg;
    else return usage();
  }

  int rc = 0;
  try {
    if (command == "fields") {
      rc = list_fields();
    } else if (command == "plan" || command == "run") {
      if (spec_path.empty()) return usage();
      const sweep::SweepSpec spec = sweep::load_sweep_spec(spec_path);
      if (dir.empty()) dir = default_dir(spec);
      sweep::write_manifest(spec, dir);
      print_plan(spec, dir);
      if (command == "run") {
        print_outcome(sweep::execute_sweep(spec, dir, engine_options));
        const std::size_t rows = sweep::summarize_sweep(spec, dir);
        std::printf("results: %zu rows -> %s\n", rows,
                    sweep::SweepPaths(dir).results_csv().string().c_str());
      }
    } else if (command == "resume" || command == "summarize") {
      if (!spec_path.empty() || dir.empty()) return usage();
      const sweep::SweepSpec spec = sweep::read_manifest(dir);
      if (command == "resume")
        print_outcome(sweep::execute_sweep(spec, dir, engine_options));
      const std::size_t rows = sweep::summarize_sweep(spec, dir);
      std::printf("results: %zu rows -> %s\n", rows,
                  sweep::SweepPaths(dir).results_csv().string().c_str());
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rpsweep: %s\n", e.what());
    rc = 1;
  }
  examples::finish_obs(obs_opts);
  return rc;
}

// export_dataset: persist a raw measurement campaign and re-analyze it.
//
// The paper released its measurement data publicly; this example shows the
// equivalent workflow here: run a campaign, dump every ping sample to a
// CSV-like dataset (stdout or a file), read it back, and confirm that
// offline re-analysis reproduces the original verdicts. The same path backs
// "what if the threshold were different?" studies without re-simulation.
//
//   export_dataset [output-file]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "measure/classifier.hpp"
#include "measure/dataset_io.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"

using namespace rp;

int main(int argc, char** argv) {
  // A small exchange with a mixed roster.
  ixp::Ixp ixp(0, "EXPORT-IX", "Export Exchange",
               geo::CityRegistry::world().at("Vienna"), 0.2,
               *net::Ipv4Prefix::parse("198.18.32.0/24"));
  net::HostAllocator addrs(ixp.peering_lan());
  ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
  struct Member {
    std::uint32_t asn;
    const char* home;
    ixp::AttachmentKind kind;
  };
  const Member roster[] = {
      {65001, "Vienna", ixp::AttachmentKind::kDirectColo},
      {65002, "Vienna", ixp::AttachmentKind::kIpTransport},
      {65003, "Warsaw", ixp::AttachmentKind::kRemoteViaProvider},
      {65004, "Lisbon", ixp::AttachmentKind::kRemoteViaProvider},
      {65005, "Seoul", ixp::AttachmentKind::kPartnerIxp},
  };
  for (const auto& member : roster) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{member.asn};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(member.asn);
    iface.kind = member.kind;
    iface.equipment_city = geo::CityRegistry::world().at(member.home);
    if (iface.is_remote_ground_truth())
      iface.circuit_one_way = geo::propagation_delay(
          iface.equipment_city.position, ixp.city().position, 1.5);
    ixp.add_interface(iface);
  }

  // Run the campaign with the route-server cross-check enabled.
  measure::CampaignConfig config;
  config.length = util::SimDuration::days(7);
  config.queries_per_pch_lg = 6;
  config.route_server_crosscheck = true;
  util::Rng rng(31);
  const auto measurement = measure::run_ixp_campaign(ixp, config, rng);

  // Serialize.
  std::stringstream dataset;
  measure::write_dataset(measurement, dataset);
  const std::string text = dataset.str();
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << text;
    std::printf("wrote %zu bytes of raw samples to %s\n", text.size(),
                argv[1]);
  } else {
    std::printf("dataset preview (first 12 lines; pass a filename to save "
                "all %zu bytes):\n", text.size());
    std::istringstream preview(text);
    std::string line;
    for (int i = 0; i < 12 && std::getline(preview, line); ++i)
      std::printf("  %s\n", line.c_str());
  }

  // Round trip and re-analyze offline.
  std::istringstream input(text);
  std::string error;
  const auto loaded = measure::read_dataset(input, &error);
  if (!loaded) {
    std::fprintf(stderr, "round trip failed: %s\n", error.c_str());
    return 1;
  }
  const auto original = measure::apply_filters(measurement, {});
  const auto reloaded = measure::apply_filters(*loaded, {});
  std::printf("\nre-analysis of the loaded dataset (verdicts must match):\n");
  const measure::ClassifierConfig classifier;
  bool all_match = true;
  for (std::size_t i = 0; i < original.interfaces.size(); ++i) {
    const auto& a = original.interfaces[i];
    const auto& b = reloaded.interfaces[i];
    const bool match = a.discarded_by == b.discarded_by &&
                       (!a.analyzed() || a.min_rtt == b.min_rtt);
    all_match = all_match && match;
    std::printf("  %-14s %-9s truth=%-7s %s\n", a.addr.to_string().c_str(),
                a.analyzed()
                    ? (measure::is_remote(a.min_rtt, classifier) ? "REMOTE"
                                                                 : "direct")
                    : "discarded",
                a.truth_remote ? "remote" : "direct",
                match ? "(bit-identical after round trip)" : "MISMATCH!");
    if (a.analyzed() && a.truth_remote &&
        !measure::is_remote(a.min_rtt, classifier)) {
      std::printf("    ^ a nearby remote peer under the 10 ms threshold: the"
                  " conservative\n      false negative the paper accepts "
                  "(min RTT %s)\n", a.min_rtt.to_string().c_str());
    }
  }
  return all_match ? 0 : 1;
}

// economic_planner: "should my network buy remote peering?" (§5).
//
// Takes the paper's cost model and walks several network profiles through
// it: for each, the optimal number of directly reached IXPs (eq. 11), the
// optimal number of additional remotely reached IXPs (eq. 13), the eq. 14
// viability verdict, and the resulting cost breakdown. Optional argv
// overrides let you plug in your own prices:
//
//   economic_planner [p g u h v]
//     p  per-unit transit price (normalized, default 1.0)
//     g  per-IXP fixed cost of direct peering (default 0.02)
//     u  per-unit traffic cost of direct peering (default 0.20)
//     h  per-IXP fixed cost of remote peering (default 0.006)
//     v  per-unit traffic cost of remote peering (default 0.45)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "econ/cost_model.hpp"
#include "util/table.hpp"

using namespace rp;

int main(int argc, char** argv) {
  econ::CostParameters prices;
  if (argc == 6) {
    prices.transit_price = std::atof(argv[1]);
    prices.direct_fixed = std::atof(argv[2]);
    prices.direct_unit = std::atof(argv[3]);
    prices.remote_fixed = std::atof(argv[4]);
    prices.remote_unit = std::atof(argv[5]);
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [p g u h v]\n", argv[0]);
    return 2;
  }
  if (const auto problem = prices.validate()) {
    std::fprintf(stderr, "invalid prices: %s\n", problem->c_str());
    return 2;
  }

  std::printf("prices: transit p=%.3f | direct g=%.3f u=%.3f | "
              "remote h=%.3f v=%.3f\n\n",
              prices.transit_price, prices.direct_fixed, prices.direct_unit,
              prices.remote_fixed, prices.remote_unit);

  // Network profiles differ in the decay parameter b of eq. 3: how fast
  // peering at IXPs eats into their transit traffic. Low b = globally
  // spread traffic (each IXP helps a little); high b = localized traffic
  // (the first IXP nearly empties the transit pipe).
  struct Profile {
    const char* name;
    double decay;
  };
  const Profile profiles[] = {
      {"global CDN (highly distributed traffic)", 0.08},
      {"multinational content provider", 0.20},
      {"national eyeball ISP", 0.45},
      {"research network (RedIRIS-like)", 0.70},
      {"regional ISP with local traffic", 1.20},
      {"enterprise with one dominant destination", 2.50},
  };

  util::TextTable table({"profile", "b", "n~ direct", "m~ remote", "viable",
                         "cost: transit only", "optimal mix"});
  for (const auto& profile : profiles) {
    econ::CostParameters p = prices;
    p.decay = profile.decay;
    const econ::CostModel model(p);
    const double n = model.optimal_direct_n();
    const double m = model.remote_viable() ? model.optimal_remote_m() : 0.0;
    table.add_row({profile.name, util::fmt_double(profile.decay, 2),
                   util::fmt_double(n, 1), util::fmt_double(m, 1),
                   model.remote_viable() ? "yes" : "no",
                   util::fmt_double(model.total_cost(0.0, 0.0), 3),
                   util::fmt_double(model.total_cost(n, m), 3)});
  }
  {
    // Print via stdio to keep the output plain.
    std::string rendered;
    {
      std::ostringstream os;
      table.render(os);
      rendered = os.str();
    }
    std::fputs(rendered.c_str(), stdout);
  }

  // The boundary itself.
  const econ::CostModel reference(prices);
  std::printf("\nviability boundary: remote peering pays while "
              "b <= ln(g(p-v)/(h(p-u))) = %.3f\n",
              reference.critical_decay());
  std::printf(
      "reading: networks with global traffic (low b) can justify extending\n"
      "their own infrastructure (large n~), and remote peering is just one\n"
      "more option; networks with small-volume global traffic cannot, and\n"
      "for them remote peering is the only economical way to reach distant\n"
      "IXPs — more peering without Internet flattening (paper, §5.2).\n");

  // African-market variant (§5.2): local IXPs offer little offload and
  // transit is expensive, so h is effectively much smaller than g.
  econ::CostParameters africa = prices;
  africa.remote_fixed = prices.remote_fixed / 4.0;
  africa.decay = 0.7;
  const econ::CostModel african(africa);
  std::printf("\nAfrican-market variant (h/4, b=0.7): remote peering is %s "
              "(ratio %.2f vs e^b %.2f)\n",
              african.remote_viable() ? "VIABLE" : "not viable",
              african.viability_ratio(), std::exp(africa.decay));
  return 0;
}

// rpq — query client for rpserve-daemon.
//
// Usage:
//   rpq [--host H] [--port N] [--fast] [--set field=value]... <command> ...
//
// Commands:
//   ping [TOKEN]                     round-trip check (token echoed)
//   world-info                       resident-world summary + cache outcome
//   offload-curve [--group N] [--steps N]
//   viability [--decay B] [--prices p,g,u,h,v]
//                                    fitted decay by default; --decay pins it
//   spread                           §3 measurement-study report
//   what-if-econ --variant p,g,u,h,v [--prices p,g,u,h,v]
//   what-if-peering --add IXP[,IXP...] [--reached IXP[,IXP...]] [--group N]
//   badframe                         send a deliberately malformed frame
//                                    (expects the daemon to hang up; exit 0)
//   shutdown                         ask the daemon to exit
//
// --fast and --set pick the world: they resolve to a ScenarioConfig exactly
// like the daemon does, so equal flags land on the same warm world.
//
// Output: one "key = value" line per response field, in protocol order.
//
// Exit codes: 0 ok, 1 daemon returned an error, 2 usage, 3 cannot connect /
// socket error, 4 protocol violation in the response, 5 daemon busy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port N] [--fast] [--set field=value]...\n"
      "       <ping|world-info|offload-curve|viability|spread|what-if-econ|"
      "what-if-peering|badframe|shutdown> [options]\n",
      argv0);
  return 2;
}

bool parse_prices(const std::string& text, rp::serve::EconPrices& prices) {
  return std::sscanf(text.c_str(), "%lf,%lf,%lf,%lf,%lf", &prices.p,
                     &prices.g, &prices.u, &prices.h, &prices.v) == 5;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) parts.push_back(text.substr(start));
      break;
    }
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (const char* env = std::getenv("RP_SERVE_PORT"))
    port = static_cast<std::uint16_t>(std::atoi(env));

  rp::serve::Request request;
  std::string command;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = value();
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--fast") {
      request.world.fast = true;
    } else if (arg == "--set") {
      const std::string assignment = value();
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "%s: --set wants field=value, got '%s'\n",
                     argv[0], assignment.c_str());
        return 2;
      }
      request.world.fields.emplace_back(assignment.substr(0, eq),
                                        assignment.substr(eq + 1));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      command = arg;
      ++i;
      break;
    }
  }
  if (command.empty()) return usage(argv[0]);
  if (port == 0) {
    std::fprintf(stderr,
                 "%s: no port (use --port or set RP_SERVE_PORT)\n", argv[0]);
    return 2;
  }

  bool badframe = false;
  if (command == "ping") {
    request.type = rp::serve::RequestType::kPing;
    request.token = "rpq";
    if (i < argc && argv[i][0] != '-') request.token = argv[i++];
  } else if (command == "world-info") {
    request.type = rp::serve::RequestType::kWorldInfo;
  } else if (command == "offload-curve") {
    request.type = rp::serve::RequestType::kOffloadCurve;
  } else if (command == "viability") {
    request.type = rp::serve::RequestType::kViability;
  } else if (command == "spread") {
    request.type = rp::serve::RequestType::kSpread;
  } else if (command == "what-if-econ") {
    request.type = rp::serve::RequestType::kWhatIf;
    request.whatif_mode = 1;
  } else if (command == "what-if-peering") {
    request.type = rp::serve::RequestType::kWhatIf;
    request.whatif_mode = 2;
  } else if (command == "badframe") {
    badframe = true;
  } else if (command == "shutdown") {
    request.type = rp::serve::RequestType::kShutdown;
  } else {
    std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                 command.c_str());
    return 2;
  }

  bool have_variant = false;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--group") {
      request.group = static_cast<std::uint8_t>(std::atoi(value()));
    } else if (arg == "--steps") {
      request.max_steps = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--decay") {
      request.fitted_decay = false;
      request.decay = std::atof(value());
    } else if (arg == "--prices") {
      if (!parse_prices(value(), request.prices)) {
        std::fprintf(stderr, "%s: --prices wants p,g,u,h,v\n", argv[0]);
        return 2;
      }
    } else if (arg == "--variant") {
      if (!parse_prices(value(), request.variant)) {
        std::fprintf(stderr, "%s: --variant wants p,g,u,h,v\n", argv[0]);
        return 2;
      }
      have_variant = true;
    } else if (arg == "--reached") {
      request.reached_ixps = split_commas(value());
    } else if (arg == "--add") {
      request.added_ixps = split_commas(value());
    } else {
      return usage(argv[0]);
    }
  }
  if (request.type == rp::serve::RequestType::kWhatIf &&
      request.whatif_mode == 1 && !have_variant) {
    std::fprintf(stderr, "%s: what-if-econ needs --variant p,g,u,h,v\n",
                 argv[0]);
    return 2;
  }

  try {
    rp::serve::Client client = rp::serve::Client::connect(host, port);
    if (badframe) {
      // A length prefix promising far more than kMaxFramePayload: the daemon
      // must kill this connection (recv sees EOF) and keep running.
      const std::uint8_t poison[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                     0xff, 0xff, 0xff, 0xff, 0x7f};
      client.send_bytes(poison);
      try {
        client.read_payload();
        std::fprintf(stderr, "badframe: daemon answered a malformed frame\n");
        return 4;
      } catch (const rp::serve::ClientError&) {
        std::printf("badframe = connection closed (as it should be)\n");
        return 0;
      }
    }
    const rp::serve::Response response = client.call(request);
    switch (response.status) {
      case rp::serve::Status::kOk:
        for (const auto& [key, val] : response.fields)
          std::printf("%s = %s\n", key.c_str(), val.c_str());
        return 0;
      case rp::serve::Status::kError:
        std::fprintf(stderr, "error: %s\n", response.message.c_str());
        return 1;
      case rp::serve::Status::kBusy:
        std::fprintf(stderr, "busy: %s\n", response.message.c_str());
        return 5;
    }
    return 4;
  } catch (const rp::serve::ClientError& e) {
    std::fprintf(stderr, "rpq: %s\n", e.what());
    return static_cast<int>(e.error_class());
  }
}

// rpq — query client for rpserve-daemon.
//
// Usage:
//   rpq [--host H] [--port N] [--fast] [--set field=value]... <command> ...
//
// Commands:
//   ping [TOKEN]                     round-trip check (token echoed)
//   world-info                       resident-world summary + cache outcome
//   offload-curve [--group N] [--steps N]
//   viability [--decay B] [--prices p,g,u,h,v]
//                                    fitted decay by default; --decay pins it
//   spread                           §3 measurement-study report
//   what-if-econ --variant p,g,u,h,v [--prices p,g,u,h,v]
//   what-if-peering --add IXP[,IXP...] [--reached IXP[,IXP...]] [--group N]
//   world-at-epoch --timeline FILE --epoch K
//                                    replay the timeline over its base world
//                                    and report epoch K's composition
//   epoch-series --timeline FILE [--group N] [--steps N]
//                                    one composition + offload block per epoch
//   badframe                         send a deliberately malformed frame
//                                    (expects the daemon to hang up; exit 0)
//   stats [--json|--prom] [--window N]
//                                    live daemon stats: queue/pool occupancy,
//                                    per-request-type p50/p99, slow-query
//                                    log, and the last N points of every
//                                    recorded time series (default 8; 0 for
//                                    none). --json emits one flat object;
//                                    --prom emits Prometheus text exposition.
//   top [--interval MS] [--count N]  poll stats and render a live view with
//                                    request rates (default: 1000 ms forever;
//                                    --count bounds the refreshes)
//   shutdown                         ask the daemon to exit
//
// --fast and --set pick the world: they resolve to a ScenarioConfig exactly
// like the daemon does, so equal flags land on the same warm world.
//
// Output: one "key = value" line per response field, in protocol order.
//
// Exit codes: 0 ok, 1 daemon returned an error, 2 usage, 3 cannot connect /
// socket error, 4 protocol violation in the response, 5 daemon busy.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "evolve/timeline.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port N] [--fast] [--set field=value]...\n"
      "       <ping|world-info|offload-curve|viability|spread|what-if-econ|"
      "what-if-peering|world-at-epoch|epoch-series|badframe|stats|top|"
      "shutdown> [options]\n",
      argv0);
  return 2;
}

bool parse_prices(const std::string& text, rp::serve::EconPrices& prices) {
  return std::sscanf(text.c_str(), "%lf,%lf,%lf,%lf,%lf", &prices.p,
                     &prices.g, &prices.u, &prices.h, &prices.v) == 5;
}

void print_stats_json(const rp::serve::Response& response) {
  // Numeric values and the "null" the daemon emits for absent quantiles
  // (empty-histogram types) pass through verbatim; everything else (hex
  // digests — including all-digit ones a lenient parse would misread — and
  // comma-joined windows) becomes a JSON string.
  std::vector<rp::obs::json::Entry> entries;
  entries.reserve(response.fields.size());
  for (const auto& [key, value] : response.fields)
    entries.emplace_back(
        key, value == "null" || rp::obs::is_canonical_number(value)
                 ? value
                 : '"' + rp::obs::json::escape(value) + '"');
  rp::obs::json::write_flat_object(std::cout, entries);
}

double field_number(const rp::serve::Response& response,
                    std::string_view key) {
  const std::string_view v = response.field(key);
  return v.empty() ? 0.0 : std::strtod(std::string(v).c_str(), nullptr);
}

// One `rpq top` refresh: request rate from the stats.completed delta across
// polls, plus the load-bearing occupancy numbers and per-type counts.
void render_top(const rp::serve::Response& response, double req_per_s) {
  std::printf("uptime %.1fs   completed %.0f   %.1f req/s\n",
              field_number(response, "stats.uptime_s"),
              field_number(response, "stats.completed"), req_per_s);
  std::printf("queue  %.0f/%.0f (high water %.0f)   pool %.0f/%.0f worlds\n",
              field_number(response, "queue.depth"),
              field_number(response, "queue.capacity"),
              field_number(response, "queue.high_water"),
              field_number(response, "pool.resident"),
              field_number(response, "pool.capacity"));
  for (const auto& [key, value] : response.fields) {
    if (key.rfind("req.", 0) != 0 || key.size() < 7 ||
        key.compare(key.size() - 6, 6, ".count") != 0)
      continue;
    const std::string type = key.substr(4, key.size() - 10);
    const std::string p50_key = "req." + type + ".p50_us";
    const std::string p99_key = "req." + type + ".p99_us";
    std::printf("  %-14s %8s reqs   p50 %9.1f us   p99 %9.1f us\n",
                type.c_str(), value.c_str(), field_number(response, p50_key),
                field_number(response, p99_key));
  }
  std::fflush(stdout);
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) parts.push_back(text.substr(start));
      break;
    }
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (const char* env = std::getenv("RP_SERVE_PORT"))
    port = static_cast<std::uint16_t>(std::atoi(env));

  rp::serve::Request request;
  std::string command;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = value();
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--fast") {
      request.world.fast = true;
    } else if (arg == "--set") {
      const std::string assignment = value();
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "%s: --set wants field=value, got '%s'\n",
                     argv[0], assignment.c_str());
        return 2;
      }
      request.world.fields.emplace_back(assignment.substr(0, eq),
                                        assignment.substr(eq + 1));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      command = arg;
      ++i;
      break;
    }
  }
  if (command.empty()) return usage(argv[0]);
  if (port == 0) {
    std::fprintf(stderr,
                 "%s: no port (use --port or set RP_SERVE_PORT)\n", argv[0]);
    return 2;
  }

  bool badframe = false;
  bool top_mode = false;
  bool json_out = false;
  bool prom_out = false;
  std::uint64_t top_interval_ms = 1000;
  std::uint64_t top_count = 0;  // 0 = poll forever
  if (command == "ping") {
    request.type = rp::serve::RequestType::kPing;
    request.token = "rpq";
    if (i < argc && argv[i][0] != '-') request.token = argv[i++];
  } else if (command == "world-info") {
    request.type = rp::serve::RequestType::kWorldInfo;
  } else if (command == "offload-curve") {
    request.type = rp::serve::RequestType::kOffloadCurve;
  } else if (command == "viability") {
    request.type = rp::serve::RequestType::kViability;
  } else if (command == "spread") {
    request.type = rp::serve::RequestType::kSpread;
  } else if (command == "what-if-econ") {
    request.type = rp::serve::RequestType::kWhatIf;
    request.whatif_mode = 1;
  } else if (command == "what-if-peering") {
    request.type = rp::serve::RequestType::kWhatIf;
    request.whatif_mode = 2;
  } else if (command == "world-at-epoch") {
    request.type = rp::serve::RequestType::kWorldAtEpoch;
  } else if (command == "epoch-series") {
    request.type = rp::serve::RequestType::kEpochSeries;
  } else if (command == "badframe") {
    badframe = true;
  } else if (command == "stats") {
    request.type = rp::serve::RequestType::kStats;
    request.stats_window = 8;
  } else if (command == "top") {
    request.type = rp::serve::RequestType::kStats;
    request.stats_window = 0;
    top_mode = true;
  } else if (command == "shutdown") {
    request.type = rp::serve::RequestType::kShutdown;
  } else {
    std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                 command.c_str());
    return 2;
  }

  bool have_variant = false;
  std::string timeline_path;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs an argument\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--group") {
      request.group = static_cast<std::uint8_t>(std::atoi(value()));
    } else if (arg == "--steps") {
      request.max_steps = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--decay") {
      request.fitted_decay = false;
      request.decay = std::atof(value());
    } else if (arg == "--prices") {
      if (!parse_prices(value(), request.prices)) {
        std::fprintf(stderr, "%s: --prices wants p,g,u,h,v\n", argv[0]);
        return 2;
      }
    } else if (arg == "--variant") {
      if (!parse_prices(value(), request.variant)) {
        std::fprintf(stderr, "%s: --variant wants p,g,u,h,v\n", argv[0]);
        return 2;
      }
      have_variant = true;
    } else if (arg == "--reached") {
      request.reached_ixps = split_commas(value());
    } else if (arg == "--add") {
      request.added_ixps = split_commas(value());
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--prom") {
      prom_out = true;
    } else if (arg == "--window") {
      request.stats_window = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--interval") {
      top_interval_ms =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                         std::atoll(value())));
    } else if (arg == "--count") {
      top_count = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--timeline") {
      timeline_path = value();
    } else if (arg == "--epoch") {
      request.epoch = static_cast<std::uint64_t>(std::atoll(value()));
    } else {
      return usage(argv[0]);
    }
  }
  if (request.type == rp::serve::RequestType::kWhatIf &&
      request.whatif_mode == 1 && !have_variant) {
    std::fprintf(stderr, "%s: what-if-econ needs --variant p,g,u,h,v\n",
                 argv[0]);
    return 2;
  }
  if (request.type == rp::serve::RequestType::kWorldAtEpoch ||
      request.type == rp::serve::RequestType::kEpochSeries) {
    if (timeline_path.empty()) {
      std::fprintf(stderr, "%s: %s needs --timeline FILE\n", argv[0],
                   command.c_str());
      return 2;
    }
    try {
      // Canonical text crosses the wire, and the timeline's fast/base lines
      // become the world spec — so the epoch query lands on the exact warm
      // world the timeline's own base resolves to (any --fast/--set flags
      // are overridden; the timeline is the authority on its base).
      const rp::evolve::Timeline timeline =
          rp::evolve::load_timeline(timeline_path);
      request.timeline = rp::evolve::canonical_timeline_text(timeline);
      request.world.fast = timeline.fast;
      request.world.fields = timeline.base;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }

  try {
    rp::serve::Client client = rp::serve::Client::connect(host, port);
    if (badframe) {
      // A length prefix promising far more than kMaxFramePayload: the daemon
      // must kill this connection (recv sees EOF) and keep running.
      const std::uint8_t poison[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                     0xff, 0xff, 0xff, 0xff, 0x7f};
      client.send_bytes(poison);
      try {
        client.read_payload();
        std::fprintf(stderr, "badframe: daemon answered a malformed frame\n");
        return 4;
      } catch (const rp::serve::ClientError&) {
        std::printf("badframe = connection closed (as it should be)\n");
        return 0;
      }
    }
    if (top_mode) {
      // Poll the stats surface; the request rate is the stats.completed
      // delta between successive polls over the wall time between them.
      double last_completed = -1.0;
      auto last_poll = std::chrono::steady_clock::now();
      for (std::uint64_t tick = 0; top_count == 0 || tick < top_count;
           ++tick) {
        if (tick != 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(top_interval_ms));
        }
        const rp::serve::Response response = client.call(request);
        if (response.status != rp::serve::Status::kOk) {
          std::fprintf(stderr, "error: %s\n", response.message.c_str());
          return 1;
        }
        const auto now = std::chrono::steady_clock::now();
        const double completed = field_number(response, "stats.completed");
        double rate = 0.0;
        if (last_completed >= 0.0) {
          const double dt =
              std::chrono::duration<double>(now - last_poll).count();
          if (dt > 0.0) rate = std::max(0.0, (completed - last_completed) / dt);
        }
        last_completed = completed;
        last_poll = now;
        if (tick != 0) std::printf("\n");
        render_top(response, rate);
      }
      return 0;
    }
    const rp::serve::Response response = client.call(request);
    switch (response.status) {
      case rp::serve::Status::kOk:
        if (json_out) {
          print_stats_json(response);
        } else if (prom_out) {
          rp::obs::write_prometheus(std::cout, response.fields);
        } else {
          for (const auto& [key, val] : response.fields)
            std::printf("%s = %s\n", key.c_str(), val.c_str());
        }
        return 0;
      case rp::serve::Status::kError:
        std::fprintf(stderr, "error: %s\n", response.message.c_str());
        return 1;
      case rp::serve::Status::kBusy:
        std::fprintf(stderr, "busy: %s\n", response.message.c_str());
        return 5;
    }
    return 4;
  } catch (const rp::serve::ClientError& e) {
    std::fprintf(stderr, "rpq: %s\n", e.what());
    return static_cast<int>(e.error_class());
  }
}

#!/usr/bin/env python3
"""Perf-trajectory gate: compare BENCH_*.json against committed baselines.

Every perf binary writes a flat BENCH_<name>.json trajectory file (see
bench/perf_json.hpp). This script compares the *throughput* keys of a fresh
run against the committed baselines in bench/baselines/ and fails when any
of them regressed beyond the tolerance:

  * keys containing `_per_sec`  (rates: events, requests, bins, bytes ...)
  * keys containing `speedup`   (head-to-head ratios, e.g. delta_speedup)

Latency/time keys are deliberately not gated — they scale with machine load
in ways rates bounded by the same noise do not, and the rates already move
when the timed region slows down.

Usage:
  check_bench.py --check DIR [--tolerance 0.25] [--baselines BDIR]
      compare every BENCH_*.json in DIR against BDIR (exit 1 on regression)
  check_bench.py --update DIR [--baselines BDIR]
      (re)write the baselines from the BENCH_*.json files in DIR
  check_bench.py --self-test
      prove the gate trips: a synthetic 2x regression must fail the check

Exit codes: 0 pass, 1 regression (or self-test failure), 2 usage/missing
files.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.25


def is_gated_key(key):
    # "_per_sec" also catches google-benchmark's *_per_second rate counters.
    return "_per_sec" in key or "speedup" in key


def load_flat_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a flat JSON object")
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def bench_files(directory):
    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        print(f"check_bench: cannot list {directory}: {error}", file=sys.stderr)
        sys.exit(2)
    return [
        n for n in names if n.startswith("BENCH_") and n.endswith(".json")
    ]


def compare(current_dir, baseline_dir, tolerance, out=sys.stdout):
    """Returns (regressions, rows); rows drive the trajectory table."""
    regressions = []
    rows = []
    current_names = bench_files(current_dir)
    if not current_names:
        print(f"check_bench: no BENCH_*.json in {current_dir}",
              file=sys.stderr)
        sys.exit(2)
    for name in current_names:
        baseline_path = os.path.join(baseline_dir, name)
        current = load_flat_json(os.path.join(current_dir, name))
        if not os.path.exists(baseline_path):
            rows.append((name, "(no baseline; run --update)", None, None, "NEW"))
            continue
        baseline = load_flat_json(baseline_path)
        for key in sorted(baseline):
            if not is_gated_key(key):
                continue
            base_value = baseline[key]
            if key not in current:
                regressions.append(f"{name}: {key} missing from current run")
                rows.append((name, key, base_value, None, "MISSING"))
                continue
            value = current[key]
            if base_value <= 0:
                continue
            delta = (value - base_value) / base_value
            status = "ok"
            if delta < -tolerance:
                status = "REGRESSED"
                regressions.append(
                    f"{name}: {key} {value:.6g} vs baseline "
                    f"{base_value:.6g} ({delta * 100.0:+.1f}% < "
                    f"-{tolerance * 100.0:.0f}%)")
            rows.append((name, key, base_value, value, status))

    print(f"perf trajectory vs {baseline_dir} "
          f"(tolerance {tolerance * 100.0:.0f}%):", file=out)
    width = max((len(r[1]) for r in rows), default=10)
    for name, key, base_value, value, status in rows:
        base_text = f"{base_value:.6g}" if base_value is not None else "-"
        value_text = f"{value:.6g}" if value is not None else "-"
        delta_text = "-"
        if base_value and value is not None and base_value > 0:
            delta_text = f"{(value - base_value) / base_value * 100.0:+.1f}%"
        print(f"  {name:28s} {key:{width}s} "
              f"{base_text:>12s} -> {value_text:>12s}  {delta_text:>8s}  "
              f"{status}", file=out)
    return regressions, rows


def update(current_dir, baseline_dir):
    names = bench_files(current_dir)
    if not names:
        print(f"check_bench: no BENCH_*.json in {current_dir}",
              file=sys.stderr)
        sys.exit(2)
    os.makedirs(baseline_dir, exist_ok=True)
    for name in names:
        flat = load_flat_json(os.path.join(current_dir, name))
        gated = {k: v for k, v in sorted(flat.items()) if is_gated_key(k)}
        if not gated:
            continue
        path = os.path.join(baseline_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(gated, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"check_bench: wrote {path} ({len(gated)} gated keys)")


def self_test():
    """The gate must trip on an injected regression and pass on a clean run."""
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        baseline_dir = os.path.join(scratch, "baselines")
        current_dir = os.path.join(scratch, "current")
        os.makedirs(baseline_dir)
        os.makedirs(current_dir)
        baseline = {
            "BM_Ingest.bins_per_sec": 1000.0,
            "BM_WhatIf.delta_speedup": 20.0,
            "BM_Ingest.real_time_ms": 3.0,  # not gated
        }
        with open(os.path.join(baseline_dir, "BENCH_selftest.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(baseline, handle)

        sink = open(os.devnull, "w", encoding="utf-8")

        # Clean: everything within tolerance (times may drift freely).
        healthy = dict(baseline, **{"BM_Ingest.real_time_ms": 300.0})
        with open(os.path.join(current_dir, "BENCH_selftest.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(healthy, handle)
        regressions, _ = compare(current_dir, baseline_dir,
                                 DEFAULT_TOLERANCE, out=sink)
        if regressions:
            print("check_bench self-test: clean run flagged:", regressions,
                  file=sys.stderr)
            return 1

        # Injected: halve one rate — far beyond the default 25% tolerance.
        broken = dict(baseline, **{"BM_Ingest.bins_per_sec": 500.0})
        with open(os.path.join(current_dir, "BENCH_selftest.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(broken, handle)
        regressions, _ = compare(current_dir, baseline_dir,
                                 DEFAULT_TOLERANCE, out=sink)
        if not regressions:
            print("check_bench self-test: injected 2x regression passed the "
                  "gate", file=sys.stderr)
            return 1

        # A missing gated key must also trip it.
        del broken["BM_WhatIf.delta_speedup"]
        broken["BM_Ingest.bins_per_sec"] = 1000.0
        with open(os.path.join(current_dir, "BENCH_selftest.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(broken, handle)
        regressions, _ = compare(current_dir, baseline_dir,
                                 DEFAULT_TOLERANCE, out=sink)
        if not regressions:
            print("check_bench self-test: missing key passed the gate",
                  file=sys.stderr)
            return 1

    print("check_bench self-test passed "
          "(clean ok, injected regression and missing key both fail)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json throughput keys against baselines.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", metavar="DIR",
                      help="directory holding fresh BENCH_*.json files")
    mode.add_argument("--update", metavar="DIR",
                      help="regenerate baselines from DIR")
    mode.add_argument("--self-test", action="store_true",
                      help="verify the gate trips on an injected regression")
    parser.add_argument("--baselines", metavar="BDIR",
                        default=os.path.join(
                            os.path.dirname(os.path.dirname(
                                os.path.abspath(__file__))),
                            "bench", "baselines"),
                        help="baseline directory (default: bench/baselines)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default: 0.25)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.update:
        update(args.update, args.baselines)
        sys.exit(0)
    regressions, _ = compare(args.check, args.baselines, args.tolerance)
    if regressions:
        print("check_bench: PERF REGRESSION", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print("check_bench: all gated keys within tolerance")


if __name__ == "__main__":
    main()

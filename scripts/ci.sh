#!/usr/bin/env bash
# CI smoke gate: tier-1 verify (configure, build, ctest) plus the perf and
# figure binaries under RP_BENCH_FAST=1 so a regression in the bench harnesses
# is caught without paying paper-scale runtimes.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "=== configure ==="
cmake -B "$BUILD_DIR" -S .

echo "=== build ==="
cmake --build "$BUILD_DIR" -j

echo "=== tier-1 tests ==="
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "=== snapshot smoke (RP_BENCH_FAST=1) ==="
SNAP_DIR="$(mktemp -d)"
trap 'rm -rf "$SNAP_DIR"' EXIT
RPWORLD="$BUILD_DIR/examples/rpworld"
"$RPWORLD" save --fast --cache-dir "$SNAP_DIR" --out "$SNAP_DIR/world.rpsnap"
"$RPWORLD" info "$SNAP_DIR/world.rpsnap"
"$RPWORLD" verify "$SNAP_DIR/world.rpsnap"
# A rerun with the same config must load the cached snapshot, not rebuild.
"$RPWORLD" save --fast --cache-dir "$SNAP_DIR" | tee "$SNAP_DIR/rerun.log"
grep -q "cache hit" "$SNAP_DIR/rerun.log"
# The explicit save and the cache entry must describe identical worlds.
"$RPWORLD" diff "$SNAP_DIR/world.rpsnap" "$SNAP_DIR"/world-*.rpsnap

echo "=== obs smoke (rpstat metrics + trace) ==="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$SNAP_DIR" "$OBS_DIR"' EXIT
RP_SNAPSHOT_CACHE="$OBS_DIR/cache" "$BUILD_DIR/examples/rpstat" --fast \
  --json "$OBS_DIR/metrics.json" --trace "$OBS_DIR/trace.json" \
  > "$OBS_DIR/rpstat.log"
# Both exports must be well-formed JSON...
python3 -m json.tool "$OBS_DIR/metrics.json" > /dev/null
python3 -m json.tool "$OBS_DIR/trace.json" > /dev/null
# ...and the metrics must cover every instrumented layer.
for metric in rp.core.scenario.builds rp.pool.parallel_for.calls \
              rp.bgp.routes.computed rp.measure.probes.sent \
              rp.offload.greedy.steps rp.io.bytes_written; do
  grep -q "\"$metric\"" "$OBS_DIR/metrics.json"
  grep -q "$metric" "$OBS_DIR/rpstat.log"
done

echo "=== perf smoke (RP_BENCH_FAST=1) ==="
export RP_BENCH_FAST=1
export RP_BENCH_JSON_DIR="$OBS_DIR"
for bin in perf_io perf_net perf_topology perf_bgp perf_sim perf_offload; do
  echo "--- $bin ---"
  "$BUILD_DIR/bench/$bin" --benchmark_min_time=0.01
done
# The instrumented perf binaries must emit valid trajectory JSON.
python3 -m json.tool "$OBS_DIR/BENCH_perf_io.json" > /dev/null
python3 -m json.tool "$OBS_DIR/BENCH_perf_offload.json" > /dev/null

echo "=== figure harness smoke (RP_BENCH_FAST=1) ==="
for bin in table1_ixp_properties fig2_rtt_cdf fig9_remaining_transit; do
  echo "--- $bin ---"
  "$BUILD_DIR/bench/$bin" > /dev/null
done

echo "ci.sh: all gates passed"

#!/usr/bin/env bash
# CI matrix runner over the CMake presets (see CMakePresets.json).
#
#   scripts/ci.sh              # release lane: tier-1 + every smoke
#   scripts/ci.sh asan-ubsan   # ASan+UBSan lane: ctest + fault smoke
#   scripts/ci.sh tsan         # TSan lane: ctest + RP_THREADS=8 reruns
#   scripts/ci.sh all          # all three lanes, in that order
#
# Every lane configures and builds its own tree under build/<preset>, so the
# lanes never contaminate each other. Smokes run the example binaries under
# RP_BENCH_FAST=1 / --fast so a full matrix stays in fast-mode runtime.
set -euo pipefail

cd "$(dirname "$0")/.."

# One EXIT trap for the whole script. Registering a second `trap ... EXIT`
# silently replaces the first (an earlier revision leaked its snapshot dir
# exactly that way), so temp dirs are collected here and removed once.
TEMP_DIRS=()
DAEMON_PIDS=()
cleanup() {
  local pid
  for pid in ${DAEMON_PIDS[@]+"${DAEMON_PIDS[@]}"}; do
    kill "$pid" 2> /dev/null || true
  done
  rm -rf ${TEMP_DIRS[@]+"${TEMP_DIRS[@]}"}
}
trap cleanup EXIT
tmpdir() {
  local d
  d="$(mktemp -d)"
  TEMP_DIRS+=("$d")
  echo "$d"
}

# Smoke temp dirs are wiped on exit; when RP_CI_ARTIFACTS is set (the GitHub
# workflow points it at an upload dir), copy the named files out first so the
# perf trajectories and traces survive as build artifacts.
export_artifacts() {
  local src="$1"
  shift
  [[ -n "${RP_CI_ARTIFACTS:-}" ]] || return 0
  mkdir -p "$RP_CI_ARTIFACTS"
  local pattern
  for pattern in "$@"; do
    cp -f "$src"/$pattern "$RP_CI_ARTIFACTS"/ 2> /dev/null || true
  done
}

# Asserts that `rpworld ...` exits with $1 (under set -e).
expect_rc() {
  local want="$1" rc=0
  shift
  "$@" > /dev/null 2>&1 || rc=$?
  if [[ "$rc" != "$want" ]]; then
    echo "FAIL: expected exit $want, got $rc: $*" >&2
    return 1
  fi
}

# Every RP_* environment variable the binaries read. The sed strips the
# getenv("...") / env_size("...", ...) wrapper around each match (env_size is
# the serve daemon's numeric-env helper — it forwards to getenv).
env_vars_read() {
  grep -rhoE '(getenv|env_size)\("RP_[A-Z_]+"' src examples bench |
    sed -e 's/.*("//' -e 's/"$//' | sort -u
}

# Fails unless every env var from env_vars_read has a row in the given
# README's environment-variable reference table (rows look like `| \`RP_X\` |`).
doc_lint_against() {
  local readme="$1" var bad=0
  for var in $(env_vars_read); do
    if ! grep -qE "^\| +\`$var\`" "$readme"; then
      echo "doc-lint: $var is read by the code but has no row in $readme" >&2
      bad=1
    fi
  done
  return "$bad"
}

doc_lint() {
  echo "=== doc lint (RP_* env reads vs README reference table) ==="
  doc_lint_against README.md
  # Self-test: the lint must demonstrably fail when a documented row is
  # removed, otherwise a broken grep would fake a green check forever.
  local scratch
  scratch="$(tmpdir)"
  grep -v '`RP_FAULT`' README.md > "$scratch/README-broken.md"
  if doc_lint_against "$scratch/README-broken.md" 2> /dev/null; then
    echo "FAIL: doc lint did not flag a missing RP_FAULT row" >&2
    return 1
  fi
  echo "doc lint passed (self-test: a removed row fails the lint)"
}

configure_and_build() {
  local preset="$1"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j
}

run_ctest() {
  local preset="$1"
  echo "=== [$preset] tier-1 tests ==="
  ctest --preset "$preset" -j
}

# rpworld end to end: save/info/verify/diff on a healthy snapshot, cache-hit
# on rerun, and the documented per-class exit codes on damaged ones
# (0 OK, 1 differ, 3 io, 4 corrupt, 5 truncated, 6 future version).
snapshot_smoke() {
  local build="$1"
  echo "=== [$build] snapshot smoke ==="
  local dir rpworld="build/$build/examples/rpworld"
  dir="$(tmpdir)"
  "$rpworld" save --fast --cache-dir "$dir" --out "$dir/world.rpsnap"
  "$rpworld" info "$dir/world.rpsnap"
  "$rpworld" verify "$dir/world.rpsnap"
  # A rerun with the same config must load the cached snapshot, not rebuild.
  "$rpworld" save --fast --cache-dir "$dir" | tee "$dir/rerun.log"
  grep -q "cache hit" "$dir/rerun.log"
  # The explicit save and the cache entry must describe identical worlds.
  "$rpworld" diff "$dir/world.rpsnap" "$dir"/world-*.rpsnap

  echo "--- rpworld exit-code classes ---"
  # Corrupt: flip a byte mid-file.
  python3 - "$dir/world.rpsnap" "$dir/corrupt.rpsnap" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0x40
open(sys.argv[2], 'wb').write(data)
EOF
  expect_rc 4 "$rpworld" verify "$dir/corrupt.rpsnap"
  # Truncated: drop the tail.
  python3 - "$dir/world.rpsnap" "$dir/trunc.rpsnap" <<'EOF'
import sys
data = open(sys.argv[1], 'rb').read()
open(sys.argv[2], 'wb').write(data[: len(data) * 3 // 4])
EOF
  expect_rc 5 "$rpworld" verify "$dir/trunc.rpsnap"
  # Future format version: bump the version field after the 8-byte magic.
  python3 - "$dir/world.rpsnap" "$dir/future.rpsnap" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[8] += 1
open(sys.argv[2], 'wb').write(data)
EOF
  expect_rc 6 "$rpworld" verify "$dir/future.rpsnap"
  # Io: the file is not there.
  expect_rc 3 "$rpworld" verify "$dir/missing.rpsnap"
  # diff classifies a damaged operand the same way verify does...
  expect_rc 5 "$rpworld" diff "$dir/world.rpsnap" "$dir/trunc.rpsnap"
  expect_rc 6 "$rpworld" diff "$dir/world.rpsnap" "$dir/future.rpsnap"
  # ...and a healthy pair still reports identical worlds.
  expect_rc 0 "$rpworld" diff "$dir/world.rpsnap" "$dir/world.rpsnap"
}

obs_smoke() {
  local build="$1"
  echo "=== [$build] obs smoke (rpstat metrics + trace) ==="
  local dir
  dir="$(tmpdir)"
  RP_SNAPSHOT_CACHE="$dir/cache" "build/$build/examples/rpstat" --fast \
    --json "$dir/metrics.json" --trace "$dir/trace.json" \
    > "$dir/rpstat.log"
  # Both exports must be well-formed JSON...
  python3 -m json.tool "$dir/metrics.json" > /dev/null
  python3 -m json.tool "$dir/trace.json" > /dev/null
  # ...and the metrics must cover every instrumented layer.
  local metric
  for metric in rp.core.scenario.builds rp.pool.parallel_for.calls \
                rp.bgp.routes.computed rp.measure.probes.sent \
                rp.offload.greedy.steps rp.io.bytes_written; do
    grep -q "\"$metric\"" "$dir/metrics.json"
    grep -q "$metric" "$dir/rpstat.log"
  done
  export_artifacts "$dir" metrics.json trace.json
}

# Graceful degradation end to end: with the first snapshot read injected to
# fail, the pipeline must still succeed — the cache falls back to a clean
# rebuild, the absorbed failure shows up in rp.io.fallbacks / rp.fault.*,
# and the rewritten cache entry verifies clean.
fault_smoke() {
  local build="$1"
  echo "=== [$build] fault smoke (RP_FAULT=io.read:nth=1) ==="
  local dir
  dir="$(tmpdir)"
  # Warm the cache so the armed run exercises the load-then-fallback path.
  RP_SNAPSHOT_CACHE="$dir/cache" "build/$build/examples/rpstat" --fast \
    > /dev/null
  RP_FAULT=io.read:nth=1 RP_SNAPSHOT_CACHE="$dir/cache" \
    "build/$build/examples/rpstat" --fast --json "$dir/metrics.json" \
    > "$dir/rpstat.log"
  python3 - "$dir/metrics.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
for name in ("rp.io.fallbacks", "rp.fault.fires", "rp.fault.fires.io.read"):
    assert metrics.get(name, 0) >= 1, (name, metrics)
EOF
  # The fallback rewrote the cache entry cleanly.
  "build/$build/examples/rpworld" verify "$dir/cache/"world-*.rpsnap
}

perf_smoke() {
  local build="$1"
  echo "=== [$build] perf smoke (RP_BENCH_FAST=1) ==="
  local dir bin
  dir="$(tmpdir)"
  for bin in perf_io perf_net perf_topology perf_bgp perf_sim perf_offload \
             perf_stream; do
    echo "--- $bin ---"
    RP_BENCH_FAST=1 RP_BENCH_JSON_DIR="$dir" \
      "build/$build/bench/$bin" --benchmark_min_time=0.01
  done
  # The instrumented perf binaries must emit valid trajectory JSON.
  python3 -m json.tool "$dir/BENCH_perf_io.json" > /dev/null
  python3 -m json.tool "$dir/BENCH_perf_offload.json" > /dev/null
  # The event-engine trajectory must carry the head-to-head throughput keys:
  # an events_per_sec rate for both engines in every phase, and the sharded
  # all-IXP campaign's wall-time + scale counters.
  python3 - "$dir/BENCH_perf_sim.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
for phase in ("EventSchedule", "EventRun", "EventSteadyState"):
    for engine in ("Slab", "Baseline"):
        key = f"BM_{phase}{engine}/100000.events_per_sec"
        assert bench.get(key, 0) > 0, (key, sorted(bench))
for key in ("BM_SmallIxpCampaign.events_per_sec",
            "BM_AllIxpCampaign/1/iterations:1.events_per_sec",
            "BM_AllIxpCampaign/1/iterations:1.campaign_wall_s",
            "BM_AllIxpCampaign/1/iterations:1.ixps",
            "BM_AllIxpCampaign/1/iterations:1.interfaces"):
    assert bench.get(key, 0) > 0, (key, sorted(bench))
EOF
  # The streaming trajectory must carry the ingest rate and the incremental
  # what-if's head-to-head speedup over the batch recompute.
  python3 - "$dir/BENCH_perf_stream.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("BM_StreamIngestBins.bins_per_sec",
            "BM_BinLogReplay.bins_per_sec",
            "BM_WhatIfDeltaVsRecompute.delta_speedup",
            "BM_WhatIfDeltaVsRecompute.whatifs_per_sec",
            "BM_IncrementalGreedy.steps"):
    assert bench.get(key, 0) > 0, (key, sorted(bench))
EOF
  # The epoch-overlay gate is a standalone arm-vs-arm harness (no
  # google-benchmark flags); it fails itself when the overlay is not at
  # least 5x faster than per-epoch rebuilds.
  echo "--- perf_evolve ---"
  RP_BENCH_FAST=1 RP_BENCH_JSON_DIR="$dir" "build/$build/bench/perf_evolve"
  python3 - "$dir/BENCH_perf_evolve.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("epochs", "events", "base_build_ms", "overlay_ms", "rebuild_ms",
            "epochs_per_sec", "overlay_speedup"):
    assert bench.get(key, 0) > 0, (key, sorted(bench))
assert bench["epochs"] >= 20, bench
assert bench["overlay_speedup"] >= 5.0, bench
EOF
  # Perf-trajectory gate: every throughput key against the committed
  # baselines. The gate must first prove it trips on an injected regression;
  # the tolerance is generous because the smoke runs at min_time=0.01 on
  # shared runners (override CHECK_BENCH_TOL to tighten locally).
  python3 scripts/check_bench.py --self-test
  python3 scripts/check_bench.py --check "$dir" \
    --tolerance "${CHECK_BENCH_TOL:-0.6}"
  export_artifacts "$dir" 'BENCH_*.json'
}

# The query daemon end to end: ephemeral port, rpq queries against a warm
# fast world, a poisoned frame the daemon must survive, protocol-driven
# shutdown, and the perf_serve load-generator gate (DESIGN.md §14).
serve_smoke() {
  local build="$1"
  echo "=== [$build] serve smoke (rpserve-daemon + rpq + perf_serve) ==="
  local dir rpq="build/$build/examples/rpq"
  dir="$(tmpdir)"
  RP_SNAPSHOT_CACHE="$dir/cache" "build/$build/examples/rpserve-daemon" \
    --port 0 --port-file "$dir/port" > "$dir/daemon.log" &
  local daemon_pid=$!
  DAEMON_PIDS+=("$daemon_pid")
  local tries=0
  until [[ -s "$dir/port" ]]; do
    if ((++tries > 100)); then
      echo "FAIL: daemon never wrote its port file" >&2
      cat "$dir/daemon.log" >&2
      return 1
    fi
    sleep 0.1
  done
  local port
  port="$(cat "$dir/port")"

  "$rpq" --port "$port" ping ci-token | grep -q "token = ci-token"
  "$rpq" --port "$port" --fast world-info | tee "$dir/info.log" |
    grep -q "world.digest"
  grep -q "world.ases" "$dir/info.log"
  "$rpq" --port "$port" --fast viability | grep -q "viability.decay"
  "$rpq" --port "$port" --fast offload-curve --steps 3 |
    grep -q "offload.steps = 3"

  # The stats surface: --json must be machine-parseable and carry the
  # load-bearing keys (occupancy, per-world memory, per-type latencies)...
  "$rpq" --port "$port" stats --json > "$dir/stats.json"
  python3 - "$dir/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
for key in ("stats.uptime_s", "stats.completed", "stats.ring_capacity",
            "queue.depth", "queue.capacity", "queue.high_water",
            "pool.capacity", "pool.resident", "pool.worlds",
            "pool.world.0.digest", "pool.world.0.resident_bytes",
            "req.ping.count", "req.ping.p50_us", "req.ping.p99_us",
            "ts.samples", "ts.interval_ms"):
    assert key in stats, (key, sorted(stats))
assert stats["req.ping.count"] >= 1, stats
assert stats["pool.world.0.resident_bytes"] > 0, stats
EOF
  # ...--prom must be well-formed text exposition: TYPE line + matching
  # numeric sample, nothing else, and only numeric rows exported.
  "$rpq" --port "$port" stats --prom > "$dir/stats.prom"
  python3 - "$dir/stats.prom" <<'EOF'
import re, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
assert lines and len(lines) % 2 == 0, "exposition must pair TYPE+sample"
for i in range(0, len(lines), 2):
    m = re.fullmatch(r"# TYPE (rp_[a-zA-Z0-9_:]+) gauge", lines[i])
    assert m, lines[i]
    sample = re.fullmatch(r"([a-zA-Z0-9_:]+) (\S+)", lines[i + 1])
    assert sample and sample.group(1) == m.group(1), lines[i + 1]
    float(sample.group(2))  # every exported value parses as a number
text = open(sys.argv[1]).read()
for needle in ("rp_queue_capacity", "rp_stats_completed"):
    assert needle in text, needle
assert "digest" not in text, "non-numeric rows must not be exported"
EOF
  # ...and `rpq top` renders live request rates (the polls themselves
  # complete requests, so the second refresh must show a non-zero rate).
  "$rpq" --port "$port" top --interval 200 --count 2 > "$dir/top.log"
  grep -q "queue" "$dir/top.log"
  python3 - "$dir/top.log" <<'EOF'
import re, sys
rates = [float(m.group(1)) for m in
         re.finditer(r"([0-9.]+) req/s", open(sys.argv[1]).read())]
assert len(rates) == 2, rates
assert rates[-1] > 0, rates
EOF

  # An unknown config field is a soft error (exit 1), not a dead daemon.
  expect_rc 1 "$rpq" --port "$port" --fast --set no.such.field=1 world-info
  # A poisoned length prefix kills that one connection (rpq badframe exits 0
  # when the daemon hangs up on it) — and the daemon keeps serving.
  "$rpq" --port "$port" badframe
  "$rpq" --port "$port" ping still-alive | grep -q "token = still-alive"
  "$rpq" --port "$port" shutdown
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [[ "$rc" != 0 ]]; then
    echo "FAIL: daemon exited $rc after rpq shutdown" >&2
    cat "$dir/daemon.log" >&2
    return 1
  fi

  echo "--- perf_serve (RP_BENCH_FAST=1) ---"
  RP_BENCH_FAST=1 RP_BENCH_JSON_DIR="$dir" RP_SNAPSHOT_CACHE="$dir/cache" \
    "build/$build/bench/perf_serve"
  python3 - "$dir/BENCH_perf_serve.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("requests_per_sec", "p50_us", "p99_us", "clients",
            "requests_total", "batch_occupancy_mean", "batch_occupancy_max",
            "phase_connect_s", "phase_issue_s", "phase_drain_s"):
    assert bench.get(key, 0) > 0, (key, sorted(bench))
assert bench.get("requests_failed", 1) == 0, bench
assert bench["p50_us"] <= bench["p99_us"], bench
EOF
  # The daemon's throughput also feeds the perf-trajectory gate.
  python3 scripts/check_bench.py --check "$dir" \
    --tolerance "${CHECK_BENCH_TOL:-0.6}"
  export_artifacts "$dir" 'BENCH_*.json' daemon.log
}

figure_smoke() {
  local build="$1"
  echo "=== [$build] figure harness smoke (RP_BENCH_FAST=1) ==="
  local bin
  for bin in table1_ixp_properties fig2_rtt_cdf fig9_remaining_transit; do
    echo "--- $bin ---"
    RP_BENCH_FAST=1 "build/$build/bench/$bin" > /dev/null
  done
}

# rpsweep end to end: the 24-run grid (6 econ.b x 4 econ.h on one fast
# world) runs uninterrupted at RP_THREADS=1, then again at RP_THREADS=8 with
# a fault injected at the 9th run, is resumed, and the two results tables
# compared byte for byte — the resume + determinism contract of DESIGN.md §12.
sweep_smoke() {
  local build="$1"
  echo "=== [$build] sweep smoke (rpsweep run/kill/resume byte-identity) ==="
  local dir rpsweep="build/$build/examples/rpsweep"
  dir="$(tmpdir)"
  cat > "$dir/grid.spec" <<'EOF'
name ci-grid
group 4
steps 20
fast 1
base seed 11
axis econ.b lin:0.2:1.2:6
axis econ.h 0.002 0.006 0.01 0.016
EOF
  "$rpsweep" plan "$dir/grid.spec" --dir "$dir/a" > "$dir/plan.log"
  grep -q "24 runs" "$dir/plan.log"
  # Reference: single-threaded, uninterrupted.
  RP_THREADS=1 RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpsweep" run "$dir/grid.spec" --dir "$dir/a" > /dev/null
  # The same grid at 8 threads, killed mid-sweep at the 9th run...
  expect_rc 1 env RP_THREADS=8 RP_FAULT=sweep.run:nth=9 \
    RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpsweep" run "$dir/grid.spec" --dir "$dir/b"
  # ...resumes from the surviving completion records...
  RP_THREADS=8 RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpsweep" resume --dir "$dir/b" > "$dir/resume.log"
  grep -q "skipped via completion records" "$dir/resume.log"
  # ...to byte-identical results.
  cmp "$dir/a/results.csv" "$dir/b/results.csv"
  cmp "$dir/a/results.json" "$dir/b/results.json"
}

# rpevolve end to end: the decade example timeline replays over its fast
# base world, the first and last epoch snapshots must describe different
# worlds (membership grew), then the same replay is killed mid-timeline by an
# evolve.apply fault and resumed to byte-identical records and snapshots —
# the overlay determinism contract of DESIGN.md §17.
evolve_smoke() {
  local build="$1"
  echo "=== [$build] evolve smoke (rpevolve replay/kill/resume byte-identity) ==="
  local dir rpevolve="build/$build/examples/rpevolve"
  local rpworld="build/$build/examples/rpworld"
  dir="$(tmpdir)"
  "$rpevolve" plan examples/timelines/decade.timeline --dir "$dir/a" \
    > "$dir/plan.log"
  grep -q "8 epochs, 27 events" "$dir/plan.log"
  RP_THREADS=1 RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpevolve" replay examples/timelines/decade.timeline --dir "$dir/a" \
    > /dev/null
  # A decade of churn: epoch 0 and epoch 7 are different worlds...
  expect_rc 1 "$rpworld" diff "$dir/a/epochs/epoch-0000.rpsnap" \
    "$dir/a/epochs/epoch-0007.rpsnap"
  # ...and the epoch diff shows membership growth (a positive interface
  # delta; the new-ixp epoch also added an exchange).
  "$rpevolve" diff --dir "$dir/a" 0 7 > "$dir/diff.log"
  grep -qE 'ixps .*\(\+1\)' "$dir/diff.log"
  grep -qE 'interfaces .*\(\+[1-9]' "$dir/diff.log"
  # The same replay at 8 threads, killed at the 11th applied event...
  expect_rc 1 env RP_THREADS=8 RP_FAULT=evolve.apply:nth=11 \
    RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpevolve" replay examples/timelines/decade.timeline --dir "$dir/b"
  # ...resumes from the surviving epoch records...
  RP_THREADS=8 RP_SNAPSHOT_CACHE="$dir/cache" \
    "$rpevolve" resume --dir "$dir/b" > "$dir/resume.log"
  grep -q "skipped via completion records" "$dir/resume.log"
  # ...to byte-identical results and per-epoch snapshots.
  cmp "$dir/a/results.csv" "$dir/b/results.csv"
  cmp "$dir/a/results.json" "$dir/b/results.json"
  local k
  for k in 0000 0003 0007; do
    cmp "$dir/a/epochs/epoch-$k.rpsnap" "$dir/b/epochs/epoch-$k.rpsnap"
  done
}

# rpstream end to end: a 400-bin fast-world flow log ingested uninterrupted
# at RP_THREADS=1 (the reference), then again at 8 threads killed by a
# stream.bin fault at the 300th frame (two checkpoints survive), resumed,
# and the %.17g summaries — billing p95s, live offload, greedy curve —
# compared byte for byte: the streaming determinism contract of DESIGN.md §16.
stream_smoke() {
  local build="$1"
  echo "=== [$build] stream smoke (rpstream ingest/kill/resume byte-identity) ==="
  local dir rpstream="build/$build/examples/rpstream"
  dir="$(tmpdir)"
  "$rpstream" log --fast --span-days 2 --cache-dir "$dir/cache" \
    --out "$dir/bins.rpsnap" --bins 400 2> /dev/null
  # Reference: single-threaded, uninterrupted.
  RP_THREADS=1 "$rpstream" ingest --fast --span-days 2 \
    --cache-dir "$dir/cache" --log "$dir/bins.rpsnap" \
    > "$dir/full.txt" 2> /dev/null
  # The same log at 8 threads, killed mid-ingest at the 300th frame...
  expect_rc 9 env RP_THREADS=8 RP_FAULT=stream.bin:nth=300 \
    "$rpstream" ingest --fast --span-days 2 --cache-dir "$dir/cache" \
    --log "$dir/bins.rpsnap" --checkpoint "$dir/ckpt.rpsnap" --every 100
  # ...resumes from the last checkpoint (bin 200)...
  RP_THREADS=8 "$rpstream" ingest --fast --span-days 2 \
    --cache-dir "$dir/cache" --log "$dir/bins.rpsnap" \
    --checkpoint "$dir/ckpt.rpsnap" --resume \
    > "$dir/resumed.txt" 2> "$dir/resume.log"
  grep -q "resumed at bin 200" "$dir/resume.log"
  # ...to a byte-identical summary.
  cmp "$dir/full.txt" "$dir/resumed.txt"
}

# The concurrency-sensitive suites again at a fixed high thread count, so the
# TSan lane actually exercises contended pool/metrics/fault paths (the default
# pool sizes itself to the machine and may be serial on small runners).
tsan_thread_stress() {
  local build="$1"
  echo "=== [$build] RP_THREADS=8 reruns (obs, pool, fault, serve, stream, evolve, campaigns) ==="
  local suite
  for suite in test_obs test_util test_fault test_serve test_stream \
               test_evolve; do
    echo "--- $suite ---"
    RP_THREADS=8 "build/$build/tests/$suite" --gtest_brief=1
  done
  # The sharded campaign fan-out again with real contention: 8 workers over
  # 8 shards must still produce byte-identical measurements.
  echo "--- test_measure (sharded campaigns) ---"
  RP_THREADS=8 RP_SIM_SHARDS=8 "build/$build/tests/test_measure" \
    --gtest_brief=1
}

run_lane() {
  local preset="$1"
  configure_and_build "$preset"
  run_ctest "$preset"
  case "$preset" in
    release)
      snapshot_smoke "$preset"
      obs_smoke "$preset"
      fault_smoke "$preset"
      sweep_smoke "$preset"
      evolve_smoke "$preset"
      stream_smoke "$preset"
      serve_smoke "$preset"
      perf_smoke "$preset"
      figure_smoke "$preset"
      ;;
    asan-ubsan)
      fault_smoke "$preset"
      ;;
    tsan)
      fault_smoke "$preset"
      tsan_thread_stress "$preset"
      ;;
  esac
  echo "ci.sh: lane '$preset' passed"
}

LANE="${1:-release}"
# The doc lint needs no build; run it up front so every lane invocation
# checks the docs before spending minutes compiling.
doc_lint
case "$LANE" in
  release|asan-ubsan|tsan)
    run_lane "$LANE"
    ;;
  all)
    for preset in release asan-ubsan tsan; do
      run_lane "$preset"
    done
    ;;
  *)
    echo "usage: scripts/ci.sh [release|asan-ubsan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested lanes passed"

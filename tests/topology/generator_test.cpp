#include "topology/generator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "bgp/route_computer.hpp"

namespace rp::topology {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig config;
  config.tier1_count = 4;
  config.tier2_count = 12;
  config.access_count = 40;
  config.content_count = 15;
  config.cdn_count = 4;
  config.nren_count = 5;
  config.enterprise_count = 30;
  return config;
}

TEST(Generator, ProducesRequestedClassCounts) {
  util::Rng rng(1);
  const AsGraph g = generate_topology(small_config(), rng);
  std::map<AsClass, int> counts;
  for (const auto& node : g.nodes()) ++counts[node.cls];
  EXPECT_EQ(counts[AsClass::kTier1], 4);
  EXPECT_EQ(counts[AsClass::kTier2], 12);
  EXPECT_EQ(counts[AsClass::kAccess], 40);
  EXPECT_EQ(counts[AsClass::kContent], 15);
  EXPECT_EQ(counts[AsClass::kCdn], 4);
  EXPECT_EQ(counts[AsClass::kNren], 6);  // 5 + the backbone.
  EXPECT_EQ(counts[AsClass::kEnterprise], 30);
}

TEST(Generator, ResultValidates) {
  util::Rng rng(2);
  const AsGraph g = generate_topology(small_config(), rng);
  EXPECT_FALSE(g.validate().has_value());
}

TEST(Generator, Tier1sFormPeeringCliqueAndAreProviderFree) {
  util::Rng rng(3);
  const AsGraph g = generate_topology(small_config(), rng);
  std::vector<net::Asn> tier1s;
  for (const auto& node : g.nodes())
    if (node.cls == AsClass::kTier1) tier1s.push_back(node.asn);
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    EXPECT_TRUE(g.providers_of(tier1s[i]).empty());
    for (std::size_t j = i + 1; j < tier1s.size(); ++j)
      EXPECT_TRUE(g.is_peering(tier1s[i], tier1s[j]));
  }
}

TEST(Generator, EveryNonTier1HasAProvider) {
  util::Rng rng(4);
  const AsGraph g = generate_topology(small_config(), rng);
  for (const auto& node : g.nodes()) {
    if (node.cls == AsClass::kTier1) continue;
    EXPECT_FALSE(g.providers_of(node.asn).empty()) << node.name;
  }
}

TEST(Generator, EveryAsReachableUnderValleyFreeRouting) {
  // Global reachability: a tier-1's valley-free routes must reach every AS,
  // and every AS must reach a tier-1.
  util::Rng rng(5);
  const AsGraph g = generate_topology(small_config(), rng);
  const bgp::RouteComputer computer(g);
  net::Asn tier1;
  for (const auto& node : g.nodes())
    if (node.cls == AsClass::kTier1) {
      tier1 = node.asn;
      break;
    }
  const auto routes = computer.routes_to(tier1);
  for (const auto& node : g.nodes())
    EXPECT_TRUE(routes.reachable_from(node.asn)) << node.name;
}

TEST(Generator, PrefixesAreDisjoint) {
  util::Rng rng(6);
  const AsGraph g = generate_topology(small_config(), rng);
  std::vector<net::Ipv4Prefix> all;
  for (const auto& node : g.nodes())
    for (const auto& p : node.prefixes) all.push_back(p);
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_FALSE(all[i].covers(all[j]) || all[j].covers(all[i]))
          << all[i].to_string() << " vs " << all[j].to_string();
}

TEST(Generator, AccessNetworksHoldMostAddressSpace) {
  util::Rng rng(7);
  const AsGraph g = generate_topology(small_config(), rng);
  std::uint64_t access = 0, enterprise = 0;
  for (const auto& node : g.nodes()) {
    if (node.cls == AsClass::kAccess) access += node.address_count();
    if (node.cls == AsClass::kEnterprise) enterprise += node.address_count();
  }
  EXPECT_GT(access, enterprise * 10);
}

TEST(Generator, NrenBackbonePeersWithAllNrens) {
  util::Rng rng(8);
  const AsGraph g = generate_topology(small_config(), rng);
  net::Asn backbone;
  for (const auto& node : g.nodes())
    if (node.name == kNrenBackboneName) backbone = node.asn;
  ASSERT_TRUE(backbone.is_valid());
  for (const auto& node : g.nodes()) {
    if (node.cls != AsClass::kNren || node.asn == backbone) continue;
    EXPECT_TRUE(g.is_peering(backbone, node.asn)) << node.name;
  }
}

TEST(Generator, NrenBackboneCanBeDisabled) {
  GeneratorConfig config = small_config();
  config.nren_backbone = false;
  util::Rng rng(9);
  const AsGraph g = generate_topology(config, rng);
  for (const auto& node : g.nodes())
    EXPECT_NE(node.name, kNrenBackboneName);
}

TEST(Generator, DeterministicForSameSeed) {
  util::Rng rng1(10), rng2(10);
  const AsGraph a = generate_topology(small_config(), rng1);
  const AsGraph b = generate_topology(small_config(), rng2);
  ASSERT_EQ(a.as_count(), b.as_count());
  EXPECT_EQ(a.transit_link_count(), b.transit_link_count());
  EXPECT_EQ(a.peering_link_count(), b.peering_link_count());
  for (std::size_t i = 0; i < a.as_count(); ++i) {
    EXPECT_EQ(a.nodes()[i].asn, b.nodes()[i].asn);
    EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
    EXPECT_EQ(a.nodes()[i].policy, b.nodes()[i].policy);
    EXPECT_DOUBLE_EQ(a.nodes()[i].traffic_scale, b.nodes()[i].traffic_scale);
  }
}

TEST(Generator, TrafficScalesAreHeavyTailed) {
  util::Rng rng(11);
  const AsGraph g = generate_topology(small_config(), rng);
  double max_scale = 0.0, total = 0.0;
  for (const auto& node : g.nodes()) {
    max_scale = std::max(max_scale, node.traffic_scale);
    total += node.traffic_scale;
  }
  // The single most popular network should carry a macroscopic share.
  EXPECT_GT(max_scale / total, 0.05);
}

TEST(Generator, Tier1sAreRestrictive) {
  util::Rng rng(12);
  const AsGraph g = generate_topology(small_config(), rng);
  for (const auto& node : g.nodes())
    if (node.cls == AsClass::kTier1) {
      EXPECT_EQ(node.policy, PeeringPolicy::kRestrictive);
    }
}

TEST(Generator, RequiresATier1) {
  GeneratorConfig config = small_config();
  config.tier1_count = 0;
  util::Rng rng(13);
  EXPECT_THROW(generate_topology(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rp::topology

#include "topology/as_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/rng.hpp"

namespace rp::topology {
namespace {

AsNode make_node(std::uint32_t asn, AsClass cls = AsClass::kEnterprise) {
  AsNode node;
  node.asn = net::Asn{asn};
  node.name = "AS" + std::to_string(asn);
  node.cls = cls;
  return node;
}

TEST(AsGraph, AddAndLookup) {
  AsGraph g;
  g.add_as(make_node(10));
  g.add_as(make_node(20));
  EXPECT_EQ(g.as_count(), 2u);
  EXPECT_TRUE(g.contains(net::Asn{10}));
  EXPECT_FALSE(g.contains(net::Asn{30}));
  EXPECT_EQ(g.node(net::Asn{20}).name, "AS20");
  EXPECT_THROW(g.node(net::Asn{30}), std::out_of_range);
}

TEST(AsGraph, RejectsDuplicatesAndInvalidAsn) {
  AsGraph g;
  g.add_as(make_node(10));
  EXPECT_THROW(g.add_as(make_node(10)), std::invalid_argument);
  EXPECT_THROW(g.add_as(make_node(0)), std::invalid_argument);
}

TEST(AsGraph, TransitAdjacency) {
  AsGraph g;
  g.add_as(make_node(1));
  g.add_as(make_node(2));
  g.add_transit(net::Asn{1}, net::Asn{2});
  EXPECT_TRUE(g.is_transit(net::Asn{1}, net::Asn{2}));
  EXPECT_FALSE(g.is_transit(net::Asn{2}, net::Asn{1}));
  ASSERT_EQ(g.customers_of(net::Asn{1}).size(), 1u);
  EXPECT_EQ(g.customers_of(net::Asn{1})[0], net::Asn{2});
  ASSERT_EQ(g.providers_of(net::Asn{2}).size(), 1u);
  EXPECT_EQ(g.providers_of(net::Asn{2})[0], net::Asn{1});
  EXPECT_EQ(g.transit_link_count(), 1u);
}

TEST(AsGraph, PeeringAdjacencySymmetric) {
  AsGraph g;
  g.add_as(make_node(1));
  g.add_as(make_node(2));
  g.add_peering(net::Asn{1}, net::Asn{2});
  EXPECT_TRUE(g.is_peering(net::Asn{1}, net::Asn{2}));
  EXPECT_TRUE(g.is_peering(net::Asn{2}, net::Asn{1}));
  EXPECT_EQ(g.peering_link_count(), 1u);
}

TEST(AsGraph, RejectsConflictingRelationships) {
  AsGraph g;
  g.add_as(make_node(1));
  g.add_as(make_node(2));
  g.add_transit(net::Asn{1}, net::Asn{2});
  EXPECT_THROW(g.add_transit(net::Asn{1}, net::Asn{2}), std::invalid_argument);
  EXPECT_THROW(g.add_transit(net::Asn{2}, net::Asn{1}), std::invalid_argument);
  EXPECT_THROW(g.add_peering(net::Asn{1}, net::Asn{2}), std::invalid_argument);
  EXPECT_THROW(g.add_transit(net::Asn{1}, net::Asn{1}), std::invalid_argument);
  EXPECT_THROW(g.add_peering(net::Asn{2}, net::Asn{2}), std::invalid_argument);
}

TEST(AsGraph, CustomerConeIncludesIndirectCustomers) {
  // 1 -> 2 -> 3, 1 -> 4; cone(1) = {1,2,3,4}, cone(2) = {2,3}.
  AsGraph g;
  for (std::uint32_t asn : {1, 2, 3, 4}) g.add_as(make_node(asn));
  g.add_transit(net::Asn{1}, net::Asn{2});
  g.add_transit(net::Asn{2}, net::Asn{3});
  g.add_transit(net::Asn{1}, net::Asn{4});
  auto cone1 = g.customer_cone(net::Asn{1});
  EXPECT_EQ(cone1.size(), 4u);
  EXPECT_EQ(cone1.front(), net::Asn{1});  // Root first.
  auto cone2 = g.customer_cone(net::Asn{2});
  EXPECT_EQ(cone2.size(), 2u);
  auto cone3 = g.customer_cone(net::Asn{3});
  EXPECT_EQ(cone3.size(), 1u);
}

TEST(AsGraph, CustomerConeHandlesMultihoming) {
  // 3 buys from both 1 and 2; cones overlap but each lists 3 once.
  AsGraph g;
  for (std::uint32_t asn : {1, 2, 3}) g.add_as(make_node(asn));
  g.add_transit(net::Asn{1}, net::Asn{3});
  g.add_transit(net::Asn{2}, net::Asn{3});
  EXPECT_EQ(g.customer_cone(net::Asn{1}).size(), 2u);
  EXPECT_EQ(g.customer_cone(net::Asn{2}).size(), 2u);
}

TEST(AsGraph, ConeAddressCount) {
  AsGraph g;
  AsNode a = make_node(1);
  a.prefixes.push_back(net::Ipv4Prefix::make(net::Ipv4Addr(10, 0, 0, 0), 24));
  AsNode b = make_node(2);
  b.prefixes.push_back(net::Ipv4Prefix::make(net::Ipv4Addr(10, 1, 0, 0), 25));
  g.add_as(std::move(a));
  g.add_as(std::move(b));
  g.add_transit(net::Asn{1}, net::Asn{2});
  EXPECT_EQ(g.cone_address_count(net::Asn{1}), 256u + 128u);
  EXPECT_EQ(g.cone_address_count(net::Asn{2}), 128u);
  EXPECT_EQ(g.total_address_count(), 384u);
}

/// Reference implementation: the plain BFS the pre-memoization code used.
std::unordered_set<std::uint32_t> bfs_cone(const AsGraph& g, net::Asn root) {
  std::unordered_set<std::uint32_t> seen{root.value()};
  std::deque<net::Asn> frontier{root};
  while (!frontier.empty()) {
    const net::Asn current = frontier.front();
    frontier.pop_front();
    for (net::Asn customer : g.customers_of(current))
      if (seen.insert(customer.value()).second) frontier.push_back(customer);
  }
  return seen;
}

TEST(AsGraph, MemoizedConesMatchBfsOnRandomDag) {
  // A random layered DAG: edges only point from lower layers to higher
  // node ids, so the provider hierarchy stays acyclic by construction.
  util::Rng rng(2024);
  AsGraph g;
  constexpr std::uint32_t kNodes = 120;
  for (std::uint32_t asn = 1; asn <= kNodes; ++asn) g.add_as(make_node(asn));
  for (std::uint32_t provider = 1; provider <= kNodes; ++provider) {
    for (std::uint32_t customer = provider + 1; customer <= kNodes;
         ++customer) {
      if (rng.chance(0.04))
        g.add_transit(net::Asn{provider}, net::Asn{customer});
    }
  }
  ASSERT_FALSE(g.validate().has_value());

  for (std::uint32_t asn = 1; asn <= kNodes; ++asn) {
    const auto reference = bfs_cone(g, net::Asn{asn});
    const auto cone = g.customer_cone(net::Asn{asn});
    EXPECT_EQ(cone.size(), reference.size()) << "cone of AS" << asn;
    EXPECT_EQ(cone.front(), net::Asn{asn});  // Root stays first.
    std::unordered_set<std::uint32_t> got;
    for (net::Asn member : cone) got.insert(member.value());
    EXPECT_EQ(got, reference) << "cone of AS" << asn;
    // The index-space mask agrees with the ASN-space listing.
    const auto& mask = g.cone_mask(g.index_of(net::Asn{asn}));
    EXPECT_EQ(mask.count(), reference.size());
  }
}

TEST(AsGraph, ConeMemoInvalidatedByNewTransitEdge) {
  AsGraph g;
  for (std::uint32_t asn : {1, 2, 3}) g.add_as(make_node(asn));
  g.add_transit(net::Asn{1}, net::Asn{2});
  EXPECT_EQ(g.customer_cone(net::Asn{1}).size(), 2u);  // Memo built here.
  g.add_transit(net::Asn{2}, net::Asn{3});
  EXPECT_EQ(g.customer_cone(net::Asn{1}).size(), 3u);
  EXPECT_EQ(g.customer_cone(net::Asn{2}).size(), 2u);
}

TEST(AsGraph, ValidateDetectsProviderCycle) {
  AsGraph g;
  for (std::uint32_t asn : {1, 2, 3}) g.add_as(make_node(asn));
  g.add_transit(net::Asn{1}, net::Asn{2});
  g.add_transit(net::Asn{2}, net::Asn{3});
  EXPECT_FALSE(g.validate().has_value());
  g.add_transit(net::Asn{3}, net::Asn{1});  // Cycle 1 -> 2 -> 3 -> 1.
  const auto problem = g.validate();
  ASSERT_TRUE(problem);
  EXPECT_NE(problem->find("cycle"), std::string::npos);
}

TEST(AsGraph, AddressCountSumsPrefixes) {
  AsNode n = make_node(5);
  n.prefixes.push_back(net::Ipv4Prefix::make(net::Ipv4Addr(10, 0, 0, 0), 24));
  n.prefixes.push_back(net::Ipv4Prefix::make(net::Ipv4Addr(10, 1, 0, 0), 30));
  EXPECT_EQ(n.address_count(), 260u);
}

TEST(EnumToString, Coverage) {
  EXPECT_EQ(to_string(AsClass::kTier1), "tier1");
  EXPECT_EQ(to_string(AsClass::kNren), "nren");
  EXPECT_EQ(to_string(PeeringPolicy::kOpen), "open");
  EXPECT_EQ(to_string(PeeringPolicy::kRestrictive), "restrictive");
}

}  // namespace
}  // namespace rp::topology

#include "io/container.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

namespace rp::io {
namespace {

TEST(ByteCodec, RoundTripsPrimitives) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32_fixed(0xDEADBEEF);
  w.u64_fixed(0x0123456789ABCDEFull);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(std::numeric_limits<std::uint64_t>::max());
  w.svarint(0);
  w.svarint(-1);
  w.svarint(std::numeric_limits<std::int64_t>::min());
  w.svarint(std::numeric_limits<std::int64_t>::max());
  w.f64(-273.15);
  w.str("peering lan");
  w.str("");

  const std::vector<std::uint8_t> bytes = std::move(w).take();
  ByteReader r(bytes, "test");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32_fixed(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64_fixed(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.svarint(), 0);
  EXPECT_EQ(r.svarint(), -1);
  EXPECT_EQ(r.svarint(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.svarint(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.f64(), -273.15);
  EXPECT_EQ(r.str(), "peering lan");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(ByteCodec, SmallVarintsAreOneByte) {
  ByteWriter w;
  w.varint(42);
  EXPECT_EQ(w.bytes().size(), 1u);
}

TEST(ByteCodec, ReaderRejectsTruncation) {
  ByteWriter w;
  w.u32_fixed(7);
  std::vector<std::uint8_t> bytes = std::move(w).take();
  bytes.pop_back();
  ByteReader r(bytes, "nodes");
  try {
    r.u32_fixed();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(ByteCodec, ReaderRejectsOverlongVarint) {
  const std::vector<std::uint8_t> bytes(11, 0x80);
  ByteReader r(bytes, "test");
  EXPECT_THROW(r.varint(), SnapshotError);
}

TEST(ByteCodec, ReaderRejectsStringPastEnd) {
  ByteWriter w;
  w.varint(100);  // Claims 100 bytes of string data, provides none.
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  ByteReader r(bytes, "test");
  EXPECT_THROW(r.str(), SnapshotError);
}

TEST(ByteCodec, ExpectEndFlagsTrailingBytes) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  ByteReader r(bytes, "test");
  r.u8();
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(Checksum, MatchesKnownFnv1aVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64({}), 14695981039346656037ull);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cull);
}

std::vector<std::uint8_t> payload(std::string_view s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> two_section_image() {
  ContainerWriter writer;
  writer.add_section(1, payload("first section"));
  writer.add_section(7, payload("second"));
  return writer.serialize();
}

TEST(Container, RoundTripsSections) {
  const auto image = two_section_image();
  const ContainerReader reader = ContainerReader::from_bytes(image);
  EXPECT_EQ(reader.version(), kFormatVersion);
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_TRUE(reader.has(1));
  EXPECT_TRUE(reader.has(7));
  EXPECT_FALSE(reader.has(2));
  const auto first = reader.section(1);
  EXPECT_EQ(std::string(first.begin(), first.end()), "first section");
  const auto second = reader.section(7);
  EXPECT_EQ(std::string(second.begin(), second.end()), "second");
  EXPECT_THROW(reader.section(3), SnapshotError);
}

TEST(Container, WriterRejectsDuplicateSectionIds) {
  ContainerWriter writer;
  writer.add_section(1, payload("x"));
  EXPECT_THROW(writer.add_section(1, payload("y")), SnapshotError);
}

TEST(Container, RejectsBadMagic) {
  auto image = two_section_image();
  image[0] = 'X';
  try {
    ContainerReader::from_bytes(image);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(Container, RejectsFutureFormatVersion) {
  auto image = two_section_image();
  image[8] += 1;  // The format-version field follows the 8-byte magic.
  try {
    ContainerReader::from_bytes(image);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("newer than supported"),
              std::string::npos);
  }
}

TEST(Container, DetectsSingleBitFlipInPayload) {
  auto image = two_section_image();
  image.back() ^= 0x01;  // Last payload byte.
  try {
    ContainerReader::from_bytes(image);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
  }
}

TEST(Container, DetectsTruncatedFile) {
  auto image = two_section_image();
  image.resize(image.size() - 3);
  EXPECT_THROW(ContainerReader::from_bytes(image), SnapshotError);
}

TEST(Container, RejectsTinyFile) {
  const std::vector<std::uint8_t> tiny = {'R', 'P'};
  EXPECT_THROW(ContainerReader::from_bytes(tiny), SnapshotError);
}

TEST(Container, AtomicWriteLeavesNoTempFile) {
  const std::filesystem::path dir = testing::TempDir();
  const std::filesystem::path path = dir / "container_test.rpsnap";
  ContainerWriter writer;
  writer.add_section(2, payload("hello"));
  writer.write_file_atomic(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));

  const ContainerReader reader = ContainerReader::from_file(path);
  const auto body = reader.section(2);
  EXPECT_EQ(std::string(body.begin(), body.end()), "hello");
  std::filesystem::remove(path);
}

TEST(Container, MissingFileThrows) {
  EXPECT_THROW(
      ContainerReader::from_file("/nonexistent/dir/nothing.rpsnap"),
      SnapshotError);
}

}  // namespace
}  // namespace rp::io

// Round-trip fidelity and corruption handling for rp::io snapshots.
//
// Fidelity is held to the repo's strictest bar: the studies that run on a
// loaded world must produce byte-identical outputs to the same studies on
// the freshly built world, at any thread count.
#include "io/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "measure/dataset_io.hpp"
#include "util/thread_pool.hpp"

namespace rp::io {
namespace {

core::ScenarioConfig small_config() {
  core::ScenarioConfig config;
  config.seed = 23;
  config.euroix = false;
  config.membership_scale = 0.05;
  config.topology.tier2_count = 20;
  config.topology.access_count = 80;
  config.topology.content_count = 20;
  config.topology.cdn_count = 6;
  config.topology.nren_count = 5;
  config.topology.enterprise_count = 40;
  return config;
}

const core::Scenario& small_world() {
  static const core::Scenario scenario =
      core::Scenario::build(small_config());
  return scenario;
}

/// Structural equality of two scenarios, down to adjacency span order.
void expect_same_world(const core::Scenario& a, const core::Scenario& b) {
  ASSERT_EQ(a.graph().as_count(), b.graph().as_count());
  EXPECT_EQ(a.graph().transit_link_count(), b.graph().transit_link_count());
  EXPECT_EQ(a.graph().peering_link_count(), b.graph().peering_link_count());
  for (std::size_t i = 0; i < a.graph().nodes().size(); ++i) {
    const auto& na = a.graph().nodes()[i];
    const auto& nb = b.graph().nodes()[i];
    ASSERT_EQ(na.asn, nb.asn);
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.cls, nb.cls);
    EXPECT_EQ(na.policy, nb.policy);
    EXPECT_EQ(na.home_city.name, nb.home_city.name);
    EXPECT_EQ(na.traffic_scale, nb.traffic_scale);
    ASSERT_EQ(na.prefixes.size(), nb.prefixes.size());
    for (std::size_t p = 0; p < na.prefixes.size(); ++p)
      EXPECT_EQ(na.prefixes[p], nb.prefixes[p]);
    auto same_span = [](std::span<const net::Asn> x,
                        std::span<const net::Asn> y) {
      ASSERT_EQ(x.size(), y.size());
      for (std::size_t k = 0; k < x.size(); ++k) EXPECT_EQ(x[k], y[k]);
    };
    same_span(a.graph().providers_of(na.asn), b.graph().providers_of(nb.asn));
    same_span(a.graph().customers_of(na.asn), b.graph().customers_of(nb.asn));
    same_span(a.graph().peers_of(na.asn), b.graph().peers_of(nb.asn));
  }
  ASSERT_EQ(a.ecosystem().ixps().size(), b.ecosystem().ixps().size());
  ASSERT_EQ(a.ecosystem().providers().size(), b.ecosystem().providers().size());
  for (std::size_t i = 0; i < a.ecosystem().ixps().size(); ++i) {
    const auto& xa = a.ecosystem().ixps()[i];
    const auto& xb = b.ecosystem().ixps()[i];
    EXPECT_EQ(xa.acronym(), xb.acronym());
    EXPECT_EQ(xa.peering_lan(), xb.peering_lan());
    ASSERT_EQ(xa.interfaces().size(), xb.interfaces().size());
    for (std::size_t k = 0; k < xa.interfaces().size(); ++k) {
      const auto& ia = xa.interfaces()[k];
      const auto& ib = xb.interfaces()[k];
      EXPECT_EQ(ia.asn, ib.asn);
      EXPECT_EQ(ia.addr, ib.addr);
      EXPECT_EQ(ia.mac, ib.mac);
      EXPECT_EQ(ia.kind, ib.kind);
      EXPECT_EQ(ia.circuit_one_way, ib.circuit_one_way);
    }
    ASSERT_EQ(xa.looking_glasses().size(), xb.looking_glasses().size());
  }
  EXPECT_EQ(a.vantage(), b.vantage());
  EXPECT_EQ(a.measured_ixps(), b.measured_ixps());
  EXPECT_EQ(a.config().seed, b.config().seed);
}

TEST(Snapshot, RoundTripReproducesTheWorldExactly) {
  const core::Scenario& original = small_world();
  const std::vector<std::uint8_t> image = encode_scenario(original);
  const LoadedWorld loaded = decode_scenario(image);
  EXPECT_TRUE(loaded.had_cones);
  EXPECT_FALSE(loaded.rib.has_value());
  expect_same_world(original, loaded.scenario);
  EXPECT_TRUE(loaded.scenario.graph().cones_ready());
}

TEST(Snapshot, EncodeIsByteIdenticalAcrossThreadCounts) {
  const core::Scenario& world = small_world();
  util::ThreadPool::set_global_threads(1);
  const auto serial = encode_scenario(world);
  util::ThreadPool::set_global_threads(8);
  const auto parallel = encode_scenario(world);
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(serial, parallel);
}

/// SpreadStudy fingerprint: raw campaign datasets + aggregated report.
std::string spread_fingerprint(const core::Scenario& scenario) {
  core::SpreadStudyConfig config;
  config.campaign.length = util::SimDuration::days(3);
  config.campaign.queries_per_pch_lg = 3;
  config.campaign.queries_per_ripe_lg = 2;
  const auto study = core::SpreadStudy::run(scenario, config);
  std::ostringstream out;
  for (const auto& measurement : study.raw_measurements())
    measure::write_dataset(measurement, out);
  const auto& report = study.report();
  out << report.total_probed() << ' ' << report.total_analyzed() << '\n';
  for (const auto& row : report.rows()) {
    out << row.acronym << ' ' << row.probed << ' ' << row.analyzed << ' '
        << row.remote_interfaces << '\n';
  }
  return std::move(out).str();
}

/// OffloadAnalyzer fingerprint: exact traffic figures and greedy order.
std::string offload_fingerprint(const core::Scenario& scenario) {
  core::OffloadStudyConfig config;
  config.rate_model.span = util::SimDuration::days(3);
  const auto study = core::OffloadStudy::run(scenario, config);
  std::ostringstream out;
  out.precision(17);
  const auto& analyzer = study.analyzer();
  out << analyzer.transit_inbound_bps() << ' '
      << analyzer.transit_outbound_bps() << '\n';
  for (net::Asn asn : analyzer.eligible_peers()) out << asn.value() << ' ';
  out << '\n';
  for (const auto& step :
       analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 6))
    out << step.acronym << ' ' << step.gained << ' ' << step.remaining << '\n';
  return std::move(out).str();
}

TEST(Snapshot, StudiesOnLoadedWorldMatchByteForByte) {
  const core::Scenario& original = small_world();
  const LoadedWorld loaded = decode_scenario(encode_scenario(original));
  EXPECT_EQ(spread_fingerprint(original), spread_fingerprint(loaded.scenario));
  EXPECT_EQ(offload_fingerprint(original),
            offload_fingerprint(loaded.scenario));
}

TEST(Snapshot, RibSectionRoundTripsSelectedRoutes) {
  const core::Scenario& world = small_world();
  const bgp::Rib rib = bgp::Rib::build(world.graph(), world.vantage());
  SaveOptions options;
  options.rib = &rib;
  const LoadedWorld loaded = decode_scenario(encode_scenario(world, options));
  ASSERT_TRUE(loaded.rib.has_value());
  for (const auto& node : world.graph().nodes()) {
    const bgp::Route* a = rib.route_to(node.asn);
    const bgp::Route* b = loaded.rib->route_to(node.asn);
    ASSERT_EQ(a == nullptr, b == nullptr) << node.asn.to_string();
    if (a == nullptr) continue;
    EXPECT_EQ(a->destination, b->destination);
    EXPECT_EQ(a->source, b->source);
    ASSERT_EQ(a->as_path.size(), b->as_path.size());
    for (std::size_t i = 0; i < a->as_path.size(); ++i)
      EXPECT_EQ(a->as_path[i], b->as_path[i]);
  }
}

TEST(Snapshot, ConesCanBeOmitted) {
  SaveOptions options;
  options.with_cones = false;
  const LoadedWorld loaded =
      decode_scenario(encode_scenario(small_world(), options));
  EXPECT_FALSE(loaded.had_cones);
  EXPECT_FALSE(loaded.scenario.graph().cones_ready());
  // The loaded graph can still compute cones on demand.
  EXPECT_GT(
      loaded.scenario.graph().customer_cone(loaded.scenario.vantage()).size(),
      0u);
}

TEST(Snapshot, ConfigDigestCoversEveryKnob) {
  const core::ScenarioConfig base = small_config();
  const std::uint64_t digest = config_digest(base);
  EXPECT_EQ(config_digest(base), digest);  // Stable.

  core::ScenarioConfig seed = base;
  seed.seed += 1;
  EXPECT_NE(config_digest(seed), digest);

  core::ScenarioConfig knob = base;
  knob.membership_scale += 0.001;
  EXPECT_NE(config_digest(knob), digest);

  core::ScenarioConfig nested = base;
  nested.topology.cdn_count += 1;
  EXPECT_NE(config_digest(nested), digest);

  core::ScenarioConfig universe = base;
  universe.euroix = !universe.euroix;
  EXPECT_NE(config_digest(universe), digest);
}

class SnapshotFileTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(testing::TempDir()) /
           ("rpsnap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "world.rpsnap";
    save_scenario(small_world(), path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::uint8_t> read_file() const {
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }
  void write_file(const std::vector<std::uint8_t>& bytes) const {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  std::filesystem::path path_;
};

TEST_F(SnapshotFileTest, LoadsWhatWasSaved) {
  const LoadedWorld loaded = load_scenario(path_);
  expect_same_world(small_world(), loaded.scenario);
  EXPECT_FALSE(verify_snapshot(path_).has_value());
}

TEST_F(SnapshotFileTest, InfoSummarizesTheWorld) {
  const SnapshotInfo info = snapshot_info(path_);
  EXPECT_EQ(info.format_version, kFormatVersion);
  EXPECT_EQ(info.file_size, std::filesystem::file_size(path_));
  EXPECT_EQ(info.config_digest, config_digest(small_world().config()));
  EXPECT_EQ(info.seed, small_world().config().seed);
  EXPECT_EQ(info.as_count, small_world().graph().as_count());
  EXPECT_EQ(info.ixp_count, small_world().ecosystem().ixps().size());
  EXPECT_EQ(info.vantage_asn, small_world().vantage().value());
  EXPECT_TRUE(info.has_cones);
  EXPECT_FALSE(info.has_rib);
  EXPECT_GE(info.sections.size(), 5u);
}

TEST_F(SnapshotFileTest, BitFlipIsDetectedNotLoaded) {
  auto bytes = read_file();
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(bytes);
  EXPECT_THROW(load_scenario(path_), SnapshotError);
  const auto error = verify_snapshot(path_);
  ASSERT_TRUE(error.has_value());
}

TEST_F(SnapshotFileTest, TruncationIsDetected) {
  auto bytes = read_file();
  bytes.resize(bytes.size() * 3 / 4);
  write_file(bytes);
  EXPECT_THROW(load_scenario(path_), SnapshotError);
}

TEST_F(SnapshotFileTest, FutureVersionIsRejected) {
  auto bytes = read_file();
  bytes[8] += 1;  // Version field sits right after the 8-byte magic.
  write_file(bytes);
  try {
    load_scenario(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("newer than supported"),
              std::string::npos);
  }
}

TEST_F(SnapshotFileTest, VerifyClassifiesFailuresWithDistinctExitCodes) {
  // Healthy file: no failure, exit code 0 by construction.
  EXPECT_FALSE(verify_snapshot(path_).has_value());

  // Corrupt payload -> kCorrupt (rpworld exit 4).
  {
    auto bytes = read_file();
    bytes[bytes.size() / 2] ^= 0x40;
    write_file(bytes);
    const auto failure = verify_snapshot(path_);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->error_class, SnapshotErrorClass::kCorrupt);
    EXPECT_EQ(failure->exit_code(), 4);
  }

  // Truncated file -> kTruncated (exit 5).
  {
    save_scenario(small_world(), path_);
    auto bytes = read_file();
    bytes.resize(bytes.size() * 3 / 4);
    write_file(bytes);
    const auto failure = verify_snapshot(path_);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->error_class, SnapshotErrorClass::kTruncated);
    EXPECT_EQ(failure->exit_code(), 5);
  }

  // Future format version -> kVersion (exit 6).
  {
    save_scenario(small_world(), path_);
    auto bytes = read_file();
    bytes[8] += 1;
    write_file(bytes);
    const auto failure = verify_snapshot(path_);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->error_class, SnapshotErrorClass::kVersion);
    EXPECT_EQ(failure->exit_code(), 6);
  }

  // Unreadable path -> kIo (exit 3).
  {
    const auto failure = verify_snapshot(dir_ / "does_not_exist.rpsnap");
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->error_class, SnapshotErrorClass::kIo);
    EXPECT_EQ(failure->exit_code(), 3);
  }
}

TEST_F(SnapshotFileTest, BuildCachedHitsMissesAndFallsBack) {
  const core::ScenarioConfig config = small_config();
  const std::filesystem::path cache_dir = dir_ / "cache";

  core::SnapshotCacheResult result;
  const core::Scenario built =
      core::Scenario::build_cached(config, cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kMiss);
  EXPECT_TRUE(std::filesystem::exists(result.path));
  expect_same_world(small_world(), built);

  const core::Scenario hit =
      core::Scenario::build_cached(config, cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kHit);
  expect_same_world(small_world(), hit);

  // Corrupt the cached snapshot: build_cached must fall back to a clean
  // rebuild and rewrite the cache.
  {
    std::fstream f(result.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\x7f');
  }
  const core::Scenario fallback =
      core::Scenario::build_cached(config, cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kFallback);
  EXPECT_FALSE(result.message.empty());
  expect_same_world(small_world(), fallback);

  // The rewrite healed the cache.
  core::Scenario::build_cached(config, cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kHit);

  // A different config never matches this cache entry.
  core::ScenarioConfig other = config;
  other.seed += 99;
  core::Scenario::build_cached(other, cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kMiss);
}

TEST_F(SnapshotFileTest, MissingSectionIsRejected) {
  // Rebuild an image that drops the vantage section: decode must refuse.
  const auto image = encode_scenario(small_world());
  const ContainerReader reader = ContainerReader::from_bytes(image);
  ContainerWriter writer;
  for (const auto& entry : reader.sections()) {
    if (entry.id == kVantageSection) continue;
    const auto body = reader.section(entry.id);
    writer.add_section(entry.id, {body.begin(), body.end()});
  }
  try {
    decode_scenario(writer.serialize());
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("missing required section"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rp::io

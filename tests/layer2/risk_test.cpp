// Multihoming reliability (§6): redundancy visible on layer 3 is not real
// when one organization operates both services.
#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "layer2/risk.hpp"

namespace rp::layer2 {
namespace {

net::Asn as(std::uint32_t n) { return net::Asn{n}; }

struct World {
  topology::AsGraph graph;
  ixp::IxpEcosystem eco;
  net::Asn vantage = as(10);
  ixp::IxpId x = 0;
  std::unique_ptr<bgp::Rib> rib;
  std::unique_ptr<flow::TrafficMatrix> matrix;
  std::unique_ptr<offload::OffloadAnalyzer> analyzer;

  World() {
    const auto& cities = geo::CityRegistry::world();
    auto add = [&](std::uint32_t asn, topology::AsClass cls,
                   const char* prefix) {
      topology::AsNode node;
      node.asn = as(asn);
      node.name = "AS" + std::to_string(asn);
      node.cls = cls;
      node.policy = topology::PeeringPolicy::kOpen;
      node.home_city = cities.at("Amsterdam");
      node.prefixes.push_back(*net::Ipv4Prefix::parse(prefix));
      node.traffic_scale = 1.0;
      graph.add_as(std::move(node));
    };
    using AC = topology::AsClass;
    add(1, AC::kTier1, "10.1.0.0/16");
    add(2, AC::kTier1, "10.2.0.0/16");
    add(10, AC::kNren, "10.10.0.0/16");
    add(20, AC::kTier2, "10.20.0.0/16");
    add(30, AC::kAccess, "10.30.0.0/16");
    add(31, AC::kAccess, "10.31.0.0/16");
    graph.add_peering(as(1), as(2));
    graph.add_transit(as(1), as(10));
    graph.add_transit(as(2), as(10));
    graph.add_transit(as(1), as(20));
    graph.add_transit(as(20), as(30));
    graph.add_transit(as(1), as(31));  // 31 is NOT in any member's cone.

    ixp::RemotePeeringProvider provider;
    provider.name = "CarrierOne";
    provider.pops = {cities.at("Amsterdam")};
    eco.add_provider(provider);
    x = eco.add_ixp("X", "X", cities.at("Amsterdam"), 1.0,
                    *net::Ipv4Prefix::parse("198.18.0.0/24"));
    ixp::MemberInterface iface;
    iface.asn = as(20);
    iface.addr = net::Ipv4Addr(198, 18, 0, 1);
    iface.mac = net::MacAddr::from_id(1);
    iface.equipment_city = cities.at("Amsterdam");
    eco.ixp(x).add_interface(iface);

    rib = std::make_unique<bgp::Rib>(bgp::Rib::build(graph, vantage));
    util::Rng rng(1);
    matrix = std::make_unique<flow::TrafficMatrix>(
        flow::TrafficMatrix::generate(graph, vantage, flow::TrafficConfig{},
                                      rng));
    analyzer = std::make_unique<offload::OffloadAnalyzer>(
        graph, eco, vantage, *matrix, *rib, offload::AnalyzerConfig{});
  }
};

TEST(MultihomingRisk, DualTransitSurvivesAnySingleFailure) {
  World w;
  MultihomingRiskStudy study(w.graph, w.eco, w.vantage, *w.analyzer);
  const auto report = study.evaluate(Procurement::kDualTransit, {},
                                     offload::PeerGroup::kAll, 0);
  EXPECT_DOUBLE_EQ(report.worst_case_surviving, 1.0);
  EXPECT_DOUBLE_EQ(report.tolerant_traffic_fraction, 1.0);
  EXPECT_EQ(report.failures.size(), 2u);
}

TEST(MultihomingRisk, IndependentRemotePartiallyCoversTransitFailure) {
  World w;
  MultihomingRiskStudy study(w.graph, w.eco, w.vantage, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto report =
      study.evaluate(Procurement::kTransitPlusIndependentRemote, reached,
                     offload::PeerGroup::kAll, 0);
  // Transit failure leaves only the offloadable share (cone of AS20).
  EXPECT_GT(report.worst_case_surviving, 0.0);
  EXPECT_LT(report.worst_case_surviving, 1.0);
  EXPECT_EQ(report.worst_case_organization, "AS1");
  // Provider or IXP failures fall back to transit: full survival.
  for (const auto& failure : report.failures) {
    if (failure.organization != "AS1") {
      EXPECT_DOUBLE_EQ(failure.surviving_traffic_fraction, 1.0);
    }
  }
}

TEST(MultihomingRisk, ConflatedRemoteIsNotRedundant) {
  // The §6 warning: the same organization sells both services, so its
  // failure takes everything down.
  World w;
  MultihomingRiskStudy study(w.graph, w.eco, w.vantage, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto report =
      study.evaluate(Procurement::kTransitPlusConflatedRemote, reached,
                     offload::PeerGroup::kAll, 0);
  EXPECT_DOUBLE_EQ(report.worst_case_surviving, 0.0);
  EXPECT_DOUBLE_EQ(report.tolerant_traffic_fraction, 0.0);
  EXPECT_NE(report.worst_case_organization.find("AS1"), std::string::npos);
  EXPECT_NE(report.worst_case_organization.find("CarrierOne"),
            std::string::npos);
}

TEST(MultihomingRisk, OrderingAcrossProcurements) {
  // Reliability strictly orders: dual transit >= independent remote >
  // conflated remote.
  World w;
  MultihomingRiskStudy study(w.graph, w.eco, w.vantage, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto dual = study.evaluate(Procurement::kDualTransit, reached,
                                   offload::PeerGroup::kAll, 0);
  const auto independent =
      study.evaluate(Procurement::kTransitPlusIndependentRemote, reached,
                     offload::PeerGroup::kAll, 0);
  const auto conflated =
      study.evaluate(Procurement::kTransitPlusConflatedRemote, reached,
                     offload::PeerGroup::kAll, 0);
  EXPECT_GE(dual.worst_case_surviving, independent.worst_case_surviving);
  EXPECT_GT(independent.worst_case_surviving,
            conflated.worst_case_surviving);
}

TEST(MultihomingRisk, ProcurementToString) {
  EXPECT_EQ(to_string(Procurement::kDualTransit), "dual transit");
  EXPECT_NE(to_string(Procurement::kTransitPlusConflatedRemote)
                .find("same organization"),
            std::string::npos);
}

}  // namespace
}  // namespace rp::layer2

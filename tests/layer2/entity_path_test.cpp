// Layer-2-aware path accounting on a hand-built world (the §6 analysis).
//
// Topology: V (vantage NREN) buys transit from T (tier-1). T sells to P
// (tier-2, open policy), P sells to E (stub). P is a member of IXP X; the
// world also has a remote-peering provider.
//   Before adoption: V -> T -> P -> E        (2 intermediate ASes)
//   After V remotely peers with P at X:
//     layer 3:      V -> P -> E              (1 intermediate AS: flatter!)
//     organizations: provider circuit + X + P  (3 intermediaries: not
//     flatter, and two of them invisible to BGP).
#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "layer2/entity_path.hpp"

namespace rp::layer2 {
namespace {

net::Asn as(std::uint32_t n) { return net::Asn{n}; }

struct World {
  topology::AsGraph graph;
  ixp::IxpEcosystem eco;
  net::Asn vantage = as(10);
  ixp::IxpId x = 0;
  std::unique_ptr<bgp::Rib> rib;
  std::unique_ptr<flow::TrafficMatrix> matrix;
  std::unique_ptr<offload::OffloadAnalyzer> analyzer;

  World(ixp::AttachmentKind peer_kind = ixp::AttachmentKind::kDirectColo) {
    const auto& cities = geo::CityRegistry::world();
    auto add = [&](std::uint32_t asn, topology::AsClass cls,
                   topology::PeeringPolicy policy, const char* prefix) {
      topology::AsNode node;
      node.asn = as(asn);
      node.name = "AS" + std::to_string(asn);
      node.cls = cls;
      node.policy = policy;
      node.home_city = cities.at("Amsterdam");
      node.prefixes.push_back(*net::Ipv4Prefix::parse(prefix));
      node.traffic_scale = 1.0;
      graph.add_as(std::move(node));
    };
    using AC = topology::AsClass;
    using PP = topology::PeeringPolicy;
    add(1, AC::kTier1, PP::kRestrictive, "10.1.0.0/16");   // T
    add(10, AC::kNren, PP::kSelective, "10.10.0.0/16");    // V
    add(20, AC::kTier2, PP::kOpen, "10.20.0.0/16");        // P
    add(30, AC::kAccess, PP::kOpen, "10.30.0.0/16");       // E
    graph.add_transit(as(1), as(10));
    graph.add_transit(as(1), as(20));
    graph.add_transit(as(20), as(30));

    ixp::RemotePeeringProvider provider;
    provider.name = "TestCarrier";
    provider.pops = {cities.at("Madrid"), cities.at("Amsterdam")};
    eco.add_provider(provider);

    x = eco.add_ixp("X", "Exchange X", cities.at("Amsterdam"), 1.0,
                    *net::Ipv4Prefix::parse("198.18.0.0/24"));
    ixp::MemberInterface iface;
    iface.asn = as(20);
    iface.addr = net::Ipv4Addr(198, 18, 0, 1);
    iface.mac = net::MacAddr::from_id(1);
    iface.kind = peer_kind;
    iface.equipment_city = cities.at("Amsterdam");
    if (peer_kind == ixp::AttachmentKind::kRemoteViaProvider)
      iface.provider_index = 0;
    eco.ixp(x).add_interface(iface);

    rib = std::make_unique<bgp::Rib>(bgp::Rib::build(graph, vantage));
    util::Rng rng(1);
    flow::TrafficConfig traffic;
    matrix = std::make_unique<flow::TrafficMatrix>(
        flow::TrafficMatrix::generate(graph, vantage, traffic, rng));
    analyzer = std::make_unique<offload::OffloadAnalyzer>(
        graph, eco, vantage, *matrix, *rib, offload::AnalyzerConfig{});
  }
};

TEST(EntityPath, BgpRouteCountsIntermediateAsesOnly) {
  World w;
  const bgp::Route* route = w.rib->route_to(as(30));
  ASSERT_NE(route, nullptr);
  // V -> T -> P -> E: path [1, 20, 30], intermediates T and P.
  EntityPathAnalyzer paths(w.graph, w.eco);
  const EntityPath path = paths.from_bgp_route(*route);
  EXPECT_EQ(path.l3_intermediaries(), 2u);
  EXPECT_EQ(path.organization_intermediaries(), 2u);
  EXPECT_EQ(path.invisible_intermediaries(), 0u);
}

TEST(EntityPath, DirectOrOriginRouteHasNoIntermediaries) {
  World w;
  const bgp::Route* direct = w.rib->route_to(as(1));
  ASSERT_NE(direct, nullptr);
  EntityPathAnalyzer paths(w.graph, w.eco);
  EXPECT_EQ(paths.from_bgp_route(*direct).organization_intermediaries(), 0u);
}

TEST(EntityPath, RemotePeeringAddsInvisibleLayer2Entities) {
  World w;
  EntityPathAnalyzer paths(w.graph, w.eco);
  PeeringMediation mediation;
  mediation.ixp_id = w.x;
  mediation.left_kind = ixp::AttachmentKind::kRemoteViaProvider;
  mediation.left_provider = 0;
  mediation.right_kind = ixp::AttachmentKind::kDirectColo;
  // Tail: P's route to E is one hop.
  bgp::Route tail;
  tail.destination = as(30);
  tail.source = bgp::RouteSource::kCustomer;
  tail.as_path = {as(30)};
  const EntityPath after = paths.via_peering(mediation, as(20), tail);
  // Organizations: TestCarrier (invisible), X (invisible), P.
  EXPECT_EQ(after.organization_intermediaries(), 3u);
  EXPECT_EQ(after.l3_intermediaries(), 1u);
  EXPECT_EQ(after.invisible_intermediaries(), 2u);
  EXPECT_EQ(after.intermediaries[0].name, "TestCarrier");
  EXPECT_EQ(after.intermediaries[0].kind,
            EntityKind::kRemotePeeringProvider);
  EXPECT_EQ(after.intermediaries[1].kind, EntityKind::kIxp);
  EXPECT_EQ(after.intermediaries[2].asn, as(20));
}

TEST(EntityPath, RemotePeerOnBothSidesAddsBothCircuits) {
  World w;
  EntityPathAnalyzer paths(w.graph, w.eco);
  PeeringMediation mediation;
  mediation.ixp_id = w.x;
  mediation.left_kind = ixp::AttachmentKind::kRemoteViaProvider;
  mediation.left_provider = 0;
  mediation.right_kind = ixp::AttachmentKind::kRemoteViaProvider;
  mediation.right_provider = 0;
  bgp::Route tail;  // Peer == destination.
  tail.source = bgp::RouteSource::kOrigin;
  const EntityPath path = paths.via_peering(mediation, as(20), tail);
  // Circuit + IXP + circuit; the peer itself is the destination.
  EXPECT_EQ(path.organization_intermediaries(), 3u);
  EXPECT_EQ(path.invisible_intermediaries(), 3u);
  EXPECT_EQ(path.l3_intermediaries(), 0u);
}

TEST(EntityPath, PartnerIxpCountsAsLayer2Intermediary) {
  World w;
  EntityPathAnalyzer paths(w.graph, w.eco);
  PeeringMediation mediation;
  mediation.ixp_id = w.x;
  mediation.left_kind = ixp::AttachmentKind::kPartnerIxp;
  bgp::Route tail;
  tail.source = bgp::RouteSource::kOrigin;
  const EntityPath path = paths.via_peering(mediation, as(20), tail);
  EXPECT_EQ(path.organization_intermediaries(), 2u);
  EXPECT_EQ(path.intermediaries[0].name, "partner-ixp-interconnect");
}

TEST(FlatteningStudy, AssignmentFindsConeCarrier) {
  World w;
  FlatteningStudy study(w.graph, w.eco, w.vantage, *w.rib, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto assignment =
      study.assignment_for(as(30), reached, offload::PeerGroup::kAll);
  ASSERT_TRUE(assignment);
  EXPECT_EQ(assignment->peer, as(20));
  EXPECT_EQ(assignment->ixp_id, w.x);
  EXPECT_EQ(assignment->tail.as_path, (std::vector<net::Asn>{as(30)}));
  // The tier-1 T is not coverable (not a member).
  EXPECT_FALSE(study.assignment_for(as(1), reached, offload::PeerGroup::kAll)
                   .has_value());
}

TEST(FlatteningStudy, MorePeeringWithoutFlattening) {
  // The headline: layer-3 intermediaries drop, organization-level do not.
  World w;
  FlatteningStudy study(w.graph, w.eco, w.vantage, *w.rib, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto report = study.compare(reached, offload::PeerGroup::kAll);
  // Offloadable endpoints: P (20) and E (30).
  EXPECT_EQ(report.flows, 2u);
  EXPECT_LT(report.mean_l3_after, report.mean_l3_before);
  EXPECT_GE(report.mean_org_after, report.mean_org_before);
  EXPECT_EQ(report.l3_flatter, 2u);
  EXPECT_EQ(report.org_not_flatter, 2u);
  EXPECT_EQ(report.with_invisible_intermediaries, 2u);
  EXPECT_GE(report.mean_invisible_after, 2.0);  // Circuit + IXP per flow.
}

TEST(FlatteningStudy, PeerAttachmentKindPropagates) {
  // When the carrying peer itself is remote at the IXP, its circuit's
  // provider appears on the organization path too.
  World w(ixp::AttachmentKind::kRemoteViaProvider);
  FlatteningStudy study(w.graph, w.eco, w.vantage, *w.rib, *w.analyzer);
  const std::vector<ixp::IxpId> reached{w.x};
  const auto report = study.compare(reached, offload::PeerGroup::kAll);
  EXPECT_EQ(report.flows, 2u);
  // Both sides remote: vantage circuit + IXP + peer circuit = 3 invisible.
  EXPECT_GE(report.mean_invisible_after, 3.0);
}

TEST(EntityKind, ToStringCoverage) {
  EXPECT_EQ(to_string(EntityKind::kAs), "AS");
  EXPECT_EQ(to_string(EntityKind::kIxp), "IXP");
  EXPECT_EQ(to_string(EntityKind::kRemotePeeringProvider),
            "remote-peering-provider");
}

}  // namespace
}  // namespace rp::layer2

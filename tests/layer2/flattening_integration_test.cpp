// The flattening analysis against a full generated scenario: the paper's
// headline must hold for any seed, not just hand-built examples.
#include <gtest/gtest.h>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "layer2/entity_path.hpp"
#include "layer2/risk.hpp"

namespace rp::layer2 {
namespace {

struct Fixture {
  core::Scenario scenario = [] {
    core::ScenarioConfig config;
    config.seed = 23;
    config.membership_scale = 0.08;
    config.topology.tier2_count = 40;
    config.topology.access_count = 120;
    config.topology.content_count = 40;
    config.topology.cdn_count = 6;
    config.topology.nren_count = 5;
    config.topology.enterprise_count = 100;
    return core::Scenario::build(config);
  }();
  core::OffloadStudy study = [this] {
    core::OffloadStudyConfig config;
    config.rate_model.span = util::SimDuration::days(2);
    return core::OffloadStudy::run(scenario, config);
  }();
};

TEST(FlatteningIntegration, HeadlineHoldsOnGeneratedWorld) {
  Fixture f;
  FlatteningStudy flattening(f.scenario.graph(), f.scenario.ecosystem(),
                             f.scenario.vantage(), f.study.rib(),
                             f.study.analyzer());
  const auto steps =
      f.study.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 3);
  ASSERT_FALSE(steps.empty());
  std::vector<ixp::IxpId> reached;
  for (const auto& step : steps) reached.push_back(step.ixp_id);

  const auto report = flattening.compare(reached, offload::PeerGroup::kAll);
  ASSERT_GT(report.flows, 10u);
  // Layer 3 flattens...
  EXPECT_LT(report.mean_l3_after, report.mean_l3_before);
  EXPECT_EQ(report.l3_flatter, report.flows);
  // ...the organization view does not (for most flows), and every offloaded
  // path crosses at least the IXP fabric plus the vantage's own circuit.
  EXPECT_GT(static_cast<double>(report.org_not_flatter) /
                static_cast<double>(report.flows),
            0.5);
  EXPECT_EQ(report.with_invisible_intermediaries, report.flows);
  EXPECT_GE(report.mean_invisible_after, 2.0);
}

TEST(FlatteningIntegration, AssignmentsRespectConesAndMembership) {
  Fixture f;
  FlatteningStudy flattening(f.scenario.graph(), f.scenario.ecosystem(),
                             f.scenario.vantage(), f.study.rib(),
                             f.study.analyzer());
  const auto everywhere = f.study.analyzer().all_ixps();
  const auto covered = f.study.analyzer().covered_endpoints(
      everywhere, offload::PeerGroup::kAll);
  ASSERT_FALSE(covered.empty());
  std::size_t checked = 0;
  for (std::size_t i = 0; i < covered.size() && checked < 20; i += 11) {
    const auto assignment = flattening.assignment_for(
        covered[i], everywhere, offload::PeerGroup::kAll);
    ASSERT_TRUE(assignment.has_value()) << covered[i].to_string();
    // The carrying peer is a member of the claimed IXP and holds the
    // endpoint in its cone.
    EXPECT_TRUE(f.scenario.ecosystem()
                    .ixp(assignment->ixp_id)
                    .has_member(assignment->peer));
    const auto cone = f.scenario.graph().customer_cone(assignment->peer);
    EXPECT_NE(std::find(cone.begin(), cone.end(), covered[i]), cone.end());
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(FlatteningIntegration, RiskOrderingOnGeneratedWorld) {
  Fixture f;
  MultihomingRiskStudy risk(f.scenario.graph(), f.scenario.ecosystem(),
                            f.scenario.vantage(), f.study.analyzer());
  const auto everywhere = f.study.analyzer().all_ixps();
  const auto dual = risk.evaluate(Procurement::kDualTransit, everywhere,
                                  offload::PeerGroup::kAll, 0);
  const auto independent =
      risk.evaluate(Procurement::kTransitPlusIndependentRemote, everywhere,
                    offload::PeerGroup::kAll, 0);
  const auto conflated =
      risk.evaluate(Procurement::kTransitPlusConflatedRemote, everywhere,
                    offload::PeerGroup::kAll, 0);
  EXPECT_DOUBLE_EQ(dual.worst_case_surviving, 1.0);
  EXPECT_GT(independent.worst_case_surviving, 0.0);
  EXPECT_LT(independent.worst_case_surviving, 1.0);
  EXPECT_DOUBLE_EQ(conflated.worst_case_surviving, 0.0);
}

}  // namespace
}  // namespace rp::layer2

// rp::fault framework mechanics: the spec grammar, trigger arithmetic,
// deterministic replay, arming/disarming, and the rp.fault.* metrics.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rp::fault {
namespace {

/// Counter value by name from a fresh registry snapshot (0 when absent).
std::uint64_t counter_value(const std::string& name) {
  for (const auto& metric : obs::MetricsRegistry::global().snapshot())
    if (metric.name == name) return metric.count;
  return 0;
}

std::uint64_t status_of(const std::string& site, bool fires) {
  for (const auto& status : site_status())
    if (status.name == site) return fires ? status.fires : status.calls;
  return 0;
}

class FaultSpecTest : public testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override {
    disarm_all();
    obs::set_metrics_enabled(false);
  }
};

TEST_F(FaultSpecTest, ParsesNthSpec) {
  const Spec spec = parse_spec("nth=7");
  EXPECT_EQ(spec.trigger, Trigger::kNth);
  EXPECT_EQ(spec.n, 7u);
  EXPECT_EQ(spec.action, Action::kThrow);
}

TEST_F(FaultSpecTest, ParsesEverySpecWithAction) {
  const Spec spec = parse_spec("every=3+truncate");
  EXPECT_EQ(spec.trigger, Trigger::kEvery);
  EXPECT_EQ(spec.n, 3u);
  EXPECT_EQ(spec.action, Action::kTruncate);
}

TEST_F(FaultSpecTest, ParsesProbabilitySpecWithSeedAndFlip) {
  const Spec spec = parse_spec("p=0.25@seed=42+flip");
  EXPECT_EQ(spec.trigger, Trigger::kProbability);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.action, Action::kBitFlip);
}

TEST_F(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec("sometimes"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth="), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth=0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth=abc"), std::invalid_argument);
  EXPECT_THROW(parse_spec("every=0"), std::invalid_argument);
  // Probability without an explicit seed is not replayable — rejected.
  EXPECT_THROW(parse_spec("p=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("p=1.5@seed=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("p=-0.1@seed=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth=3+explode"), std::invalid_argument);
}

TEST_F(FaultSpecTest, BadDirectiveListArmsNothing) {
  EXPECT_THROW(arm("test.a:nth=1,garbage"), std::invalid_argument);
  EXPECT_THROW(arm("no-colon-here"), std::invalid_argument);
  EXPECT_FALSE(injection_enabled());
}

TEST_F(FaultSpecTest, NthFiresExactlyOnce) {
  Site site("test.nth");
  arm("test.nth:nth=3");
  std::vector<std::size_t> fired;
  for (std::size_t call = 1; call <= 10; ++call)
    if (site.fire()) fired.push_back(call);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
  EXPECT_EQ(status_of("test.nth", /*fires=*/false), 10u);
  EXPECT_EQ(status_of("test.nth", /*fires=*/true), 1u);
}

TEST_F(FaultSpecTest, EveryFiresOnEachStride) {
  Site site("test.every");
  arm("test.every:every=4");
  std::vector<std::size_t> fired;
  for (std::size_t call = 1; call <= 12; ++call)
    if (site.fire()) fired.push_back(call);
  EXPECT_EQ(fired, (std::vector<std::size_t>{4, 8, 12}));
}

TEST_F(FaultSpecTest, ProbabilityReplaysByteIdentically) {
  Site site("test.prob");
  auto pattern = [&site] {
    std::vector<bool> fires;
    for (int call = 0; call < 200; ++call)
      fires.push_back(site.fire().has_value());
    return fires;
  };
  arm("test.prob:p=0.3@seed=99");
  const std::vector<bool> first = pattern();
  // Re-arming the same spec resets the call counter: identical replay.
  arm("test.prob:p=0.3@seed=99");
  EXPECT_EQ(pattern(), first);
  // A different seed yields a different firing pattern.
  arm("test.prob:p=0.3@seed=100");
  EXPECT_NE(pattern(), first);

  // The empirical rate lands near p (deterministic, so exact per seed).
  const auto fires = static_cast<double>(
      std::count(first.begin(), first.end(), true));
  EXPECT_NEAR(fires / 200.0, 0.3, 0.12);
}

TEST_F(FaultSpecTest, DisarmedSiteCostsNothingAndCountsNothing) {
  Site site("test.idle");
  for (int call = 0; call < 5; ++call) EXPECT_FALSE(site.fire().has_value());
  EXPECT_EQ(status_of("test.idle", /*fires=*/false), 0u);
  EXPECT_NO_THROW(site.maybe_throw());
}

TEST_F(FaultSpecTest, SpecArmedBeforeRegistrationAttachesOnFirstUse) {
  arm("test.pending.site:nth=1");
  EXPECT_TRUE(injection_enabled());
  Site site("test.pending.site");
  EXPECT_THROW(site.maybe_throw(), InjectedFault);
}

TEST_F(FaultSpecTest, DisarmAllSilencesEverySite) {
  Site site("test.disarm");
  arm("test.disarm:every=1");
  EXPECT_TRUE(site.fire().has_value());
  disarm_all();
  EXPECT_FALSE(injection_enabled());
  EXPECT_FALSE(site.fire().has_value());
}

TEST_F(FaultSpecTest, InjectedFaultNamesSiteAndCall) {
  Site site("test.named");
  arm("test.named:nth=2");
  site.maybe_throw();
  try {
    site.maybe_throw();
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "test.named");
    EXPECT_EQ(e.call(), 2u);
    EXPECT_NE(std::string(e.what()).find("test.named"), std::string::npos);
  }
}

TEST_F(FaultSpecTest, PayloadCorruptionIsDeterministic) {
  Site site("test.corrupt");
  const std::vector<std::uint8_t> original(64, 0xAB);

  arm("test.corrupt:every=1+flip");
  std::vector<std::uint8_t> flipped = original;
  site.maybe_corrupt(flipped);
  ASSERT_EQ(flipped.size(), original.size());
  std::size_t changed_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = flipped[i] ^ original[i];
    while (diff != 0) {
      changed_bits += diff & 1u;
      diff >>= 1;
    }
  }
  EXPECT_EQ(changed_bits, 1u);

  // Same call index -> same flipped bit.
  arm("test.corrupt:every=1+flip");
  std::vector<std::uint8_t> again = original;
  site.maybe_corrupt(again);
  EXPECT_EQ(again, flipped);

  arm("test.corrupt:every=1+truncate");
  std::vector<std::uint8_t> truncated = original;
  site.maybe_corrupt(truncated);
  EXPECT_LT(truncated.size(), original.size());
  EXPECT_GE(truncated.size(), 1u);
}

TEST_F(FaultSpecTest, FiresAreVisibleInFaultMetrics) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();
  Site site("test.metrics");
  arm("test.metrics:every=2");
  for (int call = 0; call < 10; ++call) (void)site.fire();
  EXPECT_EQ(counter_value("rp.fault.fires"), 5u);
  EXPECT_EQ(counter_value("rp.fault.fires.test.metrics"), 5u);
}

}  // namespace
}  // namespace rp::fault

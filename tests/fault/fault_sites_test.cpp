// Drives every compiled-in injection site through the real pipeline and
// asserts the documented degradation: the scenario cache rebuilds cleanly,
// snapshot writes stay atomic, the thread pool neither deadlocks nor leaks,
// dataset parsing reports instead of escaping, campaigns lose probes but
// still report — and every absorbed fault shows up in the metrics.
#include "fault/fault.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "geo/cities.hpp"
#include "io/snapshot.hpp"
#include "measure/campaign.hpp"
#include "measure/dataset_io.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"
#include "sim/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rp::fault {
namespace {

core::ScenarioConfig tiny_config() {
  core::ScenarioConfig config;
  config.seed = 31;
  config.euroix = false;
  config.membership_scale = 0.05;
  config.topology.tier2_count = 15;
  config.topology.access_count = 60;
  config.topology.content_count = 15;
  config.topology.cdn_count = 5;
  config.topology.nren_count = 4;
  config.topology.enterprise_count = 30;
  return config;
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& metric : obs::MetricsRegistry::global().snapshot())
    if (metric.name == name) return metric.count;
  return 0;
}

/// Files (non-recursively) in `dir`, for asserting no temp-file litter.
std::vector<std::string> files_in(const std::filesystem::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    names.push_back(entry.path().filename().string());
  return names;
}

class FaultSitesTest : public testing::Test {
 protected:
  void SetUp() override {
    disarm_all();
    dir_ = std::filesystem::path(testing::TempDir()) /
           ("rpfault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    snap_ = dir_ / "world.rpsnap";
    io::save_scenario(world(), snap_);
  }
  void TearDown() override {
    disarm_all();
    obs::set_metrics_enabled(false);
    std::filesystem::remove_all(dir_);
  }

  static const core::Scenario& world() {
    static const core::Scenario scenario = core::Scenario::build(tiny_config());
    return scenario;
  }

  std::filesystem::path dir_;
  std::filesystem::path snap_;
};

// --- io.read -----------------------------------------------------------------

TEST_F(FaultSitesTest, IoReadThrowEscapesLoadAsInjectedFault) {
  arm("io.read:nth=1");
  EXPECT_THROW(io::load_scenario(snap_), InjectedFault);
  disarm_all();
  EXPECT_NO_THROW(io::load_scenario(snap_));
}

TEST_F(FaultSitesTest, IoReadBitFlipIsCaughtByChecksums) {
  arm("io.read:nth=1+flip");
  try {
    io::load_scenario(snap_);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& e) {
    // A single flipped bit lands in a checksum mismatch (or, if it hits the
    // header/table, a malformed-container error) — never a decoded world.
    EXPECT_NE(e.error_class(), io::SnapshotErrorClass::kIo);
  }
}

TEST_F(FaultSitesTest, IoReadTruncationClassifiesAsTruncated) {
  arm("io.read:nth=1+truncate");
  try {
    io::load_scenario(snap_);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& e) {
    EXPECT_EQ(e.error_class(), io::SnapshotErrorClass::kTruncated);
  }
}

// --- io.write ----------------------------------------------------------------

TEST_F(FaultSitesTest, IoWriteCrashLeavesOldSnapshotAndNoTemp) {
  std::uintmax_t old_size = std::filesystem::file_size(snap_);
  arm("io.write:nth=1");
  EXPECT_THROW(io::save_scenario(world(), snap_), InjectedFault);
  // The old snapshot survives byte-for-byte reachable, and the half-written
  // temp file is gone.
  EXPECT_EQ(std::filesystem::file_size(snap_), old_size);
  EXPECT_NO_THROW(io::load_scenario(snap_));
  for (const auto& name : files_in(dir_))
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
}

TEST_F(FaultSitesTest, IoWriteCorruptionIsCompleteButDetected) {
  arm("io.write:nth=1+flip");
  EXPECT_NO_THROW(io::save_scenario(world(), snap_));
  disarm_all();
  // The write completed (atomically), but the payload carries a flipped bit
  // the read side must reject.
  EXPECT_THROW(io::load_scenario(snap_), io::SnapshotError);
  EXPECT_NO_THROW(io::save_scenario(world(), snap_));
  EXPECT_NO_THROW(io::load_scenario(snap_));
}

// --- io.verify ---------------------------------------------------------------

TEST_F(FaultSitesTest, IoVerifyFaultEscapesThePoolWithoutDeadlock) {
  arm("io.verify:nth=1");
  // The checksum pass runs on the global pool; the injected throw must be
  // rethrown to the caller (not wedge a worker) and the pool must stay
  // usable afterwards.
  EXPECT_THROW(io::load_scenario(snap_), InjectedFault);
  disarm_all();
  EXPECT_NO_THROW(io::load_scenario(snap_));
}

// --- cache.load / cache.store ------------------------------------------------

TEST_F(FaultSitesTest, CacheLoadFaultFallsBackToCleanRebuild) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();
  const std::filesystem::path cache_dir = dir_ / "cache";

  core::SnapshotCacheResult result;
  core::Scenario first =
      core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  ASSERT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kMiss);

  arm("cache.load:nth=1");
  core::Scenario rebuilt =
      core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  disarm_all();
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kFallback);
  EXPECT_NE(result.message.find("injected fault"), std::string::npos);
  EXPECT_EQ(rebuilt.graph().as_count(), first.graph().as_count());
  EXPECT_GE(counter_value("rp.io.fallbacks"), 1u);
  EXPECT_GE(counter_value("rp.fault.fires.cache.load"), 1u);

  // The fallback recached atomically: the next run is a clean hit.
  core::Scenario hit =
      core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kHit);
  EXPECT_EQ(hit.graph().as_count(), first.graph().as_count());
}

TEST_F(FaultSitesTest, CorruptCacheEntryIsRebuiltCleanViaIoRead) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();
  const std::filesystem::path cache_dir = dir_ / "cache";

  core::SnapshotCacheResult result;
  core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  ASSERT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kMiss);

  // This is the ci.sh fault smoke, in-process: the cache entry's bytes are
  // corrupted on read, the cache falls back, rebuilds, and rewrites a clean
  // entry — and rp.io.fallbacks records the absorbed failure.
  arm("io.read:nth=1+flip");
  core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  disarm_all();
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kFallback);
  EXPECT_GE(counter_value("rp.io.fallbacks"), 1u);

  EXPECT_FALSE(io::verify_snapshot(result.path).has_value());
  core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kHit);
}

TEST_F(FaultSitesTest, CacheStoreFaultStillDeliversTheWorld) {
  const std::filesystem::path cache_dir = dir_ / "cache";
  arm("cache.store:nth=1");
  core::SnapshotCacheResult result;
  core::Scenario scenario =
      core::Scenario::build_cached(tiny_config(), cache_dir, &result);
  disarm_all();
  // The build succeeded; only the cache write was lost.
  EXPECT_EQ(scenario.graph().as_count(), world().graph().as_count());
  EXPECT_EQ(result.outcome, core::SnapshotCacheResult::Outcome::kMiss);
  EXPECT_NE(result.message.find("injected fault"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(result.path));
}

// --- pool.task ---------------------------------------------------------------

TEST_F(FaultSitesTest, PoolSurvivesInjectedTaskFault) {
  util::ThreadPool pool(4);
  arm("pool.task:nth=1");
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64, [&ran](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      }),
      InjectedFault);
  // Exactly one index was injected away; every other index still ran, the
  // batch drained, and the pool is immediately reusable.
  EXPECT_EQ(ran.load(), 63);
  std::atomic<int> after{0};
  EXPECT_NO_THROW(pool.parallel_for(32, [&after](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  }));
  EXPECT_EQ(after.load(), 32);
}

TEST_F(FaultSitesTest, InlinePoolInjectsTheSameSite) {
  // A 1-thread pool runs loops inline on the caller — the pool.task site
  // must still fire there, so RP_THREADS=1 runs inject like worker runs.
  util::ThreadPool pool(1);
  arm("pool.task:nth=5");
  int ran = 0;
  EXPECT_THROW(pool.parallel_for(10, [&ran](std::size_t) { ++ran; }),
               InjectedFault);
  EXPECT_EQ(ran, 4);
  EXPECT_NO_THROW(pool.parallel_for(10, [&ran](std::size_t) { ++ran; }));
  EXPECT_EQ(ran, 14);
}

TEST_F(FaultSitesTest, PoolDeliversEveryKthFault) {
  util::ThreadPool pool(2);
  arm("pool.task:every=10");
  int failures = 0;
  for (int round = 0; round < 3; ++round) {
    try {
      pool.parallel_for(10, [](std::size_t) {});
    } catch (const InjectedFault&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 3);
}

// --- dataset.parse -----------------------------------------------------------

TEST_F(FaultSitesTest, DatasetParseFaultIsReportedNotEscaped) {
  const std::string dataset =
      "# comment\n"
      "H,0,MINI,0,86400000000000\n"
      "I,0,198.18.0.10,0,colo,0\n"
      "R,0,0,64500\n";
  {
    std::istringstream is(dataset);
    EXPECT_TRUE(measure::read_dataset(is).has_value());
  }
  // nth counts data lines (comments skipped): 2 targets the I record.
  arm("dataset.parse:nth=2");
  {
    std::istringstream is(dataset);
    EXPECT_THROW(measure::read_dataset_strict(is), InjectedFault);
  }
  arm("dataset.parse:nth=2");
  {
    std::istringstream is(dataset);
    std::string error;
    EXPECT_FALSE(measure::read_dataset(is, &error).has_value());
    EXPECT_NE(error.find("injected fault"), std::string::npos);
    EXPECT_NE(error.find("dataset.parse"), std::string::npos);
  }
}

// --- campaign.probe ----------------------------------------------------------

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

ixp::Ixp mini_ixp() {
  ixp::Ixp ixp{0, "MINI", "Mini Exchange", city("Amsterdam"), 0.5,
               net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24)};
  net::HostAllocator addrs{ixp.peering_lan()};
  ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
  std::uint32_t serial = 1;
  for (std::uint32_t member = 0; member < 6; ++member) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{64500 + member};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(serial++);
    iface.kind = ixp::AttachmentKind::kDirectColo;
    iface.equipment_city = city("Amsterdam");
    ixp.add_interface(iface);
  }
  return ixp;
}

std::size_t total_samples(const measure::IxpMeasurement& measurement) {
  std::size_t samples = 0;
  for (const auto& obs : measurement.interfaces) {
    for (const auto& [op, list] : obs.samples) samples += list.size();
    samples += obs.route_server_samples.size();
  }
  return samples;
}

measure::IxpMeasurement run_mini_campaign() {
  measure::CampaignConfig config;
  config.length = util::SimDuration::days(2);
  config.queries_per_pch_lg = 4;
  config.queries_per_ripe_lg = 3;
  config.faults = measure::FaultPlanConfig{};
  config.faults.blackhole_rate = 0.0;
  config.faults.absent_rate = 0.0;
  config.faults.ttl_switch_rate = 0.0;
  util::Rng rng(2014);
  const ixp::Ixp ixp = mini_ixp();
  return measure::run_ixp_campaign(ixp, config, rng);
}

TEST_F(FaultSitesTest, CampaignDropsInjectedProbesButStillReports) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  const std::size_t clean = total_samples(run_mini_campaign());
  ASSERT_GT(clean, 0u);

  arm("campaign.probe:every=2");
  const measure::IxpMeasurement degraded = run_mini_campaign();
  const std::size_t kept = total_samples(degraded);
  EXPECT_LT(kept, clean);
  EXPECT_GT(kept, 0u);
  EXPECT_GE(counter_value("rp.measure.probes.dropped"), clean - kept);
  EXPECT_GE(counter_value("rp.fault.fires.campaign.probe"), 1u);

  // Same spec, fresh arm: the drop pattern replays and the degraded
  // measurement is deterministic.
  arm("campaign.probe:every=2");
  EXPECT_EQ(total_samples(run_mini_campaign()), kept);
}

// --- sim.event ---------------------------------------------------------------

TEST_F(FaultSitesTest, SimEventDropSkipsTheScheduledEvent) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  sim::Simulator simulator;
  std::vector<int> ran;
  arm("sim.event:nth=2");
  for (int i = 1; i <= 3; ++i)
    simulator.schedule(
        util::SimTime::at(util::SimDuration::micros(i)),
        [&ran, i] { ran.push_back(i); });
  disarm_all();
  // The second schedule() call was injected away: the event never entered
  // the queue, but its neighbours are untouched.
  EXPECT_EQ(simulator.pending(), 2u);
  EXPECT_EQ(simulator.run(), 2u);
  EXPECT_EQ(ran, (std::vector<int>{1, 3}));
  EXPECT_GE(counter_value("rp.sim.events.dropped"), 1u);
  EXPECT_GE(counter_value("rp.fault.fires.sim.event"), 1u);
}

TEST_F(FaultSitesTest, SimEventDelayPostponesByAQuarterSecond) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  sim::Simulator simulator;
  std::int64_t ran_at = -1;
  arm("sim.event:nth=1+flip");
  simulator.schedule(util::SimTime::at(util::SimDuration::millis(1)),
                     [&ran_at, &simulator] {
                       ran_at = simulator.now().count_nanos();
                     });
  disarm_all();
  EXPECT_EQ(simulator.run(), 1u);
  // Corruption actions degenerate to a 250 ms delay here: the event still
  // runs, late enough to be an RTT outlier but inside the probe timeout.
  EXPECT_EQ(ran_at,
            (util::SimDuration::millis(1) + util::SimDuration::millis(250))
                .count_nanos());
  EXPECT_GE(counter_value("rp.sim.events.delayed"), 1u);
}

TEST_F(FaultSitesTest, CampaignAbsorbsDroppedSimEvents) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  const std::size_t clean = total_samples(run_mini_campaign());
  ASSERT_GT(clean, 0u);

  // Dropping ~1% of *all* engine events (link deliveries, switch forwards,
  // probe slots alike) thins the dataset but must never wedge the campaign.
  arm("sim.event:every=97");
  const measure::IxpMeasurement degraded = run_mini_campaign();
  const std::size_t kept = total_samples(degraded);
  EXPECT_LT(kept, clean);
  EXPECT_GT(kept, 0u);
  EXPECT_GE(counter_value("rp.sim.events.dropped"), 1u);

  // The thinner dataset still flows through the §3 filter pipeline.
  const auto analysis = measure::apply_filters(degraded, measure::FilterConfig{});
  EXPECT_EQ(analysis.interfaces.size(), degraded.interfaces.size());

  // Fresh arm, same spec: the drop pattern replays byte-identically.
  arm("sim.event:every=97");
  EXPECT_EQ(total_samples(run_mini_campaign()), kept);
}

TEST_F(FaultSitesTest, CampaignAbsorbsDelayedSimEvents) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  const std::size_t clean = total_samples(run_mini_campaign());
  ASSERT_GT(clean, 0u);

  // Delays keep events alive — every sample either arrives (possibly as an
  // outlier the minimum-RTT discipline ignores) or times out cleanly.
  arm("sim.event:every=97+flip");
  const measure::IxpMeasurement degraded = run_mini_campaign();
  const std::size_t kept = total_samples(degraded);
  EXPECT_GT(kept, 0u);
  EXPECT_LE(kept, clean);
  EXPECT_GE(counter_value("rp.sim.events.delayed"), 1u);
  EXPECT_NO_THROW(measure::apply_filters(degraded, measure::FilterConfig{}));

  arm("sim.event:every=97+flip");
  EXPECT_EQ(total_samples(run_mini_campaign()), kept);
}

}  // namespace
}  // namespace rp::fault

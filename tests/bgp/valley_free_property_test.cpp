// Property sweep: valley-free invariants of the route computer on randomly
// generated topologies. For every produced path:
//   * it follows the Gao-Rexford grammar  up* (peer-edge)? down*,
//   * its length matches the reported hop count,
//   * customer routes are preferred over peer routes over provider routes
//     whenever a route of the better class exists at all.
#include <gtest/gtest.h>

#include "bgp/route_computer.hpp"
#include "topology/generator.hpp"

namespace rp::bgp {
namespace {

class ValleyFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

topology::AsGraph generated(std::uint64_t seed) {
  topology::GeneratorConfig config;
  config.tier1_count = 3;
  config.tier2_count = 12;
  config.access_count = 30;
  config.content_count = 12;
  config.cdn_count = 3;
  config.nren_count = 4;
  config.enterprise_count = 20;
  util::Rng rng(seed);
  return topology::generate_topology(config, rng);
}

TEST_P(ValleyFreeProperty, AllPathsFollowTheGrammar) {
  const auto graph = generated(GetParam());
  const RouteComputer computer(graph);
  // Sample destinations across the graph (every 5th AS).
  for (std::size_t d = 0; d < graph.as_count(); d += 5) {
    const net::Asn destination = graph.nodes()[d].asn;
    const auto routes = computer.routes_to(destination);
    for (const auto& src : graph.nodes()) {
      const auto route = routes.route_from(src.asn);
      if (!route || route->as_path.empty()) continue;
      int phase = 0;  // 0 climbing, 1 crossed the peak, 2 descending.
      net::Asn prev = src.asn;
      for (net::Asn hop : route->as_path) {
        if (graph.is_transit(hop, prev)) {
          ASSERT_EQ(phase, 0) << "climb after descent toward "
                              << destination.to_string();
        } else if (graph.is_peering(hop, prev)) {
          ASSERT_EQ(phase, 0) << "second peering edge toward "
                              << destination.to_string();
          phase = 1;
        } else {
          ASSERT_TRUE(graph.is_transit(prev, hop))
              << "hop without a relationship";
          phase = 2;
        }
        prev = hop;
      }
      ASSERT_EQ(prev, destination);
      ASSERT_EQ(route->path_length(), routes.path_length_from(src.asn));
    }
  }
}

TEST_P(ValleyFreeProperty, RouteSourceMatchesFirstEdgeRole) {
  const auto graph = generated(GetParam());
  const RouteComputer computer(graph);
  for (std::size_t d = 0; d < graph.as_count(); d += 7) {
    const net::Asn destination = graph.nodes()[d].asn;
    const auto routes = computer.routes_to(destination);
    for (const auto& src : graph.nodes()) {
      const auto route = routes.route_from(src.asn);
      if (!route) continue;
      if (route->as_path.empty()) {
        EXPECT_EQ(route->source, RouteSource::kOrigin);
        continue;
      }
      const net::Asn next = route->next_hop();
      switch (route->source) {
        case RouteSource::kCustomer:
          EXPECT_TRUE(graph.is_transit(src.asn, next));
          break;
        case RouteSource::kPeer:
          EXPECT_TRUE(graph.is_peering(src.asn, next));
          break;
        case RouteSource::kProvider:
          EXPECT_TRUE(graph.is_transit(next, src.asn));
          break;
        case RouteSource::kOrigin:
          FAIL() << "origin with non-empty path";
      }
    }
  }
}

TEST_P(ValleyFreeProperty, CustomerRoutesAlwaysWinOverCone) {
  // If the destination is inside src's customer cone, the selected route
  // must be customer-learned (or origin) — never peer or provider.
  const auto graph = generated(GetParam());
  const RouteComputer computer(graph);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < graph.as_count() && checked < 200; i += 3) {
    const net::Asn root = graph.nodes()[i].asn;
    for (net::Asn member : graph.customer_cone(root)) {
      const auto route = computer.route(root, member);
      ASSERT_TRUE(route.has_value());
      EXPECT_TRUE(route->source == RouteSource::kCustomer ||
                  route->source == RouteSource::kOrigin)
          << root.to_string() << " -> " << member.to_string();
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ValleyFreeProperty, TierOneReachesEverythingThroughCustomersOrPeers) {
  // Provider-free networks can never hold provider routes.
  const auto graph = generated(GetParam());
  const RouteComputer computer(graph);
  net::Asn tier1;
  for (const auto& node : graph.nodes())
    if (node.cls == topology::AsClass::kTier1) {
      tier1 = node.asn;
      break;
    }
  for (std::size_t d = 0; d < graph.as_count(); d += 9) {
    const auto route = computer.route(tier1, graph.nodes()[d].asn);
    ASSERT_TRUE(route.has_value());
    EXPECT_NE(route->source, RouteSource::kProvider);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rp::bgp

#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace rp::bgp {
namespace {

using topology::AsGraph;
using topology::AsNode;

net::Asn as(std::uint32_t n) { return net::Asn{n}; }

AsNode make_node(std::uint32_t asn, const char* prefix) {
  AsNode node;
  node.asn = net::Asn{asn};
  node.name = "AS" + std::to_string(asn);
  node.prefixes.push_back(*net::Ipv4Prefix::parse(prefix));
  return node;
}

/// 1 (provider) sells to 2 (vantage) and 3; 2 peers with 4; 4 sells to 5.
AsGraph graph() {
  AsGraph g;
  g.add_as(make_node(1, "10.1.0.0/16"));
  g.add_as(make_node(2, "10.2.0.0/16"));
  g.add_as(make_node(3, "10.3.0.0/16"));
  g.add_as(make_node(4, "10.4.0.0/16"));
  g.add_as(make_node(5, "10.5.0.0/16"));
  g.add_transit(as(1), as(2));
  g.add_transit(as(1), as(3));
  g.add_peering(as(2), as(4));
  g.add_transit(as(4), as(5));
  return g;
}

TEST(Rib, BuildsRoutesForAllReachableDestinations) {
  const AsGraph g = graph();
  const Rib rib = Rib::build(g, as(2));
  EXPECT_EQ(rib.vantage(), as(2));
  EXPECT_EQ(rib.destination_count(), 5u);  // Including itself.
  EXPECT_EQ(rib.prefix_count(), 5u);
}

TEST(Rib, LookupOriginByAddress) {
  const Rib rib = Rib::build(graph(), as(2));
  EXPECT_EQ(rib.lookup_origin(*net::Ipv4Addr::parse("10.3.9.9")), as(3));
  EXPECT_EQ(rib.lookup_origin(*net::Ipv4Addr::parse("10.5.0.1")), as(5));
  EXPECT_FALSE(rib.lookup_origin(*net::Ipv4Addr::parse("192.168.0.1")));
}

TEST(Rib, RouteSourcesMatchTopologyRoles) {
  const Rib rib = Rib::build(graph(), as(2));
  ASSERT_NE(rib.route_to(as(1)), nullptr);
  EXPECT_EQ(rib.route_to(as(1))->source, RouteSource::kProvider);
  ASSERT_NE(rib.route_to(as(3)), nullptr);
  EXPECT_EQ(rib.route_to(as(3))->source, RouteSource::kProvider);
  ASSERT_NE(rib.route_to(as(4)), nullptr);
  EXPECT_EQ(rib.route_to(as(4))->source, RouteSource::kPeer);
  ASSERT_NE(rib.route_to(as(5)), nullptr);
  EXPECT_EQ(rib.route_to(as(5))->source, RouteSource::kPeer);
  ASSERT_NE(rib.route_to(as(2)), nullptr);
  EXPECT_EQ(rib.route_to(as(2))->source, RouteSource::kOrigin);
}

TEST(Rib, LookupEntryCarriesFullRoute) {
  const Rib rib = Rib::build(graph(), as(2));
  const RibEntry* entry = rib.lookup(*net::Ipv4Addr::parse("10.5.1.2"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->origin, as(5));
  EXPECT_EQ(entry->route.as_path, (std::vector<net::Asn>{as(4), as(5)}));
}

TEST(Rib, UnknownDestinationReturnsNull) {
  const Rib rib = Rib::build(graph(), as(2));
  EXPECT_EQ(rib.route_to(as(99)), nullptr);
}

TEST(Rib, UnreachableDestinationOmitted) {
  AsGraph g = graph();
  AsNode island = make_node(7, "10.7.0.0/16");
  g.add_as(std::move(island));
  const Rib rib = Rib::build(g, as(2));
  EXPECT_EQ(rib.route_to(as(7)), nullptr);
  EXPECT_FALSE(rib.lookup_origin(*net::Ipv4Addr::parse("10.7.0.1")));
}

}  // namespace
}  // namespace rp::bgp

#include "bgp/route_computer.hpp"

#include <gtest/gtest.h>

namespace rp::bgp {
namespace {

using topology::AsGraph;
using topology::AsNode;

AsNode make_node(std::uint32_t asn) {
  AsNode node;
  node.asn = net::Asn{asn};
  node.name = "AS" + std::to_string(asn);
  return node;
}

net::Asn as(std::uint32_t n) { return net::Asn{n}; }

/// A small reference topology:
///
///        1 ===== 2          (tier-1 peering)
///       / \       \_
///      3   4       5        (transit: 1->3, 1->4, 2->5)
///     /     \     / \_
///    6       7   8   9      (transit: 3->6, 4->7, 5->8, 5->9)
///    plus peering 4 -- 5 and 6 -- 7.
AsGraph reference_graph() {
  AsGraph g;
  for (std::uint32_t n : {1, 2, 3, 4, 5, 6, 7, 8, 9}) g.add_as(make_node(n));
  g.add_peering(as(1), as(2));
  g.add_transit(as(1), as(3));
  g.add_transit(as(1), as(4));
  g.add_transit(as(2), as(5));
  g.add_transit(as(3), as(6));
  g.add_transit(as(4), as(7));
  g.add_transit(as(5), as(8));
  g.add_transit(as(5), as(9));
  g.add_peering(as(4), as(5));
  g.add_peering(as(6), as(7));
  return g;
}

TEST(RouteComputer, OriginHasEmptyPath) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  const auto route = computer.route(as(6), as(6));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kOrigin);
  EXPECT_TRUE(route->as_path.empty());
}

TEST(RouteComputer, CustomerRoutePropagatesUp) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  // 1 reaches 6 through its customer chain 3 -> 6.
  const auto route = computer.route(as(1), as(6));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kCustomer);
  EXPECT_EQ(route->as_path, (std::vector<net::Asn>{as(3), as(6)}));
}

TEST(RouteComputer, PeerRouteUsedWhenNoCustomerRoute) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  // 6 -- 7 peer directly: 6 reaches 7 over the peering edge.
  const auto route = computer.route(as(6), as(7));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kPeer);
  EXPECT_EQ(route->as_path, (std::vector<net::Asn>{as(7)}));
}

TEST(RouteComputer, ProviderRouteClimbsHierarchy) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  // 8 reaches 9 via its provider 5 (5 has a customer route to 9).
  const auto route = computer.route(as(8), as(9));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kProvider);
  EXPECT_EQ(route->as_path, (std::vector<net::Asn>{as(5), as(9)}));
}

TEST(RouteComputer, ValleyFreePathCrossesAtMostOnePeakPeering) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  // 6 to 8: up to 3, up to 1, peer to 2, down to 5, down to 8? That is
  // 6-3-1=2-5-8. But 6 also peers with 7 whose provider 4 peers with 5:
  // 6=7 is peer-learned at 6 and may NOT be re-exported upward, so the
  // valid path crosses the tier-1 peering.
  const auto route = computer.route(as(6), as(8));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kProvider);
  EXPECT_EQ(route->as_path,
            (std::vector<net::Asn>{as(3), as(1), as(2), as(5), as(8)}));
}

TEST(RouteComputer, CustomerPreferredOverShorterPeerOrProvider) {
  // 1 sells to 2 and peers with 3; 3 sells to 2 as well. From 1, the route
  // to 2 must be the customer route even though the peer 3 also offers one.
  AsGraph g;
  for (std::uint32_t n : {1, 2, 3}) g.add_as(make_node(n));
  g.add_transit(as(1), as(2));
  g.add_peering(as(1), as(3));
  g.add_transit(as(3), as(2));
  const RouteComputer computer(g);
  const auto route = computer.route(as(1), as(2));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kCustomer);
  EXPECT_EQ(route->path_length(), 1u);
}

TEST(RouteComputer, CustomerPreferredEvenWhenLonger) {
  // Destination 9 reachable from 1 via customer chain 1->3->4->9 (3 hops)
  // or via peer 2 -> customer 9 (2 hops). Gao-Rexford prefers the customer
  // route despite the longer AS path.
  AsGraph g;
  for (std::uint32_t n : {1, 2, 3, 4, 9}) g.add_as(make_node(n));
  g.add_peering(as(1), as(2));
  g.add_transit(as(1), as(3));
  g.add_transit(as(3), as(4));
  g.add_transit(as(4), as(9));
  g.add_transit(as(2), as(9));
  const RouteComputer computer(g);
  const auto route = computer.route(as(1), as(9));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->source, RouteSource::kCustomer);
  EXPECT_EQ(route->as_path, (std::vector<net::Asn>{as(3), as(4), as(9)}));
}

TEST(RouteComputer, PeerRouteNotExportedToPeers) {
  // 1 -- 2 peer, 2 -- 3 peer, no other links: 1 must NOT reach 3 (a path
  // 1=2=3 would cross two peering edges — a valley violation).
  AsGraph g;
  for (std::uint32_t n : {1, 2, 3}) g.add_as(make_node(n));
  g.add_peering(as(1), as(2));
  g.add_peering(as(2), as(3));
  const RouteComputer computer(g);
  EXPECT_FALSE(computer.route(as(1), as(3)).has_value());
  EXPECT_TRUE(computer.route(as(1), as(2)).has_value());
}

TEST(RouteComputer, ProviderRouteNotExportedUpward) {
  // 3 buys from 1 and from 2; 1 and 2 are otherwise unconnected. 1 must not
  // reach 2 "through" their shared customer 3 (customer would have to
  // export a provider-learned route upward).
  AsGraph g;
  for (std::uint32_t n : {1, 2, 3}) g.add_as(make_node(n));
  g.add_transit(as(1), as(3));
  g.add_transit(as(2), as(3));
  const RouteComputer computer(g);
  EXPECT_FALSE(computer.route(as(1), as(2)).has_value());
  // But both providers reach the shared customer.
  EXPECT_TRUE(computer.route(as(1), as(3)).has_value());
  EXPECT_TRUE(computer.route(as(2), as(3)).has_value());
}

TEST(RouteComputer, ShorterCustomerRoutePreferred) {
  // Two customer routes from 1 to 4: 1->2->4 and 1->3a->3b->4. Shorter wins.
  AsGraph g;
  for (std::uint32_t n : {1, 2, 31, 32, 4}) g.add_as(make_node(n));
  g.add_transit(as(1), as(2));
  g.add_transit(as(2), as(4));
  g.add_transit(as(1), as(31));
  g.add_transit(as(31), as(32));
  g.add_transit(as(32), as(4));
  const RouteComputer computer(g);
  const auto route = computer.route(as(1), as(4));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->as_path, (std::vector<net::Asn>{as(2), as(4)}));
}

TEST(RouteComputer, TieBreaksOnLowerNextHopAsn) {
  // Equal-length customer routes via 2 and 5: next hop 2 wins.
  AsGraph g;
  for (std::uint32_t n : {1, 2, 5, 9}) g.add_as(make_node(n));
  g.add_transit(as(1), as(2));
  g.add_transit(as(1), as(5));
  g.add_transit(as(2), as(9));
  g.add_transit(as(5), as(9));
  const RouteComputer computer(g);
  const auto route = computer.route(as(1), as(9));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->next_hop(), as(2));
}

TEST(RouteComputer, UnreachableIsolatedNode) {
  AsGraph g;
  g.add_as(make_node(1));
  g.add_as(make_node(2));
  const RouteComputer computer(g);
  EXPECT_FALSE(computer.route(as(1), as(2)).has_value());
  const auto routes = computer.routes_to(as(2));
  EXPECT_FALSE(routes.reachable_from(as(1)));
  EXPECT_TRUE(routes.reachable_from(as(2)));
  EXPECT_THROW(routes.source_at(as(1)), std::out_of_range);
  EXPECT_THROW(routes.path_length_from(as(1)), std::out_of_range);
}

TEST(RouteComputer, PathLengthsConsistentWithPaths) {
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  for (const auto& src : g.nodes()) {
    for (const auto& dst : g.nodes()) {
      const auto routes = computer.routes_to(dst.asn);
      const auto route = routes.route_from(src.asn);
      if (!route) continue;
      EXPECT_EQ(route->path_length(),
                routes.path_length_from(src.asn));
      if (!route->as_path.empty()) {
        EXPECT_EQ(route->as_path.back(), dst.asn);
      }
    }
  }
}

TEST(RouteComputer, AllPairsPathsAreValleyFree) {
  // Property: every produced path, annotated with the edge types, matches
  // the valley-free grammar: up* (peer)? down*.
  const AsGraph g = reference_graph();
  const RouteComputer computer(g);
  for (const auto& dst : g.nodes()) {
    const auto routes = computer.routes_to(dst.asn);
    for (const auto& src : g.nodes()) {
      const auto route = routes.route_from(src.asn);
      if (!route || route->as_path.empty()) continue;
      int phase = 0;  // 0 = climbing, 1 = crossed peak, 2 = descending.
      net::Asn prev = src.asn;
      for (net::Asn hop : route->as_path) {
        if (g.is_transit(hop, prev)) {
          // prev -> hop is customer-to-provider (climbing).
          EXPECT_EQ(phase, 0) << "climb after descent";
        } else if (g.is_peering(hop, prev)) {
          EXPECT_EQ(phase, 0) << "second peak";
          phase = 1;
        } else {
          ASSERT_TRUE(g.is_transit(prev, hop));
          phase = 2;
        }
        prev = hop;
      }
    }
  }
}

TEST(RouteSourceToString, Coverage) {
  EXPECT_EQ(to_string(RouteSource::kOrigin), "origin");
  EXPECT_EQ(to_string(RouteSource::kCustomer), "customer");
  EXPECT_EQ(to_string(RouteSource::kPeer), "peer");
  EXPECT_EQ(to_string(RouteSource::kProvider), "provider");
}

}  // namespace
}  // namespace rp::bgp

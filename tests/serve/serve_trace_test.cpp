// Integration test of request tracing through the serve daemon: with a
// Chrome-trace session active and 6 concurrent clients against an 8-thread
// execution pool, the trace must stay balanced (every span begin has an end,
// every flow start has a finish), sorted by timestamp, and at least one
// request's flow must cross threads (reader → dispatcher/worker).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "util/thread_pool.hpp"

namespace rp::serve {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

/// Extracts `"key":<number>` or `"key":"<string>"` from one event line.
std::string json_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  std::string out;
  if (line[begin] == '"') {
    ++begin;
    while (begin < line.size() && line[begin] != '"') out += line[begin++];
  } else {
    while (begin < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[begin])) != 0 ||
            line[begin] == '.' || line[begin] == '-'))
      out += line[begin++];
  }
  return out;
}

TEST(ServeTrace, ConcurrentClientsProduceBalancedCrossThreadFlows) {
  const auto path = std::filesystem::temp_directory_path() /
                    "rp_serve_trace_test.json";
  obs::stop_trace();  // In case RP_TRACE armed a session at load.
  util::ThreadPool::set_global_threads(8);
  ASSERT_TRUE(obs::start_trace(path.string()));

  {
    DaemonConfig config;
    config.port = 0;
    config.worlds = 2;
    config.cache_dir = std::filesystem::temp_directory_path() /
                       "rp_serve_trace_test_cache";
    std::filesystem::create_directories(config.cache_dir);
    Daemon daemon(config);
    daemon.start();
    const std::uint16_t port = daemon.port();

    constexpr std::size_t kClients = 6;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClients; ++c)
      threads.emplace_back([c, port] {
        Client client = Client::connect("127.0.0.1", port);
        Request ping;
        ping.type = RequestType::kPing;
        ping.id = c;
        ping.token = "t" + std::to_string(c);
        EXPECT_EQ(client.call(ping).status, Status::kOk);
        for (std::uint64_t i = 0; i < 3; ++i) {
          Request info;
          info.type = RequestType::kWorldInfo;
          info.id = 100 * c + i;
          info.world.fast = true;
          EXPECT_EQ(client.call(info).status, Status::kOk);
        }
      });
    for (auto& thread : threads) thread.join();
    daemon.stop();
  }

  const std::size_t events = obs::stop_trace();
  util::ThreadPool::set_global_threads(0);  // Restore the RP_THREADS default.
  ASSERT_GT(events, 0u);
  const std::string text = slurp(path);
  std::filesystem::remove(path);

  // Span balance: every begin has a matching end.
  const std::size_t begins = count_occurrences(text, "\"ph\":\"B\"");
  const std::size_t ends = count_occurrences(text, "\"ph\":\"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);

  // Flow balance: every request's arrow starts exactly once and finishes
  // exactly once (busy/kill paths included).
  const std::size_t flow_starts = count_occurrences(text, "\"ph\":\"s\"");
  const std::size_t flow_ends = count_occurrences(text, "\"ph\":\"f\"");
  // 6 pings + 18 world-infos, each one arrow.
  EXPECT_GE(flow_starts, 24u);
  EXPECT_EQ(flow_starts, flow_ends);

  // The writer sorts events by timestamp.
  double last = -1.0;
  std::size_t pos = 0;
  while ((pos = text.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::stod(text.substr(pos));
    EXPECT_GE(ts, last);
    last = ts;
  }

  // Cross-thread causality: world requests begin their flow on a reader
  // thread and finish on the dispatcher, so at least one flow id must
  // appear on two distinct tids.
  std::map<std::string, std::set<std::string>> flow_tids;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string phase = json_value(line, "ph");
    if (phase != "s" && phase != "t" && phase != "f") continue;
    const std::string id = json_value(line, "id");
    const std::string tid = json_value(line, "tid");
    ASSERT_FALSE(id.empty());
    ASSERT_FALSE(tid.empty());
    EXPECT_NE(id, "0x0");  // Every tracked request got a real server id.
    flow_tids[id].insert(tid);
  }
  bool crossed = false;
  for (const auto& [id, tids] : flow_tids)
    if (tids.size() >= 2) crossed = true;
  EXPECT_TRUE(crossed);
}

}  // namespace
}  // namespace rp::serve

// Integration tests of the daemon's stats surface over real loopback
// sockets: the kStats request shape, pool/queue/latency rows after traffic,
// time-series windows, and serve.stats fault isolation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace rp::serve {
namespace {

const std::filesystem::path& shared_cache_dir() {
  static const std::filesystem::path dir = [] {
    const auto path =
        std::filesystem::temp_directory_path() / "rp_serve_stats_test_cache";
    std::filesystem::create_directories(path);
    return path;
  }();
  return dir;
}

DaemonConfig test_config() {
  DaemonConfig config;
  config.port = 0;
  config.worlds = 2;
  config.cache_dir = shared_cache_dir();
  return config;
}

Request ping_request(const std::string& token) {
  Request request;
  request.type = RequestType::kPing;
  request.id = 1;
  request.token = token;
  return request;
}

Request world_info_request(std::uint64_t id = 2) {
  Request request;
  request.type = RequestType::kWorldInfo;
  request.id = id;
  request.world.fast = true;
  return request;
}

Request stats_request(std::uint64_t window = 0) {
  Request request;
  request.type = RequestType::kStats;
  request.id = 42;
  request.stats_window = window;
  return request;
}

bool has_field(const Response& response, const std::string& key) {
  for (const auto& [k, v] : response.fields)
    if (k == key) return true;
  return false;
}

TEST(Stats, AnswersInlineOnAFreshDaemon) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  // The very first request: no world exists and none is needed.
  const Response response = client.call(stats_request());
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.id, 42u);
  EXPECT_TRUE(has_field(response, "stats.uptime_s"));
  EXPECT_TRUE(has_field(response, "stats.completed"));
  EXPECT_GT(std::stoull(std::string(response.field("stats.ring_capacity"))),
            0u);
  EXPECT_GT(std::stoull(std::string(response.field("queue.capacity"))), 0u);
  EXPECT_TRUE(has_field(response, "queue.depth"));
  EXPECT_TRUE(has_field(response, "queue.high_water"));
  EXPECT_EQ(response.field("pool.worlds"), "0");  // Nothing resident yet.
  EXPECT_TRUE(has_field(response, "ts.samples"));
  daemon.stop();
}

TEST(Stats, ReportsTrafficPoolAndPerTypeLatencies) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  client.call(ping_request("one"));
  client.call(ping_request("two"));
  client.call(world_info_request(10));  // Miss: builds the world.
  client.call(world_info_request(11));  // Hit: bumps the pool hit count.

  // Inline requests (ping, stats) are recorded before the reader touches
  // the connection's next frame, but queued requests land their record just
  // after the response write — poll briefly until the world-info row shows.
  Response response;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    response = client.call(stats_request());
    ASSERT_EQ(response.status, Status::kOk);
    const std::string count(response.field("req.world-info.count"));
    if ((!count.empty() && std::stoull(count) >= 2) ||
        std::chrono::steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Per-type latency rows: pings were inline, world-infos went through the
  // queue; both carry count + quantiles.
  EXPECT_GE(std::stoull(std::string(response.field("req.ping.count"))), 2u);
  EXPECT_TRUE(has_field(response, "req.ping.p50_us"));
  EXPECT_TRUE(has_field(response, "req.ping.p99_us"));
  EXPECT_TRUE(has_field(response, "req.ping.max_us"));
  EXPECT_GE(std::stoull(std::string(response.field("req.world-info.count"))),
            2u);
  EXPECT_GT(std::stod(std::string(response.field("req.world-info.p99_us"))),
            0.0);

  // The pool shows the one resident world with a real memory estimate.
  EXPECT_EQ(response.field("pool.worlds"), "1");
  EXPECT_EQ(response.field("pool.resident"), "1");
  EXPECT_EQ(response.field("pool.world.0.ready"), "1");
  EXPECT_EQ(response.field("pool.world.0.digest").size(), 16u);
  EXPECT_GE(std::stoull(std::string(response.field("pool.world.0.hits"))),
            1u);
  EXPECT_GT(
      std::stoull(std::string(response.field("pool.world.0.resident_bytes"))),
      0u);

  // Traffic flowed through the admission queue at least once.
  EXPECT_GE(std::stoull(std::string(response.field("queue.high_water"))), 1u);
  EXPECT_GE(std::stoull(std::string(response.field("stats.completed"))), 4u);

  // The slow-query log is populated and ordered by compute time descending.
  // (Exact cross-read stability lives in the RequestTracer unit tests — over
  // the socket each stats request records itself, so the tracer is never
  // quiescent between two calls.)
  ASSERT_TRUE(has_field(response, "slow.0.request_id"));
  ASSERT_TRUE(has_field(response, "slow.0.compute_us"));
  if (has_field(response, "slow.1.compute_us")) {
    EXPECT_GE(std::stod(std::string(response.field("slow.0.compute_us"))),
              std::stod(std::string(response.field("slow.1.compute_us"))));
  }
  daemon.stop();
}

TEST(Stats, WindowEmitsTimeSeriesRows) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  client.call(ping_request("warm"));  // Fills the phase histograms.

  // Drive the recorder deterministically instead of waiting for its thread.
  obs::TimeSeriesRecorder::global().sample_once();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  obs::TimeSeriesRecorder::global().sample_once();

  const Response response = client.call(stats_request(/*window=*/4));
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_GE(std::stoull(std::string(response.field("ts.samples"))), 2u);
  // At least one serve-side series rode along (the ping filled
  // rp.serve.phase.compute_ns, so its p50 series must exist).
  EXPECT_TRUE(has_field(response, "ts.rp.serve.phase.compute_ns.p50"));
  EXPECT_FALSE(
      std::string(response.field("ts.rp.serve.phase.compute_ns.p50"))
          .empty());

  // window == 0 keeps the payload small: no ts.<series> rows at all.
  const Response bare = client.call(stats_request(0));
  EXPECT_FALSE(has_field(bare, "ts.rp.serve.phase.compute_ns.p50"));
  EXPECT_TRUE(has_field(bare, "ts.samples"));
  daemon.stop();
}

TEST(Stats, EmptyHistogramQuantilesRenderAsNullNotNan) {
  // MetricValue::quantile signals "no samples" with NaN by contract...
  obs::MetricValue empty;
  empty.kind = obs::MetricKind::kHistogram;
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
  // ...and the serve boundary must map that to null — "nan" is not JSON, so
  // it used to poison `rpq stats --json` consumers downstream.
  EXPECT_EQ(format_double_or_null(empty.quantile(0.99)), "null");
  EXPECT_EQ(format_double_or_null(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(format_double_or_null(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(format_double_or_null(1.5), "1.5");

  // No field of a live stats response ever leaks a bare nan/inf token.
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  client.call(ping_request("warm"));
  const Response response = client.call(stats_request(/*window=*/4));
  ASSERT_EQ(response.status, Status::kOk);
  for (const auto& [key, value] : response.fields) {
    EXPECT_EQ(value.find("nan"), std::string::npos) << key << "=" << value;
    EXPECT_EQ(value.find("inf"), std::string::npos) << key << "=" << value;
  }
  daemon.stop();
}

TEST(Stats, StatsFaultKillsOnlyThatConnection) {
  Daemon daemon(test_config());
  daemon.start();
  Client healthy = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(healthy.call(ping_request("pre")).status, Status::kOk);

  fault::arm(std::string(fault::kSiteServeStats) + ":nth=1");
  Client victim = Client::connect("127.0.0.1", daemon.port());
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(stats_request()));
  victim.send_bytes(frame);
  EXPECT_THROW(victim.read_payload(), ClientError);
  fault::disarm_all();

  // Only that connection died: the healthy one still pings, and a fresh
  // connection's stats request succeeds.
  EXPECT_EQ(healthy.call(ping_request("post")).field("token"), "post");
  Client fresh = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(fresh.call(stats_request()).status, Status::kOk);
  daemon.stop();
}

}  // namespace
}  // namespace rp::serve

// Integration tests of the serve daemon over real loopback sockets:
// byte-identical responses across clients and thread counts, per-connection
// fault isolation (serve.accept / serve.parse / serve.respond and malformed
// frames), admission control, and protocol-driven shutdown.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "evolve/timeline.hpp"
#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "util/thread_pool.hpp"

namespace rp::serve {
namespace {

/// One snapshot cache shared by every daemon in this binary, so only the
/// first world build pays full price (later daemons load the snapshot).
const std::filesystem::path& shared_cache_dir() {
  static const std::filesystem::path dir = [] {
    const auto path =
        std::filesystem::temp_directory_path() / "rp_serve_daemon_test_cache";
    std::filesystem::create_directories(path);
    return path;
  }();
  return dir;
}

DaemonConfig test_config() {
  DaemonConfig config;
  config.port = 0;
  config.worlds = 2;
  config.cache_dir = shared_cache_dir();
  return config;
}

Request ping_request(const std::string& token) {
  Request request;
  request.type = RequestType::kPing;
  request.id = 1;
  request.token = token;
  return request;
}

Request world_info_request(std::uint64_t id = 2) {
  Request request;
  request.type = RequestType::kWorldInfo;
  request.id = id;
  request.world.fast = true;
  return request;
}

Request viability_request(std::uint64_t id = 3) {
  Request request;
  request.type = RequestType::kViability;
  request.id = id;
  request.world.fast = true;
  return request;
}

TEST(Daemon, PingRoundTripsAndEchoesId) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  Request request = ping_request("abc");
  request.id = 77;
  const Response response = client.call(request);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.id, 77u);
  EXPECT_EQ(response.field("token"), "abc");
  daemon.stop();
}

TEST(Daemon, ResponsesAreByteIdenticalAcrossConcurrentClients) {
  Daemon daemon(test_config());
  daemon.start();
  const std::uint16_t port = daemon.port();

  constexpr std::size_t kClients = 6;
  std::vector<std::vector<std::uint8_t>> info(kClients), viability(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c)
    threads.emplace_back([c, port, &info, &viability] {
      Client client = Client::connect("127.0.0.1", port);
      info[c] = client.call_raw(world_info_request());
      viability[c] = client.call_raw(viability_request());
    });
  for (auto& thread : threads) thread.join();

  for (std::size_t c = 1; c < kClients; ++c) {
    EXPECT_EQ(info[c], info[0]) << "client " << c;
    EXPECT_EQ(viability[c], viability[0]) << "client " << c;
  }
  daemon.stop();
}

TEST(Daemon, ResponsesAreByteIdenticalAcrossThreadCounts) {
  std::vector<std::uint8_t> wide, narrow;
  {
    Daemon daemon(test_config());
    daemon.start();
    Client client = Client::connect("127.0.0.1", daemon.port());
    wide = client.call_raw(viability_request());
    daemon.stop();
  }
  util::ThreadPool::set_global_threads(1);
  {
    Daemon daemon(test_config());
    daemon.start();
    Client client = Client::connect("127.0.0.1", daemon.port());
    narrow = client.call_raw(viability_request());
    daemon.stop();
  }
  util::ThreadPool::set_global_threads(0);  // Restore the RP_THREADS default.
  EXPECT_EQ(wide, narrow);
}

TEST(Daemon, MalformedFrameKillsOnlyThatConnection) {
  Daemon daemon(test_config());
  daemon.start();
  Client healthy = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(healthy.call(ping_request("before")).status, Status::kOk);

  Client poisoned = Client::connect("127.0.0.1", daemon.port());
  // A length prefix promising ~2^62 bytes: a protocol violation.
  const std::uint8_t poison[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                 0xff, 0xff, 0xff, 0x3f};
  poisoned.send_bytes(poison);
  EXPECT_THROW(poisoned.read_payload(), ClientError);

  // The healthy connection (and the daemon) carry on.
  EXPECT_EQ(healthy.call(ping_request("after")).field("token"), "after");
  daemon.stop();
}

TEST(Daemon, ParseFaultKillsOneConnectionOnly) {
  Daemon daemon(test_config());
  daemon.start();
  Client healthy = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(healthy.call(ping_request("pre")).status, Status::kOk);

  fault::arm(std::string(fault::kSiteServeParse) + ":nth=1");
  Client victim = Client::connect("127.0.0.1", daemon.port());
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(ping_request("doomed")));
  victim.send_bytes(frame);
  EXPECT_THROW(victim.read_payload(), ClientError);
  fault::disarm_all();

  EXPECT_EQ(healthy.call(ping_request("post")).field("token"), "post");
  daemon.stop();
}

TEST(Daemon, AcceptFaultRejectsOneConnectionOnly) {
  Daemon daemon(test_config());
  daemon.start();
  Client healthy = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(healthy.call(ping_request("pre")).status, Status::kOk);

  fault::arm(std::string(fault::kSiteServeAccept) + ":nth=1");
  // The TCP handshake succeeds (the listener accepted), but the daemon
  // closes the socket immediately: the first read sees EOF.
  Client rejected = Client::connect("127.0.0.1", daemon.port());
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(ping_request("nope")));
  EXPECT_THROW(
      {
        rejected.send_bytes(frame);
        rejected.read_payload();
      },
      ClientError);
  fault::disarm_all();

  // New connections are accepted again; the old one never noticed.
  Client fresh = Client::connect("127.0.0.1", daemon.port());
  EXPECT_EQ(fresh.call(ping_request("back")).status, Status::kOk);
  EXPECT_EQ(healthy.call(ping_request("post")).field("token"), "post");
  daemon.stop();
}

TEST(Daemon, RespondFaultKillsOneConnectionAndAnswersStayIdentical) {
  Daemon daemon(test_config());
  daemon.start();
  Client healthy = Client::connect("127.0.0.1", daemon.port());
  // Baseline answer (also warms the world so the faulted exchange is quick).
  const std::vector<std::uint8_t> baseline =
      healthy.call_raw(world_info_request());

  fault::arm(std::string(fault::kSiteServeRespond) + ":nth=1");
  Client victim = Client::connect("127.0.0.1", daemon.port());
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(world_info_request()));
  victim.send_bytes(frame);
  EXPECT_THROW(victim.read_payload(), ClientError);
  fault::disarm_all();

  // The concurrent client's next answer is byte-identical to its baseline:
  // the poisoned connection corrupted nothing shared.
  EXPECT_EQ(healthy.call_raw(world_info_request()), baseline);
  daemon.stop();
}

TEST(Daemon, ConfigErrorsAreSoftErrors) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  Request request = world_info_request();
  request.world.fields = {{"no.such.field", "1"}};
  const Response response = client.call(request);
  EXPECT_EQ(response.status, Status::kError);
  EXPECT_NE(response.message.find("no.such.field"), std::string::npos);
  // The connection survives a soft error.
  EXPECT_EQ(client.call(ping_request("alive")).status, Status::kOk);
  daemon.stop();
}

TEST(Daemon, PipelinedSameWorldQueriesComeBackInOrder) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  client.call(world_info_request());  // Warm the world first.

  std::vector<std::uint8_t> burst;
  constexpr std::uint64_t kCount = 8;
  for (std::uint64_t i = 0; i < kCount; ++i)
    append_frame(burst, encode_request(world_info_request(100 + i)));
  client.send_bytes(burst);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const Response response = decode_response(client.read_payload());
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.id, 100 + i);
  }
  daemon.stop();
}

TEST(Daemon, EpochQueriesReplayTimelinesOnTheWarmWorld) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  // Canonical text crosses the wire, exactly as rpq sends it; the timeline's
  // fast line makes its base the same world the requests address.
  const std::string canonical = evolve::canonical_timeline_text(
      evolve::parse_timeline("name serve-tl\nfast 1\n"
                             "epoch a\njoin LINX 2 1\ntraffic 1.5\n"
                             "epoch b\nleave LINX 1\n"));

  Request at;
  at.type = RequestType::kWorldAtEpoch;
  at.id = 21;
  at.world.fast = true;
  at.timeline = canonical;
  at.epoch = 0;
  const Response r0 = client.call(at);
  ASSERT_EQ(r0.status, Status::kOk) << r0.message;
  EXPECT_EQ(r0.field("timeline.name"), "serve-tl");
  EXPECT_EQ(r0.field("epoch.label"), "a");
  EXPECT_EQ(r0.field("epoch.joins"), "2");

  at.epoch = 5;  // Past the last epoch: a soft error, not a dead connection.
  EXPECT_EQ(client.call(at).status, Status::kError);

  Request series;
  series.type = RequestType::kEpochSeries;
  series.id = 22;
  series.world.fast = true;
  series.timeline = canonical;
  series.group = 4;
  series.max_steps = 4;
  const Response rs = client.call(series);
  ASSERT_EQ(rs.status, Status::kOk) << rs.message;
  EXPECT_EQ(rs.field("series.epochs"), "2");
  EXPECT_EQ(rs.field("epoch.0.label"), "a");
  EXPECT_EQ(rs.field("epoch.1.label"), "b");
  EXPECT_FALSE(rs.field("epoch.1.transit_bps").empty());

  // A timeline whose base disagrees with the addressed world is rejected:
  // the epochs would describe a different world than the client named.
  Request mismatch = at;
  mismatch.epoch = 0;
  mismatch.timeline = evolve::canonical_timeline_text(evolve::parse_timeline(
      "name other\nfast 1\nbase seed 99\nepoch a\ntraffic 1.1\n"));
  EXPECT_EQ(client.call(mismatch).status, Status::kError);
  daemon.stop();
}

TEST(Daemon, ShutdownRequestStopsTheDaemon) {
  Daemon daemon(test_config());
  daemon.start();
  Client client = Client::connect("127.0.0.1", daemon.port());
  Request request;
  request.type = RequestType::kShutdown;
  request.id = 9;
  const Response response = client.call(request);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.id, 9u);
  daemon.wait();  // Returns because the client asked for shutdown.
  daemon.stop();
}

TEST(RequestQueue, AdmissionControlIsBoundedAndFifo) {
  RequestQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  QueueItem item;
  item.request = ping_request("a");
  EXPECT_TRUE(queue.try_push(item));
  item.request = ping_request("b");
  EXPECT_TRUE(queue.try_push(item));
  item.request = ping_request("overflow");
  EXPECT_FALSE(queue.try_push(item));  // Full: the busy path.

  const auto batch = queue.pop_batch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.token, "a");
  EXPECT_EQ(batch[1].request.token, "b");

  // After stop: pending items drain, new pushes fail, empty pop means done.
  item.request = ping_request("late");
  EXPECT_TRUE(queue.try_push(item));
  queue.stop();
  EXPECT_FALSE(queue.try_push(item));
  EXPECT_EQ(queue.pop_batch(8).size(), 1u);
  EXPECT_TRUE(queue.pop_batch(8).empty());
}

TEST(RequestQueue, PopBatchHonoursMaxBatch) {
  RequestQueue queue(8);
  QueueItem item;
  for (int i = 0; i < 5; ++i) {
    item.request = ping_request(std::to_string(i));
    ASSERT_TRUE(queue.try_push(item));
  }
  EXPECT_EQ(queue.pop_batch(2).size(), 2u);
  EXPECT_EQ(queue.pop_batch(2).size(), 2u);
  EXPECT_EQ(queue.pop_batch(2).size(), 1u);
}

}  // namespace
}  // namespace rp::serve

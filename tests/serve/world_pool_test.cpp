// WorldPool tests: single-flight loading, LRU eviction under capacity
// pressure, and the pool counters.
#include "serve/world_pool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "core/config_fields.hpp"
#include "obs/metrics.hpp"

namespace rp::serve {
namespace {

struct MetricsOn {
  MetricsOn() {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
  }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

std::uint64_t counter_value(const std::string& name) {
  for (const auto& m : obs::MetricsRegistry::global().snapshot())
    if (m.name == name) return m.count;
  return 0;
}

core::ScenarioConfig fast_config(std::uint64_t seed) {
  core::ScenarioConfig config;
  core::apply_fast_mode(config);
  config.seed = seed;
  return config;
}

std::filesystem::path fresh_cache_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("rp_world_pool_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(WorldPool, SingleFlightBuildsOnceUnderContention) {
  MetricsOn on;
  WorldPool pool(4, fresh_cache_dir("singleflight"));
  const core::ScenarioConfig config = fast_config(2014);

  std::vector<std::shared_ptr<const World>> worlds(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t)
    threads.emplace_back(
        [&pool, &config, &worlds, t] { worlds[t] = pool.acquire(config); });
  for (auto& thread : threads) thread.join();

  // Everyone got the same resident instance: one build, one miss.
  for (std::size_t t = 1; t < 8; ++t) EXPECT_EQ(worlds[t], worlds[0]);
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_EQ(counter_value("rp.serve.pool.misses"), 1u);
  // Every non-builder acquire resolves through the ready branch — 7 hits,
  // however many single-flight waits scheduling produced along the way.
  EXPECT_EQ(counter_value("rp.serve.pool.hits"), 7u);
  EXPECT_EQ(counter_value("rp.serve.pool.evictions"), 0u);
}

TEST(WorldPool, SameConfigHitsLaterAcquires) {
  MetricsOn on;
  WorldPool pool(2, fresh_cache_dir("hits"));
  const core::ScenarioConfig config = fast_config(7);
  const auto first = pool.acquire(config);
  const auto second = pool.acquire(config);
  EXPECT_EQ(first, second);
  EXPECT_EQ(counter_value("rp.serve.pool.misses"), 1u);
  EXPECT_EQ(counter_value("rp.serve.pool.hits"), 1u);
}

TEST(WorldPool, EvictsLeastRecentlyUsedOverCapacity) {
  MetricsOn on;
  WorldPool pool(2, fresh_cache_dir("lru"));
  const core::ScenarioConfig a = fast_config(1);
  const core::ScenarioConfig b = fast_config(2);
  const core::ScenarioConfig c = fast_config(3);

  const auto world_a = pool.acquire(a);
  const auto world_b = pool.acquire(b);
  EXPECT_EQ(pool.resident(), 2u);

  // Touch a so b becomes the least recently used, then overflow with c.
  pool.acquire(a);
  pool.acquire(c);
  EXPECT_EQ(pool.resident(), 2u);
  EXPECT_EQ(counter_value("rp.serve.pool.evictions"), 1u);

  // a stayed resident (a hit, not a rebuild); b was evicted (a fresh miss).
  const std::uint64_t misses_before =
      counter_value("rp.serve.pool.misses");
  pool.acquire(a);
  EXPECT_EQ(counter_value("rp.serve.pool.misses"), misses_before);
  pool.acquire(b);
  EXPECT_EQ(counter_value("rp.serve.pool.misses"), misses_before + 1);

  // Eviction dropped only the pool's reference: our handle still works.
  EXPECT_GT(world_b->scenario().graph().as_count(), 0u);
}

TEST(WorldPool, CapacityFloorsAtOne) {
  WorldPool pool(0, fresh_cache_dir("floor"));
  EXPECT_EQ(pool.capacity(), 1u);
  const auto world = pool.acquire(fast_config(5));
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(pool.resident(), 1u);
}

TEST(WorldPool, LazyArtifactsBuildOnceAndAreShared) {
  WorldPool pool(1, fresh_cache_dir("lazy"));
  const auto world = pool.acquire(fast_config(11));
  const auto* study = &world->offload();
  EXPECT_EQ(study, &world->offload());  // Second call reuses the artifact.
  const auto& curve = world->greedy_curve();
  EXPECT_EQ(&curve, &world->greedy_curve());
  EXPECT_FALSE(curve.empty());
  const auto* spread = &world->spread();
  EXPECT_EQ(spread, &world->spread());
}

}  // namespace
}  // namespace rp::serve

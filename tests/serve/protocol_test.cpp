// Unit tests of the rp::serve wire protocol: request/response round trips,
// framing, and malformed-input rejection.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/varint.hpp"

namespace rp::serve {
namespace {

TEST(Protocol, PingRoundTrips) {
  Request request;
  request.type = RequestType::kPing;
  request.id = 42;
  request.token = "hello";
  const Request decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.type, RequestType::kPing);
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.token, "hello");
}

TEST(Protocol, WorldSpecRoundTrips) {
  Request request;
  request.type = RequestType::kWorldInfo;
  request.id = 7;
  request.world.fast = true;
  request.world.fields = {{"seed", "99"}, {"topology.tier1_count", "4"}};
  const Request decoded = decode_request(encode_request(request));
  EXPECT_TRUE(decoded.world.fast);
  ASSERT_EQ(decoded.world.fields.size(), 2u);
  EXPECT_EQ(decoded.world.fields[0].first, "seed");
  EXPECT_EQ(decoded.world.fields[0].second, "99");
  EXPECT_EQ(decoded.world.fields[1].first, "topology.tier1_count");
}

TEST(Protocol, ViabilityCarriesPricesAndDecayMode) {
  Request request;
  request.type = RequestType::kViability;
  request.prices = {0.9, 0.03, 0.25, 0.004, 0.40};
  request.fitted_decay = false;
  request.decay = 0.27;
  const Request decoded = decode_request(encode_request(request));
  EXPECT_DOUBLE_EQ(decoded.prices.p, 0.9);
  EXPECT_DOUBLE_EQ(decoded.prices.v, 0.40);
  EXPECT_FALSE(decoded.fitted_decay);
  EXPECT_DOUBLE_EQ(decoded.decay, 0.27);

  request.fitted_decay = true;
  const Request fitted = decode_request(encode_request(request));
  EXPECT_TRUE(fitted.fitted_decay);
}

TEST(Protocol, WhatIfModesRoundTrip) {
  Request econ;
  econ.type = RequestType::kWhatIf;
  econ.whatif_mode = 1;
  econ.variant = {1.0, 0.02, 0.20, 0.01, 0.50};
  const Request econ_decoded = decode_request(encode_request(econ));
  EXPECT_EQ(econ_decoded.whatif_mode, 1);
  EXPECT_DOUBLE_EQ(econ_decoded.variant.h, 0.01);

  Request peering;
  peering.type = RequestType::kWhatIf;
  peering.whatif_mode = 2;
  peering.group = 3;
  peering.reached_ixps = {"DE-CIX", "AMS-IX"};
  peering.added_ixps = {"LINX"};
  const Request peering_decoded = decode_request(encode_request(peering));
  EXPECT_EQ(peering_decoded.whatif_mode, 2);
  EXPECT_EQ(peering_decoded.group, 3);
  ASSERT_EQ(peering_decoded.reached_ixps.size(), 2u);
  EXPECT_EQ(peering_decoded.reached_ixps[1], "AMS-IX");
  ASSERT_EQ(peering_decoded.added_ixps.size(), 1u);
  EXPECT_EQ(peering_decoded.added_ixps[0], "LINX");
}

TEST(Protocol, EpochRequestsRoundTrip) {
  Request at;
  at.type = RequestType::kWorldAtEpoch;
  at.id = 9;
  at.world.fast = true;
  at.timeline = "name tl\nepoch a\ntraffic 1.3\n";
  at.epoch = 3;
  const Request at_decoded = decode_request(encode_request(at));
  EXPECT_EQ(at_decoded.type, RequestType::kWorldAtEpoch);
  EXPECT_TRUE(at_decoded.world.fast);
  EXPECT_EQ(at_decoded.timeline, at.timeline);
  EXPECT_EQ(at_decoded.epoch, 3u);

  Request series;
  series.type = RequestType::kEpochSeries;
  series.timeline = at.timeline;
  series.group = 2;
  series.max_steps = 6;
  const Request series_decoded = decode_request(encode_request(series));
  EXPECT_EQ(series_decoded.type, RequestType::kEpochSeries);
  EXPECT_EQ(series_decoded.timeline, at.timeline);
  EXPECT_EQ(series_decoded.group, 2);
  EXPECT_EQ(series_decoded.max_steps, 6u);
}

TEST(Protocol, ResponseRoundTripsEveryStatus) {
  Response ok;
  ok.id = 5;
  ok.fields = {{"a", "1"}, {"b", "two"}};
  const Response ok_decoded = decode_response(encode_response(ok));
  EXPECT_EQ(ok_decoded.status, Status::kOk);
  EXPECT_EQ(ok_decoded.id, 5u);
  EXPECT_EQ(ok_decoded.field("b"), "two");
  EXPECT_EQ(ok_decoded.field("missing"), "");

  Response error;
  error.status = Status::kError;
  error.id = 6;
  error.message = "boom";
  const Response error_decoded = decode_response(encode_response(error));
  EXPECT_EQ(error_decoded.status, Status::kError);
  EXPECT_EQ(error_decoded.message, "boom");

  Response busy;
  busy.status = Status::kBusy;
  busy.message = "queue full";
  EXPECT_EQ(decode_response(encode_response(busy)).status, Status::kBusy);
}

TEST(Protocol, MalformedPayloadsThrowProtocolError) {
  // Empty payload.
  EXPECT_THROW(decode_request({}), ProtocolError);

  // Wrong version.
  std::vector<std::uint8_t> bad_version = {99, 1, 0};
  EXPECT_THROW(decode_request(bad_version), ProtocolError);

  // Unknown type.
  std::vector<std::uint8_t> bad_type = {kProtocolVersion, 200, 0};
  EXPECT_THROW(decode_request(bad_type), ProtocolError);

  // Truncated body: a ping whose token length promises more bytes.
  Request ping;
  ping.type = RequestType::kPing;
  ping.token = "0123456789";
  std::vector<std::uint8_t> truncated = encode_request(ping);
  truncated.resize(truncated.size() - 4);
  EXPECT_THROW(decode_request(truncated), ProtocolError);

  // Trailing garbage after a valid request.
  std::vector<std::uint8_t> trailing = encode_request(ping);
  trailing.push_back(0);
  EXPECT_THROW(decode_request(trailing), ProtocolError);

  // Unknown what-if mode.
  Request whatif;
  whatif.type = RequestType::kWhatIf;
  whatif.whatif_mode = 1;
  std::vector<std::uint8_t> bytes = encode_request(whatif);
  // version, type, id, world(fast u8 + count varint) then mode byte.
  bytes[2 + 1 + 1 + 1] = 9;
  EXPECT_THROW(decode_request(bytes), ProtocolError);
}

TEST(Protocol, FramingRoundTripsAndIsIncremental) {
  Request request;
  request.type = RequestType::kPing;
  request.token = "frame-me";
  const std::vector<std::uint8_t> payload = encode_request(request);
  std::vector<std::uint8_t> wire;
  append_frame(wire, payload);
  append_frame(wire, payload);

  // Nothing parses until a full frame is buffered.
  for (std::size_t keep = 0; keep < payload.size(); ++keep)
    EXPECT_FALSE(try_parse_frame(
        std::span<const std::uint8_t>(wire).subspan(0, keep)));

  auto first = try_parse_frame(wire);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->first, payload.size() + 1);  // 1-byte length prefix here.
  EXPECT_TRUE(std::equal(first->second.begin(), first->second.end(),
                         payload.begin()));

  auto second = try_parse_frame(
      std::span<const std::uint8_t>(wire).subspan(first->first));
  ASSERT_TRUE(second);
  EXPECT_EQ(second->second.size(), payload.size());
}

TEST(Protocol, OversizedFrameLengthIsRejected) {
  std::vector<std::uint8_t> wire;
  util::varint_encode(wire, kMaxFramePayload + 1);
  EXPECT_THROW(try_parse_frame(wire), ProtocolError);

  // A length varint that overflows 64 bits is malformed, not "wait for more".
  const std::vector<std::uint8_t> overflow(11, 0xFF);
  EXPECT_THROW(try_parse_frame(overflow), ProtocolError);

  // append_frame refuses to build an oversized frame in the first place.
  const std::vector<std::uint8_t> huge(kMaxFramePayload + 1, 0);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(append_frame(out, huge), ProtocolError);
}

TEST(Protocol, WorldSpecResolvesDeterministically) {
  WorldSpec spec;
  spec.fast = true;
  spec.fields = {{"seed", "7"}};
  const core::ScenarioConfig a = spec.resolve();
  const core::ScenarioConfig b = spec.resolve();
  EXPECT_EQ(a.seed, 7u);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.topology.tier1_count, b.topology.tier1_count);

  WorldSpec bad;
  bad.fields = {{"no.such.field", "1"}};
  EXPECT_THROW(bad.resolve(), std::invalid_argument);
}

TEST(Protocol, FormatDoubleIsCanonical) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(1e10), "1e+10");
  // Idempotent: same value, same spelling, every time.
  EXPECT_EQ(format_double(0.1234567890123), format_double(0.1234567890123));
}

}  // namespace
}  // namespace rp::serve

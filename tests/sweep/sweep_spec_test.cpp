#include "sweep/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rp::sweep {
namespace {

TEST(SweepSpec, EconFieldRegistryCoversThePaperSymbols) {
  const auto fields = econ_fields();
  ASSERT_EQ(fields.size(), 6u);
  for (std::size_t i = 1; i < fields.size(); ++i)
    EXPECT_LT(fields[i - 1].name, fields[i].name);
  for (const char* name :
       {"econ.b", "econ.g", "econ.h", "econ.p", "econ.u", "econ.v"}) {
    const EconField* field = find_econ_field(name);
    ASSERT_NE(field, nullptr) << name;
    EXPECT_EQ(field->name, name);
    EXPECT_FALSE(field->description.empty());
  }
  EXPECT_EQ(find_econ_field("econ.x"), nullptr);
  EXPECT_TRUE(is_sweepable_field("econ.h"));
  EXPECT_TRUE(is_sweepable_field("seed"));
  EXPECT_TRUE(is_sweepable_field("topology.access_count"));
  EXPECT_FALSE(is_sweepable_field("econ"));
  EXPECT_FALSE(is_sweepable_field("bogus"));
}

TEST(SweepSpec, ParsesKnobsBaseAndAxes) {
  const SweepSpec spec = parse_sweep_spec(
      "# a comment\n"
      "name my-grid\n"
      "group 2\n"
      "steps 12\n"
      "days 7\n"
      "fast 1\n"
      "\n"
      "base seed 9\n"
      "base econ.p 1.5\n"
      "axis econ.b 0.2 0.4\n"
      "axis membership_scale 0.05 0.10 0.20\n");
  EXPECT_EQ(spec.name, "my-grid");
  EXPECT_EQ(spec.group, 2);
  EXPECT_EQ(spec.steps, 12u);
  EXPECT_EQ(spec.days, 7u);
  EXPECT_TRUE(spec.fast);
  ASSERT_EQ(spec.base.size(), 2u);
  EXPECT_EQ(spec.base[0].first, "seed");
  EXPECT_EQ(spec.base[1].second, "1.5");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].field, "econ.b");
  // "0.10" and "0.20" canonicalize to the shortest spelling.
  EXPECT_EQ(spec.axes[1].values,
            (std::vector<std::string>{"0.05", "0.1", "0.2"}));
  EXPECT_EQ(spec.run_count(), 6u);
}

TEST(SweepSpec, LinShorthandExpandsEvenlySpacedValues) {
  const SweepSpec spec = parse_sweep_spec("axis econ.b lin:0.2:1.2:6\n");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"0.2", "0.4", "0.6", "0.8", "1", "1.2"}));
  // A single-point lin: is the degenerate lo==hi case.
  const SweepSpec one = parse_sweep_spec("axis econ.b lin:0.5:0.5:1\n");
  EXPECT_EQ(one.axes[0].values, (std::vector<std::string>{"0.5"}));
}

TEST(SweepSpec, EquivalentSpellingsDigestIdentically) {
  const SweepSpec a = parse_sweep_spec(
      "name g\naxis econ.b 0.10 0.20\naxis econ.h 0.0060\n");
  const SweepSpec b = parse_sweep_spec(
      "# same grid, different spelling\n"
      "name g\n\n"
      "axis   econ.b   0.1 0.2\n"
      "axis econ.h 6e-3\n");
  EXPECT_EQ(canonical_spec_text(a), canonical_spec_text(b));
  EXPECT_EQ(spec_digest_hex(a), spec_digest_hex(b));
  EXPECT_EQ(spec_digest_hex(a).size(), 16u);
  // The canonical text re-parses to the same digest (fixed point).
  EXPECT_EQ(spec_digest_hex(parse_sweep_spec(canonical_spec_text(a))),
            spec_digest_hex(a));
}

TEST(SweepSpec, ErrorsCarryLineNumbers) {
  const auto expect_line = [](const char* text, const char* line_tag) {
    try {
      parse_sweep_spec(text);
      FAIL() << "accepted: " << text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(line_tag), std::string::npos)
          << error.what();
    }
  };
  expect_line("bogus-key 1\n", "line 1");
  expect_line("name ok\naxis no.such.field 1 2\n", "line 2");
  expect_line("axis econ.b 0.1\n\naxis econ.b 0.2\n", "line 3");
  expect_line("axis econ.b\n", "line 1");             // Empty value list.
  expect_line("axis econ.b 0.1 oops\n", "line 1");    // Bad value token.
  expect_line("axis econ.b lin:0.1:0.5:1\n", "line 1");  // 1 point, lo < hi.
  expect_line("axis econ.b lin:0.1:0.5:0\n", "line 1");  // Empty range.
  expect_line("axis econ.b lin:0.1:0.5\n", "line 1");    // Missing <n>.
  expect_line("group 9\n", "line 1");                 // PeerGroup is 1..4.
  expect_line("base seed\n", "line 1");               // Missing value.
  expect_line("fast 2\n", "line 1");
}

TEST(SweepSpec, ExpansionIsLastAxisFastest) {
  const SweepSpec spec = parse_sweep_spec(
      "axis econ.b 0.2 0.4 0.6\naxis econ.h 0.002 0.006\n");
  const auto runs = expand_runs(spec);
  ASSERT_EQ(runs.size(), 6u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    ASSERT_EQ(runs[i].values.size(), 2u);
  }
  EXPECT_EQ(runs[0].values, (std::vector<std::string>{"0.2", "0.002"}));
  EXPECT_EQ(runs[1].values, (std::vector<std::string>{"0.2", "0.006"}));
  EXPECT_EQ(runs[2].values, (std::vector<std::string>{"0.4", "0.002"}));
  EXPECT_EQ(runs[5].values, (std::vector<std::string>{"0.6", "0.006"}));
  // No axes: the single base run.
  EXPECT_EQ(expand_runs(parse_sweep_spec("name solo\n")).size(), 1u);
}

TEST(SweepSpec, MaterializeAppliesFastBaseThenAxes) {
  const SweepSpec spec = parse_sweep_spec(
      "fast 1\n"
      "base seed 7\n"
      "base topology.access_count 99\n"  // Overrides the fast-mode shrink.
      "axis membership_scale 0.05 0.2\n"
      "axis econ.h 0.002 0.01\n");
  const auto runs = expand_runs(spec);
  ASSERT_EQ(runs.size(), 4u);
  const MaterializedRun first = materialize_run(spec, runs[0]);
  EXPECT_EQ(first.config.seed, 7u);
  EXPECT_EQ(first.config.topology.access_count, 99u);
  EXPECT_DOUBLE_EQ(first.config.membership_scale, 0.05);
  EXPECT_DOUBLE_EQ(first.prices.remote_fixed, 0.002);
  EXPECT_FALSE(first.decay_pinned);
  const MaterializedRun last = materialize_run(spec, runs[3]);
  EXPECT_DOUBLE_EQ(last.config.membership_scale, 0.2);
  EXPECT_DOUBLE_EQ(last.prices.remote_fixed, 0.01);
  // Fast mode still shrank the fields no base line overrode.
  EXPECT_LE(first.config.topology.tier2_count, 30u);
}

// --- Timeline specs (the evolve.epoch axis, DESIGN.md §17) -----------------

constexpr const char* kTimelineSpec =
    "name evo\n"
    "steps 6\n"
    "timeline-begin\n"
    "name tl\n"
    "fast 1\n"
    "base seed 7\n"
    "epoch a\n"
    "join CATNIX 2 0.5\n"
    "epoch b\n"
    "traffic 1.3\n"
    "timeline-end\n"
    "axis evolve.epoch 0 1\n"
    "axis econ.h 0.002 0.01\n";

TEST(SweepSpec, TimelineSpecEmbedsCanonicallyAndRoundTrips) {
  const SweepSpec spec = parse_sweep_spec(kTimelineSpec);
  EXPECT_EQ(spec.run_count(), 4u);
  EXPECT_NE(spec.timeline.find("join CATNIX 2 0.5\n"), std::string::npos);
  const std::string canonical = canonical_spec_text(spec);
  EXPECT_NE(canonical.find("timeline-begin\n"), std::string::npos);
  EXPECT_EQ(spec_digest_hex(parse_sweep_spec(canonical)),
            spec_digest_hex(spec));
  // Respelling the embedded timeline does not move the digest: the timeline
  // is canonicalized before it lands in the spec.
  std::string variant = kTimelineSpec;
  const auto at = variant.find("traffic 1.3");
  ASSERT_NE(at, std::string::npos);
  variant.replace(at, 11, "traffic 1.30");
  EXPECT_EQ(spec_digest_hex(parse_sweep_spec(variant)), spec_digest_hex(spec));
}

TEST(SweepSpec, TimelineAndEpochAxisNeedEachOther) {
  // An epoch axis with nothing to index.
  EXPECT_THROW(parse_sweep_spec("axis evolve.epoch 0\n"),
               std::invalid_argument);
  // A timeline with nothing selecting its epochs.
  std::string no_axis = kTimelineSpec;
  const auto axis_at = no_axis.find("axis evolve.epoch 0 1\n");
  ASSERT_NE(axis_at, std::string::npos);
  no_axis.erase(axis_at, 22);
  EXPECT_THROW(parse_sweep_spec(no_axis), std::invalid_argument);
  // Epoch indices past the timeline's two epochs.
  std::string oor = kTimelineSpec;
  oor.replace(oor.find("axis evolve.epoch 0 1"), 21, "axis evolve.epoch 0 2");
  EXPECT_THROW(parse_sweep_spec(oor), std::invalid_argument);
  // World fields conflict with the timeline (its base lines pin the world).
  EXPECT_THROW(parse_sweep_spec(std::string(kTimelineSpec) + "base seed 9\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(std::string(kTimelineSpec) +
                                "axis membership_scale 0.05 0.1\n"),
               std::invalid_argument);
  // Unterminated and malformed embedded timelines.
  EXPECT_THROW(parse_sweep_spec("timeline-begin\nname t\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_sweep_spec("timeline-begin\nbogus 1\ntimeline-end\n"
                       "axis evolve.epoch 0\n"),
      std::invalid_argument);
}

TEST(SweepSpec, TimelineMaterializeUsesTimelineWorldAndEpochPrices) {
  const SweepSpec spec = parse_sweep_spec(kTimelineSpec);
  const auto runs = expand_runs(spec);
  ASSERT_EQ(runs.size(), 4u);
  const MaterializedRun plain = materialize_run(spec, runs[3]);
  EXPECT_TRUE(plain.has_epoch);
  EXPECT_EQ(plain.epoch, 1u);
  // The world comes from the timeline's base lines, not the spec's.
  EXPECT_EQ(plain.config.seed, 7u);
  // The engine hands in the selected epoch's prices as the baseline; spec
  // econ pins still override symbol by symbol.
  econ::CostParameters epoch_prices;
  epoch_prices.transit_price = 9.0;
  const MaterializedRun priced = materialize_run(spec, runs[0], &epoch_prices);
  EXPECT_DOUBLE_EQ(priced.prices.transit_price, 9.0);
  EXPECT_DOUBLE_EQ(priced.prices.remote_fixed, 0.002);
}

TEST(SweepSpec, EconDecayAxisPinsTheDecay) {
  const SweepSpec spec = parse_sweep_spec("axis econ.b 0.3 0.9\n");
  const auto runs = expand_runs(spec);
  const MaterializedRun run = materialize_run(spec, runs[1]);
  EXPECT_TRUE(run.decay_pinned);
  EXPECT_DOUBLE_EQ(run.prices.decay, 0.9);
  // A base econ.b pins it too.
  const SweepSpec base = parse_sweep_spec("base econ.b 0.5\n");
  EXPECT_TRUE(materialize_run(base, expand_runs(base)[0]).decay_pinned);
}

}  // namespace
}  // namespace rp::sweep

// End-to-end engine tests on a real (tiny) world: the 24-run CI grid is
// executed at different thread counts, killed mid-flight through the
// "sweep.run" fault site, resumed, and the results tables compared for
// byte-identity — the contract DESIGN.md §12 promises.
#include "sweep/engine.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"
#include "util/thread_pool.hpp"

namespace rp::sweep {
namespace {

// 6 econ.b x 4 econ.h values on one tiny shared world: every run reprices
// the same scenario, so the whole grid realizes exactly one world group.
constexpr const char* kGridSpec =
    "name engine-test\n"
    "group 4\n"
    "steps 12\n"
    "days 2\n"
    "base seed 31\n"
    "base euroix 0\n"
    "base membership_scale 0.05\n"
    "base topology.tier2_count 15\n"
    "base topology.access_count 60\n"
    "base topology.content_count 15\n"
    "base topology.cdn_count 5\n"
    "base topology.nren_count 4\n"
    "base topology.enterprise_count 30\n"
    "axis econ.b lin:0.2:1.2:6\n"
    "axis econ.h 0.002 0.006 0.01 0.016\n";

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

class SweepEngineTest : public testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    spec_ = parse_sweep_spec(kGridSpec);
    root_ = std::filesystem::path(testing::TempDir()) /
            ("rpsweep_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
    options_.cache_dir = shared_cache();
  }
  void TearDown() override {
    fault::disarm_all();
    util::ThreadPool::set_global_threads(0);
    std::filesystem::remove_all(root_);
  }

  // One cache for the whole binary: the tiny world builds once, every later
  // execute_sweep (any test, any thread count) hits the snapshot cache.
  static std::filesystem::path shared_cache() {
    static const std::filesystem::path dir = [] {
      auto path = std::filesystem::path(testing::TempDir()) /
                  ("rpsweep_cache_" + std::to_string(::getpid()));
      std::filesystem::create_directories(path);
      return path;
    }();
    return dir;
  }

  // The single-threaded uninterrupted run everything else is compared to.
  const std::string& reference_csv() {
    static const std::string csv = [this] {
      const auto dir = root_ / "reference";
      util::ThreadPool::set_global_threads(1);
      const ExecuteOutcome outcome = execute_sweep(spec_, dir, options_);
      EXPECT_EQ(outcome.executed, spec_.run_count());
      EXPECT_EQ(summarize_sweep(spec_, dir), spec_.run_count());
      return read_file(SweepPaths(dir).results_csv());
    }();
    return csv;
  }

  SweepSpec spec_;
  std::filesystem::path root_;
  EngineOptions options_;
};

TEST_F(SweepEngineTest, GridSharesOneWorldAcrossAllRuns) {
  ASSERT_EQ(spec_.run_count(), 24u);
  const auto dir = root_ / "one-world";
  const ExecuteOutcome outcome = execute_sweep(spec_, dir, options_);
  EXPECT_EQ(outcome.total, 24u);
  EXPECT_EQ(outcome.executed, 24u);
  EXPECT_EQ(outcome.skipped, 0u);
  EXPECT_EQ(outcome.worlds_built, 1u);
  EXPECT_EQ(completed_runs(spec_, dir), 24u);
  // Re-executing is a no-op: every record is valid.
  const ExecuteOutcome again = execute_sweep(spec_, dir, options_);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.skipped, 24u);
  EXPECT_EQ(again.worlds_built, 0u);
}

TEST_F(SweepEngineTest, ResultsAreByteIdenticalAcrossThreadCounts) {
  const std::string& reference = reference_csv();
  const auto dir = root_ / "threads8";
  util::ThreadPool::set_global_threads(8);
  execute_sweep(spec_, dir, options_);
  summarize_sweep(spec_, dir);
  EXPECT_EQ(read_file(SweepPaths(dir).results_csv()), reference);
}

TEST_F(SweepEngineTest, FaultInterruptThenResumeIsByteIdentical) {
  const std::string& reference = reference_csv();
  const auto dir = root_ / "interrupted";
  util::ThreadPool::set_global_threads(8);
  fault::arm(std::string(fault::kSiteSweepRun) + ":nth=9");
  EXPECT_THROW(execute_sweep(spec_, dir, options_), fault::InjectedFault);
  fault::disarm_all();
  const std::size_t survived = completed_runs(spec_, dir);
  EXPECT_GT(survived, 0u);
  EXPECT_LT(survived, 24u);
  // The interrupted sweep cannot be summarized...
  EXPECT_THROW(summarize_sweep(spec_, dir), std::runtime_error);
  // ...but resumes with only the missing runs, to the exact same bytes.
  const ExecuteOutcome resumed = execute_sweep(spec_, dir, options_);
  EXPECT_EQ(resumed.skipped, survived);
  EXPECT_EQ(resumed.executed, 24u - survived);
  summarize_sweep(spec_, dir);
  EXPECT_EQ(read_file(SweepPaths(dir).results_csv()), reference);
}

TEST_F(SweepEngineTest, StaleRecordsAreDetectedAndReexecuted) {
  const std::string& reference = reference_csv();
  const auto dir = root_ / "stale";
  execute_sweep(spec_, dir, options_);
  // Corrupt one record and stamp another with a foreign spec digest: both
  // must read as missing, not as silently-wrong rows.
  const SweepPaths paths(dir);
  std::ofstream(paths.record(3), std::ios::trunc) << "garbage\n";
  std::ofstream(paths.record(7), std::ios::trunc)
      << "rpsweep-record v1 0123456789abcdef 7\nrow\njson\n";
  EXPECT_EQ(completed_runs(spec_, dir), 22u);
  const ExecuteOutcome repaired = execute_sweep(spec_, dir, options_);
  EXPECT_EQ(repaired.executed, 2u);
  EXPECT_EQ(repaired.skipped, 22u);
  summarize_sweep(spec_, dir);
  EXPECT_EQ(read_file(paths.results_csv()), reference);
}

TEST_F(SweepEngineTest, SummarizeNamesTheFirstMissingRun) {
  const auto dir = root_ / "incomplete";
  write_manifest(spec_, dir);
  try {
    summarize_sweep(spec_, dir);
    FAIL() << "summarized an empty sweep";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("run 0"), std::string::npos)
        << error.what();
  }
}

TEST_F(SweepEngineTest, ManifestRoundTripsAndRejectsTampering) {
  const auto dir = root_ / "manifest";
  write_manifest(spec_, dir);
  const SweepSpec loaded = read_manifest(dir);
  EXPECT_EQ(spec_digest_hex(loaded), spec_digest_hex(spec_));
  EXPECT_EQ(loaded.run_count(), spec_.run_count());
  EXPECT_EQ(canonical_spec_text(loaded), canonical_spec_text(spec_));
  // Hand-editing the spec block without refreshing the digest is rejected.
  const auto path = SweepPaths(dir).manifest();
  std::string text = read_file(path);
  const auto at = text.find("econ.h 0.002");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 12, "econ.h 0.003");
  std::ofstream(path, std::ios::trunc) << text;
  EXPECT_THROW(read_manifest(dir), std::runtime_error);
  EXPECT_THROW(read_manifest(root_ / "nowhere"), std::runtime_error);
}

// A 3-epoch timeline over the same tiny world as kGridSpec (identical base
// lines, so the snapshot cache is shared): the epoch axis multiplies the
// econ grid on overlay views instead of rebuilding worlds per epoch.
constexpr const char* kEpochSpec =
    "name epoch-grid\n"
    "group 4\n"
    "steps 6\n"
    "days 2\n"
    "timeline-begin\n"
    "name engine-evolve\n"
    "base seed 31\n"
    "base euroix 0\n"
    "base membership_scale 0.05\n"
    "base topology.tier2_count 15\n"
    "base topology.access_count 60\n"
    "base topology.content_count 15\n"
    "base topology.cdn_count 5\n"
    "base topology.nren_count 4\n"
    "base topology.enterprise_count 30\n"
    "epoch start\n"
    "join LINX 3 0.5\n"
    "prices 1.2 0.03 0.15 0.008 0.5\n"
    "epoch surge\n"
    "traffic 1.5\n"
    "join VIX 2 1\n"
    "epoch dark\n"
    "outage LINX\n"
    "timeline-end\n"
    "axis evolve.epoch 0 1 2\n"
    "axis econ.h 0.002 0.01\n";

TEST_F(SweepEngineTest, EpochAxisSweepsTheTimelineOverOneWorld) {
  const SweepSpec spec = parse_sweep_spec(kEpochSpec);
  ASSERT_EQ(spec.run_count(), 6u);
  const auto dir = root_ / "epochs1";
  util::ThreadPool::set_global_threads(1);
  const ExecuteOutcome outcome = execute_sweep(spec, dir, options_);
  EXPECT_EQ(outcome.executed, 6u);
  EXPECT_EQ(outcome.worlds_built, 1u);  // One base world, overlay epochs.
  EXPECT_EQ(summarize_sweep(spec, dir), 6u);
  const std::string reference = read_file(SweepPaths(dir).results_csv());
  EXPECT_NE(reference.find(",ok,"), std::string::npos);
  // The manifest embeds the canonical timeline; reading it back is lossless.
  write_manifest(spec, dir);
  EXPECT_EQ(spec_digest_hex(read_manifest(dir)), spec_digest_hex(spec));
  // The same grid at 8 threads lands on byte-identical results.
  const auto dir8 = root_ / "epochs8";
  util::ThreadPool::set_global_threads(8);
  execute_sweep(spec, dir8, options_);
  summarize_sweep(spec, dir8);
  EXPECT_EQ(read_file(SweepPaths(dir8).results_csv()), reference);
}

TEST_F(SweepEngineTest, InvalidPriceCornersAreRecordedNotFatal) {
  // h = 0.025 > g violates ineq. 7: that corner must land in the table as
  // status=invalid-params instead of aborting the sweep.
  SweepSpec spec = parse_sweep_spec(
      std::string(kGridSpec) + "base econ.g 0.02\n");
  spec.axes[1].values.push_back("0.025");
  spec.name = "invalid-corner";
  const auto dir = root_ / "invalid";
  const ExecuteOutcome outcome = execute_sweep(spec, dir, options_);
  EXPECT_EQ(outcome.executed, 30u);
  summarize_sweep(spec, dir);
  const std::string csv = read_file(SweepPaths(dir).results_csv());
  EXPECT_NE(csv.find("invalid-params"), std::string::npos);
  EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

}  // namespace
}  // namespace rp::sweep

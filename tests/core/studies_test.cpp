// End-to-end tests of the three studies on a small but full scenario:
// the §3 detection pipeline, the §4 offload analysis, and the §5 economics.
#include <gtest/gtest.h>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "core/viability_study.hpp"

namespace rp::core {
namespace {

const Scenario& shared_scenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.seed = 11;
    config.euroix = true;
    config.membership_scale = 0.10;
    config.topology.tier2_count = 30;
    config.topology.access_count = 150;
    config.topology.content_count = 40;
    config.topology.cdn_count = 8;
    config.topology.nren_count = 6;
    config.topology.enterprise_count = 80;
    return Scenario::build(config);
  }();
  return scenario;
}

SpreadStudyConfig fast_spread_config() {
  SpreadStudyConfig config;
  config.campaign.length = util::SimDuration::days(7);
  config.campaign.queries_per_pch_lg = 4;
  config.campaign.queries_per_ripe_lg = 3;
  return config;
}

const SpreadStudy& shared_spread() {
  static const SpreadStudy study =
      SpreadStudy::run(shared_scenario(), fast_spread_config());
  return study;
}

const OffloadStudy& shared_offload() {
  static const OffloadStudy study = [] {
    OffloadStudyConfig config;
    config.rate_model.span = util::SimDuration::days(7);
    return OffloadStudy::run(shared_scenario(), config);
  }();
  return study;
}

TEST(SpreadStudy, DetectsRemotePeeringAtMostIxps) {
  const auto& report = shared_spread().report();
  EXPECT_EQ(report.rows().size(), 22u);
  // The paper finds remote peering at 91% of IXPs; at 1/10 scale the share
  // stays high but single IXPs can come up empty.
  EXPECT_GE(report.ixps_with_remote_fraction(), 0.7);
  EXPECT_GT(report.total_analyzed(), 300u);
}

TEST(SpreadStudy, ClassifierMatchesGroundTruth) {
  const auto& v = shared_spread().report().validation();
  EXPECT_GE(v.precision(), 0.95);
  EXPECT_GE(v.recall(), 0.9);
  // RTT cross-check (the TorIX validation): small positive bias. Robust
  // statistics — a single congested survivor can blow up the variance at
  // this reduced sample count.
  EXPECT_GT(v.rtt_error_median_ms, 0.0);
  EXPECT_LT(v.rtt_error_median_ms, 2.0);
  EXPECT_LT(v.rtt_error_p90_abs_ms, 5.0);
}

TEST(SpreadStudy, FiltersDiscardASmallConservativeShare) {
  const auto& report = shared_spread().report();
  const auto discards = report.total_discards();
  std::size_t total_discarded = 0;
  for (std::size_t f = 0; f < measure::kFilterCount; ++f)
    total_discarded += discards[f];
  EXPECT_GT(total_discarded, 0u);
  // The paper discards 255 of ~4,700 (~5.4%); stay under 15%.
  EXPECT_LT(static_cast<double>(total_discarded),
            0.15 * static_cast<double>(report.total_probed()));
}

TEST(SpreadStudy, RemoteFreeIxpsComeOutClean) {
  for (const auto& row : shared_spread().report().rows()) {
    if (row.acronym == "DIX-IE" || row.acronym == "CABASE") {
      EXPECT_EQ(row.remote_interfaces, 0u) << row.acronym;
    }
  }
}

TEST(SpreadStudy, ReanalyzeWithLowerThresholdFindsMoreRemotes) {
  const auto& base = shared_spread();
  SpreadStudyConfig lax = fast_spread_config();
  lax.classifier.remoteness_threshold = util::SimDuration::millis(2);
  const SpreadStudy reanalyzed =
      SpreadStudy::reanalyze(base.raw_measurements(), lax);
  std::size_t base_remote = 0, lax_remote = 0;
  for (const auto& row : base.report().rows()) base_remote += row.remote_interfaces;
  for (const auto& row : reanalyzed.report().rows())
    lax_remote += row.remote_interfaces;
  EXPECT_GT(lax_remote, base_remote);
  // Lowering the threshold must hurt precision against ground truth.
  EXPECT_LE(reanalyzed.report().validation().precision(),
            base.report().validation().precision());
}

TEST(SpreadStudy, NetworkViewIsPlausible) {
  const auto& report = shared_spread().report();
  EXPECT_GT(report.identified_networks(), 50u);
  EXPECT_GT(report.remote_networks(), 5u);
  const auto histogram = report.ixp_count_histogram(false);
  ASSERT_TRUE(histogram.contains(1));
  // Fig. 4a: single-IXP networks dominate.
  std::size_t total = 0;
  for (const auto& [count, n] : histogram) total += n;
  EXPECT_GT(static_cast<double>(histogram.at(1)) / total, 0.4);
}

TEST(OffloadStudy, TransitEndpointsExcludePeeredTraffic) {
  const auto& study = shared_offload();
  const auto& graph = shared_scenario().graph();
  const net::Asn vantage = shared_scenario().vantage();
  for (const auto& endpoint : study.analyzer().transit_endpoints()) {
    EXPECT_FALSE(graph.is_peering(vantage, endpoint.asn));
    EXPECT_FALSE(graph.is_transit(vantage, endpoint.asn));
  }
  // The CDNs the vantage privately peers with are not transit endpoints.
  EXPECT_LT(study.analyzer().transit_inbound_bps(),
            study.matrix().total_inbound_bps());
}

TEST(OffloadStudy, MaximalOffloadIsSubstantialButPartial) {
  const auto& study = shared_offload();
  const auto everywhere = study.analyzer().all_ixps();
  const auto p =
      study.analyzer().potential_at(everywhere, offload::PeerGroup::kAll);
  const double fraction =
      p.total_bps() / (study.analyzer().transit_inbound_bps() +
                       study.analyzer().transit_outbound_bps());
  // The paper reports 25-33% per direction for RedIRIS; shapes vary with
  // the synthetic world, so accept a broad band that is neither zero nor
  // everything.
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.95);
}

TEST(OffloadStudy, GreedyCurveShowsDiminishingReturns) {
  const auto& study = shared_offload();
  const auto steps =
      study.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 30);
  ASSERT_GE(steps.size(), 5u);
  // Gains are non-increasing (greedy) and the first 5 IXPs realize most of
  // the achievable offload (the paper's "reaching only 5 IXPs" headline).
  for (std::size_t i = 1; i < steps.size(); ++i)
    EXPECT_LE(steps[i].gained, steps[i - 1].gained + 1e-6);
  double total_gain = 0.0;
  for (const auto& s : steps) total_gain += s.gained;
  double first5 = 0.0;
  for (std::size_t i = 0; i < 5 && i < steps.size(); ++i)
    first5 += steps[i].gained;
  EXPECT_GT(first5 / total_gain, 0.6);
}

TEST(OffloadStudy, PeerGroupsOrderTheCurves) {
  const auto& study = shared_offload();
  double prev_total = -1.0;
  for (auto group : {offload::PeerGroup::kOpen,
                     offload::PeerGroup::kOpenTop10Selective,
                     offload::PeerGroup::kOpenSelective,
                     offload::PeerGroup::kAll}) {
    const auto everywhere = study.analyzer().all_ixps();
    const auto p = study.analyzer().potential_at(everywhere, group);
    EXPECT_GE(p.total_bps(), prev_total);
    prev_total = p.total_bps();
  }
}

TEST(OffloadStudy, TimeSeriesPeaksCoincide) {
  const auto& study = shared_offload();
  const auto series = study.time_series(flow::Direction::kInbound);
  ASSERT_EQ(series.transit_bps.size(), series.offload_bps.size());
  ASSERT_FALSE(series.transit_bps.empty());
  // Offload is always a subset of transit traffic.
  for (std::size_t bin = 0; bin < series.transit_bps.size(); bin += 97)
    EXPECT_LE(series.offload_bps[bin], series.transit_bps[bin] + 1e-6);
  // Daily peak bins coincide within a few hours (Fig. 5b property).
  const std::size_t bins_per_day = 24 * 12;
  for (int day = 0; day < 3; ++day) {
    const auto begin = series.transit_bps.begin() +
                       static_cast<std::ptrdiff_t>(day * bins_per_day);
    const auto tp = std::max_element(begin, begin + bins_per_day) -
                    series.transit_bps.begin();
    const auto ob = series.offload_bps.begin() +
                    static_cast<std::ptrdiff_t>(day * bins_per_day);
    const auto op = std::max_element(ob, ob + bins_per_day) -
                    series.offload_bps.begin();
    EXPECT_LE(std::abs(tp - op), 3 * 12) << "day " << day;
  }
}

TEST(OffloadStudy, AddressGreedyStartsNearTotalAddressSpace) {
  const auto& study = shared_offload();
  const auto steps =
      study.analyzer().greedy_by_addresses(offload::PeerGroup::kAll, 10);
  ASSERT_FALSE(steps.empty());
  const double initial = study.analyzer().transit_addresses();
  EXPECT_GT(initial, 0.0);
  EXPECT_LT(steps.front().remaining, initial);
}

TEST(ViabilityStudy, FitsDecayFromGreedyCurve) {
  const auto& study = shared_offload();
  const auto steps =
      study.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 30);
  const double initial = study.analyzer().transit_inbound_bps() +
                         study.analyzer().transit_outbound_bps();
  const auto viability = ViabilityStudy::from_greedy_curve(
      steps, initial, econ::CostParameters{});
  EXPECT_GT(viability.fitted_decay(), 0.0);
  EXPECT_EQ(viability.model().params().decay, viability.fitted_decay());
}

TEST(ViabilityStudy, SweepCoversViabilityBoundary) {
  const auto viability =
      ViabilityStudy::from_decay(0.3, econ::CostParameters{});
  const auto sweep = viability.sweep_decay(0.05, 2.0, 40);
  ASSERT_EQ(sweep.size(), 40u);
  // Low decay: viable; high decay: not (the paper's global-traffic story).
  EXPECT_TRUE(sweep.front().viable);
  EXPECT_FALSE(sweep.back().viable);
  // The boundary sits where m~ crosses 1.
  for (const auto& point : sweep)
    EXPECT_EQ(point.viable, point.optimal_m >= 1.0 - 1e-12);
  // Where viable, adding remote peering lowers the cost.
  for (const auto& point : sweep)
    if (point.viable) {
      EXPECT_LE(point.cost_with_remote, point.cost_without_remote + 1e-12);
    }
  EXPECT_THROW(viability.sweep_decay(1.0, 0.5, 10), std::invalid_argument);
}

TEST(ViabilityStudy, SweepDecayDegenerateRanges) {
  const auto viability =
      ViabilityStudy::from_decay(0.3, econ::CostParameters{});
  // lo == hi: every point evaluates the same decay.
  const auto flat = viability.sweep_decay(0.4, 0.4, 5);
  ASSERT_EQ(flat.size(), 5u);
  for (const auto& point : flat) {
    EXPECT_DOUBLE_EQ(point.decay, 0.4);
    EXPECT_EQ(point.viable, flat.front().viable);
    EXPECT_DOUBLE_EQ(point.optimal_m, flat.front().optimal_m);
  }
  // points == 1 with lo == hi: exactly one evaluation.
  const auto single = viability.sweep_decay(0.7, 0.7, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single.front().decay, 0.7);
  // points == 1 across a non-empty range is ill-defined.
  EXPECT_THROW(viability.sweep_decay(0.1, 0.9, 1), std::invalid_argument);
  EXPECT_THROW(viability.sweep_decay(0.1, 0.9, 0), std::invalid_argument);
  EXPECT_THROW(viability.sweep_decay(-0.1, 0.5, 4), std::invalid_argument);
}

TEST(ViabilityStudy, SweepDecayNonViableWholeRange) {
  // With h close enough to g the viability ratio g(p-v)/(h(p-u)) drops
  // below 1, so no decay value makes remote peering pay: m~ = 0 across the
  // whole range and the remote tier never changes the cost.
  econ::CostParameters prices;
  prices.remote_fixed = 0.015;  // h/g = 0.75.
  const auto viability = ViabilityStudy::from_decay(0.3, prices);
  EXPECT_LT(viability.model().viability_ratio(), 1.0);
  const auto sweep = viability.sweep_decay(0.05, 2.0, 8);
  ASSERT_EQ(sweep.size(), 8u);
  for (const auto& point : sweep) {
    EXPECT_FALSE(point.viable);
    EXPECT_DOUBLE_EQ(point.optimal_m, 0.0);
    EXPECT_DOUBLE_EQ(point.cost_with_remote, point.cost_without_remote);
  }
}

TEST(ViabilityStudy, FromGreedyRejectsBadInput) {
  EXPECT_THROW(ViabilityStudy::from_greedy_curve({}, 0.0,
                                                 econ::CostParameters{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rp::core

// Determinism of the parallel study engine: SpreadStudy::run fans the
// per-IXP campaigns across the thread pool, and the result must be
// byte-identical at any RP_THREADS setting (each campaign owns a
// deterministically forked RNG, and results land in per-index slots).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/spread_study.hpp"
#include "measure/dataset_io.hpp"
#include "util/thread_pool.hpp"

namespace rp::core {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.seed = 23;
  config.euroix = false;  // Table-1 universe keeps the campaign count small.
  config.membership_scale = 0.05;
  config.topology.tier2_count = 20;
  config.topology.access_count = 80;
  config.topology.content_count = 20;
  config.topology.cdn_count = 6;
  config.topology.nren_count = 5;
  config.topology.enterprise_count = 40;
  return config;
}

SpreadStudyConfig small_study_config() {
  SpreadStudyConfig config;
  config.campaign.length = util::SimDuration::days(3);
  config.campaign.queries_per_pch_lg = 3;
  config.campaign.queries_per_ripe_lg = 2;
  return config;
}

/// The full raw dataset of every campaign, serialized with the dataset
/// writer: the strictest byte-level fingerprint the repo can produce.
std::string fingerprint(const SpreadStudy& study) {
  std::ostringstream out;
  for (const auto& measurement : study.raw_measurements())
    measure::write_dataset(measurement, out);
  // Fold in the aggregated report so classifier/aggregation stages are
  // covered too, not just the raw campaigns.
  const auto& report = study.report();
  out << "report " << report.total_probed() << ' ' << report.total_analyzed()
      << ' ' << report.identified_interfaces() << ' '
      << report.remote_networks() << '\n';
  for (double rtt : report.min_rtts_ms()) out << rtt << '\n';
  for (const auto& row : report.rows()) {
    out << row.acronym << ' ' << row.probed << ' ' << row.analyzed << ' '
        << row.remote_interfaces;
    for (std::size_t b : row.band_counts) out << ' ' << b;
    out << '\n';
  }
  return std::move(out).str();
}

TEST(SpreadStudyDeterminism, ByteIdenticalAcrossThreadCounts) {
  const Scenario scenario = Scenario::build(small_config());
  const SpreadStudyConfig config = small_study_config();

  util::ThreadPool::set_global_threads(1);
  const std::string serial = fingerprint(SpreadStudy::run(scenario, config));

  util::ThreadPool::set_global_threads(2);
  const std::string two = fingerprint(SpreadStudy::run(scenario, config));

  util::ThreadPool::set_global_threads(8);
  const std::string eight = fingerprint(SpreadStudy::run(scenario, config));

  util::ThreadPool::set_global_threads(0);  // Restore the env default.

  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(SpreadStudyDeterminism, ReanalyzeMatchesRunAnalyses) {
  const Scenario scenario = Scenario::build(small_config());
  const SpreadStudyConfig config = small_study_config();
  const SpreadStudy study = SpreadStudy::run(scenario, config);
  const SpreadStudy again =
      SpreadStudy::reanalyze(study.raw_measurements(), config);
  EXPECT_EQ(study.report().total_analyzed(), again.report().total_analyzed());
  EXPECT_EQ(study.report().min_rtts_ms(), again.report().min_rtts_ms());
}

}  // namespace
}  // namespace rp::core

#include "core/config_fields.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rp::core {
namespace {

TEST(ConfigFields, RegistryIsSortedAndSelfDescribing) {
  const auto fields = scenario_config_fields();
  ASSERT_GT(fields.size(), 10u);
  for (std::size_t i = 1; i < fields.size(); ++i)
    EXPECT_LT(fields[i - 1].name, fields[i].name);
  for (const auto& field : fields) {
    EXPECT_FALSE(field.description.empty()) << field.name;
    EXPECT_EQ(find_config_field(field.name), &field);
  }
  EXPECT_EQ(find_config_field("no.such.field"), nullptr);
}

TEST(ConfigFields, SetGetRoundTripsEveryKind) {
  ScenarioConfig config;
  set_config_field(config, "seed", "123");
  EXPECT_EQ(config.seed, 123u);
  EXPECT_EQ(get_config_field(config, "seed"), "123");

  set_config_field(config, "topology.access_count", "77");
  EXPECT_EQ(config.topology.access_count, 77u);
  EXPECT_EQ(get_config_field(config, "topology.access_count"), "77");

  set_config_field(config, "membership_scale", "0.25");
  EXPECT_DOUBLE_EQ(config.membership_scale, 0.25);
  EXPECT_EQ(get_config_field(config, "membership_scale"), "0.25");

  set_config_field(config, "euroix", "false");
  EXPECT_FALSE(config.euroix);
  // Booleans canonicalize to 0/1 regardless of the accepted spelling.
  EXPECT_EQ(get_config_field(config, "euroix"), "0");
  set_config_field(config, "euroix", "1");
  EXPECT_TRUE(config.euroix);
  EXPECT_EQ(get_config_field(config, "euroix"), "1");
}

TEST(ConfigFields, DoublesCanonicalizeToShortestForm) {
  ScenarioConfig config;
  set_config_field(config, "probe_headroom", "1.0600000");
  EXPECT_EQ(get_config_field(config, "probe_headroom"), "1.06");
  set_config_field(config, "member_pool_size", "2300");
  EXPECT_EQ(get_config_field(config, "member_pool_size"), "2300");
}

TEST(ConfigFields, ErrorsNameTheFieldAndToken) {
  ScenarioConfig config;
  try {
    set_config_field(config, "seed", "12x");
    FAIL() << "accepted trailing garbage";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("seed"), std::string::npos) << what;
    EXPECT_NE(what.find("12x"), std::string::npos) << what;
  }
  EXPECT_THROW(set_config_field(config, "membership_scale", ""),
               std::invalid_argument);
  EXPECT_THROW(set_config_field(config, "euroix", "maybe"),
               std::invalid_argument);
  try {
    set_config_field(config, "bogus", "1");
    FAIL() << "accepted unknown field";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
  EXPECT_THROW(get_config_field(config, "bogus"), std::invalid_argument);
  // A failed parse leaves the config untouched.
  EXPECT_EQ(config.seed, ScenarioConfig{}.seed);
}

TEST(ConfigFields, FastModeShrinksButPreservesSeedAndUniverse) {
  ScenarioConfig config;
  config.seed = 99;
  config.euroix = false;
  config.membership_scale = 0.5;
  apply_fast_mode(config);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_FALSE(config.euroix);
  EXPECT_DOUBLE_EQ(config.membership_scale, 0.10);
  EXPECT_LE(config.topology.access_count, 150u);
  // Already-small scales are not inflated.
  config.membership_scale = 0.05;
  apply_fast_mode(config);
  EXPECT_DOUBLE_EQ(config.membership_scale, 0.05);
}

}  // namespace
}  // namespace rp::core

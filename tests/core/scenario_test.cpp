#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rp::core {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 5) {
  ScenarioConfig config;
  config.seed = seed;
  config.euroix = true;
  config.membership_scale = 0.12;
  config.topology.tier2_count = 30;
  config.topology.access_count = 150;
  config.topology.content_count = 40;
  config.topology.cdn_count = 8;
  config.topology.nren_count = 6;
  config.topology.enterprise_count = 80;
  return config;
}

TEST(Scenario, BuildsFullEuroixUniverse) {
  const Scenario s = Scenario::build(small_config());
  EXPECT_EQ(s.ecosystem().ixps().size(), 65u);
  EXPECT_EQ(s.measured_ixps().size(), 22u);
  EXPECT_GE(s.ecosystem().providers().size(), 2u);
  EXPECT_FALSE(s.graph().validate().has_value());
}

TEST(Scenario, Table1OnlyUniverse) {
  auto config = small_config();
  config.euroix = false;
  const Scenario s = Scenario::build(config);
  EXPECT_EQ(s.ecosystem().ixps().size(), 22u);
  EXPECT_EQ(s.measured_ixps().size(), 22u);
}

TEST(Scenario, VantageIsMadridNrenWithTwoTier1Providers) {
  const Scenario s = Scenario::build(small_config());
  const auto& vantage = s.graph().node(s.vantage());
  EXPECT_EQ(vantage.cls, topology::AsClass::kNren);
  EXPECT_EQ(vantage.home_city.name, "Madrid");
  EXPECT_EQ(vantage.name, "RedIRIS-like");
  const auto providers = s.graph().providers_of(s.vantage());
  EXPECT_EQ(providers.size(), 2u);
  for (net::Asn p : providers)
    EXPECT_EQ(s.graph().node(p).cls, topology::AsClass::kTier1);
}

TEST(Scenario, VantagePeersWithTopCdns) {
  const Scenario s = Scenario::build(small_config());
  std::size_t cdn_peerings = 0;
  for (net::Asn peer : s.graph().peers_of(s.vantage()))
    if (s.graph().node(peer).cls == topology::AsClass::kCdn) ++cdn_peerings;
  // Capped by the number of CDNs in the small world.
  EXPECT_EQ(cdn_peerings, std::min<std::size_t>(
                              small_config().vantage_cdn_peerings,
                              small_config().topology.cdn_count));
}

TEST(Scenario, VantageIsMemberOfItsHomeIxpsOnly) {
  const Scenario s = Scenario::build(small_config());
  std::set<std::string> homes;
  for (const auto& ixp : s.ecosystem().ixps())
    if (ixp.has_member(s.vantage())) homes.insert(ixp.acronym());
  EXPECT_EQ(homes, (std::set<std::string>{"CATNIX", "ESpanix"}));
}

TEST(Scenario, MeasuredIxpsHaveLookingGlasses) {
  const Scenario s = Scenario::build(small_config());
  for (ixp::IxpId id : s.measured_ixps()) {
    const auto& ixp = s.ecosystem().ixp(id);
    EXPECT_FALSE(ixp.looking_glasses().empty()) << ixp.acronym();
    // The big three host both LG operators (LG-consistent filter fodder).
    if (ixp.acronym() == "AMS-IX" || ixp.acronym() == "DE-CIX" ||
        ixp.acronym() == "LINX") {
      EXPECT_EQ(ixp.looking_glasses().size(), 2u) << ixp.acronym();
    }
  }
}

TEST(Scenario, RemoteSharesFollowSeeds) {
  const Scenario s = Scenario::build(small_config());
  for (ixp::IxpId id : s.measured_ixps()) {
    const auto& ixp = s.ecosystem().ixp(id);
    std::size_t remote = 0;
    for (const auto& iface : ixp.interfaces())
      if (iface.is_remote_ground_truth()) ++remote;
    if (ixp.acronym() == "DIX-IE" || ixp.acronym() == "CABASE") {
      EXPECT_EQ(remote, 0u) << ixp.acronym();
    }
    if (ixp.acronym() == "AMS-IX") {
      // About a fifth of AMS-IX members peer remotely (±10 points at this
      // small scale).
      const double share = static_cast<double>(remote) /
                           static_cast<double>(ixp.interfaces().size());
      EXPECT_GT(share, 0.08) << ixp.acronym();
      EXPECT_LT(share, 0.35) << ixp.acronym();
    }
  }
}

TEST(Scenario, RemoteInterfacesHaveProvidersAndCircuits) {
  const Scenario s = Scenario::build(small_config());
  std::size_t via_provider = 0, via_partner = 0;
  for (const auto& ixp : s.ecosystem().ixps()) {
    for (const auto& iface : ixp.interfaces()) {
      switch (iface.kind) {
        case ixp::AttachmentKind::kRemoteViaProvider:
          ++via_provider;
          ASSERT_TRUE(iface.provider_index.has_value());
          EXPECT_LT(*iface.provider_index, s.ecosystem().providers().size());
          EXPECT_GT(iface.circuit_one_way, util::SimDuration::nanos(0));
          break;
        case ixp::AttachmentKind::kPartnerIxp:
          ++via_partner;
          EXPECT_GT(iface.circuit_one_way, util::SimDuration::nanos(0));
          break;
        default:
          EXPECT_EQ(iface.circuit_one_way, util::SimDuration::nanos(0));
          break;
      }
    }
  }
  EXPECT_GT(via_provider, 0u);
  EXPECT_GT(via_partner, 0u);
}

TEST(Scenario, InterfaceAddressesUniqueWithinEachLan) {
  const Scenario s = Scenario::build(small_config());
  for (const auto& ixp : s.ecosystem().ixps()) {
    std::set<net::Ipv4Addr> seen;
    for (const auto& lg : ixp.looking_glasses())
      EXPECT_TRUE(seen.insert(lg.addr).second);
    for (const auto& iface : ixp.interfaces()) {
      EXPECT_TRUE(ixp.peering_lan().contains(iface.addr));
      EXPECT_TRUE(seen.insert(iface.addr).second)
          << ixp.acronym() << " " << iface.addr.to_string();
    }
  }
}

TEST(Scenario, PeeringLansDisjointAcrossIxps) {
  const Scenario s = Scenario::build(small_config());
  const auto& ixps = s.ecosystem().ixps();
  for (std::size_t i = 0; i < ixps.size(); ++i)
    for (std::size_t j = i + 1; j < ixps.size(); ++j)
      EXPECT_FALSE(
          ixps[i].peering_lan().covers(ixps[j].peering_lan()) ||
          ixps[j].peering_lan().covers(ixps[i].peering_lan()));
}

TEST(Scenario, DeterministicForSameSeed) {
  const Scenario a = Scenario::build(small_config(9));
  const Scenario b = Scenario::build(small_config(9));
  EXPECT_EQ(a.vantage(), b.vantage());
  ASSERT_EQ(a.ecosystem().ixps().size(), b.ecosystem().ixps().size());
  for (std::size_t i = 0; i < a.ecosystem().ixps().size(); ++i) {
    const auto& ia = a.ecosystem().ixps()[i];
    const auto& ib = b.ecosystem().ixps()[i];
    ASSERT_EQ(ia.interfaces().size(), ib.interfaces().size()) << ia.acronym();
    for (std::size_t k = 0; k < ia.interfaces().size(); ++k) {
      EXPECT_EQ(ia.interfaces()[k].asn, ib.interfaces()[k].asn);
      EXPECT_EQ(ia.interfaces()[k].addr, ib.interfaces()[k].addr);
      EXPECT_EQ(ia.interfaces()[k].kind, ib.interfaces()[k].kind);
    }
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  const Scenario a = Scenario::build(small_config(1));
  const Scenario b = Scenario::build(small_config(2));
  bool any_difference = false;
  const auto& ia = a.ecosystem().ixps()[0];
  const auto& ib = b.ecosystem().ixps()[0];
  if (ia.interfaces().size() != ib.interfaces().size()) {
    any_difference = true;
  } else {
    for (std::size_t k = 0; k < ia.interfaces().size(); ++k)
      any_difference =
          any_difference || ia.interfaces()[k].asn != ib.interfaces()[k].asn;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Scenario, ProbedInterfaceCountsScaleWithSeeds) {
  const Scenario s = Scenario::build(small_config());
  for (ixp::IxpId id : s.measured_ixps()) {
    const auto& ixp = s.ecosystem().ixp(id);
    std::size_t discoverable = 0;
    for (const auto& iface : ixp.interfaces())
      if (iface.discoverable) ++discoverable;
    EXPECT_GT(discoverable, 0u) << ixp.acronym();
  }
}

}  // namespace
}  // namespace rp::core

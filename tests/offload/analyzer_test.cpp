// Offload analysis against a hand-built world with known answers.
//
// Topology (transit edges point provider -> customer):
//   T1a (1), T1b (2): tier-1 providers of the vantage V (10).
//   P1 (21, open) with customers C1 (31), C2 (32).
//   P2 (22, selective) with customer C3 (33).
//   P3 (23, restrictive) with customer C4 (34).
//   P4 (24, selective) with customer C5 (35).
//   D (40, open content stub).
//   All of P1..P4 and D buy transit from the tier-1s, so V reaches every
//   endpoint through a transit provider.
// IXPs: X1 {P1, P2, P4}, X2 {P2, P3, D}, HOME {P1, V} (the vantage's own
// exchange, so P1 is excluded as a remote-peering candidate).
#include "offload/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/cities.hpp"

namespace rp::offload {
namespace {

net::Asn as(std::uint32_t n) { return net::Asn{n}; }

struct World {
  topology::AsGraph graph;
  ixp::IxpEcosystem eco;
  net::Asn vantage = as(10);
  flow::TrafficMatrix matrix;
  std::unique_ptr<bgp::Rib> rib;
  std::unique_ptr<OffloadAnalyzer> analyzer;

  World() {
    auto add = [this](std::uint32_t asn, topology::AsClass cls,
                      topology::PeeringPolicy policy, const char* prefix,
                      double scale) {
      topology::AsNode node;
      node.asn = as(asn);
      node.name = "AS" + std::to_string(asn);
      node.cls = cls;
      node.policy = policy;
      node.home_city = geo::CityRegistry::world().at("Amsterdam");
      node.prefixes.push_back(*net::Ipv4Prefix::parse(prefix));
      node.traffic_scale = scale;
      graph.add_as(std::move(node));
    };
    using AC = topology::AsClass;
    using PP = topology::PeeringPolicy;
    // Strictly decreasing traffic scales pin the rank order (no jitter).
    add(1, AC::kTier1, PP::kRestrictive, "10.1.0.0/16", 12.0);
    add(2, AC::kTier1, PP::kRestrictive, "10.2.0.0/16", 11.0);
    add(10, AC::kNren, PP::kSelective, "10.10.0.0/16", 1.0);
    add(21, AC::kTier2, PP::kOpen, "10.21.0.0/16", 10.0);
    add(22, AC::kTier2, PP::kSelective, "10.22.0.0/16", 9.0);
    add(23, AC::kTier2, PP::kRestrictive, "10.23.0.0/16", 8.0);
    add(24, AC::kTier2, PP::kSelective, "10.24.0.0/16", 7.5);
    add(31, AC::kAccess, PP::kOpen, "10.31.0.0/16", 7.0);
    add(32, AC::kAccess, PP::kOpen, "10.32.0.0/16", 6.0);
    add(33, AC::kAccess, PP::kOpen, "10.33.0.0/16", 5.0);
    add(34, AC::kAccess, PP::kOpen, "10.34.0.0/16", 4.0);
    add(35, AC::kAccess, PP::kOpen, "10.35.0.0/16", 3.5);
    add(40, AC::kContent, PP::kOpen, "10.40.0.0/16", 3.0);

    graph.add_peering(as(1), as(2));
    graph.add_transit(as(1), as(10));
    graph.add_transit(as(2), as(10));
    for (std::uint32_t p : {21, 22, 23, 24, 40}) {
      graph.add_transit(as(1), as(p));
      if (p != 40) graph.add_transit(as(2), as(p));
    }
    graph.add_transit(as(21), as(31));
    graph.add_transit(as(21), as(32));
    graph.add_transit(as(22), as(33));
    graph.add_transit(as(23), as(34));
    graph.add_transit(as(24), as(35));

    util::Rng rng(1);
    flow::TrafficConfig traffic;
    traffic.rank_jitter_sigma = 0.0;
    traffic.direction_ratio_sigma = 0.0;
    matrix = flow::TrafficMatrix::generate(graph, vantage, traffic, rng);

    const auto& city = geo::CityRegistry::world().at("Amsterdam");
    auto lan = [](int i) {
      return net::Ipv4Prefix::make(
          net::Ipv4Addr(198, 18, static_cast<std::uint8_t>(i), 0), 24);
    };
    const auto x1 = eco.add_ixp("X1", "X1", city, 1.0, lan(1));
    const auto x2 = eco.add_ixp("X2", "X2", city, 1.0, lan(2));
    const auto home = eco.add_ixp("HOME", "HOME", city, 0.1, lan(3));
    int serial = 1;
    auto join = [&](ixp::IxpId id, std::uint32_t member, int host) {
      ixp::MemberInterface iface;
      iface.asn = as(member);
      iface.addr = net::Ipv4Addr(198, 18, static_cast<std::uint8_t>(id + 1),
                                 static_cast<std::uint8_t>(host));
      iface.mac = net::MacAddr::from_id(serial++);
      iface.equipment_city = city;
      eco.ixp(id).add_interface(iface);
    };
    join(x1, 21, 1);
    join(x1, 22, 2);
    join(x1, 24, 3);
    join(x2, 22, 1);
    join(x2, 23, 2);
    join(x2, 40, 3);
    join(home, 21, 1);
    join(home, 10, 2);

    rib = std::make_unique<bgp::Rib>(bgp::Rib::build(graph, vantage));
    AnalyzerConfig config;
    config.vantage_member_ixps = {"HOME"};
    config.exclude_nren_fellows = true;
    analyzer = std::make_unique<OffloadAnalyzer>(graph, eco, vantage, matrix,
                                                 *rib, config);
  }
};

TEST(OffloadAnalyzer, TransitEndpointsAreAllNonVantageNetworks) {
  World w;
  // The vantage has no peers or customers here, so all 12 other networks
  // are reached via its transit providers.
  EXPECT_EQ(w.analyzer->transit_endpoints().size(), 12u);
  for (const auto& e : w.analyzer->transit_endpoints())
    EXPECT_NE(e.asn, w.vantage);
  EXPECT_NEAR(w.analyzer->transit_inbound_bps(),
              w.matrix.total_inbound_bps(), 1.0);
}

TEST(OffloadAnalyzer, ExclusionRulesApplied) {
  World w;
  // IXP members: {21, 22, 24, 23, 40, 10}. Excluded: the vantage (10) and
  // its HOME co-member 21. The tier-1 transit providers are not members.
  EXPECT_EQ(w.analyzer->eligible_peers(),
            (std::vector<net::Asn>{as(22), as(23), as(24), as(40)}));
}

TEST(OffloadAnalyzer, PeerGroupsNest) {
  World w;
  EXPECT_EQ(w.analyzer->peers_in_group(PeerGroup::kOpen),
            (std::vector<net::Asn>{as(40)}));
  EXPECT_EQ(w.analyzer->peers_in_group(PeerGroup::kOpenSelective),
            (std::vector<net::Asn>{as(22), as(24), as(40)}));
  EXPECT_EQ(w.analyzer->peers_in_group(PeerGroup::kAll),
            (std::vector<net::Asn>{as(22), as(23), as(24), as(40)}));
}

TEST(OffloadAnalyzer, Group2AddsTopSelective) {
  World w;
  // Both selective candidates fit in a top-10, so group 2 = group 3 here.
  EXPECT_EQ(w.analyzer->peers_in_group(PeerGroup::kOpenTop10Selective),
            (std::vector<net::Asn>{as(22), as(24), as(40)}));
}

TEST(OffloadAnalyzer, CoverageFollowsConesAndMembership) {
  World w;
  const std::vector<ixp::IxpId> x2{1};
  // X2 under group 1 (open): only member 40 qualifies; cone(40) = {40}.
  EXPECT_EQ(w.analyzer->covered_endpoints(x2, PeerGroup::kOpen),
            (std::vector<net::Asn>{as(40)}));
  // Under group 4: members 22, 23, 40 -> cones {22,33}, {23,34}, {40}.
  auto covered = w.analyzer->covered_endpoints(x2, PeerGroup::kAll);
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, (std::vector<net::Asn>{as(22), as(23), as(33), as(34),
                                            as(40)}));
}

TEST(OffloadAnalyzer, PotentialSumsCoveredRates) {
  World w;
  const std::vector<ixp::IxpId> x2{1};
  const auto p = w.analyzer->potential_at(x2, PeerGroup::kAll);
  double expected_in = 0.0, expected_out = 0.0;
  for (net::Asn covered : {as(22), as(23), as(33), as(34), as(40)}) {
    const auto* c = w.matrix.find(covered);
    ASSERT_NE(c, nullptr);
    expected_in += c->inbound_bps;
    expected_out += c->outbound_bps;
  }
  EXPECT_NEAR(p.inbound_bps, expected_in, 1.0);
  EXPECT_NEAR(p.outbound_bps, expected_out, 1.0);
  EXPECT_EQ(p.covered_networks, 5u);
}

TEST(OffloadAnalyzer, RemainingPotentialSubtractsOverlap) {
  World w;
  // X1 under group 4 covers cones of 22 and 24: {22, 33, 24, 35}.
  // After realizing X1, X2's remaining coverage is {23, 34, 40}.
  const std::vector<ixp::IxpId> x1{0};
  const auto remaining =
      w.analyzer->remaining_potential_at(1, x1, PeerGroup::kAll);
  EXPECT_EQ(remaining.covered_networks, 3u);
  const auto full = w.analyzer->potential_at(std::vector<ixp::IxpId>{1},
                                             PeerGroup::kAll);
  EXPECT_LT(remaining.total_bps(), full.total_bps());
}

TEST(OffloadAnalyzer, GreedyPicksLargestFirstAndIsMonotone) {
  World w;
  const auto steps = w.analyzer->greedy_by_traffic(PeerGroup::kAll, 10);
  // X2's coverage outweighs X1's; X1 then adds {24, 35}; HOME adds nothing.
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].acronym, "X2");
  EXPECT_EQ(steps[1].acronym, "X1");
  double prev = steps[0].remaining + steps[0].gained;
  for (const auto& step : steps) {
    EXPECT_GT(step.gained, 0.0);
    EXPECT_NEAR(step.remaining, prev - step.gained, 1.0);
    EXPECT_NEAR(step.remaining,
                step.remaining_inbound_bps + step.remaining_outbound_bps,
                1.0);
    prev = step.remaining;
  }
}

TEST(OffloadAnalyzer, GreedyByAddressesUsesAddressWeights) {
  World w;
  const auto steps = w.analyzer->greedy_by_addresses(PeerGroup::kAll, 10);
  ASSERT_FALSE(steps.empty());
  // Each endpoint owns a /16 = 65,536 addresses; X2 covers 5 endpoints.
  EXPECT_DOUBLE_EQ(steps[0].gained, 5.0 * 65536.0);
  EXPECT_DOUBLE_EQ(steps[0].remaining_inbound_bps, 0.0);  // Address mode.
}

TEST(OffloadAnalyzer, TransitAddressesCountEndpointSpace) {
  World w;
  EXPECT_DOUBLE_EQ(w.analyzer->transit_addresses(), 12.0 * 65536.0);
}

TEST(OffloadAnalyzer, TopContributorsSplitEndpointVsTransient) {
  World w;
  const auto rows = w.analyzer->top_contributors(20, PeerGroup::kAll);
  ASSERT_FALSE(rows.empty());
  // P2 (22) carries its customer C3 (33) as transient traffic.
  const auto p2 = std::find_if(
      rows.begin(), rows.end(),
      [](const ContributorRow& r) { return r.asn == as(22); });
  ASSERT_NE(p2, rows.end());
  EXPECT_GT(p2->transient_inbound_bps, 0.0);
  EXPECT_GT(p2->endpoint_inbound_bps, 0.0);
  EXPECT_FALSE(p2->name.empty());
  // Stub C3 (33) transits nothing.
  const auto c3 = std::find_if(
      rows.begin(), rows.end(),
      [](const ContributorRow& r) { return r.asn == as(33); });
  if (c3 != rows.end()) {
    EXPECT_DOUBLE_EQ(c3->transient_inbound_bps, 0.0);
    EXPECT_DOUBLE_EQ(c3->transient_outbound_bps, 0.0);
  }
  // The vantage's transit providers are not listed as contributors.
  for (const auto& row : rows) {
    EXPECT_NE(row.asn, as(1));
    EXPECT_NE(row.asn, as(2));
  }
  // Ranked by total contribution.
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].total_bps(), rows[i].total_bps());
}

TEST(OffloadAnalyzer, PotentialBoundedByTransitTotals) {
  World w;
  const auto everywhere = w.analyzer->all_ixps();
  const auto p = w.analyzer->potential_at(everywhere, PeerGroup::kAll);
  EXPECT_LE(p.inbound_bps, w.analyzer->transit_inbound_bps() + 1e-9);
  EXPECT_LE(p.outbound_bps, w.analyzer->transit_outbound_bps() + 1e-9);
}

TEST(OffloadAnalyzer, GroupMonotonicity) {
  // Property: larger peer groups never cover less.
  World w;
  const auto everywhere = w.analyzer->all_ixps();
  double prev = -1.0;
  for (PeerGroup g : {PeerGroup::kOpen, PeerGroup::kOpenTop10Selective,
                      PeerGroup::kOpenSelective, PeerGroup::kAll}) {
    const auto p = w.analyzer->potential_at(everywhere, g);
    EXPECT_GE(p.total_bps(), prev);
    prev = p.total_bps();
  }
}

TEST(PeerGroups, PolicyMembership) {
  using topology::PeeringPolicy;
  EXPECT_TRUE(policy_in_group(PeeringPolicy::kOpen, PeerGroup::kOpen));
  EXPECT_FALSE(policy_in_group(PeeringPolicy::kSelective, PeerGroup::kOpen));
  EXPECT_TRUE(policy_in_group(PeeringPolicy::kSelective,
                              PeerGroup::kOpenSelective));
  EXPECT_FALSE(policy_in_group(PeeringPolicy::kRestrictive,
                               PeerGroup::kOpenSelective));
  EXPECT_TRUE(policy_in_group(PeeringPolicy::kRestrictive, PeerGroup::kAll));
  EXPECT_EQ(to_string(PeerGroup::kAll), "all policies");
  EXPECT_EQ(to_string(PeerGroup::kOpen), "all open policies");
}

}  // namespace
}  // namespace rp::offload

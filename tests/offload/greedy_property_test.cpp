// Property sweep over generated worlds: invariants of the offload analysis
// that must hold for any seed — greedy monotonicity, coverage bounds, group
// nesting, and consistency between the greedy curve and direct potentials.
#include <gtest/gtest.h>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"

namespace rp::offload {
namespace {

class OffloadProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static core::Scenario make_scenario(std::uint64_t seed) {
    core::ScenarioConfig config;
    config.seed = seed;
    config.membership_scale = 0.08;
    config.topology.tier2_count = 40;
    config.topology.access_count = 120;
    config.topology.content_count = 40;
    config.topology.cdn_count = 6;
    config.topology.nren_count = 5;
    config.topology.enterprise_count = 100;
    return core::Scenario::build(config);
  }
};

TEST_P(OffloadProperty, GreedyInvariants) {
  const auto scenario = make_scenario(GetParam());
  core::OffloadStudyConfig config;
  config.rate_model.span = util::SimDuration::days(2);
  const auto study = core::OffloadStudy::run(scenario, config);
  const auto& analyzer = study.analyzer();

  const double total =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
  const auto steps = analyzer.greedy_by_traffic(PeerGroup::kAll, 65);

  double cumulative = 0.0;
  double previous_gain = 1e18;
  for (const auto& step : steps) {
    // Gains are positive and non-increasing (diminishing marginal utility).
    EXPECT_GT(step.gained, 0.0);
    EXPECT_LE(step.gained, previous_gain + 1e-6);
    previous_gain = step.gained;
    cumulative += step.gained;
    // Remaining + cumulative == total throughout.
    EXPECT_NEAR(step.remaining + cumulative, total, total * 1e-9 + 1.0);
    EXPECT_GE(step.remaining, -1e-6);
    EXPECT_NEAR(step.remaining,
                step.remaining_inbound_bps + step.remaining_outbound_bps,
                1.0);
  }

  // The greedy total equals the full-reach potential.
  const auto everywhere = analyzer.all_ixps();
  const auto full = analyzer.potential_at(everywhere, PeerGroup::kAll);
  EXPECT_NEAR(cumulative, full.total_bps(), total * 1e-9 + 1.0);
  // The first step equals the best single-IXP potential.
  if (!steps.empty()) {
    double best_single = 0.0;
    for (const auto& ixp : scenario.ecosystem().ixps()) {
      const std::vector<ixp::IxpId> just_this{ixp.id()};
      best_single = std::max(
          best_single,
          analyzer.potential_at(just_this, PeerGroup::kAll).total_bps());
    }
    EXPECT_NEAR(steps.front().gained, best_single, best_single * 1e-9 + 1.0);
  }
}

TEST_P(OffloadProperty, GroupNestingHoldsPerIxp) {
  const auto scenario = make_scenario(GetParam());
  core::OffloadStudyConfig config;
  config.rate_model.span = util::SimDuration::days(2);
  const auto study = core::OffloadStudy::run(scenario, config);
  const auto& analyzer = study.analyzer();
  // Sampled per-IXP: potentials must be nested across the four groups.
  for (std::size_t i = 0; i < scenario.ecosystem().ixps().size(); i += 7) {
    const std::vector<ixp::IxpId> just_this{
        scenario.ecosystem().ixps()[i].id()};
    double previous = -1.0;
    for (PeerGroup group : {PeerGroup::kOpen, PeerGroup::kOpenTop10Selective,
                            PeerGroup::kOpenSelective, PeerGroup::kAll}) {
      const double bps = analyzer.potential_at(just_this, group).total_bps();
      EXPECT_GE(bps, previous - 1e-9);
      previous = bps;
    }
  }
}

TEST_P(OffloadProperty, CoverageBoundedByEligibleCones) {
  const auto scenario = make_scenario(GetParam());
  core::OffloadStudyConfig config;
  config.rate_model.span = util::SimDuration::days(2);
  const auto study = core::OffloadStudy::run(scenario, config);
  const auto& analyzer = study.analyzer();
  const auto everywhere = analyzer.all_ixps();
  const auto covered = analyzer.covered_endpoints(everywhere, PeerGroup::kAll);

  // Every covered endpoint must sit inside some eligible peer's cone.
  std::unordered_set<net::Asn> cone_union;
  for (net::Asn peer : analyzer.eligible_peers())
    for (net::Asn member : scenario.graph().customer_cone(peer))
      cone_union.insert(member);
  for (net::Asn endpoint : covered)
    EXPECT_TRUE(cone_union.contains(endpoint)) << endpoint.to_string();

  // Excluded entities never appear among eligible peers.
  const auto eligible = analyzer.eligible_peers();
  for (net::Asn provider : scenario.graph().providers_of(scenario.vantage()))
    EXPECT_EQ(std::count(eligible.begin(), eligible.end(), provider), 0);
  EXPECT_EQ(std::count(eligible.begin(), eligible.end(), scenario.vantage()),
            0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OffloadProperty,
                         ::testing::Values(3, 17, 42, 2014));

}  // namespace
}  // namespace rp::offload

#include "flow/rate_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "topology/generator.hpp"

namespace rp::flow {
namespace {

struct Fixture {
  topology::AsGraph graph;
  net::Asn vantage;
  TrafficMatrix matrix;

  Fixture() : graph(make_graph()), vantage(pick_nren(graph)),
              matrix(make_matrix(graph, vantage)) {}

  static topology::AsGraph make_graph() {
    topology::GeneratorConfig config;
    config.tier1_count = 2;
    config.tier2_count = 6;
    config.access_count = 20;
    config.content_count = 10;
    config.cdn_count = 2;
    config.nren_count = 3;
    config.enterprise_count = 10;
    util::Rng rng(31);
    return topology::generate_topology(config, rng);
  }
  static net::Asn pick_nren(const topology::AsGraph& g) {
    for (const auto& node : g.nodes())
      if (node.cls == topology::AsClass::kNren) return node.asn;
    throw std::logic_error("no NREN");
  }
  static TrafficMatrix make_matrix(const topology::AsGraph& g, net::Asn v) {
    util::Rng rng(32);
    return TrafficMatrix::generate(g, v, TrafficConfig{}, rng);
  }
};

TEST(RateModel, BinCountMatchesSpan) {
  Fixture f;
  RateModelConfig config;
  config.span = util::SimDuration::days(28);
  config.bin_length = util::SimDuration::minutes(5);
  RateModel model(f.matrix, config);
  EXPECT_EQ(model.bin_count(), 28u * 24u * 12u);  // 8,064 bins like Fig. 5b.
}

TEST(RateModel, RatesArePositiveAndDeterministic) {
  Fixture f;
  RateModel model(f.matrix, RateModelConfig{});
  const net::Asn asn = f.matrix.ranked().front().asn;
  for (std::size_t bin : {0u, 100u, 4000u}) {
    const double r1 = model.rate_bps(asn, Direction::kInbound, bin);
    const double r2 = model.rate_bps(asn, Direction::kInbound, bin);
    EXPECT_GT(r1, 0.0);
    EXPECT_DOUBLE_EQ(r1, r2);
  }
}

TEST(RateModel, UnknownNetworkHasZeroRate) {
  Fixture f;
  RateModel model(f.matrix, RateModelConfig{});
  EXPECT_DOUBLE_EQ(model.rate_bps(net::Asn{987654}, Direction::kInbound, 0),
                   0.0);
}

TEST(RateModel, DiurnalPeakNearConfiguredHour) {
  Fixture f;
  RateModelConfig config;
  config.noise_sigma = 0.0;
  config.phase_jitter_hours = 0.0;
  RateModel model(f.matrix, config);
  // Modulation at the peak hour beats the trough by the full amplitude.
  const double peak = model.modulation(21 * 12, Direction::kInbound, 0.0);
  const double trough = model.modulation(9 * 12, Direction::kInbound, 0.0);
  EXPECT_GT(peak, trough);
  EXPECT_NEAR(peak / trough, (1 + 0.45) / (1 - 0.45), 0.05);
}

TEST(RateModel, WeekendQuieterThanWeekday) {
  Fixture f;
  RateModelConfig config;
  config.noise_sigma = 0.0;
  RateModel model(f.matrix, config);
  // Same hour of day, day 2 (Wednesday) vs day 5 (Saturday).
  const std::size_t wednesday_noon = (2 * 24 + 12) * 12;
  const std::size_t saturday_noon = (5 * 24 + 12) * 12;
  const double wd = model.modulation(wednesday_noon, Direction::kInbound, 0.0);
  const double we = model.modulation(saturday_noon, Direction::kInbound, 0.0);
  EXPECT_NEAR(we / wd, 0.70, 1e-9);
}

TEST(RateModel, AggregateSeriesSumsMembers) {
  Fixture f;
  RateModel model(f.matrix, RateModelConfig{});
  std::vector<net::Asn> two{f.matrix.ranked()[0].asn,
                            f.matrix.ranked()[1].asn};
  const auto series = model.aggregate_series(two, Direction::kOutbound);
  ASSERT_EQ(series.size(), model.bin_count());
  for (std::size_t bin : {0u, 77u, 1000u}) {
    const double expected =
        model.rate_bps(two[0], Direction::kOutbound, bin) +
        model.rate_bps(two[1], Direction::kOutbound, bin);
    EXPECT_NEAR(series[bin], expected, expected * 1e-12);
  }
}

TEST(RateModel, SeriesAverageTracksBaseRate) {
  Fixture f;
  RateModel model(f.matrix, RateModelConfig{});
  const auto& top = f.matrix.ranked().front();
  const auto series =
      model.aggregate_series({top.asn}, Direction::kInbound);
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  // Diurnal and weekly modulation average out near the base rate.
  EXPECT_NEAR(mean, top.inbound_bps, top.inbound_bps * 0.12);
}

TEST(RateModel, DailyPeaksCoincideAcrossNetworks) {
  // The Fig. 5b property: total transit and any subset peak together,
  // because the diurnal phase is shared up to small jitter.
  Fixture f;
  RateModel model(f.matrix, RateModelConfig{});
  std::vector<net::Asn> all;
  for (const auto& c : f.matrix.ranked()) all.push_back(c.asn);
  std::vector<net::Asn> subset(all.begin(), all.begin() + all.size() / 3);
  const auto total = model.aggregate_series(all, Direction::kInbound);
  const auto part = model.aggregate_series(subset, Direction::kInbound);
  // Find each day's peak bin; they should be within a couple hours.
  const std::size_t bins_per_day = 24 * 12;
  for (int day = 0; day < 5; ++day) {
    const auto begin = static_cast<std::ptrdiff_t>(day * bins_per_day);
    const auto end = begin + static_cast<std::ptrdiff_t>(bins_per_day);
    const auto total_peak = std::max_element(total.begin() + begin,
                                             total.begin() + end);
    const auto part_peak =
        std::max_element(part.begin() + begin, part.begin() + end);
    const auto gap = std::abs((total_peak - total.begin()) -
                              (part_peak - part.begin()));
    EXPECT_LE(gap, 3 * 12) << "day " << day;  // Within 3 hours.
  }
}

}  // namespace
}  // namespace rp::flow

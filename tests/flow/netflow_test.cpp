#include "flow/netflow.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "topology/generator.hpp"
#include "util/thread_pool.hpp"

namespace rp::flow {
namespace {

struct Fixture {
  topology::AsGraph graph = make_graph();
  net::Asn vantage = pick_nren(graph);
  TrafficMatrix matrix = make_matrix(graph, vantage);
  RateModel rates{matrix, RateModelConfig{}};
  bgp::Rib rib = bgp::Rib::build(graph, vantage);

  static topology::AsGraph make_graph() {
    topology::GeneratorConfig config;
    config.tier1_count = 2;
    config.tier2_count = 5;
    config.access_count = 12;
    config.content_count = 6;
    config.cdn_count = 2;
    config.nren_count = 3;
    config.enterprise_count = 8;
    util::Rng rng(41);
    return topology::generate_topology(config, rng);
  }
  static net::Asn pick_nren(const topology::AsGraph& g) {
    for (const auto& node : g.nodes())
      if (node.cls == topology::AsClass::kNren) return node.asn;
    throw std::logic_error("no NREN");
  }
  static TrafficMatrix make_matrix(const topology::AsGraph& g, net::Asn v) {
    util::Rng rng(42);
    return TrafficMatrix::generate(g, v, TrafficConfig{}, rng);
  }
};

TEST(FlowSampler, RecordsCarryVantageAndRemoteAddresses) {
  Fixture f;
  FlowSampler sampler(f.graph, f.vantage, f.rates, util::Rng(1));
  const auto records = sampler.sample_bin(0, 0.0, 2);
  ASSERT_FALSE(records.empty());
  const auto& vantage_node = f.graph.node(f.vantage);
  for (const auto& record : records) {
    const net::Ipv4Addr local =
        record.direction == Direction::kInbound ? record.dst : record.src;
    bool local_ok = false;
    for (const auto& p : vantage_node.prefixes)
      local_ok = local_ok || p.contains(local);
    EXPECT_TRUE(local_ok) << local.to_string();
    EXPECT_GT(record.bytes, 0.0);
  }
}

TEST(FlowSampler, MinRateFiltersSmallContributors) {
  Fixture f;
  FlowSampler all(f.graph, f.vantage, f.rates, util::Rng(2));
  FlowSampler big(f.graph, f.vantage, f.rates, util::Rng(2));
  const auto everything = all.sample_bin(5, 0.0, 1);
  const auto heavy = big.sample_bin(5, 5e8, 1);  // Only >= 500 Mbps flows.
  EXPECT_GT(everything.size(), heavy.size());
  EXPECT_FALSE(heavy.empty());  // The head of the tail is that big.
}

TEST(NetFlowCollector, JoinRecoversPerNetworkBytes) {
  // The round trip of §4.1: rates -> address-level flows -> LPM join back to
  // per-network byte counts. Totals must match the rate model bin totals.
  Fixture f;
  FlowSampler sampler(f.graph, f.vantage, f.rates, util::Rng(3));
  const auto records = sampler.sample_bin(7, 0.0, 3);
  NetFlowCollector collector(f.rib);
  for (const auto& record : records) collector.add(record);
  EXPECT_EQ(collector.record_count(), records.size());
  EXPECT_EQ(collector.unclassified(), 0u);

  const double bin_seconds = 300.0;
  for (const auto& [asn, entry] : collector.by_network()) {
    const double expected_in =
        f.rates.rate_bps(asn, Direction::kInbound, 7) * bin_seconds / 8.0;
    EXPECT_NEAR(entry.inbound_bytes, expected_in,
                expected_in * 1e-9 + 1e-6)
        << asn.to_string();
  }
}

TEST(NetFlowCollector, JoinRoundTripIsDeterministic) {
  // Same seed, same bin -> the sampled records and the joined per-network
  // byte counts are byte-identical run to run.
  Fixture f;
  FlowSampler first(f.graph, f.vantage, f.rates, util::Rng(9));
  FlowSampler second(f.graph, f.vantage, f.rates, util::Rng(9));
  const auto a = first.sample_bin(3, 0.0, 2);
  const auto b = second.sample_bin(3, 0.0, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].direction, b[i].direction);
  }
  NetFlowCollector ca(f.rib);
  NetFlowCollector cb(f.rib);
  for (const auto& r : a) ca.add(r);
  for (const auto& r : b) cb.add(r);
  ASSERT_EQ(ca.by_network().size(), cb.by_network().size());
  for (const auto& [asn, entry] : ca.by_network()) {
    const auto& other = cb.by_network().at(asn);
    EXPECT_EQ(entry.inbound_bytes, other.inbound_bytes);
    EXPECT_EQ(entry.outbound_bytes, other.outbound_bytes);
    EXPECT_EQ(entry.records, other.records);
  }
}

TEST(NetFlowCollector, JoinRoundTripStableAcrossThreadWidths) {
  // The sampler/collector path must not depend on the global pool width:
  // the §4.1 round trip (rates -> flows -> LPM join) rejoins to the same
  // bytes whether the harness runs with RP_THREADS=1 or 8.
  Fixture f;
  std::map<net::Asn, std::pair<double, double>> narrow;
  std::map<net::Asn, std::pair<double, double>> wide;
  for (const unsigned threads : {1u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    FlowSampler sampler(f.graph, f.vantage, f.rates, util::Rng(21));
    NetFlowCollector collector(f.rib);
    for (const auto& record : sampler.sample_bin(11, 0.0, 2))
      collector.add(record);
    auto& out = threads == 1 ? narrow : wide;
    for (const auto& [asn, entry] : collector.by_network())
      out[asn] = {entry.inbound_bytes, entry.outbound_bytes};
  }
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(narrow, wide);

  // And the join still rejoins the rate model within epsilon.
  const double bin_seconds = 300.0;
  FlowSampler sampler(f.graph, f.vantage, f.rates, util::Rng(21));
  NetFlowCollector collector(f.rib);
  for (const auto& record : sampler.sample_bin(11, 0.0, 2))
    collector.add(record);
  for (const auto& [asn, entry] : collector.by_network()) {
    const double expected_in =
        f.rates.rate_bps(asn, Direction::kInbound, 11) * bin_seconds / 8.0;
    const double expected_out =
        f.rates.rate_bps(asn, Direction::kOutbound, 11) * bin_seconds / 8.0;
    EXPECT_NEAR(entry.inbound_bytes, expected_in,
                expected_in * 1e-9 + 1e-6);
    EXPECT_NEAR(entry.outbound_bytes, expected_out,
                expected_out * 1e-9 + 1e-6);
  }
}

TEST(NetFlowCollector, UnroutedAddressesCountedAsUnclassified) {
  Fixture f;
  NetFlowCollector collector(f.rib);
  FlowRecord record;
  record.direction = Direction::kInbound;
  record.src = net::Ipv4Addr(203, 0, 113, 1);  // TEST-NET-3: unrouted.
  record.dst = net::Ipv4Addr(203, 0, 113, 2);
  record.bytes = 100.0;
  collector.add(record);
  EXPECT_EQ(collector.unclassified(), 1u);
  EXPECT_TRUE(collector.by_network().empty());
}

TEST(NetFlowCollector, DirectionsAccumulateSeparately) {
  Fixture f;
  NetFlowCollector collector(f.rib);
  const auto& remote = f.graph.nodes()[0];
  const net::Ipv4Addr remote_addr = remote.prefixes[0].address_at(1);
  FlowRecord in;
  in.direction = Direction::kInbound;
  in.src = remote_addr;
  in.dst = f.graph.node(f.vantage).prefixes[0].address_at(1);
  in.bytes = 10.0;
  FlowRecord out = in;
  out.direction = Direction::kOutbound;
  std::swap(out.src, out.dst);
  out.bytes = 4.0;
  collector.add(in);
  collector.add(out);
  const auto& entry = collector.by_network().at(remote.asn);
  EXPECT_DOUBLE_EQ(entry.inbound_bytes, 10.0);
  EXPECT_DOUBLE_EQ(entry.outbound_bytes, 4.0);
  EXPECT_EQ(entry.records, 2u);
}

}  // namespace
}  // namespace rp::flow

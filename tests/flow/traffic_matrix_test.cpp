#include "flow/traffic_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/generator.hpp"

namespace rp::flow {
namespace {

topology::AsGraph test_graph() {
  topology::GeneratorConfig config;
  config.tier1_count = 3;
  config.tier2_count = 10;
  config.access_count = 40;
  config.content_count = 20;
  config.cdn_count = 3;
  config.nren_count = 4;
  config.enterprise_count = 20;
  util::Rng rng(21);
  return topology::generate_topology(config, rng);
}

net::Asn pick_nren(const topology::AsGraph& g) {
  for (const auto& node : g.nodes())
    if (node.cls == topology::AsClass::kNren) return node.asn;
  throw std::logic_error("no NREN");
}

TEST(TrafficMatrix, CoversEveryoneButVantage) {
  const auto graph = test_graph();
  const net::Asn vantage = pick_nren(graph);
  util::Rng rng(1);
  const auto matrix =
      TrafficMatrix::generate(graph, vantage, TrafficConfig{}, rng);
  EXPECT_EQ(matrix.network_count(), graph.as_count() - 1);
  EXPECT_EQ(matrix.find(vantage), nullptr);
}

TEST(TrafficMatrix, TotalsMatchConfiguredRates) {
  const auto graph = test_graph();
  util::Rng rng(2);
  TrafficConfig config;
  config.total_inbound_gbps = 8.0;
  config.total_outbound_gbps = 5.0;
  const auto matrix =
      TrafficMatrix::generate(graph, pick_nren(graph), config, rng);
  double in = 0.0, out = 0.0;
  for (const auto& c : matrix.ranked()) {
    in += c.inbound_bps;
    out += c.outbound_bps;
  }
  EXPECT_NEAR(in, 8e9, 1e6);
  EXPECT_NEAR(out, 5e9, 1e6);
  EXPECT_NEAR(matrix.total_inbound_bps(), 8e9, 1.0);
  EXPECT_NEAR(matrix.total_outbound_bps(), 5e9, 1.0);
}

TEST(TrafficMatrix, RankedDecreasingByTotal) {
  const auto graph = test_graph();
  util::Rng rng(3);
  const auto matrix = TrafficMatrix::generate(graph, pick_nren(graph),
                                              TrafficConfig{}, rng);
  for (std::size_t i = 1; i < matrix.ranked().size(); ++i)
    EXPECT_GE(matrix.ranked()[i - 1].total_bps(),
              matrix.ranked()[i].total_bps());
}

TEST(TrafficMatrix, HeavyTail) {
  // A few networks carry most of the traffic (Fig. 5a: near-Gbps heads,
  // ~100 bps mid-tail).
  const auto graph = test_graph();
  util::Rng rng(4);
  const auto matrix = TrafficMatrix::generate(graph, pick_nren(graph),
                                              TrafficConfig{}, rng);
  const auto& ranked = matrix.ranked();
  double top10 = 0.0, total = 0.0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i < 10) top10 += ranked[i].total_bps();
    total += ranked[i].total_bps();
  }
  EXPECT_GT(top10 / total, 0.3);
  // Every contribution is positive.
  for (const auto& c : ranked) {
    EXPECT_GT(c.inbound_bps, 0.0);
    EXPECT_GT(c.outbound_bps, 0.0);
  }
}

TEST(TrafficMatrix, BendSteepensTail) {
  // Beyond the knee the rank-size decline accelerates: the log-log slope
  // between deep ranks is steeper than between shallow ranks.
  const auto graph = test_graph();
  util::Rng rng(5);
  TrafficConfig config;
  config.rank_jitter_sigma = 0.0;  // Pure law, no jitter.
  config.direction_ratio_sigma = 0.0;
  config.knee_fraction = 0.5;
  const auto matrix =
      TrafficMatrix::generate(graph, pick_nren(graph), config, rng);
  const auto& ranked = matrix.ranked();
  const std::size_t n = ranked.size();
  const std::size_t knee = n / 2;
  auto slope = [&ranked](std::size_t a, std::size_t b) {
    return (std::log(ranked[b - 1].total_bps()) -
            std::log(ranked[a - 1].total_bps())) /
           (std::log(static_cast<double>(b)) -
            std::log(static_cast<double>(a)));
  };
  const double head_slope = slope(2, knee - 2);
  const double tail_slope = slope(knee + 2, n - 1);
  EXPECT_LT(tail_slope, head_slope - 0.5);  // Steeper (more negative).
}

TEST(TrafficMatrix, FindLocatesNetworks) {
  const auto graph = test_graph();
  util::Rng rng(6);
  const auto matrix = TrafficMatrix::generate(graph, pick_nren(graph),
                                              TrafficConfig{}, rng);
  const auto& first = matrix.ranked().front();
  const auto* found = matrix.find(first.asn);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->total_bps(), first.total_bps());
  EXPECT_EQ(matrix.find(net::Asn{999999}), nullptr);
}

TEST(TrafficMatrix, DeterministicForSameSeed) {
  const auto graph = test_graph();
  util::Rng rng1(7), rng2(7);
  const auto a = TrafficMatrix::generate(graph, pick_nren(graph),
                                         TrafficConfig{}, rng1);
  const auto b = TrafficMatrix::generate(graph, pick_nren(graph),
                                         TrafficConfig{}, rng2);
  ASSERT_EQ(a.network_count(), b.network_count());
  for (std::size_t i = 0; i < a.ranked().size(); ++i) {
    EXPECT_EQ(a.ranked()[i].asn, b.ranked()[i].asn);
    EXPECT_DOUBLE_EQ(a.ranked()[i].inbound_bps, b.ranked()[i].inbound_bps);
  }
}

}  // namespace
}  // namespace rp::flow

// Timeline grammar tests: parse, canonicalize, digest — the identity layer
// every replay record, manifest, and serve epoch query leans on.
#include "evolve/timeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rp::evolve {
namespace {

constexpr const char* kSample =
    "# a decade, compressed\n"
    "name   sample\n"
    "fast 1\n"
    "base seed 7\n"
    "epoch y1\n"
    "  join CATNIX 4 0.50   # share canonicalizes to 0.5\n"
    "  prices 1.20 0.030 0.15 0.008 0.5\n"
    "epoch y2\n"
    "  new-ixp NIX CATNIX 0.40\n"
    "  capacity CATNIX 0.90\n"
    "  price-decay 0.85\n"
    "  traffic 1.30\n"
    "epoch y3\n"
    "  leave CATNIX 2\n"
    "  outage ESpanix\n"
    "  restore ESpanix\n"
    "  provider-fail AtratoNet\n"
    "  provider-restore AtratoNet\n"
    "  region-cap CATNIX 0.75\n";

TEST(TimelineParse, ParsesEveryEventKind) {
  const Timeline timeline = parse_timeline(kSample);
  EXPECT_EQ(timeline.name, "sample");
  EXPECT_TRUE(timeline.fast);
  ASSERT_EQ(timeline.base.size(), 1u);
  EXPECT_EQ(timeline.base[0].first, "seed");
  ASSERT_EQ(timeline.epochs.size(), 3u);
  EXPECT_EQ(timeline.epochs[0].label, "y1");
  EXPECT_EQ(timeline.epochs[0].events.size(), 2u);
  EXPECT_EQ(timeline.epochs[2].events.size(), 6u);
  EXPECT_EQ(timeline.event_count(), 12u);
  EXPECT_EQ(timeline.base_config().seed, 7u);
}

TEST(TimelineParse, CanonicalTextRoundTripsAndNormalizesSpelling) {
  const Timeline timeline = parse_timeline(kSample);
  const std::string canonical = canonical_timeline_text(timeline);
  // Comments and spelling variants are gone...
  EXPECT_EQ(canonical.find('#'), std::string::npos);
  EXPECT_NE(canonical.find("join CATNIX 4 0.5\n"), std::string::npos);
  EXPECT_NE(canonical.find("prices 1.2 0.03 0.15 0.008 0.5\n"),
            std::string::npos);
  // ...and the canonical form is a fixed point.
  const Timeline reparsed = parse_timeline(canonical);
  EXPECT_EQ(canonical_timeline_text(reparsed), canonical);
  EXPECT_EQ(timeline_digest_hex(reparsed), timeline_digest_hex(timeline));
}

TEST(TimelineParse, TwoSpellingsOneDigest) {
  const std::string variant =
      "name sample\nfast 1\nbase seed 7\n"
      "epoch y1\njoin   CATNIX   4   0.5\nprices 1.2 3e-2 0.15 8e-3 0.50\n"
      "epoch y2\nnew-ixp NIX CATNIX .4\ncapacity CATNIX .9\n"
      "price-decay .85\ntraffic 1.3\n"
      "epoch y3\nleave CATNIX 2\noutage ESpanix\nrestore ESpanix\n"
      "provider-fail AtratoNet\nprovider-restore AtratoNet\n"
      "region-cap CATNIX 0.750\n";
  EXPECT_EQ(timeline_digest_hex(parse_timeline(variant)),
            timeline_digest_hex(parse_timeline(kSample)));
}

TEST(TimelineParse, DigestIsSensitiveToEveryOperand) {
  const std::string base = canonical_timeline_text(parse_timeline(kSample));
  for (const auto& [from, to] :
       {std::pair<std::string, std::string>{"join CATNIX 4", "join CATNIX 5"},
        {"traffic 1.3", "traffic 1.4"},
        {"epoch y3", "epoch y3b"},
        {"provider-fail AtratoNet", "provider-fail IXCarrier"}}) {
    std::string mutated = base;
    const auto at = mutated.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    mutated.replace(at, from.size(), to);
    EXPECT_NE(timeline_digest_hex(parse_timeline(mutated)),
              timeline_digest_hex(parse_timeline(base)))
        << from << " -> " << to;
  }
}

TEST(TimelineParse, RejectsStructuralViolations) {
  // Events before the first epoch.
  EXPECT_THROW(parse_timeline("join CATNIX 2\n"), std::invalid_argument);
  // Base lines after an epoch opened.
  EXPECT_THROW(parse_timeline("epoch a\nbase seed 3\n"),
               std::invalid_argument);
  // Duplicate epoch labels.
  EXPECT_THROW(parse_timeline("epoch a\nepoch a\n"), std::invalid_argument);
  // Unknown keyword.
  EXPECT_THROW(parse_timeline("epoch a\nmerge CATNIX ESpanix\n"),
               std::invalid_argument);
  // Unknown base field.
  EXPECT_THROW(parse_timeline("base not_a_field 3\nepoch a\n"),
               std::invalid_argument);
  // Bad operand counts and ranges.
  EXPECT_THROW(parse_timeline("epoch a\njoin CATNIX\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_timeline("epoch a\nprices 1 2 3\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_timeline("epoch a\ntraffic -1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_timeline("epoch a\nregion-cap CATNIX 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_timeline("epoch a\njoin CATNIX 2 1.5\n"),
               std::invalid_argument);
}

TEST(TimelineParse, ErrorsNameTheLine) {
  try {
    parse_timeline("name ok\nepoch a\nbogus\n");
    FAIL() << "parsed a bogus keyword";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TimelineParse, LoadTimelineReportsMissingFiles) {
  EXPECT_THROW(load_timeline("/nonexistent/evolve.timeline"),
               std::runtime_error);
}

TEST(TimelineParse, EventKeywordsRoundTrip) {
  for (const EventKind kind :
       {EventKind::kJoin, EventKind::kLeave, EventKind::kNewIxp,
        EventKind::kCapacity, EventKind::kPrices, EventKind::kPriceDecay,
        EventKind::kTraffic, EventKind::kOutage, EventKind::kRestore,
        EventKind::kProviderFail, EventKind::kProviderRestore,
        EventKind::kRegionCap})
    EXPECT_FALSE(event_keyword(kind).empty());
}

}  // namespace
}  // namespace rp::evolve

// EpochTimeline engine tests on a real (tiny) world: event semantics epoch
// by epoch, the overlay-vs-fresh-rebuild byte-identity contract, thread-count
// invariance of replay artifacts, and kill/resume through the "evolve.apply"
// fault site.
#include "evolve/engine.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "evolve/replay.hpp"
#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace rp::evolve {
namespace {

// A tiny world that still carries the full Euro-IX ecosystem: euroix=1 is
// what puts CATNIX/ESpanix (the vantage's home exchanges) on the map, which
// the churn events below lean on. Builds in well under a second.
constexpr const char* kTinyBase =
    "name engine-test\n"
    "base seed 31\n"
    "base euroix 1\n"
    "base membership_scale 0.05\n"
    "base topology.tier2_count 15\n"
    "base topology.access_count 60\n"
    "base topology.content_count 15\n"
    "base topology.cdn_count 5\n"
    "base topology.nren_count 4\n"
    "base topology.enterprise_count 30\n";

constexpr const char* kEvents =
    "epoch grow\n"
    "  join CATNIX 5 1\n"
    "  join ESpanix 3 0\n"
    "  prices 1.2 0.03 0.15 0.008 0.5\n"
    "epoch found\n"
    "  new-ixp TESTIX CATNIX 0.5\n"
    "  join TESTIX 4 0.5\n"
    "  capacity CATNIX 0.9\n"
    "  traffic 1.5\n"
    "epoch shrink\n"
    "  leave ESpanix 2\n"
    "  price-decay 0.9\n"
    "epoch dark\n"
    "  outage CATNIX\n"
    "  provider-fail AtratoNet\n"
    "epoch light\n"
    "  restore CATNIX\n"
    "  provider-restore AtratoNet\n"
    "  traffic 1.2\n";

std::size_t total_interfaces(const ixp::IxpEcosystem& eco) {
  std::size_t count = 0;
  for (const ixp::Ixp& ixp : eco.ixps()) count += ixp.interfaces().size();
  return count;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

class EpochTimelineTest : public testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    timeline_ = parse_timeline(std::string(kTinyBase) + kEvents);
    root_ = std::filesystem::path(testing::TempDir()) /
            ("rpevolve_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
    options_.cache_dir = shared_cache();
    options_.group = 4;
    options_.steps = 4;
    options_.days = 1.0;
  }
  void TearDown() override {
    fault::disarm_all();
    util::ThreadPool::set_global_threads(0);
    std::filesystem::remove_all(root_);
  }

  static std::filesystem::path shared_cache() {
    static const std::filesystem::path dir = [] {
      auto path = std::filesystem::path(testing::TempDir()) /
                  ("rpevolve_cache_" + std::to_string(::getpid()));
      std::filesystem::create_directories(path);
      return path;
    }();
    return dir;
  }

  // One base world for the whole binary (every test replays overlays on it).
  const core::Scenario& base() {
    static const core::Scenario scenario = core::Scenario::build_cached(
        parse_timeline(kTinyBase).base_config(), shared_cache());
    return scenario;
  }

  Timeline timeline_;
  std::filesystem::path root_;
  ReplayOptions options_;
};

TEST_F(EpochTimelineTest, CompositionFollowsEvents) {
  EpochTimeline engine(timeline_, base());
  ASSERT_EQ(engine.epoch_count(), 5u);
  const std::size_t base_interfaces = total_interfaces(base().ecosystem());

  const EpochState& grow = engine.state_at(0);
  EXPECT_EQ(grow.label, "grow");
  EXPECT_EQ(grow.joins, 8u);
  EXPECT_EQ(total_interfaces(grow.ecosystem), base_interfaces + 8);
  EXPECT_DOUBLE_EQ(grow.prices.transit_price, 1.2);
  EXPECT_DOUBLE_EQ(grow.prices.remote_fixed, 0.008);
  // join CATNIX with remote-share 1: all five arrive via a provider.
  const ixp::Ixp* catnix = grow.ecosystem.find("CATNIX");
  ASSERT_NE(catnix, nullptr);
  std::size_t catnix_remote = 0;
  for (const ixp::MemberInterface& iface : catnix->interfaces())
    catnix_remote += iface.kind == ixp::AttachmentKind::kRemoteViaProvider;
  EXPECT_GE(catnix_remote, 5u);

  const EpochState& found = engine.state_at(1);
  EXPECT_EQ(found.new_ixps, 1u);
  EXPECT_EQ(found.ecosystem.ixps().size(),
            base().ecosystem().ixps().size() + 1);
  const ixp::Ixp* testix = found.ecosystem.find("TESTIX");
  ASSERT_NE(testix, nullptr);
  EXPECT_EQ(testix->interfaces().size(), 4u);
  EXPECT_DOUBLE_EQ(found.ecosystem.find("CATNIX")->peak_traffic_tbps(), 0.9);
  EXPECT_DOUBLE_EQ(found.traffic_scale, 1.5);

  const EpochState& shrink = engine.state_at(2);
  EXPECT_GE(shrink.leaves, 2u);
  EXPECT_DOUBLE_EQ(shrink.prices.transit_price, 1.2 * 0.9);

  const EpochState& dark = engine.state_at(3);
  EXPECT_EQ(dark.ecosystem.find("CATNIX")->interfaces().size(), 0u);
  EXPECT_GT(dark.stashed, 0u);
  // Every AtratoNet pseudowire is down everywhere, not just at CATNIX.
  std::size_t atrato_index = 0;
  const auto providers = dark.ecosystem.providers();
  for (std::size_t i = 0; i < providers.size(); ++i)
    if (providers[i].name == "AtratoNet") atrato_index = i;
  for (const ixp::Ixp& ixp : dark.ecosystem.ixps())
    for (const ixp::MemberInterface& iface : ixp.interfaces())
      EXPECT_FALSE(iface.kind == ixp::AttachmentKind::kRemoteViaProvider &&
                   iface.provider_index == atrato_index)
          << ixp.acronym();

  const EpochState& light = engine.state_at(4);
  EXPECT_EQ(light.stashed, 0u);
  EXPECT_EQ(total_interfaces(light.ecosystem),
            total_interfaces(shrink.ecosystem));
  EXPECT_EQ(light.ecosystem.find("CATNIX")->interfaces().size(),
            shrink.ecosystem.find("CATNIX")->interfaces().size());
  EXPECT_DOUBLE_EQ(light.traffic_scale, 1.5 * 1.2);
}

TEST_F(EpochTimelineTest, ChurnNeverEvictsTheVantage) {
  Timeline timeline = parse_timeline(
      std::string(kTinyBase) +
      "epoch purge\n  leave CATNIX 500\n  leave ESpanix 500\n");
  EpochTimeline engine(timeline, base());
  const EpochState& purged = engine.state_at(0);
  for (const char* home : {"CATNIX", "ESpanix"}) {
    const ixp::Ixp* ixp = purged.ecosystem.find(home);
    ASSERT_NE(ixp, nullptr);
    EXPECT_TRUE(ixp->has_member(base().vantage())) << home;
  }
}

TEST_F(EpochTimelineTest, OverlayMatchesFreshRebuildByteForByte) {
  // Overlay path: replay on the shared (cached) base. Rebuild path: replay
  // on a scratch-built base. The encoded epoch worlds must be identical —
  // the determinism contract in the engine header.
  EpochTimeline overlay(timeline_, base());
  const core::Scenario fresh = core::Scenario::build(timeline_.base_config());
  EpochTimeline rebuilt(timeline_, fresh);
  for (std::size_t k = 0; k < timeline_.epochs.size(); ++k)
    EXPECT_EQ(io::encode_scenario(overlay.view_at(k)),
              io::encode_scenario(rebuilt.view_at(k)))
        << "epoch " << k;
  // rebuild_state_at is the same path packaged for benches.
  const EpochState last = rebuild_state_at(timeline_, 4);
  EXPECT_EQ(total_interfaces(last.ecosystem),
            total_interfaces(overlay.state_at(4).ecosystem));
}

TEST_F(EpochTimelineTest, ReplayArtifactsAreThreadCountInvariant) {
  const auto dir1 = root_ / "threads1";
  util::ThreadPool::set_global_threads(1);
  EXPECT_EQ(replay_timeline(timeline_, dir1, options_).executed, 5u);
  EXPECT_EQ(summarize_replay(timeline_, dir1), 5u);

  const auto dir8 = root_ / "threads8";
  util::ThreadPool::set_global_threads(8);
  EXPECT_EQ(replay_timeline(timeline_, dir8, options_).executed, 5u);
  EXPECT_EQ(summarize_replay(timeline_, dir8), 5u);

  const EvolvePaths paths1(dir1), paths8(dir8);
  EXPECT_EQ(read_file(paths1.results_csv()), read_file(paths8.results_csv()));
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_EQ(read_file(paths1.snapshot(k)), read_file(paths8.snapshot(k)))
        << "epoch " << k;
}

TEST_F(EpochTimelineTest, FaultInterruptThenResumeIsByteIdentical) {
  const auto reference = root_ / "reference";
  EXPECT_EQ(replay_timeline(timeline_, reference, options_).executed, 5u);
  summarize_replay(timeline_, reference);

  const auto dir = root_ / "interrupted";
  // 17 events in the timeline: kill mid-replay, inside an epoch.
  fault::arm(std::string(fault::kSiteEvolveApply) + ":nth=7");
  EXPECT_THROW(replay_timeline(timeline_, dir, options_),
               fault::InjectedFault);
  fault::disarm_all();
  const std::size_t survived = completed_epochs(timeline_, dir);
  EXPECT_GT(survived, 0u);
  EXPECT_LT(survived, 5u);
  EXPECT_THROW(summarize_replay(timeline_, dir), std::runtime_error);

  const ReplayOutcome resumed = replay_timeline(timeline_, dir, options_);
  EXPECT_EQ(resumed.skipped, survived);
  EXPECT_EQ(resumed.executed, 5u - survived);
  summarize_replay(timeline_, dir);
  const EvolvePaths got(dir), want(reference);
  EXPECT_EQ(read_file(got.results_csv()), read_file(want.results_csv()));
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_EQ(read_file(got.snapshot(k)), read_file(want.snapshot(k)))
        << "epoch " << k;
}

TEST_F(EpochTimelineTest, ManifestRoundTripsAndRejectsTampering) {
  const auto dir = root_ / "manifest";
  write_manifest(timeline_, dir);
  const Timeline loaded = read_manifest(dir);
  EXPECT_EQ(timeline_digest_hex(loaded), timeline_digest_hex(timeline_));
  EXPECT_EQ(canonical_timeline_text(loaded),
            canonical_timeline_text(timeline_));
  std::string text = read_file(EvolvePaths(dir).manifest());
  const auto at = text.find("join CATNIX 5");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 13, "join CATNIX 6");
  std::ofstream(EvolvePaths(dir).manifest(), std::ios::trunc) << text;
  EXPECT_THROW(read_manifest(dir), std::runtime_error);
  EXPECT_THROW(read_manifest(root_ / "nowhere"), std::runtime_error);
}

TEST_F(EpochTimelineTest, RejectsMismatchedBaseWorld) {
  core::ScenarioConfig other = timeline_.base_config();
  other.seed = 32;
  const core::Scenario wrong =
      core::Scenario::build_cached(other, shared_cache());
  EXPECT_THROW(EpochTimeline(timeline_, wrong), std::invalid_argument);
}

TEST_F(EpochTimelineTest, StudyConfigScalesTrafficCumulatively) {
  EpochTimeline engine(timeline_, base());
  core::OffloadStudyConfig plain;
  const core::OffloadStudyConfig at1 = engine.study_config_at(1);
  EXPECT_DOUBLE_EQ(at1.traffic.total_inbound_gbps,
                   plain.traffic.total_inbound_gbps * 1.5);
  const core::OffloadStudyConfig at4 = engine.study_config_at(4);
  EXPECT_DOUBLE_EQ(at4.traffic.total_outbound_gbps,
                   plain.traffic.total_outbound_gbps * 1.5 * 1.2);
}

TEST_F(EpochTimelineTest, UnknownNamesAndRangesAreRejected) {
  EpochTimeline past(timeline_, base());
  EXPECT_THROW(past.state_at(5), std::out_of_range);
  Timeline bad_ixp = parse_timeline(std::string(kTinyBase) +
                                    "epoch a\n  join NOSUCH 2\n");
  EXPECT_THROW(EpochTimeline(bad_ixp, base()).state_at(0),
               std::invalid_argument);
  Timeline bad_provider = parse_timeline(
      std::string(kTinyBase) + "epoch a\n  provider-fail NoSuchCarrier\n");
  EXPECT_THROW(EpochTimeline(bad_provider, base()).state_at(0),
               std::invalid_argument);
  Timeline dup_ixp = parse_timeline(std::string(kTinyBase) +
                                    "epoch a\n  new-ixp CATNIX ESpanix 0.5\n");
  EXPECT_THROW(EpochTimeline(dup_ixp, base()).state_at(0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rp::evolve

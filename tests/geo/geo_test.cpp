#include "geo/geo.hpp"

#include <gtest/gtest.h>

#include "geo/cities.hpp"

namespace rp::geo {
namespace {

TEST(GreatCircle, ZeroForSamePoint) {
  const GeoPoint p{52.37, 4.90};
  EXPECT_DOUBLE_EQ(great_circle_distance_m(p, p), 0.0);
}

TEST(GreatCircle, Symmetric) {
  const GeoPoint a{52.37, 4.90}, b{40.71, -74.01};
  EXPECT_DOUBLE_EQ(great_circle_distance_m(a, b),
                   great_circle_distance_m(b, a));
}

TEST(GreatCircle, KnownDistances) {
  const auto& cities = CityRegistry::world();
  const auto ams = cities.at("Amsterdam").position;
  const auto lon = cities.at("London").position;
  const auto nyc = cities.at("New York").position;
  const auto syd = cities.at("Sydney").position;
  // Amsterdam - London ~ 358 km.
  EXPECT_NEAR(great_circle_distance_m(ams, lon) / 1000.0, 358.0, 25.0);
  // Amsterdam - New York ~ 5,868 km.
  EXPECT_NEAR(great_circle_distance_m(ams, nyc) / 1000.0, 5868.0, 80.0);
  // London - Sydney ~ 16,993 km.
  EXPECT_NEAR(great_circle_distance_m(lon, syd) / 1000.0, 16993.0, 150.0);
}

TEST(GreatCircle, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(great_circle_distance_m(a, b) / 1000.0, 20015.0, 30.0);
}

TEST(PropagationDelay, MatchesFiberSpeed) {
  // 1000 km of fiber at 2/3 c: ~5 ms one way.
  const auto d = propagation_delay_for_distance(1'000'000.0);
  EXPECT_NEAR(d.as_millis_f(), 5.0, 0.01);
}

TEST(PropagationDelay, PathStretchScalesLinearly) {
  const GeoPoint a{52.37, 4.90}, b{50.11, 8.68};
  const auto direct = propagation_delay(a, b, 1.0);
  const auto stretched = propagation_delay(a, b, 2.0);
  EXPECT_NEAR(stretched.as_seconds_f(), 2.0 * direct.as_seconds_f(), 1e-9);
}

TEST(PropagationDelay, DistanceBandsMatchPaperRanges) {
  const auto& cities = CityRegistry::world();
  // Intercity (Amsterdam-Frankfurt): RTT ~ 2 * one-way in [2, 10) ms.
  const auto intercity =
      propagation_delay(cities.at("Amsterdam").position,
                        cities.at("Frankfurt").position);
  EXPECT_LT(2.0 * intercity.as_millis_f(), 10.0);
  // Intra-European long haul (Amsterdam-Moscow): 10-50 ms RTT.
  const auto intercountry = propagation_delay(
      cities.at("Amsterdam").position, cities.at("Moscow").position);
  EXPECT_GT(2.0 * intercountry.as_millis_f(), 10.0);
  EXPECT_LT(2.0 * intercountry.as_millis_f(), 50.0);
  // Intercontinental (Amsterdam-New York): >= 50 ms RTT.
  const auto intercontinental = propagation_delay(
      cities.at("Amsterdam").position, cities.at("New York").position);
  EXPECT_GE(2.0 * intercontinental.as_millis_f(), 50.0);
}

TEST(CityRegistry, ContainsTable1Cities) {
  const auto& cities = CityRegistry::world();
  for (const char* name :
       {"Amsterdam", "Frankfurt", "London", "Hong Kong", "New York", "Moscow",
        "Warsaw", "Paris", "Sao Paulo", "Seattle", "Tokyo", "Toronto",
        "Vienna", "Milan", "Turin", "Stockholm", "Seoul", "Buenos Aires",
        "Dublin"}) {
    EXPECT_TRUE(cities.find(name).has_value()) << name;
  }
}

TEST(CityRegistry, FindAndAtAgree) {
  const auto& cities = CityRegistry::world();
  const auto found = cities.find("Madrid");
  ASSERT_TRUE(found);
  EXPECT_EQ(found->country, "Spain");
  EXPECT_EQ(cities.at("Madrid").name, "Madrid");
  EXPECT_FALSE(cities.find("Atlantis"));
  EXPECT_THROW(cities.at("Atlantis"), std::out_of_range);
}

TEST(CityRegistry, CoversAllSixContinents) {
  const auto& cities = CityRegistry::world();
  for (const Continent c :
       {Continent::kAfrica, Continent::kAsia, Continent::kEurope,
        Continent::kNorthAmerica, Continent::kOceania,
        Continent::kSouthAmerica}) {
    EXPECT_FALSE(cities.on_continent(c).empty()) << to_string(c);
  }
}

TEST(Continent, ToStringNames) {
  EXPECT_EQ(to_string(Continent::kEurope), "Europe");
  EXPECT_EQ(to_string(Continent::kSouthAmerica), "South America");
}

}  // namespace
}  // namespace rp::geo

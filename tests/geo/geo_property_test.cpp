// Metric properties of the geography substrate, swept over city pairs.
#include <gtest/gtest.h>

#include <tuple>

#include "geo/cities.hpp"

namespace rp::geo {
namespace {

class CityPairProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static const City& city(int index) {
    const auto& all = CityRegistry::world().all();
    return all[static_cast<std::size_t>(index) % all.size()];
  }
};

TEST_P(CityPairProperty, DistanceIsAMetric) {
  const auto& a = city(std::get<0>(GetParam()));
  const auto& b = city(std::get<1>(GetParam()));
  const double ab = great_circle_distance_m(a.position, b.position);
  const double ba = great_circle_distance_m(b.position, a.position);
  EXPECT_DOUBLE_EQ(ab, ba);                     // Symmetry.
  EXPECT_GE(ab, 0.0);                           // Non-negativity.
  if (a.name == b.name) {
    EXPECT_DOUBLE_EQ(ab, 0.0);
  }
  // Bounded by half the circumference.
  EXPECT_LE(ab, 20'100'000.0);
  // Triangle inequality through a third city.
  const auto& c = city(std::get<0>(GetParam()) + 7);
  const double ac = great_circle_distance_m(a.position, c.position);
  const double cb = great_circle_distance_m(c.position, b.position);
  EXPECT_LE(ab, ac + cb + 1e-6);
}

TEST_P(CityPairProperty, PropagationDelayScalesWithDistance) {
  const auto& a = city(std::get<0>(GetParam()));
  const auto& b = city(std::get<1>(GetParam()));
  const double meters = great_circle_distance_m(a.position, b.position);
  const auto delay = propagation_delay(a.position, b.position, 1.0);
  // delay = meters / (2/3 c); check within rounding.
  EXPECT_NEAR(delay.as_seconds_f(),
              meters / (kSpeedOfLightMps * kFiberVelocityFactor), 1e-9);
  // Monotone in stretch.
  EXPECT_GE(propagation_delay(a.position, b.position, 1.7),
            propagation_delay(a.position, b.position, 1.2));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CityPairProperty,
    ::testing::Combine(::testing::Values(0, 5, 11, 23, 41),
                       ::testing::Values(2, 13, 29, 57)));

}  // namespace
}  // namespace rp::geo

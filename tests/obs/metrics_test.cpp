// Unit tests of the rp::obs metrics registry: sharded counters, log2
// histograms, gauges, registration semantics, and the enabled/disabled gate.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace rp::obs {
namespace {

/// Enables metrics for one test and restores the disabled default on exit,
/// so suites sharing the process never leak the flag into each other.
struct MetricsOn {
  MetricsOn() { set_metrics_enabled(true); }
  ~MetricsOn() { set_metrics_enabled(false); }
};

const MetricValue* find(const std::vector<MetricValue>& snapshot,
                        const std::string& name) {
  for (const auto& m : snapshot)
    if (m.name == name) return &m;
  return nullptr;
}

TEST(Metrics, CounterSumsExactlyAcrossThreads) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Counter counter("test.metrics.cross_thread");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.add(3);
    });
  for (auto& thread : threads) thread.join();
  counter.add(5);
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.cross_thread");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->count, 8u * 1000u * 3u + 5u);
}

TEST(Metrics, DisabledUpdatesAreDropped) {
  MetricsRegistry::global().reset();
  ASSERT_FALSE(metrics_enabled());
  Counter counter("test.metrics.disabled");
  Histogram histogram("test.metrics.disabled_hist");
  counter.add(7);
  histogram.record(7);
  { ScopedTimer timer(histogram); }
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(find(snap, "test.metrics.disabled")->count, 0u);
  EXPECT_EQ(find(snap, "test.metrics.disabled_hist")->count, 0u);
}

TEST(Metrics, SameNameSharesOneMetric) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Counter a("test.metrics.shared");
  Counter b("test.metrics.shared");
  a.add(2);
  b.add(3);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(find(snap, "test.metrics.shared")->count, 5u);
}

TEST(Metrics, KindMismatchThrows) {
  Counter counter("test.metrics.kind_clash");
  EXPECT_THROW(Histogram("test.metrics.kind_clash"), std::logic_error);
}

TEST(Metrics, HistogramBucketsAreLog2) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.log2");
  histogram.record(0);    // bucket 0
  histogram.record(1);    // bucket 1
  histogram.record(2);    // bucket 2
  histogram.record(3);    // bucket 2
  histogram.record(900);  // bucket 10: [512, 1024)
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.log2");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 5u);
  EXPECT_EQ(m->sum, 906u);
  EXPECT_EQ(m->min, 0u);
  EXPECT_EQ(m->max, 900u);
  EXPECT_DOUBLE_EQ(m->mean(), 906.0 / 5.0);
  EXPECT_EQ(m->buckets[0], 1u);
  EXPECT_EQ(m->buckets[1], 1u);
  EXPECT_EQ(m->buckets[2], 2u);
  EXPECT_EQ(m->buckets[10], 1u);
}

TEST(Metrics, QuantileInterpolatesInsideBuckets) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.quantile_uniform");
  // 64 samples spread uniformly over bucket 7's range [64, 128).
  for (std::uint64_t v = 64; v < 128; ++v) histogram.record(v);
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.quantile_uniform");
  ASSERT_NE(m, nullptr);
  // All mass sits in one bucket; linear interpolation across [64, 128)
  // lands the median near the true one (95.5) — well within a bucket step.
  EXPECT_NEAR(m->quantile(0.50), 96.0, 4.0);
  EXPECT_NEAR(m->quantile(0.99), 127.0, 4.0);
  // Quantiles never leave the recorded [min, max].
  EXPECT_GE(m->quantile(0.0), 64.0);
  EXPECT_LE(m->quantile(1.0), 127.0);
}

TEST(Metrics, QuantileAcrossBucketsRespectsOrdering) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.quantile_spread");
  // 90 small samples and 10 large ones: p50 must stay small, p99 large.
  for (int i = 0; i < 90; ++i) histogram.record(10);
  for (int i = 0; i < 10; ++i) histogram.record(100000);
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.quantile_spread");
  ASSERT_NE(m, nullptr);
  EXPECT_LT(m->quantile(0.50), 20.0);
  EXPECT_GT(m->quantile(0.95), 60000.0);
  EXPECT_LE(m->quantile(0.50), m->quantile(0.90));
  EXPECT_LE(m->quantile(0.90), m->quantile(0.99));
}

TEST(Metrics, QuantileDegenerateCases) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.quantile_edge");
  const auto* empty =
      find(MetricsRegistry::global().snapshot(), "test.metrics.quantile_edge");
  ASSERT_NE(empty, nullptr);
  // No samples yet: "no data" is NaN, never a fabricated 0 (a 0 would be
  // indistinguishable from a real all-zero latency distribution).
  EXPECT_TRUE(std::isnan(empty->quantile(0.5)));
  EXPECT_TRUE(std::isnan(empty->quantile(0.0)));
  EXPECT_TRUE(std::isnan(empty->quantile(1.0)));

  // All samples identical: min/max clamping reports the exact value.
  for (int i = 0; i < 100; ++i) histogram.record(42);
  const auto* m =
      find(MetricsRegistry::global().snapshot(), "test.metrics.quantile_edge");
  EXPECT_DOUBLE_EQ(m->quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(m->quantile(0.99), 42.0);

  // Zero-only histograms report 0 (bucket 0 is exact).
  MetricsRegistry::global().reset();
  histogram.record(0);
  const auto* zero =
      find(MetricsRegistry::global().snapshot(), "test.metrics.quantile_edge");
  EXPECT_DOUBLE_EQ(zero->quantile(0.99), 0.0);

  // Counters have no quantiles — NaN, even with a nonzero count.
  Counter counter("test.metrics.quantile_counter");
  counter.add(5);
  const auto* c = find(MetricsRegistry::global().snapshot(),
                       "test.metrics.quantile_counter");
  EXPECT_TRUE(std::isnan(c->quantile(0.5)));
}

TEST(Metrics, QuantileSingleBucketClampsToObservedRange) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.quantile_one_bucket");
  // Two distinct samples inside one log2 bucket [128, 256): interpolation
  // works on the bucket's nominal range, but the clamp contract promises no
  // quantile ever escapes the recorded [min, max].
  histogram.record(130);
  histogram.record(140);
  const auto* m = find(MetricsRegistry::global().snapshot(),
                       "test.metrics.quantile_one_bucket");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->min, 130u);
  EXPECT_EQ(m->max, 140u);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = m->quantile(q);
    EXPECT_GE(v, 130.0) << "q=" << q;
    EXPECT_LE(v, 140.0) << "q=" << q;
  }
  // Monotone in q even under clamping.
  EXPECT_LE(m->quantile(0.1), m->quantile(0.9));
}

TEST(Metrics, GaugeLastWriterWins) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Gauge gauge("test.metrics.gauge");
  gauge.set(1.5);
  gauge.set(42.25);
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 42.25);
}

TEST(Metrics, ResetZeroesEverything) {
  MetricsOn on;
  Counter counter("test.metrics.reset");
  counter.add(9);
  MetricsRegistry::global().reset();
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(find(snap, "test.metrics.reset")->count, 0u);
}

TEST(Metrics, SnapshotIsSortedByName) {
  Counter z("test.metrics.zz");
  Counter a("test.metrics.aa");
  const auto snap = MetricsRegistry::global().snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].name, snap[i].name);
}

TEST(Metrics, DeterministicSnapshotExcludesSchedulingMetrics) {
  Counter stable("test.metrics.stable", Stability::kDeterministic);
  Counter wobbly("test.metrics.wobbly", Stability::kScheduling);
  const auto det = MetricsRegistry::global().deterministic_snapshot();
  EXPECT_NE(find(det, "test.metrics.stable"), nullptr);
  EXPECT_EQ(find(det, "test.metrics.wobbly"), nullptr);
}

TEST(Metrics, ScopedTimerRecordsWhenEnabled) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Histogram histogram("test.metrics.timer");
  { ScopedTimer timer(histogram); }
  const auto snap = MetricsRegistry::global().snapshot();
  const auto* m = find(snap, "test.metrics.timer");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
}

TEST(MetricsExport, JsonEntriesCoverEveryKind) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Counter counter("test.export.counter");
  Gauge gauge("test.export.gauge");
  Histogram histogram("test.export.hist");
  counter.add(4);
  gauge.set(2.5);
  histogram.record(16);
  const auto entries =
      metrics_json_entries(MetricsRegistry::global().snapshot());
  auto value_of = [&entries](const std::string& key) -> std::string {
    for (const auto& [k, v] : entries)
      if (k == key) return v;
    return "(missing)";
  };
  EXPECT_EQ(value_of("test.export.counter"), "4");
  EXPECT_EQ(value_of("test.export.gauge"), "2.5");
  EXPECT_EQ(value_of("test.export.hist.count"), "1");
  EXPECT_EQ(value_of("test.export.hist.sum"), "16");
  // Quantile keys ride along for histograms (clamped to the exact value
  // when every sample is equal).
  EXPECT_EQ(value_of("test.export.hist.p50"), "16");
  EXPECT_EQ(value_of("test.export.hist.p99"), "16");

  // The flat writer produces one key per line between braces.
  std::ostringstream os;
  write_metrics_json(os, MetricsRegistry::global().snapshot());
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"test.export.counter\": 4"), std::string::npos);
}

TEST(MetricsExport, TableListsEveryMetric) {
  MetricsOn on;
  MetricsRegistry::global().reset();
  Counter counter("test.table.counter");
  counter.add(11);
  std::ostringstream os;
  render_metrics_table(os, MetricsRegistry::global().snapshot());
  EXPECT_NE(os.str().find("test.table.counter"), std::string::npos);
  EXPECT_NE(os.str().find("11"), std::string::npos);
}

TEST(MetricsExport, PrometheusNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_metric_name("queue.depth"), "rp_queue_depth");
  EXPECT_EQ(prometheus_metric_name("req.world-info.p50_us"),
            "rp_req_world_info_p50_us");
  // Already rp_-prefixed keys are not double-prefixed.
  EXPECT_EQ(prometheus_metric_name("rp_custom"), "rp_custom");
  // Colons are legal in Prometheus metric names and pass through.
  EXPECT_EQ(prometheus_metric_name("rp_a:b"), "rp_a:b");
}

TEST(MetricsExport, CanonicalNumberGrammarIsStrict) {
  for (const char* ok : {"0", "3", "-7", "1.5", "0.25", "-0.5", "1e9",
                         "2.5e-3", "1.797e+308", "1234567890"})
    EXPECT_TRUE(is_canonical_number(ok)) << ok;
  // Leading zeros are the tell for an all-digit hex digest, and inf/nan
  // have no JSON spelling.
  for (const char* bad :
       {"", "0000000000000000", "007", "9f3ac2d47b81e605", "1,2,3", "inf",
        "-inf", "nan", "+5", ".5", "1.", "1e", "-", "1.5.2", "0x10", " 1"})
    EXPECT_FALSE(is_canonical_number(bad)) << bad;
}

TEST(MetricsExport, PrometheusWritesOnlyNumericRows) {
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"queue.depth", "3"},
      {"pool.world.0.digest", "9f3ac2d47b81e605"},  // hex: not a sample
      {"slow.0.world", "0000000000000000"},  // all-digit digest: still not
      {"stats.uptime_s", "1.5"},
      {"ts.series", "1,2,3"},  // comma-joined window: not a sample
      {"bad.inf", "inf"},      // parses leniently but non-finite: skipped
      {"bad.empty", ""},
  };
  std::ostringstream os;
  EXPECT_EQ(write_prometheus(os, rows), 2u);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE rp_queue_depth gauge\nrp_queue_depth 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE rp_stats_uptime_s gauge\nrp_stats_uptime_s 1.5\n"),
      std::string::npos);
  EXPECT_EQ(text.find("digest"), std::string::npos);
  EXPECT_EQ(text.find("slow_0_world"), std::string::npos);
  EXPECT_EQ(text.find("ts_series"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace rp::obs

// Unit tests of the rp::obs time-series recorder: counter→rate derivation,
// gauge and histogram series, ring wrap, the sampler thread lifecycle, and
// the RP_OBS_SAMPLE_MS parse. sample_once() drives the recorder
// deterministically — the thread is only exercised by the lifecycle test.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace rp::obs {
namespace {

/// Arms metrics and clears both the registry and the recorder for one test,
/// restoring the disarmed default on exit.
struct RecorderOn {
  RecorderOn() {
    set_metrics_enabled(true);
    MetricsRegistry::global().reset();
    TimeSeriesRecorder::global().reset();
  }
  ~RecorderOn() {
    TimeSeriesRecorder::global().stop();
    TimeSeriesRecorder::global().reset();
    MetricsRegistry::global().reset();
    set_metrics_enabled(false);
  }
};

bool has_key(const std::vector<std::string>& keys, const std::string& key) {
  for (const auto& k : keys)
    if (k == key) return true;
  return false;
}

/// Temporarily overrides one environment variable, restoring on destruction.
struct EnvOverride {
  EnvOverride(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvOverride() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(TimeSeries, IntervalFromEnvParsesAndDefaults) {
  {
    EnvOverride env("RP_OBS_SAMPLE_MS", nullptr);
    EXPECT_EQ(TimeSeriesRecorder::interval_ms_from_env(), kDefaultSampleMs);
  }
  {
    EnvOverride env("RP_OBS_SAMPLE_MS", "25");
    EXPECT_EQ(TimeSeriesRecorder::interval_ms_from_env(), 25u);
  }
  {
    EnvOverride env("RP_OBS_SAMPLE_MS", "0");  // Explicitly disabled.
    EXPECT_EQ(TimeSeriesRecorder::interval_ms_from_env(), 0u);
  }
  {
    EnvOverride env("RP_OBS_SAMPLE_MS", "not-a-number");
    EXPECT_EQ(TimeSeriesRecorder::interval_ms_from_env(), kDefaultSampleMs);
  }
}

TEST(TimeSeries, CounterRateNeedsTwoSamplesAndIsNonNegative) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  Counter counter("test.ts.counter");
  counter.add(100);

  recorder.sample_once();
  // One sample establishes the baseline; no rate point yet.
  EXPECT_FALSE(has_key(recorder.keys(), "test.ts.counter.rate"));

  counter.add(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  recorder.sample_once();
  const auto points = recorder.window("test.ts.counter.rate");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].value, 0.0);  // 50 events over a positive interval.
  EXPECT_GT(points[0].t_ns, 0u);

  // A registry reset between samples must not produce a negative rate.
  MetricsRegistry::global().reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  recorder.sample_once();
  const auto after_reset = recorder.window("test.ts.counter.rate");
  ASSERT_EQ(after_reset.size(), 2u);
  EXPECT_DOUBLE_EQ(after_reset[1].value, 0.0);
}

TEST(TimeSeries, GaugeSeriesTracksLastValue) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  Gauge gauge("test.ts.gauge");
  gauge.set(1.5);
  recorder.sample_once();
  gauge.set(42.25);
  recorder.sample_once();

  const auto points = recorder.window("test.ts.gauge");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.5);
  EXPECT_DOUBLE_EQ(points[1].value, 42.25);
  EXPECT_LE(points[0].t_ns, points[1].t_ns);
}

TEST(TimeSeries, EmptyHistogramsAreSuppressedUntilTheyHaveData) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  Histogram histogram("test.ts.hist");

  recorder.sample_once();  // Histogram registered but empty: no series.
  EXPECT_FALSE(has_key(recorder.keys(), "test.ts.hist.p50"));
  EXPECT_FALSE(has_key(recorder.keys(), "test.ts.hist.p99"));

  for (std::uint64_t v = 100; v < 200; ++v) histogram.record(v);
  recorder.sample_once();
  const auto p50 = recorder.window("test.ts.hist.p50");
  const auto p99 = recorder.window("test.ts.hist.p99");
  ASSERT_EQ(p50.size(), 1u);
  ASSERT_EQ(p99.size(), 1u);
  // Quantiles honour the clamp contract: inside the recorded [min, max].
  EXPECT_GE(p50[0].value, 100.0);
  EXPECT_LE(p50[0].value, 199.0);
  EXPECT_LE(p50[0].value, p99[0].value);
  EXPECT_LE(p99[0].value, 199.0);
}

TEST(TimeSeries, RingWrapBoundsEachSeries) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  const std::size_t capacity = recorder.capacity();
  ASSERT_GE(capacity, 16u);
  Gauge gauge("test.ts.wrap");

  const std::size_t total = capacity + 5;
  for (std::size_t i = 0; i < total; ++i) {
    gauge.set(static_cast<double>(i));
    recorder.sample_once();
  }
  EXPECT_EQ(recorder.samples(), total);  // Tick count survives the wrap.

  const auto all = recorder.window("test.ts.wrap");
  ASSERT_EQ(all.size(), capacity);  // Memory stays bounded.
  // The 5 oldest points fell off; order is oldest → newest.
  EXPECT_DOUBLE_EQ(all.front().value, 5.0);
  EXPECT_DOUBLE_EQ(all.back().value, static_cast<double>(total - 1));

  const auto last3 = recorder.window("test.ts.wrap", 3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_DOUBLE_EQ(last3[0].value, static_cast<double>(total - 3));
  EXPECT_DOUBLE_EQ(last3[2].value, static_cast<double>(total - 1));

  // Unknown keys are empty, not an error.
  EXPECT_TRUE(recorder.window("test.ts.no_such_series").empty());
}

TEST(TimeSeries, SamplerThreadTicksAndStopsCleanly) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  Gauge gauge("test.ts.sampler");
  gauge.set(7.0);

  EXPECT_FALSE(recorder.start(0));  // 0 = disabled: no thread.
  EXPECT_FALSE(recorder.running());

  ASSERT_TRUE(recorder.start(5));
  EXPECT_TRUE(recorder.running());
  EXPECT_EQ(recorder.interval_ms(), 5u);
  EXPECT_FALSE(recorder.start(5));  // Already running.

  // Wait (bounded) for the thread to take at least two ticks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (recorder.samples() < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(recorder.samples(), 2u);

  recorder.stop();
  EXPECT_FALSE(recorder.running());
  EXPECT_EQ(recorder.interval_ms(), 0u);
  recorder.stop();  // Idempotent.

  EXPECT_FALSE(recorder.window("test.ts.sampler").empty());
}

TEST(TimeSeries, ResetDropsSeriesAndTicks) {
  RecorderOn on;
  TimeSeriesRecorder& recorder = TimeSeriesRecorder::global();
  Gauge gauge("test.ts.reset");
  gauge.set(1.0);
  recorder.sample_once();
  ASSERT_FALSE(recorder.keys().empty());

  recorder.reset();
  EXPECT_TRUE(recorder.keys().empty());
  EXPECT_EQ(recorder.samples(), 0u);
  EXPECT_TRUE(recorder.window("test.ts.reset").empty());

  // Still usable after reset.
  recorder.sample_once();
  EXPECT_EQ(recorder.samples(), 1u);
}

}  // namespace
}  // namespace rp::obs

// Tests of the rp::obs trace session: span recording across threads, the
// Chrome/Perfetto trace_event JSON shape, and session lifecycle rules.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rp_trace_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->line()) +
             ".json");
    stop_trace();  // In case a prior test (or RP_TRACE) left one active.
  }
  void TearDown() override {
    stop_trace();
    std::filesystem::remove(path_);
  }
  std::filesystem::path path_;
};

TEST_F(TraceTest, SpansOutsideSessionRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  { Span span("test.noop"); }
  EXPECT_EQ(stop_trace(), 0u);
}

TEST_F(TraceTest, WritesBalancedWellFormedTrace) {
  ASSERT_TRUE(start_trace(path_.string()));
  EXPECT_TRUE(trace_enabled());
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
    util::ThreadPool::global().parallel_for(4, [](std::size_t) {
      Span worker("test.worker");
    });
  }
  const std::size_t events = stop_trace();
  EXPECT_FALSE(trace_enabled());
  // outer + inner + 4 worker spans, each a begin/end pair.
  EXPECT_EQ(events, 12u);

  const std::string text = slurp(path_);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 3), "]}\n");
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"B\""), 6u);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"E\""), 6u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"test.worker\""), 8u);
  // Every event names the required trace_event fields.
  EXPECT_EQ(count_occurrences(text, "\"ts\":"), events);
  EXPECT_EQ(count_occurrences(text, "\"pid\":1"), events);
  EXPECT_EQ(count_occurrences(text, "\"tid\":"), events);
}

TEST_F(TraceTest, TimestampsAreMonotonicallySorted) {
  ASSERT_TRUE(start_trace(path_.string()));
  for (int i = 0; i < 5; ++i) Span span("test.seq");
  ASSERT_EQ(stop_trace(), 10u);

  const std::string text = slurp(path_);
  double last = -1.0;
  std::size_t pos = 0;
  while ((pos = text.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::stod(text.substr(pos));
    EXPECT_GE(ts, last);
    last = ts;
  }
}

TEST_F(TraceTest, SecondStartWhileActiveIsRejected) {
  ASSERT_TRUE(start_trace(path_.string()));
  EXPECT_FALSE(start_trace((path_.string() + ".other")));
  { Span span("test.single"); }
  EXPECT_EQ(stop_trace(), 2u);
  EXPECT_EQ(stop_trace(), 0u);  // Idempotent.
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".other"));
}

TEST_F(TraceTest, SessionsAreRestartable) {
  ASSERT_TRUE(start_trace(path_.string()));
  { Span span("test.first"); }
  ASSERT_EQ(stop_trace(), 2u);

  ASSERT_TRUE(start_trace(path_.string()));
  { Span span("test.second"); }
  ASSERT_EQ(stop_trace(), 2u);  // Only the new session's events.
  const std::string text = slurp(path_);
  EXPECT_EQ(count_occurrences(text, "test.second"), 2u);
  EXPECT_EQ(count_occurrences(text, "test.first"), 0u);
}

}  // namespace
}  // namespace rp::obs

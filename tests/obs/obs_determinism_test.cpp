// The tentpole guarantee of rp::obs: counter totals are a pure function of
// the work performed, not the schedule. Running the paper-scale pipeline —
// spread study, offload analysis + greedy, snapshot encode/decode — must
// produce byte-identical deterministic-counter totals at RP_THREADS=1 and
// RP_THREADS=8 (Stability::kScheduling metrics are excluded by
// deterministic_snapshot; their *presence* is checked separately).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "io/snapshot.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rp::core {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.seed = 23;
  config.euroix = false;
  config.membership_scale = 0.05;
  config.topology.tier2_count = 20;
  config.topology.access_count = 80;
  config.topology.content_count = 20;
  config.topology.cdn_count = 6;
  config.topology.nren_count = 5;
  config.topology.enterprise_count = 40;
  return config;
}

/// Runs every instrumented stage once and returns the deterministic counter
/// totals serialized as flat JSON (sorted by name, exact integers).
std::string pipeline_fingerprint(const Scenario& scenario, unsigned threads) {
  util::ThreadPool::set_global_threads(threads);
  obs::MetricsRegistry::global().reset();
  obs::set_metrics_enabled(true);

  SpreadStudyConfig spread_config;
  spread_config.campaign.length = util::SimDuration::days(3);
  spread_config.campaign.queries_per_pch_lg = 3;
  spread_config.campaign.queries_per_ripe_lg = 2;
  const SpreadStudy spread = SpreadStudy::run(scenario, spread_config);

  OffloadStudyConfig offload_config;
  offload_config.rate_model.span = util::SimDuration::days(3);
  const OffloadStudy offload = OffloadStudy::run(scenario, offload_config);
  const auto steps =
      offload.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 4);

  const auto bytes = io::encode_scenario(scenario);
  const io::LoadedWorld loaded = io::decode_scenario(bytes);

  std::ostringstream os;
  obs::write_metrics_json(
      os, obs::MetricsRegistry::global().deterministic_snapshot());

  obs::set_metrics_enabled(false);
  util::ThreadPool::set_global_threads(0);  // Restore the env default.
  return std::move(os).str();
}

TEST(ObsDeterminism, CounterTotalsIdenticalAcrossThreadCounts) {
  const Scenario scenario = Scenario::build(small_config());
  const std::string serial = pipeline_fingerprint(scenario, 1);
  const std::string parallel = pipeline_fingerprint(scenario, 8);

  ASSERT_FALSE(serial.empty());
  // Totals that measure work must not move with the schedule.
  EXPECT_EQ(serial, parallel);
  // And the fingerprint must actually cover every instrumented layer.
  for (const char* name :
       {"rp.pool.parallel_for.calls", "rp.bgp.routes.computed",
        "rp.measure.probes.sent", "rp.offload.greedy.steps",
        "rp.io.sections.encoded", "rp.io.checksum.verifies"})
    EXPECT_NE(serial.find(name), std::string::npos) << name;
}

TEST(ObsDeterminism, SchedulingMetricsExistButAreExcluded) {
  const Scenario scenario = Scenario::build(small_config());
  util::ThreadPool::set_global_threads(4);
  obs::MetricsRegistry::global().reset();
  obs::set_metrics_enabled(true);
  const auto bytes = io::encode_scenario(scenario);
  const io::LoadedWorld loaded = io::decode_scenario(bytes);
  obs::set_metrics_enabled(false);
  util::ThreadPool::set_global_threads(0);

  bool saw_scheduling = false;
  for (const auto& m : obs::MetricsRegistry::global().snapshot())
    if (m.stability == obs::Stability::kScheduling && m.count > 0)
      saw_scheduling = true;
  EXPECT_TRUE(saw_scheduling)
      << "pool/timing metrics should record under a 4-thread pool";
  for (const auto& m :
       obs::MetricsRegistry::global().deterministic_snapshot())
    EXPECT_EQ(m.stability, obs::Stability::kDeterministic) << m.name;
}

}  // namespace
}  // namespace rp::core

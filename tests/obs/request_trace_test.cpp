// Unit tests of the rp::obs request tracer: per-thread ring residency and
// wrap, deterministic slow-query ordering, per-type latency aggregates, the
// enabled gate, and cross-thread merge order.
#include "obs/request_trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace rp::obs {
namespace {

/// Resets and arms the global tracer for one test, restoring the disarmed
/// default (and an empty tracer) on exit so suites never leak state.
struct TracerOn {
  TracerOn() {
    RequestTracer::global().reset();
    RequestTracer::global().set_enabled(true);
  }
  ~TracerOn() {
    RequestTracer::global().set_enabled(false);
    RequestTracer::global().reset();
  }
};

RequestRecord make_record(std::uint64_t request_id, std::uint8_t type,
                          std::uint64_t compute_ns) {
  RequestRecord record;
  record.request_id = request_id;
  record.type = type;
  record.world_digest = 0xabcdef;
  record.accept_ns = 1000 + request_id;
  record.queue_ns = 10;
  record.pool_ns = 20;
  record.compute_ns = compute_ns;
  record.write_ns = 5;
  return record;
}

TEST(RequestTracer, DisabledRecordsAreDropped) {
  RequestTracer& tracer = RequestTracer::global();
  tracer.reset();
  ASSERT_FALSE(tracer.enabled());
  tracer.record(make_record(1, 1, 100));
  EXPECT_EQ(tracer.completed(), 0u);
  EXPECT_TRUE(tracer.recent().empty());
  EXPECT_TRUE(tracer.type_latencies().empty());
}

TEST(RequestTracer, RequestIdsAreMonotoneAndOneBased) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  const std::uint64_t first = tracer.next_request_id();
  EXPECT_GE(first, 1u);
  EXPECT_EQ(tracer.next_request_id(), first + 1);
  EXPECT_EQ(tracer.next_request_id(), first + 2);
}

TEST(RequestTracer, RecentComesBackOldestToNewestWithFieldsIntact) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  tracer.record(make_record(11, 1, 300));
  tracer.record(make_record(12, 2, 100));
  tracer.record(make_record(13, 1, 200));
  EXPECT_EQ(tracer.completed(), 3u);

  const std::vector<RequestRecord> all = tracer.recent();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].request_id, 11u);
  EXPECT_EQ(all[1].request_id, 12u);
  EXPECT_EQ(all[2].request_id, 13u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].seq, all[i].seq);

  // Full phase breakdown round-trips through the ring.
  EXPECT_EQ(all[1].type, 2u);
  EXPECT_TRUE(all[1].ok);
  EXPECT_EQ(all[1].world_digest, 0xabcdefu);
  EXPECT_EQ(all[1].queue_ns, 10u);
  EXPECT_EQ(all[1].pool_ns, 20u);
  EXPECT_EQ(all[1].compute_ns, 100u);
  EXPECT_EQ(all[1].write_ns, 5u);

  // `max` trims from the oldest side.
  const std::vector<RequestRecord> last_two = tracer.recent(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].request_id, 12u);
  EXPECT_EQ(last_two[1].request_id, 13u);
}

TEST(RequestTracer, SlowestOrdersByComputeDescThenSeqAsc) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  tracer.record(make_record(1, 1, 500));
  tracer.record(make_record(2, 1, 900));
  tracer.record(make_record(3, 1, 500));  // Ties with id 1: seq breaks it.
  tracer.record(make_record(4, 1, 100));

  const std::vector<RequestRecord> top = tracer.slowest(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].request_id, 2u);
  EXPECT_EQ(top[1].request_id, 1u);  // Equal compute: earlier seq first.
  EXPECT_EQ(top[2].request_id, 3u);

  // Deterministic: a second read of the quiescent tracer agrees exactly.
  const std::vector<RequestRecord> again = tracer.slowest(3);
  ASSERT_EQ(again.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(again[i].request_id, top[i].request_id);

  // Asking for more than resident returns everything, still ordered.
  EXPECT_EQ(tracer.slowest(100).size(), 4u);
}

TEST(RequestTracer, TypeLatenciesAggregatePerType) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  // Total latency is queue + pool + compute + write = 35 + compute.
  tracer.record(make_record(1, 1, 65));    // total 100
  tracer.record(make_record(2, 1, 165));   // total 200
  tracer.record(make_record(3, 3, 9965));  // total 10000

  const std::vector<TypeLatency> latencies = tracer.type_latencies();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_EQ(latencies[0].type, 1u);
  EXPECT_EQ(latencies[0].count, 2u);
  EXPECT_EQ(latencies[0].max_ns, 200u);
  EXPECT_GE(latencies[0].p50_ns, 100.0);
  EXPECT_LE(latencies[0].p50_ns, 200.0);
  EXPECT_LE(latencies[0].p50_ns, latencies[0].p99_ns);

  EXPECT_EQ(latencies[1].type, 3u);
  EXPECT_EQ(latencies[1].count, 1u);
  EXPECT_EQ(latencies[1].max_ns, 10000u);
  EXPECT_GE(latencies[1].p99_ns, 10000.0 * 0.5);
  EXPECT_LE(latencies[1].p99_ns, 10000.0);
}

TEST(RequestTracer, RingWrapKeepsTheNewestRecords) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  const std::size_t capacity = tracer.ring_capacity();
  ASSERT_GE(capacity, 16u);
  const std::size_t total = capacity + 8;
  for (std::size_t i = 1; i <= total; ++i)
    tracer.record(make_record(i, 1, i));
  EXPECT_EQ(tracer.completed(), total);  // Monotone across the wrap.

  const std::vector<RequestRecord> resident = tracer.recent();
  ASSERT_EQ(resident.size(), capacity);
  // The 8 oldest fell off; the survivors are contiguous and ordered.
  EXPECT_EQ(resident.front().request_id, 9u);
  EXPECT_EQ(resident.back().request_id, total);
}

TEST(RequestTracer, CrossThreadRecordsMergeInSequenceOrder) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &tracer] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        tracer.record(make_record(t * kPerThread + i + 1, 1, i));
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(tracer.completed(), kThreads * kPerThread);
  const std::vector<RequestRecord> all = tracer.recent();
  // Per-thread rings are big enough (capacity >= 16 each) that nothing
  // wrapped; the merge must be strictly ordered by completion sequence.
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].seq, all[i].seq);

  const auto latencies = tracer.type_latencies();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0].count, kThreads * kPerThread);
}

TEST(RequestTracer, ResetClearsEverything) {
  TracerOn on;
  RequestTracer& tracer = RequestTracer::global();
  tracer.record(make_record(1, 1, 100));
  tracer.record(make_record(2, 2, 200));
  ASSERT_EQ(tracer.completed(), 2u);

  tracer.reset();
  EXPECT_EQ(tracer.completed(), 0u);
  EXPECT_TRUE(tracer.recent().empty());
  EXPECT_TRUE(tracer.slowest(5).empty());
  EXPECT_TRUE(tracer.type_latencies().empty());

  // The tracer (and this thread's ring) keep working after a reset.
  tracer.record(make_record(3, 1, 300));
  EXPECT_EQ(tracer.completed(), 1u);
  ASSERT_EQ(tracer.recent().size(), 1u);
  EXPECT_EQ(tracer.recent()[0].request_id, 3u);
}

}  // namespace
}  // namespace rp::obs

// Shared fixture for the stream tests: the hand-built offload world of
// tests/offload/analyzer_test.cpp plus a rate model over its matrix, so
// streaming results can be checked against known batch answers.
//
// Topology (transit edges point provider -> customer):
//   T1a (1), T1b (2): tier-1 providers of the vantage V (10).
//   P1 (21, open) with customers C1 (31), C2 (32).
//   P2 (22, selective) with customer C3 (33).
//   P3 (23, restrictive) with customer C4 (34).
//   P4 (24, selective) with customer C5 (35).
//   D (40, open content stub).
// IXPs: X1 {P1, P2, P4}, X2 {P2, P3, D}, HOME {P1, V}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/rate_model.hpp"
#include "geo/cities.hpp"
#include "offload/analyzer.hpp"

namespace rp::stream::testing {

inline net::Asn as(std::uint32_t n) { return net::Asn{n}; }

struct StreamWorld {
  topology::AsGraph graph;
  ixp::IxpEcosystem eco;
  net::Asn vantage = as(10);
  flow::TrafficMatrix matrix;
  std::unique_ptr<bgp::Rib> rib;
  std::unique_ptr<offload::OffloadAnalyzer> analyzer;
  std::unique_ptr<flow::RateModel> rates;

  /// `span_days` sizes the rate model (288 five-minute bins per day).
  explicit StreamWorld(std::int64_t span_days = 1) {
    auto add = [this](std::uint32_t asn, topology::AsClass cls,
                      topology::PeeringPolicy policy, const char* prefix,
                      double scale) {
      topology::AsNode node;
      node.asn = as(asn);
      node.name = "AS" + std::to_string(asn);
      node.cls = cls;
      node.policy = policy;
      node.home_city = geo::CityRegistry::world().at("Amsterdam");
      node.prefixes.push_back(*net::Ipv4Prefix::parse(prefix));
      node.traffic_scale = scale;
      graph.add_as(std::move(node));
    };
    using AC = topology::AsClass;
    using PP = topology::PeeringPolicy;
    add(1, AC::kTier1, PP::kRestrictive, "10.1.0.0/16", 12.0);
    add(2, AC::kTier1, PP::kRestrictive, "10.2.0.0/16", 11.0);
    add(10, AC::kNren, PP::kSelective, "10.10.0.0/16", 1.0);
    add(21, AC::kTier2, PP::kOpen, "10.21.0.0/16", 10.0);
    add(22, AC::kTier2, PP::kSelective, "10.22.0.0/16", 9.0);
    add(23, AC::kTier2, PP::kRestrictive, "10.23.0.0/16", 8.0);
    add(24, AC::kTier2, PP::kSelective, "10.24.0.0/16", 7.5);
    add(31, AC::kAccess, PP::kOpen, "10.31.0.0/16", 7.0);
    add(32, AC::kAccess, PP::kOpen, "10.32.0.0/16", 6.0);
    add(33, AC::kAccess, PP::kOpen, "10.33.0.0/16", 5.0);
    add(34, AC::kAccess, PP::kOpen, "10.34.0.0/16", 4.0);
    add(35, AC::kAccess, PP::kOpen, "10.35.0.0/16", 3.5);
    add(40, AC::kContent, PP::kOpen, "10.40.0.0/16", 3.0);

    graph.add_peering(as(1), as(2));
    graph.add_transit(as(1), as(10));
    graph.add_transit(as(2), as(10));
    for (std::uint32_t p : {21, 22, 23, 24, 40}) {
      graph.add_transit(as(1), as(p));
      if (p != 40) graph.add_transit(as(2), as(p));
    }
    graph.add_transit(as(21), as(31));
    graph.add_transit(as(21), as(32));
    graph.add_transit(as(22), as(33));
    graph.add_transit(as(23), as(34));
    graph.add_transit(as(24), as(35));

    util::Rng rng(1);
    flow::TrafficConfig traffic;
    traffic.rank_jitter_sigma = 0.0;
    traffic.direction_ratio_sigma = 0.0;
    matrix = flow::TrafficMatrix::generate(graph, vantage, traffic, rng);

    const auto& city = geo::CityRegistry::world().at("Amsterdam");
    auto lan = [](int i) {
      return net::Ipv4Prefix::make(
          net::Ipv4Addr(198, 18, static_cast<std::uint8_t>(i), 0), 24);
    };
    const auto x1 = eco.add_ixp("X1", "X1", city, 1.0, lan(1));
    const auto x2 = eco.add_ixp("X2", "X2", city, 1.0, lan(2));
    const auto home = eco.add_ixp("HOME", "HOME", city, 0.1, lan(3));
    int serial = 1;
    auto join = [&](ixp::IxpId id, std::uint32_t member, int host) {
      ixp::MemberInterface iface;
      iface.asn = as(member);
      iface.addr = net::Ipv4Addr(198, 18, static_cast<std::uint8_t>(id + 1),
                                 static_cast<std::uint8_t>(host));
      iface.mac = net::MacAddr::from_id(serial++);
      iface.equipment_city = city;
      eco.ixp(id).add_interface(iface);
    };
    join(x1, 21, 1);
    join(x1, 22, 2);
    join(x1, 24, 3);
    join(x2, 22, 1);
    join(x2, 23, 2);
    join(x2, 40, 3);
    join(home, 21, 1);
    join(home, 10, 2);

    rib = std::make_unique<bgp::Rib>(bgp::Rib::build(graph, vantage));
    offload::AnalyzerConfig config;
    config.vantage_member_ixps = {"HOME"};
    config.exclude_nren_fellows = true;
    analyzer = std::make_unique<offload::OffloadAnalyzer>(
        graph, eco, vantage, matrix, *rib, config);

    flow::RateModelConfig rate_config;
    rate_config.span = util::SimDuration::days(span_days);
    rates = std::make_unique<flow::RateModel>(matrix, rate_config);
  }

  /// The streaming schema: analyzer transit endpoints, in order.
  std::vector<net::Asn> endpoint_networks() const {
    std::vector<net::Asn> networks;
    for (const auto& endpoint : analyzer->transit_endpoints())
      networks.push_back(endpoint.asn);
    return networks;
  }
};

}  // namespace rp::stream::testing

#include "stream/bin_source.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "fault/fault.hpp"
#include "stream_world.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {
namespace {

using testing::StreamWorld;

std::filesystem::path temp_log(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(RateModelBinSource, ColumnsMatchRateBpsBitForBit) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  ASSERT_EQ(source.bin_count(), w.rates->bin_count());
  BinFrame frame;
  for (std::uint64_t bin = 0; bin < 5; ++bin) {
    ASSERT_TRUE(source.next(frame));
    EXPECT_EQ(frame.bin, bin);
    ASSERT_EQ(frame.in_bps.size(), source.schema().size());
    for (std::size_t i = 0; i < source.schema().size(); ++i) {
      const net::Asn asn = source.schema().networks[i];
      EXPECT_EQ(frame.in_bps[i],
                w.rates->rate_bps(asn, flow::Direction::kInbound,
                                  static_cast<std::size_t>(bin)));
      EXPECT_EQ(frame.out_bps[i],
                w.rates->rate_bps(asn, flow::Direction::kOutbound,
                                  static_cast<std::size_t>(bin)));
    }
  }
}

TEST(RateModelBinSource, ColumnsInvariantAcrossThreadWidths) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  BinFrame narrow;
  BinFrame wide;
  util::ThreadPool::set_global_threads(1);
  ASSERT_TRUE(source.next(narrow));
  util::ThreadPool::set_global_threads(8);
  source.seek(0);
  ASSERT_TRUE(source.next(wide));
  util::ThreadPool::set_global_threads(0);  // Back to the default.
  EXPECT_EQ(narrow.in_bps, wide.in_bps);
  EXPECT_EQ(narrow.out_bps, wide.out_bps);
}

TEST(BinLog, RoundTripsFramesExactly) {
  StreamWorld w(2);  // 576 bins, enough for a partial trailing chunk.
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  const auto path = temp_log("rp_stream_roundtrip.rpsnap");
  // An odd bin count exercises a partial trailing chunk (chunks hold 256).
  const std::uint64_t bins = 300;
  ASSERT_EQ(write_bin_log(source, bins, path), bins);

  BinLogSource replay(path);
  EXPECT_EQ(replay.schema(), source.schema());
  EXPECT_EQ(replay.bin_count(), bins);
  source.seek(0);
  BinFrame expected;
  BinFrame got;
  for (std::uint64_t bin = 0; bin < bins; ++bin) {
    ASSERT_TRUE(source.next(expected));
    ASSERT_TRUE(replay.next(got));
    EXPECT_EQ(got.bin, expected.bin);
    EXPECT_EQ(got.in_bps, expected.in_bps);   // Exact f64 codec.
    EXPECT_EQ(got.out_bps, expected.out_bps);
  }
  EXPECT_FALSE(replay.next(got));
  std::filesystem::remove(path);
}

TEST(BinLog, SeekLandsOnAnyBinAcrossChunks) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  const auto path = temp_log("rp_stream_seek.rpsnap");
  ASSERT_EQ(write_bin_log(source, 280, path), 280u);

  BinLogSource replay(path);
  BinFrame frame;
  for (std::uint64_t bin : {279u, 0u, 255u, 256u, 128u}) {
    replay.seek(bin);
    ASSERT_TRUE(replay.next(frame)) << "bin=" << bin;
    EXPECT_EQ(frame.bin, bin);
  }
  EXPECT_THROW(replay.seek(281), std::out_of_range);
  std::filesystem::remove(path);
}

TEST(BinLog, MidStreamWriteStartsAtCurrentPosition) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  source.seek(40);
  const auto path = temp_log("rp_stream_offset.rpsnap");
  ASSERT_EQ(write_bin_log(source, 10, path), 10u);
  BinLogSource replay(path);
  BinFrame frame;
  ASSERT_TRUE(replay.next(frame));
  EXPECT_EQ(frame.bin, 40u);
  replay.seek(45);
  ASSERT_TRUE(replay.next(frame));
  EXPECT_EQ(frame.bin, 45u);
  std::filesystem::remove(path);
}

TEST(BinLog, StreamBinFaultSiteFiresOnNthFrame) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  const auto path = temp_log("rp_stream_fault.rpsnap");
  ASSERT_EQ(write_bin_log(source, 20, path), 20u);

  fault::arm(std::string(fault::kSiteStreamBin) + ":nth=3");
  BinLogSource replay(path);
  BinFrame frame;
  EXPECT_TRUE(replay.next(frame));
  EXPECT_TRUE(replay.next(frame));
  try {
    replay.next(frame);
    FAIL() << "expected InjectedFault";
  } catch (const fault::InjectedFault& fault) {
    EXPECT_EQ(fault.site(), fault::kSiteStreamBin);
  }
  fault::disarm_all();
  // Disarmed, the stream continues from where the fault interrupted it.
  EXPECT_TRUE(replay.next(frame));
  EXPECT_EQ(frame.bin, 2u);
  std::filesystem::remove(path);
}

TEST(BinLog, RejectsCorruptContainer) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  const auto path = temp_log("rp_stream_corrupt.rpsnap");
  ASSERT_EQ(write_bin_log(source, 8, path), 8u);
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  EXPECT_THROW(BinLogSource{path}, io::SnapshotError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rp::stream

#include "stream/incremental.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stream_world.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {
namespace {

using testing::StreamWorld;

ixp::IxpId id_of(const StreamWorld& w, const char* acronym) {
  const ixp::Ixp* ixp = w.eco.find(acronym);
  EXPECT_NE(ixp, nullptr) << acronym;
  return ixp->id();
}

// Blockwise sums regroup the batch sum, so compare bps with a relative
// tolerance; covered counts must be exactly equal.
void expect_same_potential(const offload::Potential& got,
                           const offload::Potential& want) {
  EXPECT_EQ(got.covered_networks, want.covered_networks);
  EXPECT_NEAR(got.inbound_bps, want.inbound_bps,
              1e-9 * std::abs(want.inbound_bps) + 1e-6);
  EXPECT_NEAR(got.outbound_bps, want.outbound_bps,
              1e-9 * std::abs(want.outbound_bps) + 1e-6);
}

TEST(IncrementalOffload, PotentialMatchesBatchAnalyzerPerSet) {
  StreamWorld w;
  for (const offload::PeerGroup group :
       {offload::PeerGroup::kOpen, offload::PeerGroup::kAll}) {
    IncrementalOffload engine(*w.analyzer, w.eco, group);
    const std::vector<std::vector<const char*>> sets = {
        {}, {"X1"}, {"X2"}, {"X1", "X2"}, {"X1", "X2", "HOME"}};
    for (const auto& acronyms : sets) {
      std::vector<ixp::IxpId> ids;
      for (const char* a : acronyms) ids.push_back(id_of(w, a));
      engine.reset(ids);
      expect_same_potential(engine.potential(),
                            w.analyzer->potential_at(ids, group));
    }
  }
}

TEST(IncrementalOffload, SingleIxpDeltasTrackTheBatchAnswer) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  const auto x1 = id_of(w, "X1");
  const auto x2 = id_of(w, "X2");

  engine.add_ixp(x1);
  expect_same_potential(
      engine.potential(),
      w.analyzer->potential_at(std::vector<ixp::IxpId>{x1},
                               offload::PeerGroup::kAll));
  engine.add_ixp(x2);
  expect_same_potential(
      engine.potential(),
      w.analyzer->potential_at(std::vector<ixp::IxpId>{x1, x2},
                               offload::PeerGroup::kAll));
  engine.remove_ixp(x1);
  expect_same_potential(
      engine.potential(),
      w.analyzer->potential_at(std::vector<ixp::IxpId>{x2},
                               offload::PeerGroup::kAll));
}

TEST(IncrementalOffload, AddThenRemoveRestoresExactBytes) {
  // Counts make coverage a multiset: overlapping IXPs (X1 and X2 share 22)
  // survive a remove, and the blockwise total is a pure function of the
  // covered set — so undoing a delta restores bit-identical values.
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  const auto x1 = id_of(w, "X1");
  const auto x2 = id_of(w, "X2");
  engine.add_ixp(x1);
  const offload::Potential before = engine.potential();
  engine.add_ixp(x2);
  engine.remove_ixp(x2);
  const offload::Potential after = engine.potential();
  EXPECT_EQ(after.inbound_bps, before.inbound_bps);
  EXPECT_EQ(after.outbound_bps, before.outbound_bps);
  EXPECT_EQ(after.covered_networks, before.covered_networks);
}

TEST(IncrementalOffload, WhatIfReadsWithoutDisturbingState) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  const auto x1 = id_of(w, "X1");
  const auto x2 = id_of(w, "X2");
  engine.add_ixp(x1);
  const offload::Potential base = engine.potential();

  const offload::Potential whatif =
      engine.what_if(std::vector<ixp::IxpId>{x2});
  expect_same_potential(
      whatif, w.analyzer->potential_at(std::vector<ixp::IxpId>{x1, x2},
                                       offload::PeerGroup::kAll));

  // The reached set and the potential are exactly as before the what-if.
  EXPECT_EQ(engine.reached(), std::vector<ixp::IxpId>{x1});
  const offload::Potential again = engine.potential();
  EXPECT_EQ(again.inbound_bps, base.inbound_bps);
  EXPECT_EQ(again.outbound_bps, base.outbound_bps);

  // Already-reached ids in the delta are ignored, not double-counted.
  const offload::Potential same = engine.what_if(std::vector<ixp::IxpId>{x1});
  EXPECT_EQ(same.inbound_bps, base.inbound_bps);
  EXPECT_EQ(same.covered_networks, base.covered_networks);
}

TEST(IncrementalOffload, DeltaErrorsThrow) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  const auto x1 = id_of(w, "X1");
  EXPECT_THROW(engine.add_ixp(999), std::invalid_argument);
  EXPECT_THROW(engine.remove_ixp(x1), std::invalid_argument);
  engine.add_ixp(x1);
  EXPECT_THROW(engine.add_ixp(x1), std::invalid_argument);
}

TEST(IncrementalOffload, GainOfMatchesWhatIfDelta) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  const auto x1 = id_of(w, "X1");
  const auto x2 = id_of(w, "X2");
  engine.add_ixp(x1);
  const offload::Potential base = engine.potential();
  const offload::Potential whatif =
      engine.what_if(std::vector<ixp::IxpId>{x2});
  const double delta = whatif.total_bps() - base.total_bps();
  EXPECT_NEAR(engine.gain_of(x2), delta, 1e-9 * std::abs(delta) + 1e-6);
  EXPECT_EQ(engine.gain_of(x1), 0.0);  // Already reached.

  const auto frontier = engine.frontier();
  ASSERT_EQ(frontier.size(), w.eco.ixps().size());
  EXPECT_EQ(frontier[x2], engine.gain_of(x2));
  EXPECT_EQ(frontier[x1], 0.0);
}

TEST(IncrementalOffload, FrontierInvariantAcrossThreadWidths) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  engine.add_ixp(id_of(w, "X1"));
  util::ThreadPool::set_global_threads(1);
  const auto narrow = engine.frontier();
  util::ThreadPool::set_global_threads(8);
  const auto wide = engine.frontier();
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(narrow, wide);
}

TEST(IncrementalOffload, GreedyCurveIsByteIdenticalToBatch) {
  StreamWorld w;
  for (const offload::PeerGroup group :
       {offload::PeerGroup::kOpen, offload::PeerGroup::kAll}) {
    IncrementalOffload engine(*w.analyzer, w.eco, group);
    engine.add_ixp(id_of(w, "X1"));  // Greedy must ignore the reached set.
    const auto streaming = engine.greedy(10);
    const auto batch = w.analyzer->greedy_by_traffic(group, 10);
    ASSERT_EQ(streaming.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streaming[i].ixp_id, batch[i].ixp_id) << "step " << i;
      EXPECT_EQ(streaming[i].acronym, batch[i].acronym);
      EXPECT_EQ(streaming[i].gained, batch[i].gained);
      EXPECT_EQ(streaming[i].remaining, batch[i].remaining);
      EXPECT_EQ(streaming[i].remaining_inbound_bps,
                batch[i].remaining_inbound_bps);
      EXPECT_EQ(streaming[i].remaining_outbound_bps,
                batch[i].remaining_outbound_bps);
    }
  }
}

TEST(IncrementalOffload, LivePotentialTracksLatestBin) {
  StreamWorld w;
  IncrementalOffload engine(*w.analyzer, w.eco, offload::PeerGroup::kAll);
  engine.reset(w.analyzer->all_ixps());
  EXPECT_FALSE(engine.has_live_bin());
  EXPECT_THROW(engine.live_potential(), std::logic_error);

  const auto networks = w.endpoint_networks();
  RateModelBinSource source(*w.rates, networks);
  BinFrame frame;
  ASSERT_TRUE(source.next(frame));
  engine.on_bin(frame);
  ASSERT_TRUE(engine.has_live_bin());
  EXPECT_EQ(engine.live_bin(), 0u);

  // Expected: this bin's rates summed over the batch covered set.
  const auto all = w.analyzer->all_ixps();
  const auto covered =
      w.analyzer->covered_endpoints(all, offload::PeerGroup::kAll);
  double want_in = 0.0;
  double want_out = 0.0;
  for (net::Asn asn : covered) {
    want_in += w.rates->rate_bps(asn, flow::Direction::kInbound, 0);
    want_out += w.rates->rate_bps(asn, flow::Direction::kOutbound, 0);
  }
  const offload::Potential live = engine.live_potential();
  EXPECT_NEAR(live.inbound_bps, want_in, 1e-9 * want_in + 1e-6);
  EXPECT_NEAR(live.outbound_bps, want_out, 1e-9 * want_out + 1e-6);

  // A later bin replaces the live column.
  ASSERT_TRUE(source.next(frame));
  engine.on_bin(frame);
  EXPECT_EQ(engine.live_bin(), 1u);
  BinFrame bad = frame;
  bad.in_bps.pop_back();
  EXPECT_THROW(engine.on_bin(bad), std::invalid_argument);
}

}  // namespace
}  // namespace rp::stream

#include "stream/p95.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rp::stream {
namespace {

std::vector<double> synthetic_rates(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> rates(n);
  for (double& r : rates) r = rng.pareto(1e8, 1.2);
  return rates;
}

TEST(P95Sketch, ExactRegimeMatchesBillingRateBitForBit) {
  for (std::size_t n : {1u, 2u, 19u, 20u, 100u, 576u}) {
    const auto rates = synthetic_rates(n, 7);
    P95Sketch sketch(8064);
    for (double r : rates) sketch.add(r);
    ASSERT_TRUE(sketch.exact());
    EXPECT_EQ(sketch.p95(), util::p95_billing_rate(rates)) << "n=" << n;
  }
}

TEST(P95Sketch, NearestRankConventionOnTinyCounts) {
  // ceil(0.95 * 1) = 1 -> the only sample; ceil(0.95 * 20) = 19 -> the
  // 19th of 20 sorted samples.
  P95Sketch one(64);
  one.add(42.0);
  EXPECT_EQ(one.p95(), 42.0);

  P95Sketch twenty(64);
  for (int i = 20; i >= 1; --i) twenty.add(static_cast<double>(i));
  EXPECT_EQ(twenty.p95(), 19.0);
}

TEST(P95Sketch, EmptyAndBadQuantileThrow) {
  P95Sketch sketch(64);
  EXPECT_THROW(sketch.p95(), std::logic_error);
  sketch.add(1.0);
  EXPECT_THROW(sketch.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(sketch.quantile(1.5), std::invalid_argument);
  EXPECT_EQ(sketch.quantile(1.0), 1.0);
}

TEST(P95Sketch, CompactorIsDeterministicAndBounded) {
  const std::size_t cap = 64;
  const auto rates = synthetic_rates(20000, 11);
  P95Sketch a(cap);
  P95Sketch b(cap);
  for (double r : rates) {
    a.add(r);
    b.add(r);
  }
  EXPECT_FALSE(a.exact());
  // Two independently fed sketches agree bit for bit: no randomness.
  EXPECT_EQ(a.p95(), b.p95());
  EXPECT_EQ(a.retained_bytes(), b.retained_bytes());
  // Memory stays far below retaining all 20k samples.
  EXPECT_LT(a.retained_bytes(), 20000 * sizeof(double) / 4);
  // The estimate lands within a few percentile ranks of the exact answer.
  auto sorted = rates;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[static_cast<std::size_t>(0.90 * sorted.size())];
  const double hi = sorted[static_cast<std::size_t>(0.99 * sorted.size())];
  EXPECT_GE(a.p95(), lo);
  EXPECT_LE(a.p95(), hi);
}

TEST(P95Sketch, SerializeRoundTripsBothRegimes) {
  for (std::size_t samples : {30u, 5000u}) {
    const auto rates = synthetic_rates(samples, 13);
    P95Sketch original(64);
    for (double r : rates) original.add(r);

    io::ByteWriter writer;
    original.serialize(writer);
    io::ByteReader reader(writer.bytes(), "p95 sketch");
    P95Sketch restored = P95Sketch::deserialize(reader);
    reader.expect_end();

    EXPECT_EQ(restored.count(), original.count());
    EXPECT_EQ(restored.exact(), original.exact());
    EXPECT_EQ(restored.p95(), original.p95());

    // Future behaviour matches bit for bit too.
    const auto more = synthetic_rates(500, 17);
    for (double r : more) {
      original.add(r);
      restored.add(r);
    }
    EXPECT_EQ(restored.p95(), original.p95());
    EXPECT_EQ(restored.count(), original.count());
  }
}

TEST(P95Sketch, DeserializeRejectsCorruptState) {
  P95Sketch sketch(64);
  sketch.add(1.0);
  io::ByteWriter writer;
  sketch.serialize(writer);
  auto bytes = writer.bytes();
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 4);
  io::ByteReader reader(truncated, "p95 sketch");
  EXPECT_THROW(P95Sketch::deserialize(reader), io::SnapshotError);
}

TEST(P95Sketch, CapacityClampsAndConfigIsStable) {
  // Explicit capacities clamp to [16, 1<<22].
  P95Sketch tiny(1);
  EXPECT_EQ(tiny.exact_capacity(), 16u);
  P95Sketch huge(std::size_t{1} << 23);
  EXPECT_EQ(huge.exact_capacity(), std::size_t{1} << 22);
  // RP_STREAM_EXACT_CAP is read once per process and cached, so every
  // default-constructed sketch in a run shares one capacity.
  const std::size_t cached = configured_exact_capacity();
  EXPECT_GE(cached, 16u);
  EXPECT_LE(cached, std::size_t{1} << 22);
  EXPECT_EQ(configured_exact_capacity(), cached);
  EXPECT_EQ(P95Sketch().exact_capacity(), cached);
}

}  // namespace
}  // namespace rp::stream

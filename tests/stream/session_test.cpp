#include "stream/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "fault/fault.hpp"
#include "stream_world.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {
namespace {

using testing::StreamWorld;

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::vector<std::uint8_t> ingest_bytes(const StreamIngest& ingest) {
  io::ByteWriter writer;
  ingest.serialize(writer);
  return writer.take();
}

TEST(StreamSession, RejectsMismatchedSchema) {
  StreamWorld w;
  auto networks = w.endpoint_networks();
  std::swap(networks.front(), networks.back());
  RateModelBinSource source(*w.rates, networks);
  EXPECT_THROW(StreamSession(source, *w.analyzer, w.eco,
                             offload::PeerGroup::kAll),
               std::invalid_argument);
}

TEST(StreamSession, StreamingP95MatchesBatchBitForBit) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  StreamSession session(source, *w.analyzer, w.eco, offload::PeerGroup::kAll);
  const std::uint64_t consumed = session.run();
  EXPECT_EQ(consumed, w.rates->bin_count());

  // Batch path: aggregate series over the same network orders, then the
  // operator's billing percentile.
  const auto networks = w.endpoint_networks();
  const auto all = w.analyzer->all_ixps();
  const auto covered =
      w.analyzer->covered_endpoints(all, offload::PeerGroup::kAll);
  for (const flow::Direction dir :
       {flow::Direction::kInbound, flow::Direction::kOutbound}) {
    EXPECT_EQ(session.ingest().transit_p95(dir),
              util::p95_billing_rate(w.rates->aggregate_series(networks, dir)));
    EXPECT_EQ(session.ingest().offload_p95(dir),
              util::p95_billing_rate(w.rates->aggregate_series(covered, dir)));
  }
}

TEST(StreamSession, IngestStateInvariantAcrossThreadWidths) {
  StreamWorld w;
  std::vector<std::uint8_t> narrow;
  std::vector<std::uint8_t> wide;
  for (const unsigned threads : {1u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    RateModelBinSource source(*w.rates, w.endpoint_networks());
    StreamSession session(source, *w.analyzer, w.eco,
                          offload::PeerGroup::kAll);
    session.run();
    (threads == 1 ? narrow : wide) = ingest_bytes(session.ingest());
  }
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(narrow, wide);
}

TEST(StreamSession, OrderedArrivalContractEnforced) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  StreamSession session(source, *w.analyzer, w.eco, offload::PeerGroup::kAll);
  session.run(3);
  BinFrame gap;
  source.seek(7);
  ASSERT_TRUE(source.next(gap));
  util::DynamicBitset covered = session.ingest().covered();
  StreamIngest copy(session.ingest().schema(), std::move(covered));
  EXPECT_THROW(copy.consume(gap), std::invalid_argument);
}

TEST(StreamSession, KillResumeReproducesUninterruptedBytes) {
  StreamWorld w;
  const auto log_path = temp_file("rp_stream_session_log.rpsnap");
  const auto ckpt_path = temp_file("rp_stream_session_ckpt.rpsnap");
  {
    RateModelBinSource recorder(*w.rates, w.endpoint_networks());
    ASSERT_EQ(write_bin_log(recorder, 200, log_path), 200u);
  }

  // Reference: one uninterrupted replay.
  std::vector<std::uint8_t> reference;
  std::vector<offload::GreedyStep> reference_curve;
  {
    BinLogSource source(log_path);
    StreamSession session(source, *w.analyzer, w.eco,
                          offload::PeerGroup::kAll);
    session.run();
    reference = ingest_bytes(session.ingest());
    reference_curve = session.incremental().greedy(5);
  }

  // Replay killed mid-stream by the stream.bin fault site, after the
  // checkpoint at bin 120 (the fault fires on the 150th frame read).
  StreamSessionConfig config;
  config.checkpoint_every = 40;
  config.checkpoint_path = ckpt_path;
  fault::arm(std::string(fault::kSiteStreamBin) + ":nth=150");
  {
    BinLogSource source(log_path);
    StreamSession session(source, *w.analyzer, w.eco,
                          offload::PeerGroup::kAll, config);
    EXPECT_THROW(session.run(), fault::InjectedFault);
  }
  fault::disarm_all();
  ASSERT_TRUE(std::filesystem::exists(ckpt_path));

  // A fresh process resumes from the checkpoint and finishes the stream.
  {
    BinLogSource source(log_path);
    StreamSession session(source, *w.analyzer, w.eco,
                          offload::PeerGroup::kAll, config);
    ASSERT_TRUE(session.resume());
    EXPECT_EQ(session.ingest().bins(), 120u);
    session.run();
    EXPECT_EQ(session.ingest().bins(), 200u);
    EXPECT_EQ(ingest_bytes(session.ingest()), reference);

    const auto curve = session.incremental().greedy(5);
    ASSERT_EQ(curve.size(), reference_curve.size());
    for (std::size_t i = 0; i < curve.size(); ++i) {
      EXPECT_EQ(curve[i].acronym, reference_curve[i].acronym);
      EXPECT_EQ(curve[i].gained, reference_curve[i].gained);
      EXPECT_EQ(curve[i].remaining, reference_curve[i].remaining);
    }
  }
  std::filesystem::remove(log_path);
  std::filesystem::remove(ckpt_path);
}

TEST(StreamSession, ResumeWithoutCheckpointReturnsFalse) {
  StreamWorld w;
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  StreamSessionConfig config;
  config.checkpoint_path = temp_file("rp_stream_session_missing.rpsnap");
  std::filesystem::remove(config.checkpoint_path);
  StreamSession session(source, *w.analyzer, w.eco, offload::PeerGroup::kAll,
                        config);
  EXPECT_FALSE(session.resume());
}

TEST(StreamSession, ResumeRejectsACorruptCheckpoint) {
  StreamWorld w;
  const auto ckpt_path = temp_file("rp_stream_session_corrupt.rpsnap");
  StreamSessionConfig config;
  config.checkpoint_path = ckpt_path;
  {
    RateModelBinSource source(*w.rates, w.endpoint_networks());
    StreamSession session(source, *w.analyzer, w.eco,
                          offload::PeerGroup::kAll, config);
    session.run(10);
    session.checkpoint();
  }
  const auto size = std::filesystem::file_size(ckpt_path);
  std::filesystem::resize_file(ckpt_path, size - 7);
  RateModelBinSource source(*w.rates, w.endpoint_networks());
  StreamSession session(source, *w.analyzer, w.eco, offload::PeerGroup::kAll,
                        config);
  EXPECT_THROW(session.resume(), io::SnapshotError);
  std::filesystem::remove(ckpt_path);
}

}  // namespace
}  // namespace rp::stream

#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rp::util {
namespace {

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

// Per-bit bounds are debug-only asserts (the accessors sit in the greedy
// loop's hot path); death tests only fire in builds with assertions on.
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(DynamicBitsetDeathTest, OutOfRangeAssertsInDebug) {
  DynamicBitset b(10);
  EXPECT_DEATH(b.set(10), "");
  EXPECT_DEATH(b.test(11), "");
}
#endif

TEST(DynamicBitset, EmptyBitsetBehaves) {
  DynamicBitset empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_TRUE(empty.none());
  EXPECT_FALSE(empty.any());
  int visits = 0;
  empty.for_each([&visits](std::size_t) { ++visits; });
  EXPECT_EQ(visits, 0);
  DynamicBitset other;
  empty |= other;  // Zero-size ops are no-ops, not errors.
  empty.subtract(other);
  EXPECT_EQ(empty.intersection_count(other), 0u);
  EXPECT_EQ(empty, other);
}

TEST(DynamicBitset, SubtractSelfAndDisjoint) {
  DynamicBitset a(70), b(70);
  a.set(0);
  a.set(69);
  b.set(33);
  a.subtract(b);  // Disjoint subtrahend removes nothing.
  EXPECT_EQ(a.count(), 2u);
  a.subtract(a);  // Self-subtraction empties the set.
  EXPECT_TRUE(a.none());
}

TEST(DynamicBitset, UnionIntersection) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(99);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
}

TEST(DynamicBitset, Subtract) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.subtract(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(DynamicBitset, IntersectionCountWithoutMaterializing) {
  DynamicBitset a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.set(i);
  for (std::size_t i = 0; i < 200; i += 3) b.set(i);
  // Multiples of 6 below 200: 0, 6, ..., 198 -> 34 values.
  EXPECT_EQ(a.intersection_count(b), 34u);
}

TEST(DynamicBitset, SizeMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.intersection_count(b), std::invalid_argument);
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset b(150);
  b.set(3);
  b.set(64);
  b.set(149);
  std::vector<std::size_t> seen;
  b.for_each([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 149}));
}

TEST(DynamicBitset, ForEachIntersectionVisitsCommonBits) {
  DynamicBitset a(150), b(150);
  a.set(3);
  a.set(64);
  a.set(149);
  b.set(64);
  b.set(100);
  b.set(149);
  std::vector<std::size_t> seen;
  a.for_each_intersection(b, [&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{64, 149}));
  DynamicBitset wrong(151);
  EXPECT_THROW(a.for_each_intersection(wrong, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(DynamicBitset, AnyNone) {
  DynamicBitset b(65);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  b.set(64);
  EXPECT_TRUE(b.any());
  EXPECT_FALSE(b.none());
}

TEST(DynamicBitset, EqualityComparesContents) {
  DynamicBitset a(64), b(64);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rp::util

#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rp::util {
namespace {

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynamicBitset, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW(b.test(11), std::out_of_range);
}

TEST(DynamicBitset, UnionIntersection) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(99);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
}

TEST(DynamicBitset, Subtract) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.subtract(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(DynamicBitset, IntersectionCountWithoutMaterializing) {
  DynamicBitset a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.set(i);
  for (std::size_t i = 0; i < 200; i += 3) b.set(i);
  // Multiples of 6 below 200: 0, 6, ..., 198 -> 34 values.
  EXPECT_EQ(a.intersection_count(b), 34u);
}

TEST(DynamicBitset, SizeMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.intersection_count(b), std::invalid_argument);
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset b(150);
  b.set(3);
  b.set(64);
  b.set(149);
  std::vector<std::size_t> seen;
  b.for_each([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 149}));
}

TEST(DynamicBitset, AnyNone) {
  DynamicBitset b(65);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  b.set(64);
  EXPECT_TRUE(b.any());
  EXPECT_FALSE(b.none());
}

TEST(DynamicBitset, EqualityComparesContents) {
  DynamicBitset a(64), b(64);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rp::util

#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace rp::util {
namespace {

TEST(SimDuration, UnitConstructors) {
  EXPECT_EQ(SimDuration::micros(1).count_nanos(), 1000);
  EXPECT_EQ(SimDuration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(SimDuration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(SimDuration::minutes(2).count_nanos(), 120'000'000'000LL);
  EXPECT_EQ(SimDuration::hours(1), SimDuration::minutes(60));
  EXPECT_EQ(SimDuration::days(1), SimDuration::hours(24));
}

TEST(SimDuration, FloatingConversionsRoundTrip) {
  const auto d = SimDuration::from_millis_f(12.5);
  EXPECT_DOUBLE_EQ(d.as_millis_f(), 12.5);
  const auto s = SimDuration::from_seconds_f(0.25);
  EXPECT_DOUBLE_EQ(s.as_seconds_f(), 0.25);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::millis(3);
  const auto b = SimDuration::millis(2);
  EXPECT_EQ((a + b).count_nanos(), 5'000'000);
  EXPECT_EQ((a - b).count_nanos(), 1'000'000);
  EXPECT_EQ((a * 4).count_nanos(), 12'000'000);
  EXPECT_EQ((a / 3).count_nanos(), 1'000'000);
  EXPECT_EQ((-a).count_nanos(), -3'000'000);
}

TEST(SimDuration, Ordering) {
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
  EXPECT_GE(SimDuration::seconds(1), SimDuration::millis(1000));
}

TEST(SimDuration, ToStringAdaptiveUnits) {
  EXPECT_EQ(SimDuration::nanos(12).to_string(), "12ns");
  EXPECT_EQ(SimDuration::micros(5).to_string(), "5.000us");
  EXPECT_EQ(SimDuration::millis(7).to_string(), "7.000ms");
  EXPECT_EQ(SimDuration::seconds(3).to_string(), "3.000s");
}

TEST(SimTime, OriginAndOffsets) {
  const SimTime t0 = SimTime::origin();
  EXPECT_EQ(t0.count_nanos(), 0);
  const SimTime t1 = t0 + SimDuration::seconds(5);
  EXPECT_EQ((t1 - t0), SimDuration::seconds(5));
  EXPECT_EQ(t1.since_origin(), SimDuration::seconds(5));
  EXPECT_LT(t0, t1);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::origin();
  t += SimDuration::millis(10);
  t += SimDuration::millis(5);
  EXPECT_EQ(t.since_origin(), SimDuration::millis(15));
}

TEST(SimTime, AtConstructsFromDuration) {
  const SimTime t = SimTime::at(SimDuration::hours(2));
  EXPECT_EQ(t.since_origin(), SimDuration::hours(2));
}

}  // namespace
}  // namespace rp::util

#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace rp::util {
namespace {

std::vector<std::uint8_t> encoded(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  varint_encode(out, v);
  return out;
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    const std::vector<std::uint8_t> bytes = encoded(v);
    const VarintResult r = varint_decode(bytes);
    EXPECT_EQ(r.status, VarintStatus::kOk) << v;
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.consumed, bytes.size());
  }
}

TEST(Varint, EncodedLengthsMatchLeb128) {
  EXPECT_EQ(encoded(0).size(), 1u);
  EXPECT_EQ(encoded(127).size(), 1u);
  EXPECT_EQ(encoded(128).size(), 2u);
  EXPECT_EQ(encoded(16383).size(), 2u);
  EXPECT_EQ(encoded(16384).size(), 3u);
  EXPECT_EQ(encoded(std::numeric_limits<std::uint64_t>::max()).size(),
            kMaxVarintBytes);
}

TEST(Varint, DecodeConsumesOnlyOneValue) {
  std::vector<std::uint8_t> bytes = encoded(300);
  const std::size_t first = bytes.size();
  varint_encode(bytes, 7);
  const VarintResult r = varint_decode(bytes);
  EXPECT_EQ(r.value, 300u);
  EXPECT_EQ(r.consumed, first);
  const VarintResult rest =
      varint_decode(std::span<const std::uint8_t>(bytes).subspan(r.consumed));
  EXPECT_EQ(rest.value, 7u);
}

TEST(Varint, TruncatedInputAsksForMoreBytes) {
  EXPECT_EQ(varint_decode({}).status, VarintStatus::kTruncated);
  std::vector<std::uint8_t> bytes = encoded(1ull << 40);
  for (std::size_t keep = 0; keep + 1 < bytes.size(); ++keep) {
    const VarintResult r = varint_decode(
        std::span<const std::uint8_t>(bytes).subspan(0, keep));
    EXPECT_EQ(r.status, VarintStatus::kTruncated) << keep;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Varint, OverflowingEncodingsAreRejected) {
  // Eleven continuation bytes: longer than any 64-bit value can need.
  const std::vector<std::uint8_t> too_long(11, 0x80);
  EXPECT_EQ(varint_decode(too_long).status, VarintStatus::kOverflow);

  // Ten bytes whose tenth contributes more than the single top bit.
  std::vector<std::uint8_t> wide(9, 0x80);
  wide.push_back(0x02);
  EXPECT_EQ(varint_decode(wide).status, VarintStatus::kOverflow);

  // The max value itself is fine: tenth byte contributes exactly one bit.
  std::vector<std::uint8_t> max_bytes(9, 0xFF);
  max_bytes.push_back(0x01);
  const VarintResult r = varint_decode(max_bytes);
  EXPECT_EQ(r.status, VarintStatus::kOk);
  EXPECT_EQ(r.value, std::numeric_limits<std::uint64_t>::max());
}

TEST(Varint, ZigzagRoundTripsSignedValues) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -2,
                                 63,
                                 -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values)
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  // Small magnitudes map to small codes (the point of zigzag).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

}  // namespace
}  // namespace rp::util

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rp::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"IXP", "members"});
  t.add_row({"AMS-IX", "638"});
  t.add_row({"TIE", "149"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("IXP    | members"), std::string::npos);
  EXPECT_NE(out.find("AMS-IX |     638"), std::string::npos);
  EXPECT_NE(out.find("TIE    |     149"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, AlignmentOverride) {
  TextTable t({"n", "name"});
  t.set_align(1, Align::kLeft);
  t.set_align(0, Align::kRight);
  t.add_row({"1", "x"});
  t.add_row({"10", "yy"});
  std::ostringstream os;
  t.render(os);
  EXPECT_NE(os.str().find(" 1 | x "), std::string::npos);
}

TEST(FmtDouble, Digits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
}

TEST(FmtRate, AdaptiveUnits) {
  EXPECT_EQ(fmt_rate_bps(500.0), "500 bps");
  EXPECT_EQ(fmt_rate_bps(2500.0), "2.50 Kbps");
  EXPECT_EQ(fmt_rate_bps(3.5e6), "3.50 Mbps");
  EXPECT_EQ(fmt_rate_bps(1.6e9), "1.60 Gbps");
}

TEST(FmtPercent, OneDecimal) {
  EXPECT_EQ(fmt_percent(0.273), "27.3%");
  EXPECT_EQ(fmt_percent(1.0), "100.0%");
}

}  // namespace
}  // namespace rp::util

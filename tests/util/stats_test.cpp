#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rp::util {
namespace {

TEST(Summarize, EmptyReturnsNullopt) {
  EXPECT_FALSE(summarize({}).has_value());
}

TEST(Summarize, SingleValue) {
  const auto s = summarize({4.0});
  ASSERT_TRUE(s);
  EXPECT_EQ(s->count, 1u);
  EXPECT_DOUBLE_EQ(s->min, 4.0);
  EXPECT_DOUBLE_EQ(s->max, 4.0);
  EXPECT_DOUBLE_EQ(s->mean, 4.0);
  EXPECT_DOUBLE_EQ(s->variance, 0.0);
}

TEST(Summarize, KnownMoments) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(s);
  EXPECT_DOUBLE_EQ(s->mean, 2.5);
  EXPECT_DOUBLE_EQ(s->variance, 1.25);
  EXPECT_DOUBLE_EQ(s->min, 1.0);
  EXPECT_DOUBLE_EQ(s->max, 4.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  // Sorted: 10, 20. The 50th percentile is halfway.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 50.0), 15.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(P95Billing, DiscardsTopFivePercent) {
  // 100 samples 1..100: the top 5 (96..100) are discarded; bill at 95.
  std::vector<double> rates;
  for (int i = 1; i <= 100; ++i) rates.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p95_billing_rate(rates), 95.0);
}

TEST(P95Billing, SmallSamplesBillNearMax) {
  EXPECT_DOUBLE_EQ(p95_billing_rate({10.0}), 10.0);
  // n=10: rank = ceil(9.5) = 10 -> the maximum.
  std::vector<double> rates{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(p95_billing_rate(rates), 10.0);
}

TEST(P95Billing, InsensitiveToShortPeaks) {
  // A flat 1 Mbps month with a few 10 Gbps spikes: the bill stays at 1 Mbps
  // as long as spikes stay under 5% of samples — the §2.1 billing property
  // that makes peak-coincident offload valuable.
  std::vector<double> rates(1000, 1e6);
  for (int i = 0; i < 49; ++i) rates[i] = 1e10;
  EXPECT_DOUBLE_EQ(p95_billing_rate(rates), 1e6);
}

TEST(P95Billing, RejectsEmpty) {
  EXPECT_THROW(p95_billing_rate({}), std::invalid_argument);
}

TEST(EmpiricalCdf, FractionAtValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, StepsCollapseDuplicates) {
  EmpiricalCdf cdf({1.0, 1.0, 2.0});
  const auto steps = cdf.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].value, 1.0);
  EXPECT_NEAR(steps[0].fraction, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].value, 2.0);
  EXPECT_DOUBLE_EQ(steps[1].fraction, 1.0);
}

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.9);    // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rp::util

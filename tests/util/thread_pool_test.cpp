#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rp::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneElementLoops) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));  // Safe: inline and sequential.
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, TransformKeepsIndexOrder) {
  ThreadPool pool(8);
  const auto squares =
      pool.parallel_transform(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ResultIdenticalAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return pool.parallel_transform(
        257, [](std::size_t i) { return 31 * i + 7; });
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&pool, &total](std::size_t) {
    pool.parallel_for(8, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ConfiguredThreadsIsPositive) {
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPool, GlobalPoolReconfigurable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(0);  // Back to the environment default.
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

}  // namespace
}  // namespace rp::util

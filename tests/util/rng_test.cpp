#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace rp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(17);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) ++seen[rng.uniform_int(0, 5)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(19);
  EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(23);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(43);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.5);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(47);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScaleAndShape) {
  Rng rng(53);
  const int n = 100000;
  int above_double = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 2.0);
    EXPECT_GE(x, 1.0);
    if (x > 2.0) ++above_double;
  }
  // P[X > 2] = (1/2)^2 = 0.25.
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.25, 0.01);
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng rng(59);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.fork(5);
  Rng child2 = parent2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
  // Different labels give different streams.
  Rng parent3(99);
  Rng other = parent3.fork(6);
  int same = 0;
  Rng parent4(99);
  Rng again = parent4.fork(5);
  for (int i = 0; i < 100; ++i)
    if (other() == again()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, WeightedIndexHonorsWeights) {
  Rng rng(61);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hits[rng.weighted_index(weights)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng(67);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(71);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(ZipfSampler, RanksWithinBounds) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(73);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t rank = zipf.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

TEST(ZipfSampler, RankOneDominates) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(79);
  std::vector<int> hits(101, 0);
  for (int i = 0; i < 50000; ++i) ++hits[zipf.sample(rng)];
  EXPECT_GT(hits[1], hits[2]);
  EXPECT_GT(hits[2], hits[10]);
  EXPECT_GT(hits[10], hits[100]);
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DoubleParetoSampler, HeadFollowsHeadExponent) {
  DoubleParetoSampler law(100.0, 1.0, 3.0, 10);
  EXPECT_DOUBLE_EQ(law.volume_at_rank(1), 100.0);
  EXPECT_DOUBLE_EQ(law.volume_at_rank(2), 50.0);
  EXPECT_DOUBLE_EQ(law.volume_at_rank(10), 10.0);
}

TEST(DoubleParetoSampler, TailFallsFasterBeyondKnee) {
  DoubleParetoSampler law(100.0, 1.0, 3.0, 10);
  // Beyond the knee the slope (in log-log) steepens to the tail exponent.
  const double v20 = law.volume_at_rank(20);
  const double v40 = law.volume_at_rank(40);
  EXPECT_NEAR(v20 / v40, std::pow(2.0, 3.0), 1e-9);
  // Continuity at the knee.
  EXPECT_NEAR(law.volume_at_rank(10), law.volume_at_rank(11) *
                  std::pow(11.0 / 10.0, 3.0), 1e-9);
}

TEST(DoubleParetoSampler, MonotoneDecreasing) {
  DoubleParetoSampler law(10.0, 0.8, 2.5, 100);
  double prev = law.volume_at_rank(1);
  for (std::size_t rank = 2; rank <= 1000; ++rank) {
    const double v = law.volume_at_rank(rank);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(DoubleParetoSampler, RejectsBadParameters) {
  EXPECT_THROW(DoubleParetoSampler(0.0, 1.0, 2.0, 5), std::invalid_argument);
  EXPECT_THROW(DoubleParetoSampler(1.0, 0.0, 2.0, 5), std::invalid_argument);
  EXPECT_THROW(DoubleParetoSampler(1.0, 1.0, 2.0, 0), std::invalid_argument);
  DoubleParetoSampler law(1.0, 1.0, 2.0, 5);
  EXPECT_THROW(law.volume_at_rank(0), std::invalid_argument);
}

}  // namespace
}  // namespace rp::util

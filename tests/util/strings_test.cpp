#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace rp::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(IsAllDigits, Cases) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-1"));
}

TEST(ParseU32, ParsesAndBounds) {
  unsigned long v = 0;
  EXPECT_TRUE(parse_u32("4294967295", v));
  EXPECT_EQ(v, 4294967295UL);
  EXPECT_FALSE(parse_u32("4294967296", v));
  EXPECT_FALSE(parse_u32("", v));
  EXPECT_FALSE(parse_u32("1x", v));
  EXPECT_TRUE(parse_u32("0", v));
  EXPECT_EQ(v, 0UL);
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AmS-IX"), "ams-ix");
  EXPECT_EQ(to_lower("123"), "123");
}

}  // namespace
}  // namespace rp::util

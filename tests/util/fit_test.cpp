#include "util/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace rp::util {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi - 1.0);
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, ConstantYGivesZeroSlope) {
  const LinearFit f = fit_linear({0, 1, 2}, {5, 5, 5});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r_squared, 1.0);
}

TEST(FitLinear, NoisyLineRecoversSlope) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(static_cast<double>(i) / 10.0);
    y.push_back(2.0 * x.back() + 1.0 + rng.normal(0.0, 0.1));
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.02);
  EXPECT_NEAR(f.intercept, 1.0, 0.05);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(FitLinear, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1}, {2}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {2}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2, 2}, {1, 3}), std::invalid_argument);
}

TEST(FitExponentialDecay, ExactDecay) {
  // The paper's eq. 3: t = exp(-b k). Recover b = 0.7 exactly.
  std::vector<double> x, y;
  for (int k = 0; k <= 10; ++k) {
    x.push_back(k);
    y.push_back(std::exp(-0.7 * k));
  }
  const ExponentialDecayFit f = fit_exponential_decay(x, y);
  EXPECT_NEAR(f.decay, 0.7, 1e-12);
  EXPECT_NEAR(f.amplitude, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitExponentialDecay, EvaluateRoundTrips) {
  ExponentialDecayFit f;
  f.amplitude = 2.0;
  f.decay = 0.5;
  EXPECT_NEAR(f.evaluate(0.0), 2.0, 1e-12);
  EXPECT_NEAR(f.evaluate(2.0), 2.0 * std::exp(-1.0), 1e-12);
}

TEST(FitExponentialDecay, RejectsNonPositiveY) {
  EXPECT_THROW(fit_exponential_decay({0, 1}, {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_exponential_decay({0, 1}, {1.0, -2.0}),
               std::invalid_argument);
}

TEST(FitExponentialDecay, NoisyDecayRecoversParameter) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int k = 0; k <= 30; ++k) {
    x.push_back(k);
    y.push_back(std::exp(-0.35 * k) * rng.lognormal(0.0, 0.05));
  }
  const ExponentialDecayFit f = fit_exponential_decay(x, y);
  EXPECT_NEAR(f.decay, 0.35, 0.02);
}

}  // namespace
}  // namespace rp::util

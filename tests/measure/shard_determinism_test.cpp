// CampaignRunner's determinism contract: an all-IXP campaign batch is
// byte-identical at any RP_THREADS x RP_SIM_SHARDS combination and
// invariant under IXP submission order, because every campaign's RNG is a
// pure function of the IXP alone and shards only decide *where* work runs.
#include "measure/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "geo/cities.hpp"
#include "measure/dataset_io.hpp"
#include "net/subnet_allocator.hpp"
#include "util/thread_pool.hpp"

namespace rp::measure {
namespace {

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

/// A small but non-trivial world: 56 IXPs (the acceptance bar is >= 50),
/// each with both LG kinds and a local/remote member mix.
std::vector<ixp::Ixp> build_world() {
  const char* const cities[] = {"Amsterdam", "London",   "Frankfurt",
                                "Budapest",  "New York", "Hong Kong",
                                "Tokyo"};
  std::vector<ixp::Ixp> ixps;
  for (std::uint32_t i = 0; i < 56; ++i) {
    const char* home = cities[i % 5];  // IXPs sit in the first five cities.
    ixp::Ixp ixp{i, "IX" + std::to_string(i), "Exchange " + std::to_string(i),
                 city(home), 0.5,
                 net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, i, 0), 24)};
    net::HostAllocator addrs{ixp.peering_lan()};
    ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
    ixp.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));
    std::uint32_t serial = 1;
    for (std::uint32_t m = 0; m < 3 + i % 3; ++m) {
      ixp::MemberInterface iface;
      iface.asn = net::Asn{64500 + 100 * i + m};
      iface.addr = addrs.allocate();
      iface.mac = net::MacAddr::from_id(1000 * i + serial++);
      if (m % 3 == 2) {
        iface.kind = ixp::AttachmentKind::kRemoteViaProvider;
        iface.equipment_city = city(cities[(i + m) % 7]);
        iface.circuit_one_way = geo::propagation_delay(
            iface.equipment_city.position, ixp.city().position, 1.5);
      } else {
        iface.kind = ixp::AttachmentKind::kDirectColo;
        iface.equipment_city = ixp.city();
      }
      ixp.add_interface(iface);
    }
    ixps.push_back(std::move(ixp));
  }
  return ixps;
}

CampaignConfig short_campaign() {
  CampaignConfig config;
  config.length = util::SimDuration::days(1);
  config.queries_per_pch_lg = 2;
  config.queries_per_ripe_lg = 2;
  return config;
}

util::Rng rng_for_ixp(const ixp::Ixp& ixp) {
  return util::Rng(0xC0FFEE00 + ixp.id());
}

/// Serializes one measurement to the exact on-disk dataset bytes.
std::string fingerprint(const IxpMeasurement& measurement) {
  std::ostringstream os;
  write_dataset(measurement, os);
  return os.str();
}

std::string run_fingerprint(const std::vector<const ixp::Ixp*>& ixps,
                            std::size_t shards) {
  const auto results =
      CampaignRunner::run(ixps, short_campaign(), rng_for_ixp, shards);
  std::string all;
  for (const auto& measurement : results) all += fingerprint(measurement);
  return all;
}

class ShardDeterminismTest : public testing::Test {
 protected:
  void TearDown() override {
    util::ThreadPool::set_global_threads(0);
    ::unsetenv("RP_SIM_SHARDS");
  }
};

TEST_F(ShardDeterminismTest, AllIxpBatchIsByteIdenticalAcrossThreadsAndShards) {
  const std::vector<ixp::Ixp> world = build_world();
  std::vector<const ixp::Ixp*> ixps;
  for (const auto& ixp : world) ixps.push_back(&ixp);
  ASSERT_GE(ixps.size(), 50u);

  std::string reference;
  for (unsigned threads : {1u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    for (std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      const std::string fp = run_fingerprint(ixps, shards);
      if (reference.empty()) {
        reference = fp;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(fp, reference)
            << "diverged at RP_THREADS=" << threads << " shards=" << shards;
      }
    }
  }
  // The one-shard-per-IXP default (shards beyond the IXP count clamp down)
  // lands on the same bytes.
  util::ThreadPool::set_global_threads(8);
  EXPECT_EQ(run_fingerprint(ixps, ixps.size() * 2), reference);
}

TEST_F(ShardDeterminismTest, SubmissionOrderOnlyPermutesTheOutput) {
  const std::vector<ixp::Ixp> world = build_world();
  std::vector<const ixp::Ixp*> forward;
  for (const auto& ixp : world) forward.push_back(&ixp);
  std::vector<const ixp::Ixp*> reversed(forward.rbegin(), forward.rend());

  util::ThreadPool::set_global_threads(8);
  const auto a = CampaignRunner::run(forward, short_campaign(), rng_for_ixp, 8);
  const auto b = CampaignRunner::run(reversed, short_campaign(), rng_for_ixp, 8);
  ASSERT_EQ(a.size(), b.size());

  // Results land in submission order; each IXP's bytes are identical no
  // matter where in the batch it was submitted.
  std::map<std::string, std::string> by_acronym;
  for (const auto& measurement : a)
    by_acronym[measurement.ixp_acronym] = fingerprint(measurement);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i].ixp_acronym, forward[forward.size() - 1 - i]->acronym());
    EXPECT_EQ(fingerprint(b[i]), by_acronym.at(b[i].ixp_acronym));
  }
}

TEST_F(ShardDeterminismTest, ConfiguredShardsParsesTheEnvironment) {
  ::unsetenv("RP_SIM_SHARDS");
  EXPECT_EQ(CampaignRunner::configured_shards(), 0u);
  ::setenv("RP_SIM_SHARDS", "8", 1);
  EXPECT_EQ(CampaignRunner::configured_shards(), 8u);
  ::setenv("RP_SIM_SHARDS", "0", 1);
  EXPECT_EQ(CampaignRunner::configured_shards(), 1u);  // Clamped up.
  ::setenv("RP_SIM_SHARDS", "garbage", 1);
  EXPECT_EQ(CampaignRunner::configured_shards(), 0u);  // Default fan-out.

  // The env setting feeds the shards=0 path and preserves the bytes.
  const std::vector<ixp::Ixp> world = build_world();
  std::vector<const ixp::Ixp*> ixps;
  for (const auto& ixp : world) ixps.push_back(&ixp);
  util::ThreadPool::set_global_threads(4);
  ::setenv("RP_SIM_SHARDS", "3", 1);
  const std::string via_env = run_fingerprint(ixps, 0);
  ::unsetenv("RP_SIM_SHARDS");
  EXPECT_EQ(via_env, run_fingerprint(ixps, 3));
  EXPECT_EQ(via_env, run_fingerprint(ixps, 1));
}

}  // namespace
}  // namespace rp::measure

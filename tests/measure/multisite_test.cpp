// Multi-site IXP fabrics (§3.1, "IXPs with multiple locations"): probes
// from an LG at one site to a member at another cross metro trunks; the
// classifier's 10 ms threshold must absorb that without false positives,
// and the LG-consistent filter must tolerate LGs at different sites.
#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "measure/classifier.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"

namespace rp::measure {
namespace {

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

CampaignConfig clean_campaign() {
  CampaignConfig config;
  config.length = util::SimDuration::days(4);
  config.queries_per_pch_lg = 4;
  config.queries_per_ripe_lg = 3;
  config.faults = FaultPlanConfig{};
  config.faults.blackhole_rate = 0.0;
  config.faults.absent_rate = 0.0;
  config.faults.ttl_switch_rate = 0.0;
  config.faults.odd_ttl_rate = 0.0;
  config.faults.proxy_reply_rate = 0.0;
  config.faults.persistent_congestion_rate = 0.0;
  config.faults.lg_asymmetry_rate = 0.0;
  config.faults.asn_change_rate = 0.0;
  config.faults.unidentified_rate = 0.0;
  config.faults.lossy_rate = 0.0;
  return config;
}

ixp::Ixp multi_site_ixp(int sites, int direct_members, int remote_members) {
  ixp::Ixp ixp(0, "MULTI", "Multi-site Exchange", city("Moscow"), 1.3,
               *net::Ipv4Prefix::parse("198.18.4.0/24"));
  ixp.set_site_count(sites);
  net::HostAllocator addrs(ixp.peering_lan());
  ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
  ixp.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));
  std::uint32_t serial = 1;
  for (int i = 0; i < direct_members; ++i) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{1000 + serial};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(serial++);
    iface.kind = ixp::AttachmentKind::kDirectColo;
    iface.equipment_city = ixp.city();
    ixp.add_interface(iface);
  }
  for (int i = 0; i < remote_members; ++i) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{2000 + serial};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(serial++);
    iface.kind = ixp::AttachmentKind::kRemoteViaProvider;
    iface.equipment_city = city("Frankfurt");
    iface.circuit_one_way = geo::propagation_delay(
        iface.equipment_city.position, ixp.city().position, 1.5);
    ixp.add_interface(iface);
  }
  return ixp;
}

TEST(MultiSite, SetSiteCountValidates) {
  ixp::Ixp ixp(0, "X", "X", city("Moscow"), 1.0,
               *net::Ipv4Prefix::parse("198.18.4.0/24"));
  EXPECT_EQ(ixp.site_count(), 1);
  ixp.set_site_count(3);
  EXPECT_EQ(ixp.site_count(), 3);
  EXPECT_THROW(ixp.set_site_count(0), std::invalid_argument);
}

TEST(MultiSite, TestbedBuildsOneSwitchPerSite) {
  const auto ixp = multi_site_ixp(3, 4, 0);
  const FaultPlan no_faults;
  IxpTestbed testbed(ixp, no_faults, TestbedConfig{}, util::SimTime::origin(),
                     util::SimDuration::days(1), util::Rng(1));
  EXPECT_EQ(testbed.site_count(), 3u);
}

TEST(MultiSite, NoFalsePositivesAcrossMetroTrunks) {
  // 24 direct members spread over 3 sites, probed from LGs at two different
  // sites: every minimum RTT must stay far below the 10 ms threshold.
  const auto ixp = multi_site_ixp(3, 24, 0);
  util::Rng rng(7);
  const auto raw = run_ixp_campaign(ixp, clean_campaign(), rng);
  const auto analysis = apply_filters(raw, FilterConfig{});
  const ClassifierConfig classifier;
  EXPECT_EQ(analysis.analyzed_count(), 24u);
  for (const auto& iface : analysis.interfaces) {
    ASSERT_TRUE(iface.analyzed()) << iface.addr.to_string();
    EXPECT_FALSE(is_remote(iface.min_rtt, classifier))
        << iface.min_rtt.to_string();
    // Metro trunks add well under 2 ms round trip.
    EXPECT_LT(iface.min_rtt.as_millis_f(), 5.0);
  }
}

TEST(MultiSite, LgConsistencySurvivesCrossSiteLgs) {
  // The PCH LG sits at site 0 and the RIPE LG at the far site; their minima
  // differ by at most the trunk RTT, far inside the max(5ms, 10%) margin,
  // so no interface may be discarded as LG-inconsistent.
  const auto ixp = multi_site_ixp(3, 12, 3);
  util::Rng rng(8);
  const auto raw = run_ixp_campaign(ixp, clean_campaign(), rng);
  const auto analysis = apply_filters(raw, FilterConfig{});
  EXPECT_EQ(analysis.discard_counts[static_cast<std::size_t>(
                Filter::kLgConsistent)], 0u);
}

TEST(MultiSite, RemoteMembersStillDetected) {
  const auto ixp = multi_site_ixp(2, 6, 4);
  util::Rng rng(9);
  const auto raw = run_ixp_campaign(ixp, clean_campaign(), rng);
  const auto analysis = apply_filters(raw, FilterConfig{});
  const ClassifierConfig classifier;
  std::size_t remote = 0;
  for (const auto& iface : analysis.interfaces) {
    ASSERT_TRUE(iface.analyzed());
    if (is_remote(iface.min_rtt, classifier)) {
      ++remote;
      EXPECT_TRUE(iface.truth_remote);
    }
  }
  EXPECT_EQ(remote, 4u);
}

}  // namespace
}  // namespace rp::measure

// Integration tests: a hand-built IXP, the full campaign, and the filter
// pipeline acting together — the §3 method against known ground truth.
#include "measure/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/cities.hpp"
#include "measure/classifier.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"

namespace rp::measure {
namespace {

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

/// Builds a small IXP in Amsterdam with both LGs and a given roster.
struct MiniIxp {
  ixp::Ixp ixp{0, "MINI", "Mini Exchange", city("Amsterdam"), 0.5,
               net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24)};
  net::HostAllocator addrs{ixp.peering_lan()};
  std::uint32_t serial = 1;

  MiniIxp() {
    ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
    ixp.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));
  }

  net::Ipv4Addr add_member(std::uint32_t asn, ixp::AttachmentKind kind,
                           const char* equipment_city) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{asn};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(serial++);
    iface.kind = kind;
    iface.equipment_city = city(equipment_city);
    if (kind == ixp::AttachmentKind::kRemoteViaProvider ||
        kind == ixp::AttachmentKind::kPartnerIxp) {
      iface.circuit_one_way = geo::propagation_delay(
          iface.equipment_city.position, ixp.city().position, 1.5);
    }
    ixp.add_interface(iface);
    return iface.addr;
  }
};

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.length = util::SimDuration::days(4);
  config.queries_per_pch_lg = 4;
  config.queries_per_ripe_lg = 3;
  // No injected faults: ground truth should come through clean.
  config.faults = FaultPlanConfig{};
  config.faults.blackhole_rate = 0.0;
  config.faults.absent_rate = 0.0;
  config.faults.ttl_switch_rate = 0.0;
  config.faults.odd_ttl_rate = 0.0;
  config.faults.proxy_reply_rate = 0.0;
  config.faults.persistent_congestion_rate = 0.0;
  config.faults.lg_asymmetry_rate = 0.0;
  config.faults.asn_change_rate = 0.0;
  config.faults.unidentified_rate = 0.0;
  config.faults.lossy_rate = 0.0;
  return config;
}

TEST(Campaign, DirectAndRemoteMembersClassifiedCorrectly) {
  MiniIxp mini;
  const auto local1 =
      mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  const auto local2 =
      mini.add_member(200, ixp::AttachmentKind::kIpTransport, "Amsterdam");
  const auto remote_eu =
      mini.add_member(300, ixp::AttachmentKind::kRemoteViaProvider, "Budapest");
  const auto remote_ic =
      mini.add_member(400, ixp::AttachmentKind::kPartnerIxp, "Hong Kong");

  util::Rng rng(7);
  const auto measurement = run_ixp_campaign(mini.ixp, fast_campaign(), rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_EQ(analysis.probed_count(), 4u);
  EXPECT_EQ(analysis.analyzed_count(), 4u);

  const ClassifierConfig classifier;
  for (const auto& iface : analysis.interfaces) {
    ASSERT_TRUE(iface.analyzed()) << iface.addr.to_string();
    const bool classified_remote = is_remote(iface.min_rtt, classifier);
    if (iface.addr == local1 || iface.addr == local2) {
      EXPECT_FALSE(classified_remote) << iface.min_rtt.to_string();
      EXPECT_LT(iface.min_rtt.as_millis_f(), 10.0);
    }
    if (iface.addr == remote_eu) {
      EXPECT_TRUE(classified_remote);
      // Budapest-Amsterdam pseudowire: ~17 ms RTT, the intercity band.
      EXPECT_EQ(band_of(iface.min_rtt, classifier), RttBand::kIntercity);
    }
    if (iface.addr == remote_ic) {
      EXPECT_TRUE(classified_remote);
      EXPECT_EQ(band_of(iface.min_rtt, classifier),
                RttBand::kIntercontinental);
    }
  }
}

TEST(Campaign, ReplyCountsRespectLgLimits) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  util::Rng rng(8);
  const auto config = fast_campaign();
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  ASSERT_EQ(measurement.interfaces.size(), 1u);
  const auto& obs = measurement.interfaces.front();
  // PCH: 4 queries x 5 pings; RIPE: 3 x 3.
  EXPECT_EQ(obs.samples.at(ixp::LgOperator::kPch).size(), 20u);
  EXPECT_EQ(obs.samples.at(ixp::LgOperator::kRipeNcc).size(), 9u);
}

TEST(Campaign, BlackholedInterfaceDiscardedBySampleSize) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.blackhole_rate = 1.0;  // Everyone blackholes.
  util::Rng rng(9);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_EQ(analysis.interfaces.size(), 1u);
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kSampleSize);
}

TEST(Campaign, TtlSwitchFaultCaughtByTtlSwitchFilter) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.ttl_switch_rate = 1.0;
  util::Rng rng(10);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kTtlSwitch);
}

TEST(Campaign, ProxyReplyFaultCaughtByTtlMatchFilter) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.proxy_reply_rate = 1.0;
  util::Rng rng(11);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kTtlMatch);
}

TEST(Campaign, PersistentCongestionCaughtByRttConsistentFilter) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.persistent_congestion_rate = 1.0;
  util::Rng rng(12);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kRttConsistent);
}

TEST(Campaign, LgAsymmetryCaughtByLgConsistentFilter) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.lg_asymmetry_rate = 1.0;
  util::Rng rng(13);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kLgConsistent);
}

TEST(Campaign, AsnChangeCaughtByAsnChangeFilter) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.asn_change_rate = 1.0;
  util::Rng rng(14);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kAsnChange);
}

TEST(Campaign, AbsentInterfaceDiscardedBySampleSize) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  auto config = fast_campaign();
  config.faults.absent_rate = 1.0;
  util::Rng rng(15);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  const auto analysis = apply_filters(measurement, FilterConfig{});
  ASSERT_TRUE(analysis.interfaces[0].discarded_by);
  EXPECT_EQ(*analysis.interfaces[0].discarded_by, Filter::kSampleSize);
}

TEST(Campaign, UndiscoverableInterfacesNotProbed) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  ixp::MemberInterface hidden;
  hidden.asn = net::Asn{200};
  hidden.addr = mini.addrs.allocate();
  hidden.mac = net::MacAddr::from_id(999);
  hidden.equipment_city = city("Amsterdam");
  hidden.discoverable = false;
  mini.ixp.add_interface(hidden);

  util::Rng rng(16);
  const auto measurement = run_ixp_campaign(mini.ixp, fast_campaign(), rng);
  EXPECT_EQ(measurement.interfaces.size(), 1u);
  EXPECT_EQ(measurement.interfaces[0].addr.to_string(),
            mini.ixp.interfaces()[0].addr.to_string());
}

TEST(Campaign, DeterministicForSameSeed) {
  auto run_once = [] {
    MiniIxp mini;
    mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
    mini.add_member(300, ixp::AttachmentKind::kRemoteViaProvider, "Budapest");
    util::Rng rng(99);
    return run_ixp_campaign(mini.ixp, fast_campaign(), rng);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.interfaces.size(), b.interfaces.size());
  for (std::size_t i = 0; i < a.interfaces.size(); ++i) {
    const auto& sa = a.interfaces[i].samples.at(ixp::LgOperator::kPch);
    const auto& sb = b.interfaces[i].samples.at(ixp::LgOperator::kPch);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t k = 0; k < sa.size(); ++k) {
      EXPECT_EQ(sa[k].replied, sb[k].replied);
      if (sa[k].replied) {
        EXPECT_EQ(sa[k].rtt, sb[k].rtt);
      }
    }
  }
}

TEST(Campaign, RouteServerCrosscheckCollectsIndependentSamples) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  mini.add_member(300, ixp::AttachmentKind::kRemoteViaProvider, "Budapest");
  auto config = fast_campaign();
  config.route_server_crosscheck = true;
  config.rs_queries = 5;
  util::Rng rng(21);
  const auto measurement = run_ixp_campaign(mini.ixp, config, rng);
  for (const auto& obs : measurement.interfaces) {
    EXPECT_EQ(obs.route_server_samples.size(), 15u);  // 5 queries x 3 pings.
    std::size_t replies = 0;
    for (const auto& s : obs.route_server_samples)
      if (s.replied) ++replies;
    EXPECT_GE(replies, 10u);
  }
  // The cross-check flows into the analysis and agrees with the LG minima.
  const auto analysis = apply_filters(measurement, FilterConfig{});
  for (const auto& iface : analysis.interfaces) {
    ASSERT_TRUE(iface.analyzed());
    ASSERT_TRUE(iface.route_server_min_rtt.has_value());
    const double diff_ms = iface.min_rtt.as_millis_f() -
                           iface.route_server_min_rtt->as_millis_f();
    // Both vantages sit inside the fabric: minima within ~1 ms (the paper's
    // TorIX check found a 0.3 ms mean difference).
    EXPECT_LT(std::abs(diff_ms), 1.5) << iface.addr.to_string();
  }
}

TEST(Campaign, NoRouteServerSamplesWithoutCrosscheck) {
  MiniIxp mini;
  mini.add_member(100, ixp::AttachmentKind::kDirectColo, "Amsterdam");
  util::Rng rng(22);
  const auto measurement = run_ixp_campaign(mini.ixp, fast_campaign(), rng);
  EXPECT_TRUE(measurement.interfaces[0].route_server_samples.empty());
  const auto analysis = apply_filters(measurement, FilterConfig{});
  EXPECT_FALSE(analysis.interfaces[0].route_server_min_rtt.has_value());
}

TEST(Campaign, GroundTruthCarriedThrough) {
  MiniIxp mini;
  mini.add_member(300, ixp::AttachmentKind::kRemoteViaProvider, "Budapest");
  util::Rng rng(17);
  const auto measurement = run_ixp_campaign(mini.ixp, fast_campaign(), rng);
  ASSERT_EQ(measurement.interfaces.size(), 1u);
  EXPECT_TRUE(measurement.interfaces[0].truth_remote);
  EXPECT_EQ(measurement.interfaces[0].truth_kind,
            ixp::AttachmentKind::kRemoteViaProvider);
  EXPECT_GT(measurement.interfaces[0].truth_circuit_one_way,
            util::SimDuration::millis(3));
}

}  // namespace
}  // namespace rp::measure

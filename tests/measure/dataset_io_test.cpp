#include "measure/dataset_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "measure/filters.hpp"
#include "net/subnet_allocator.hpp"

namespace rp::measure {
namespace {

IxpMeasurement sample_campaign() {
  ixp::Ixp ixp(3, "IOIX", "IO Exchange",
               geo::CityRegistry::world().at("Amsterdam"), 0.4,
               *net::Ipv4Prefix::parse("198.18.12.0/24"));
  net::HostAllocator addrs(ixp.peering_lan());
  ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
  ixp.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));
  for (std::uint32_t i = 0; i < 4; ++i) {
    ixp::MemberInterface iface;
    iface.asn = net::Asn{500 + i};
    iface.addr = addrs.allocate();
    iface.mac = net::MacAddr::from_id(i + 1);
    iface.kind = i < 3 ? ixp::AttachmentKind::kDirectColo
                       : ixp::AttachmentKind::kRemoteViaProvider;
    iface.equipment_city = geo::CityRegistry::world().at(
        i < 3 ? "Amsterdam" : "Budapest");
    if (i >= 3)
      iface.circuit_one_way = geo::propagation_delay(
          iface.equipment_city.position, ixp.city().position, 1.5);
    ixp.add_interface(iface);
  }
  CampaignConfig config;
  config.length = util::SimDuration::days(3);
  config.queries_per_pch_lg = 3;
  config.queries_per_ripe_lg = 3;
  config.route_server_crosscheck = true;
  config.rs_queries = 2;
  util::Rng rng(5);
  return run_ixp_campaign(ixp, config, rng);
}

TEST(DatasetIo, RoundTripsBitForBit) {
  const IxpMeasurement original = sample_campaign();
  std::stringstream buffer;
  write_dataset(original, buffer);

  std::string error;
  const auto loaded = read_dataset(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->ixp_id, original.ixp_id);
  EXPECT_EQ(loaded->ixp_acronym, original.ixp_acronym);
  EXPECT_EQ(loaded->campaign_start, original.campaign_start);
  EXPECT_EQ(loaded->campaign_length, original.campaign_length);
  ASSERT_EQ(loaded->interfaces.size(), original.interfaces.size());
  for (std::size_t i = 0; i < original.interfaces.size(); ++i) {
    const auto& a = original.interfaces[i];
    const auto& b = loaded->interfaces[i];
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.truth_remote, b.truth_remote);
    EXPECT_EQ(a.truth_kind, b.truth_kind);
    EXPECT_EQ(a.truth_circuit_one_way, b.truth_circuit_one_way);
    ASSERT_EQ(a.registry_asn.size(), b.registry_asn.size());
    for (std::size_t r = 0; r < a.registry_asn.size(); ++r) {
      EXPECT_EQ(a.registry_asn[r].first, b.registry_asn[r].first);
      EXPECT_EQ(a.registry_asn[r].second, b.registry_asn[r].second);
    }
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (const auto& [op, list] : a.samples) {
      const auto& other = b.samples.at(op);
      ASSERT_EQ(list.size(), other.size());
      for (std::size_t k = 0; k < list.size(); ++k) {
        EXPECT_EQ(list[k].sent_at, other[k].sent_at);
        EXPECT_EQ(list[k].replied, other[k].replied);
        EXPECT_EQ(list[k].rtt, other[k].rtt);
        EXPECT_EQ(list[k].reply_ttl, other[k].reply_ttl);
        EXPECT_EQ(list[k].reply_src, other[k].reply_src);
      }
    }
    ASSERT_EQ(a.route_server_samples.size(), b.route_server_samples.size());
  }
}

TEST(DatasetIo, ReanalysisOfLoadedDatasetMatchesOriginal) {
  const IxpMeasurement original = sample_campaign();
  std::stringstream buffer;
  write_dataset(original, buffer);
  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded);

  const auto a = apply_filters(original, FilterConfig{});
  const auto b = apply_filters(*loaded, FilterConfig{});
  ASSERT_EQ(a.interfaces.size(), b.interfaces.size());
  for (std::size_t i = 0; i < a.interfaces.size(); ++i) {
    EXPECT_EQ(a.interfaces[i].discarded_by, b.interfaces[i].discarded_by);
    if (a.interfaces[i].analyzed()) {
      EXPECT_EQ(a.interfaces[i].min_rtt, b.interfaces[i].min_rtt);
    }
  }
}

TEST(DatasetIo, RejectsMalformedInput) {
  std::string error;
  {
    std::stringstream empty;
    EXPECT_FALSE(read_dataset(empty, &error));
    EXPECT_NE(error.find("header"), std::string::npos);
  }
  {
    std::stringstream bad("S,0,pch,1,1,100,64,1.2.3.4\n");
    EXPECT_FALSE(read_dataset(bad, &error));  // Data before header.
  }
  {
    std::stringstream bad("H,0,X,0,100\nI,1,1.2.3.4,0,colo,0\n");
    EXPECT_FALSE(read_dataset(bad, &error));  // Non-dense index.
  }
  {
    std::stringstream bad("H,0,X,0,100\nI,0,1.2.3.4,0,weird,0\n");
    EXPECT_FALSE(read_dataset(bad, &error));  // Unknown kind.
  }
  {
    std::stringstream bad("H,0,X,0,100\nI,0,1.2.3.4,0,colo,0\nZ,0\n");
    EXPECT_FALSE(read_dataset(bad, &error));  // Unknown tag.
    EXPECT_NE(error.find("unknown tag"), std::string::npos);
  }
  {
    std::stringstream bad("H,0,X,0,100\nS,0,pch,1,1,2,64,1.2.3.4\n");
    EXPECT_FALSE(read_dataset(bad, &error));  // Sample before interface.
  }
}

TEST(DatasetIo, RejectsDuplicateHeader) {
  std::string error;
  std::stringstream bad(
      "H,0,X,0,100\nI,0,1.2.3.4,0,colo,0\nH,1,Y,0,200\n");
  EXPECT_FALSE(read_dataset(bad, &error));
  EXPECT_NE(error.find("duplicate header"), std::string::npos);
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(DatasetIo, RejectsOutOfRangeInterfaceIndex) {
  std::string error;
  {
    // Index past the declared interfaces.
    std::stringstream bad(
        "H,0,X,0,100\nI,0,1.2.3.4,0,colo,0\nR,7,5,500\n");
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("unknown interface"), std::string::npos);
  }
  {
    // Negative index.
    std::stringstream bad("H,0,X,0,100\nI,-1,1.2.3.4,0,colo,0\n");
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("bad interface index"), std::string::npos);
  }
}

TEST(DatasetIo, RejectsOverflowingIntegerFields) {
  std::string error;
  {
    // 2^64 + 1 used to wrap to 1 via unsigned arithmetic, silently aliasing
    // interface 1; it must be rejected outright.
    std::stringstream bad(
        "H,0,X,0,100\nI,0,1.2.3.4,0,colo,0\nI,1,1.2.3.5,0,colo,0\n"
        "R,18446744073709551617,5,500\n");
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("bad interface index"), std::string::npos);
  }
  {
    // Overflow in a non-index field (campaign length).
    std::stringstream bad("H,0,X,0,99999999999999999999\n");
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("bad header numbers"), std::string::npos);
  }
  {
    // INT64_MIN and INT64_MAX are exactly representable and must survive.
    std::stringstream ok(
        "H,0,X,-9223372036854775808,9223372036854775807\n"
        "I,0,1.2.3.4,0,colo,0\n");
    EXPECT_TRUE(read_dataset(ok, &error)) << error;
  }
}

TEST(DatasetIo, ParseErrorsCarryLineAndOffendingToken) {
  const std::string input =
      "H,0,X,0,100\nI,0,1.2.3.4,0,colo,0\nS,0,pch,1,1,bogus,64,1.2.3.4\n";
  {
    // The non-throwing wrapper surfaces the full message.
    std::string error;
    std::stringstream bad(input);
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
    EXPECT_NE(error.find("RTT"), std::string::npos) << error;
    EXPECT_NE(error.find("'bogus'"), std::string::npos) << error;
  }
  {
    // The strict reader carries the same information as a typed exception.
    std::stringstream bad(input);
    try {
      read_dataset_strict(bad);
      FAIL() << "expected DatasetParseError";
    } catch (const DatasetParseError& e) {
      EXPECT_EQ(e.line(), 3u);
      EXPECT_NE(std::string(e.what()).find("'bogus'"), std::string::npos)
          << e.what();
    }
  }
  {
    // A different failure class: unparsable attachment kind, quoted.
    std::string error;
    std::stringstream bad("H,0,X,0,100\nI,0,1.2.3.4,0,weird,0\n");
    EXPECT_FALSE(read_dataset(bad, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("bad attachment kind 'weird'"), std::string::npos)
        << error;
  }
}

TEST(DatasetIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(
      "# comment\n\nH,7,TINY,0,1000\n# more\nI,0,10.0.0.1,1,remote,500\n");
  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->ixp_acronym, "TINY");
  ASSERT_EQ(loaded->interfaces.size(), 1u);
  EXPECT_TRUE(loaded->interfaces[0].truth_remote);
  EXPECT_EQ(loaded->interfaces[0].truth_kind,
            ixp::AttachmentKind::kRemoteViaProvider);
}

}  // namespace
}  // namespace rp::measure

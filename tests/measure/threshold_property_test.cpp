// Property sweep over remoteness thresholds and filter configurations on a
// fixed raw dataset: re-analysis must behave monotonically and predictably.
#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "measure/classifier.hpp"
#include "measure/filters.hpp"
#include "measure/report.hpp"
#include "net/subnet_allocator.hpp"

namespace rp::measure {
namespace {

/// One shared raw campaign over a mixed roster (clean faults so counts are
/// predictable), reused by every parameterized case.
const IxpMeasurement& shared_measurement() {
  static const IxpMeasurement measurement = [] {
    ixp::Ixp ixp(0, "PROP", "Property Exchange",
                 geo::CityRegistry::world().at("Amsterdam"), 1.0,
                 *net::Ipv4Prefix::parse("198.18.8.0/24"));
    net::HostAllocator addrs(ixp.peering_lan());
    ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
    ixp.add_looking_glass(ixp::LookingGlass::ripe(addrs.allocate()));
    const char* homes[] = {"Amsterdam", "Amsterdam", "Frankfurt", "Budapest",
                           "Moscow", "Lisbon", "New York", "Hong Kong",
                           "Sao Paulo", "Tokyo"};
    std::uint32_t serial = 1;
    for (const char* home : homes) {
      ixp::MemberInterface iface;
      iface.asn = net::Asn{1000 + serial};
      iface.addr = addrs.allocate();
      iface.mac = net::MacAddr::from_id(serial++);
      const bool local = std::string(home) == "Amsterdam";
      iface.kind = local ? ixp::AttachmentKind::kDirectColo
                         : ixp::AttachmentKind::kRemoteViaProvider;
      iface.equipment_city = geo::CityRegistry::world().at(home);
      if (!local)
        iface.circuit_one_way = geo::propagation_delay(
            iface.equipment_city.position, ixp.city().position, 1.5);
      ixp.add_interface(iface);
    }
    CampaignConfig config;
    config.length = util::SimDuration::days(4);
    config.queries_per_pch_lg = 4;
    config.queries_per_ripe_lg = 3;
    config.faults = FaultPlanConfig{};
    config.faults.blackhole_rate = 0.0;
    config.faults.absent_rate = 0.0;
    config.faults.ttl_switch_rate = 0.0;
    config.faults.odd_ttl_rate = 0.0;
    config.faults.proxy_reply_rate = 0.0;
    config.faults.persistent_congestion_rate = 0.0;
    config.faults.lg_asymmetry_rate = 0.0;
    config.faults.asn_change_rate = 0.0;
    config.faults.unidentified_rate = 0.0;
    config.faults.lossy_rate = 0.0;
    util::Rng rng(77);
    return run_ixp_campaign(ixp, config, rng);
  }();
  return measurement;
}

class ThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, RemoteCountMonotoneInThreshold) {
  const auto analysis = apply_filters(shared_measurement(), FilterConfig{});
  ClassifierConfig tight;
  tight.remoteness_threshold = util::SimDuration::from_millis_f(GetParam());
  ClassifierConfig tighter;
  tighter.remoteness_threshold =
      util::SimDuration::from_millis_f(GetParam() * 2.0);
  std::size_t at_threshold = 0, at_double = 0;
  for (const auto& iface : analysis.interfaces) {
    if (!iface.analyzed()) continue;
    if (is_remote(iface.min_rtt, tight)) ++at_threshold;
    if (is_remote(iface.min_rtt, tighter)) ++at_double;
  }
  EXPECT_GE(at_threshold, at_double);
}

TEST_P(ThresholdProperty, BandsPartitionTheAnalyzedSet) {
  const auto analysis = apply_filters(shared_measurement(), FilterConfig{});
  ClassifierConfig config;
  config.remoteness_threshold = util::SimDuration::from_millis_f(GetParam());
  // Keep the band edges ordered around the threshold.
  config.intercountry_edge =
      util::SimDuration::from_millis_f(GetParam() * 2.0);
  config.intercontinental_edge =
      util::SimDuration::from_millis_f(GetParam() * 5.0);
  std::array<std::size_t, kBandCount> counts{};
  std::size_t analyzed = 0;
  for (const auto& iface : analysis.interfaces) {
    if (!iface.analyzed()) continue;
    ++analyzed;
    ++counts[static_cast<std::size_t>(band_of(iface.min_rtt, config))];
  }
  std::size_t sum = 0;
  for (std::size_t c : counts) sum += c;
  EXPECT_EQ(sum, analyzed);
}

INSTANTIATE_TEST_SUITE_P(ThresholdsMs, ThresholdProperty,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 50.0));

class FilterToggleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FilterToggleProperty, DisablingAFilterNeverShrinksTheAnalyzedSet) {
  const auto& measurement = shared_measurement();
  const auto baseline = apply_filters(measurement, FilterConfig{});
  FilterConfig relaxed;
  relaxed.enabled[GetParam()] = false;
  const auto without = apply_filters(measurement, relaxed);
  EXPECT_GE(without.analyzed_count(), baseline.analyzed_count());
  // And that filter charges nothing when disabled.
  EXPECT_EQ(without.discard_counts[GetParam()], 0u);
}

INSTANTIATE_TEST_SUITE_P(Filters, FilterToggleProperty,
                         ::testing::Range<std::size_t>(0, kFilterCount));

}  // namespace
}  // namespace rp::measure

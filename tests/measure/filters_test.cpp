#include "measure/filters.hpp"

#include <gtest/gtest.h>

namespace rp::measure {
namespace {

using util::SimDuration;
using util::SimTime;

PingSample reply(double rtt_ms, std::uint8_t ttl = 64,
                 double at_hours = 0.0) {
  PingSample s;
  s.sent_at = SimTime::at(SimDuration::from_seconds_f(at_hours * 3600.0));
  s.replied = true;
  s.rtt = SimDuration::from_millis_f(rtt_ms);
  s.reply_ttl = ttl;
  return s;
}

PingSample timeout(double at_hours = 0.0) {
  PingSample s;
  s.sent_at = SimTime::at(SimDuration::from_seconds_f(at_hours * 3600.0));
  s.replied = false;
  return s;
}

/// A healthy single-LG observation: `n` clean replies near `rtt_ms`.
InterfaceObservation healthy(double rtt_ms = 1.0, int n = 10,
                             std::uint8_t ttl = 64) {
  InterfaceObservation obs;
  obs.addr = net::Ipv4Addr(198, 18, 0, 9);
  obs.registry_asn.emplace_back(SimTime::origin(), net::Asn{64500});
  auto& samples = obs.samples[ixp::LgOperator::kPch];
  for (int i = 0; i < n; ++i)
    samples.push_back(reply(rtt_ms + 0.01 * i, ttl, i));
  return obs;
}

TEST(Filters, HealthyInterfaceIsAnalyzed) {
  const auto analysis = analyze_interface(healthy(), FilterConfig{});
  EXPECT_TRUE(analysis.analyzed());
  EXPECT_NEAR(analysis.min_rtt.as_millis_f(), 1.0, 1e-9);
  EXPECT_EQ(analysis.accepted_replies, 10u);
  ASSERT_TRUE(analysis.asn);
  EXPECT_EQ(*analysis.asn, net::Asn{64500});
}

TEST(Filters, SampleSizeDiscardsFewReplies) {
  auto obs = healthy(1.0, 7);  // Below the 8-reply bar.
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kSampleSize);
}

TEST(Filters, SampleSizeCountsRepliesNotProbes) {
  auto obs = healthy(1.0, 8);
  for (int i = 0; i < 30; ++i)
    obs.samples[ixp::LgOperator::kPch].push_back(timeout());
  EXPECT_TRUE(analyze_interface(obs, FilterConfig{}).analyzed());
  // But 7 replies among 30 probes still fails.
  auto thin = healthy(1.0, 7);
  for (int i = 0; i < 30; ++i)
    thin.samples[ixp::LgOperator::kPch].push_back(timeout());
  EXPECT_EQ(*analyze_interface(thin, FilterConfig{}).discarded_by,
            Filter::kSampleSize);
}

TEST(Filters, SampleSizeAppliesPerLookingGlass) {
  auto obs = healthy(1.0, 20);
  // The RIPE LG saw only 3 replies: the interface must be discarded even
  // though the PCH side is rich.
  for (int i = 0; i < 3; ++i)
    obs.samples[ixp::LgOperator::kRipeNcc].push_back(reply(1.0));
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kSampleSize);
}

TEST(Filters, NoSamplesAtAllDiscarded) {
  InterfaceObservation obs;
  obs.addr = net::Ipv4Addr(198, 18, 0, 9);
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kSampleSize);
}

TEST(Filters, TtlSwitchDiscardsChangedTtl) {
  auto obs = healthy(1.0, 6, 64);
  auto& samples = obs.samples[ixp::LgOperator::kPch];
  for (int i = 0; i < 6; ++i) samples.push_back(reply(1.0, 255, 10.0 + i));
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kTtlSwitch);
}

TEST(Filters, TtlMatchDiscardsOddTtl) {
  // Constant but unexpected TTL (128): TTL-switch passes, TTL-match fires.
  const auto analysis = analyze_interface(healthy(1.0, 10, 128),
                                          FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kTtlMatch);
}

TEST(Filters, TtlMatchDiscardsProxiedReplies) {
  // Proxied replies arrive with TTL 63 (64 minus one hop).
  const auto analysis =
      analyze_interface(healthy(1.0, 10, 63), FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kTtlMatch);
}

TEST(Filters, Ttl255Accepted) {
  EXPECT_TRUE(analyze_interface(healthy(1.0, 10, 255),
                                FilterConfig{}).analyzed());
}

TEST(Filters, RttConsistentDiscardsScatteredRtts) {
  // One fast fluke, everything else 30+ ms away: persistent congestion.
  InterfaceObservation obs;
  obs.addr = net::Ipv4Addr(198, 18, 0, 9);
  auto& samples = obs.samples[ixp::LgOperator::kPch];
  samples.push_back(reply(1.0));
  samples.push_back(reply(1.2));  // Within margin: 2 consistent replies.
  for (int i = 0; i < 10; ++i) samples.push_back(reply(30.0 + i));
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kRttConsistent);
}

TEST(Filters, RttConsistencyMarginIsMaxOfFloorAndFraction) {
  // min 100 ms: margin = max(5, 10) = 10 ms; replies at 109 ms count.
  InterfaceObservation obs;
  obs.addr = net::Ipv4Addr(198, 18, 0, 9);
  auto& samples = obs.samples[ixp::LgOperator::kPch];
  samples.push_back(reply(100.0));
  for (int i = 0; i < 3; ++i) samples.push_back(reply(109.0));
  for (int i = 0; i < 6; ++i) samples.push_back(reply(150.0));
  EXPECT_TRUE(analyze_interface(obs, FilterConfig{}).analyzed());
  // At min 1 ms: margin = max(5, 0.1) = 5 ms; replies at 6.1 ms do not.
  InterfaceObservation tight;
  tight.addr = net::Ipv4Addr(198, 18, 0, 9);
  auto& t = tight.samples[ixp::LgOperator::kPch];
  t.push_back(reply(1.0));
  t.push_back(reply(5.9));   // Within 1+5.
  t.push_back(reply(6.1));   // Outside.
  t.push_back(reply(6.2));
  for (int i = 0; i < 6; ++i) t.push_back(reply(20.0));
  const auto analysis = analyze_interface(tight, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kRttConsistent);
}

TEST(Filters, LgConsistentDiscardsDisagreeingLgs) {
  auto obs = healthy(1.0, 10);  // PCH at ~1 ms.
  auto& ripe = obs.samples[ixp::LgOperator::kRipeNcc];
  for (int i = 0; i < 10; ++i) ripe.push_back(reply(15.0 + 0.01 * i));
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kLgConsistent);
}

TEST(Filters, LgConsistentPassesAgreeingLgs) {
  auto obs = healthy(12.0, 10);
  auto& ripe = obs.samples[ixp::LgOperator::kRipeNcc];
  for (int i = 0; i < 10; ++i) ripe.push_back(reply(13.0 + 0.01 * i));
  // |13 - 12| = 1 ms <= max(5, 1.2): consistent.
  const auto analysis = analyze_interface(obs, FilterConfig{});
  EXPECT_TRUE(analysis.analyzed());
  EXPECT_NEAR(analysis.min_rtt.as_millis_f(), 12.0, 1e-9);
}

TEST(Filters, AsnChangeDiscardsRemappedInterface) {
  auto obs = healthy();
  obs.registry_asn.emplace_back(SimTime::at(SimDuration::days(10)),
                                net::Asn{65000});
  const auto analysis = analyze_interface(obs, FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kAsnChange);
}

TEST(Filters, UnidentifiedInterfaceAnalyzedWithoutAsn) {
  auto obs = healthy();
  obs.registry_asn.clear();
  const auto analysis = analyze_interface(obs, FilterConfig{});
  EXPECT_TRUE(analysis.analyzed());
  EXPECT_FALSE(analysis.asn.has_value());
}

TEST(Filters, OrderAttributesToEarliestFilter) {
  // An interface that is both thin (5 replies) and TTL-odd must be charged
  // to sample-size, the first filter in the pipeline.
  const auto analysis =
      analyze_interface(healthy(1.0, 5, 128), FilterConfig{});
  ASSERT_TRUE(analysis.discarded_by);
  EXPECT_EQ(*analysis.discarded_by, Filter::kSampleSize);
}

TEST(Filters, DisablingAFilterLetsItsArtefactThrough) {
  FilterConfig no_ttl_match;
  no_ttl_match.enabled[static_cast<std::size_t>(Filter::kTtlMatch)] = false;
  const auto analysis = analyze_interface(healthy(1.0, 10, 128), no_ttl_match);
  EXPECT_TRUE(analysis.analyzed());
}

TEST(Filters, DisabledSampleSizeStillNeedsSomeReply) {
  FilterConfig lax;
  lax.enabled[static_cast<std::size_t>(Filter::kSampleSize)] = false;
  InterfaceObservation obs;
  obs.addr = net::Ipv4Addr(198, 18, 0, 9);
  obs.samples[ixp::LgOperator::kPch].push_back(timeout());
  const auto analysis = analyze_interface(obs, lax);
  EXPECT_TRUE(analysis.discarded_by.has_value());
}

TEST(Filters, MinRttTakenOverAcceptedRepliesOnly) {
  FilterConfig config;
  // An interface with a (discarded) odd-TTL fast reply: min must come from
  // the accepted 64-TTL replies. Disable TTL-switch so the mix survives to
  // TTL-match.
  config.enabled[static_cast<std::size_t>(Filter::kTtlSwitch)] = false;
  auto obs = healthy(5.0, 10, 64);
  obs.samples[ixp::LgOperator::kPch].push_back(reply(0.1, 63));
  const auto analysis = analyze_interface(obs, config);
  ASSERT_TRUE(analysis.analyzed());
  EXPECT_NEAR(analysis.min_rtt.as_millis_f(), 5.0, 1e-9);
}

TEST(Filters, ApplyFiltersAggregatesCounts) {
  IxpMeasurement measurement;
  measurement.ixp_acronym = "TEST";
  measurement.interfaces.push_back(healthy());
  measurement.interfaces.push_back(healthy(1.0, 3));       // sample-size
  measurement.interfaces.push_back(healthy(1.0, 10, 32));  // TTL-match
  auto switched = healthy(1.0, 6, 64);
  for (int i = 0; i < 6; ++i)
    switched.samples[ixp::LgOperator::kPch].push_back(reply(1.0, 255, 5.0));
  measurement.interfaces.push_back(switched);  // TTL-switch

  const IxpAnalysis analysis = apply_filters(measurement, FilterConfig{});
  EXPECT_EQ(analysis.probed_count(), 4u);
  EXPECT_EQ(analysis.analyzed_count(), 1u);
  EXPECT_EQ(analysis.discard_counts[static_cast<std::size_t>(
                Filter::kSampleSize)], 1u);
  EXPECT_EQ(analysis.discard_counts[static_cast<std::size_t>(
                Filter::kTtlMatch)], 1u);
  EXPECT_EQ(analysis.discard_counts[static_cast<std::size_t>(
                Filter::kTtlSwitch)], 1u);
}

TEST(Filters, ToStringCoversAll) {
  EXPECT_EQ(to_string(Filter::kSampleSize), "sample-size");
  EXPECT_EQ(to_string(Filter::kTtlSwitch), "TTL-switch");
  EXPECT_EQ(to_string(Filter::kTtlMatch), "TTL-match");
  EXPECT_EQ(to_string(Filter::kRttConsistent), "RTT-consistent");
  EXPECT_EQ(to_string(Filter::kLgConsistent), "LG-consistent");
  EXPECT_EQ(to_string(Filter::kAsnChange), "ASN-change");
}

}  // namespace
}  // namespace rp::measure

#include "measure/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/stats.hpp"

namespace rp::measure {
namespace {

using util::SimDuration;

InterfaceAnalysis analyzed(double rtt_ms, std::uint32_t asn,
                           ixp::IxpId ixp_id, bool truth_remote) {
  InterfaceAnalysis a;
  a.addr = net::Ipv4Addr(198, 18, 0, static_cast<std::uint8_t>(asn % 250));
  a.ixp_id = ixp_id;
  a.min_rtt = SimDuration::from_millis_f(rtt_ms);
  a.accepted_replies = 20;
  if (asn != 0) a.asn = net::Asn{asn};
  a.truth_remote = truth_remote;
  a.truth_circuit_one_way = SimDuration::from_millis_f(
      truth_remote ? rtt_ms / 2.0 - 0.2 : 0.05);
  return a;
}

InterfaceAnalysis discarded(Filter f, ixp::IxpId ixp_id) {
  InterfaceAnalysis a;
  a.ixp_id = ixp_id;
  a.discarded_by = f;
  return a;
}

std::vector<IxpAnalysis> two_ixp_fixture() {
  IxpAnalysis first;
  first.ixp_id = 0;
  first.ixp_acronym = "ALPHA";
  first.interfaces.push_back(analyzed(1.0, 100, 0, false));
  first.interfaces.push_back(analyzed(15.0, 200, 0, true));
  first.interfaces.push_back(analyzed(60.0, 300, 0, true));
  first.interfaces.push_back(analyzed(2.0, 0, 0, false));  // Unidentified.
  first.interfaces.push_back(discarded(Filter::kSampleSize, 0));
  first.discard_counts[static_cast<std::size_t>(Filter::kSampleSize)] = 1;

  IxpAnalysis second;
  second.ixp_id = 1;
  second.ixp_acronym = "BETA";
  second.interfaces.push_back(analyzed(1.5, 100, 1, false));
  second.interfaces.push_back(analyzed(25.0, 400, 1, true));
  return {first, second};
}

TEST(SpreadReport, RowTotalsAndBands) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  ASSERT_EQ(report.rows().size(), 2u);
  const auto& alpha = report.rows()[0];
  EXPECT_EQ(alpha.acronym, "ALPHA");
  EXPECT_EQ(alpha.probed, 5u);
  EXPECT_EQ(alpha.analyzed, 4u);
  EXPECT_EQ(alpha.remote_interfaces, 2u);
  EXPECT_EQ(alpha.band_counts[0], 2u);  // <10ms
  EXPECT_EQ(alpha.band_counts[1], 1u);  // 15ms
  EXPECT_EQ(alpha.band_counts[3], 1u);  // 60ms
  EXPECT_TRUE(alpha.has_remote());
  EXPECT_EQ(report.total_probed(), 7u);
  EXPECT_EQ(report.total_analyzed(), 6u);
}

TEST(SpreadReport, DiscardTotalsAggregate) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  const auto totals = report.total_discards();
  EXPECT_EQ(totals[static_cast<std::size_t>(Filter::kSampleSize)], 1u);
  EXPECT_EQ(totals[static_cast<std::size_t>(Filter::kTtlSwitch)], 0u);
}

TEST(SpreadReport, NetworksAggregatedAcrossIxps) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  // AS100 at both IXPs; AS200/300/400 at one each; the unidentified
  // interface is excluded, leaving 5 of the 6 analyzed.
  EXPECT_EQ(report.identified_networks(), 4u);
  EXPECT_EQ(report.identified_interfaces(), 5u);
  const auto& networks = report.networks();
  const auto as100 = std::find_if(
      networks.begin(), networks.end(),
      [](const NetworkSpread& n) { return n.asn == net::Asn{100}; });
  ASSERT_NE(as100, networks.end());
  EXPECT_EQ(as100->ixp_count, 2u);
  EXPECT_EQ(as100->analyzed_interfaces, 2u);
  EXPECT_FALSE(as100->remote_peer);
  EXPECT_EQ(report.remote_networks(), 3u);
}

TEST(SpreadReport, IxpCountHistograms) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  const auto all = report.ixp_count_histogram(false);
  EXPECT_EQ(all.at(1), 3u);
  EXPECT_EQ(all.at(2), 1u);
  const auto remote = report.ixp_count_histogram(true);
  EXPECT_EQ(remote.at(1), 3u);
  EXPECT_FALSE(remote.contains(2));
}

TEST(SpreadReport, BandFractionsByIxpCount) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  const auto fractions = report.band_fractions_by_ixp_count();
  // Remote networks with IXP count 1: AS200 (15ms), AS300 (60ms),
  // AS400 (25ms) -> 3 interfaces, one per band 1, 2, 3.
  ASSERT_TRUE(fractions.contains(1));
  const auto& f = fractions.at(1);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_NEAR(f[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(f[2], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(f[3], 1.0 / 3.0, 1e-12);
}

TEST(SpreadReport, FractionOfIxpsWithRemote) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  EXPECT_DOUBLE_EQ(report.ixps_with_remote_fraction(), 1.0);
}

TEST(SpreadReport, ValidationConfusionMatrix) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  const auto& v = report.validation();
  EXPECT_EQ(v.true_positives, 3u);
  EXPECT_EQ(v.false_positives, 0u);
  EXPECT_EQ(v.true_negatives, 3u);
  EXPECT_EQ(v.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(v.precision(), 1.0);
  EXPECT_DOUBLE_EQ(v.recall(), 1.0);
  // Each analyzed interface contributes min_rtt - 2 * one-way to the error;
  // the fixture sets one-way so errors are small and positive.
  EXPECT_GT(v.rtt_error_mean_ms, 0.0);
  EXPECT_LT(v.rtt_error_mean_ms, 2.5);
}

TEST(SpreadReport, MinRttsFeedTheCdf) {
  const auto report =
      SpreadReport::build(two_ixp_fixture(), ClassifierConfig{});
  EXPECT_EQ(report.min_rtts_ms().size(), 6u);
  util::EmpiricalCdf cdf(report.min_rtts_ms());
  EXPECT_DOUBLE_EQ(cdf.at(9.9), 0.5);  // Three of six below 10 ms.
}

TEST(SpreadReport, EmptyInput) {
  const auto report = SpreadReport::build({}, ClassifierConfig{});
  EXPECT_EQ(report.total_probed(), 0u);
  EXPECT_EQ(report.total_analyzed(), 0u);
  EXPECT_DOUBLE_EQ(report.ixps_with_remote_fraction(), 0.0);
  EXPECT_EQ(report.remote_networks(), 0u);
}

TEST(ValidationSummary, DegenerateRatios) {
  ValidationSummary v;
  EXPECT_DOUBLE_EQ(v.precision(), 1.0);
  EXPECT_DOUBLE_EQ(v.recall(), 1.0);
  v.false_positives = 1;
  EXPECT_DOUBLE_EQ(v.precision(), 0.0);
}

}  // namespace
}  // namespace rp::measure

#include "measure/classifier.hpp"

#include <gtest/gtest.h>

namespace rp::measure {
namespace {

using util::SimDuration;

TEST(Classifier, BandEdgesMatchPaper) {
  const ClassifierConfig config;
  EXPECT_EQ(band_of(SimDuration::from_millis_f(0.3), config),
            RttBand::kLocal);
  EXPECT_EQ(band_of(SimDuration::from_millis_f(9.99), config),
            RttBand::kLocal);
  EXPECT_EQ(band_of(SimDuration::millis(10), config), RttBand::kIntercity);
  EXPECT_EQ(band_of(SimDuration::from_millis_f(19.99), config),
            RttBand::kIntercity);
  EXPECT_EQ(band_of(SimDuration::millis(20), config),
            RttBand::kIntercountry);
  EXPECT_EQ(band_of(SimDuration::from_millis_f(49.99), config),
            RttBand::kIntercountry);
  EXPECT_EQ(band_of(SimDuration::millis(50), config),
            RttBand::kIntercontinental);
  EXPECT_EQ(band_of(SimDuration::seconds(1), config),
            RttBand::kIntercontinental);
}

TEST(Classifier, RemotenessThresholdAt10Ms) {
  const ClassifierConfig config;
  EXPECT_FALSE(is_remote(SimDuration::from_millis_f(9.999), config));
  EXPECT_TRUE(is_remote(SimDuration::millis(10), config));
  EXPECT_TRUE(is_remote(SimDuration::seconds(2), config));
}

TEST(Classifier, CustomThreshold) {
  ClassifierConfig config;
  config.remoteness_threshold = SimDuration::millis(2);
  EXPECT_TRUE(is_remote(SimDuration::millis(3), config));
  EXPECT_FALSE(is_remote(SimDuration::millis(1), config));
}

TEST(Classifier, BandNamesMatchFig3Legend) {
  EXPECT_EQ(to_string(RttBand::kLocal), "RTT < 10 ms");
  EXPECT_EQ(to_string(RttBand::kIntercity), "10 ms <= RTT < 20 ms");
  EXPECT_EQ(to_string(RttBand::kIntercountry), "20 ms <= RTT < 50 ms");
  EXPECT_EQ(to_string(RttBand::kIntercontinental), "RTT >= 50 ms");
}

TEST(Classifier, RemoteIffNotLocalBand) {
  // Property: under any config where threshold == first band edge, the
  // remoteness predicate agrees with "band != local".
  const ClassifierConfig config;
  for (double ms : {0.1, 5.0, 9.9, 10.0, 15.0, 20.0, 49.0, 50.0, 300.0}) {
    const auto rtt = SimDuration::from_millis_f(ms);
    EXPECT_EQ(is_remote(rtt, config),
              band_of(rtt, config) != RttBand::kLocal)
        << ms;
  }
}

}  // namespace
}  // namespace rp::measure

// Property sweep over the §5 cost-model parameter space: the closed forms
// must agree with numeric optimization, the allocation must stay a valid
// probability split, and the optimal strategies must order sensibly for
// every admissible price vector.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "econ/cost_model.hpp"

namespace rp::econ {
namespace {

// (decay b, direct fixed g, remote fixed h, remote unit v).
using Params = std::tuple<double, double, double, double>;

class CostModelProperty : public ::testing::TestWithParam<Params> {
 protected:
  CostParameters params() const {
    CostParameters p;
    p.transit_price = 1.0;
    p.direct_unit = 0.2;
    p.decay = std::get<0>(GetParam());
    p.direct_fixed = std::get<1>(GetParam());
    p.remote_fixed = std::get<2>(GetParam());
    p.remote_unit = std::get<3>(GetParam());
    return p;
  }
};

TEST_P(CostModelProperty, ParametersAreAdmissible) {
  EXPECT_FALSE(params().validate().has_value());
}

TEST_P(CostModelProperty, AllocationIsAlwaysAValidSplit) {
  const CostModel model(params());
  for (double n : {0.0, 0.7, 2.0, 9.5}) {
    for (double m : {0.0, 0.3, 4.0}) {
      const Allocation a = model.allocation(n, m);
      EXPECT_NEAR(a.transit_fraction + a.direct_fraction + a.remote_fraction,
                  1.0, 1e-12);
      EXPECT_GE(a.transit_fraction, 0.0);
      EXPECT_GE(a.direct_fraction, 0.0);
      EXPECT_GE(a.remote_fraction, 0.0);
    }
  }
}

TEST_P(CostModelProperty, ClosedFormMMatchesNumericSearch) {
  const CostModel model(params());
  const double n_tilde = model.optimal_direct_n();
  const double m_closed = model.optimal_remote_m();
  const double m_numeric = model.numeric_optimal_m_given_n(n_tilde);
  EXPECT_NEAR(m_numeric, m_closed, 1e-5)
      << "b=" << params().decay << " g=" << params().direct_fixed
      << " h=" << params().remote_fixed << " v=" << params().remote_unit;
}

TEST_P(CostModelProperty, ClosedFormNIsStationaryOrCorner) {
  const CostModel model(params());
  const double n = model.optimal_direct_n();
  const double cost_at = model.cost_without_remote(n);
  if (n > 0.01) {
    // Interior optimum: nudging n either way must not reduce the cost.
    EXPECT_LE(cost_at, model.cost_without_remote(n + 0.01) + 1e-12);
    EXPECT_LE(cost_at, model.cost_without_remote(n - 0.01) + 1e-12);
  } else {
    // Corner: even the first IXP must not pay off.
    EXPECT_LE(cost_at, model.cost_without_remote(0.25) + 1e-12);
  }
}

TEST_P(CostModelProperty, ViabilityIffOptimalMAtLeastOne) {
  const CostModel model(params());
  if (params().decay == 0.0) {
    EXPECT_FALSE(model.remote_viable());
    return;
  }
  EXPECT_EQ(model.remote_viable(), model.optimal_remote_m() >= 1.0 - 1e-12);
}

TEST_P(CostModelProperty, AddingViableRemoteNeverRaisesCost) {
  const CostModel model(params());
  const double n = model.optimal_direct_n();
  if (model.remote_viable()) {
    EXPECT_LT(model.total_cost(n, model.optimal_remote_m()),
              model.cost_without_remote(n) + 1e-12);
  }
  // And the do-nothing strategy is never beaten by a *negative* margin:
  // every strategy costs at least the traffic-dependent floor u.
  EXPECT_GE(model.total_cost(n, model.optimal_remote_m()),
            model.params().direct_unit - 1e-12);
}

TEST_P(CostModelProperty, CostDecreasesInOfferedDecay) {
  // A network whose traffic is easier to offload (larger b) never pays more
  // at its optimum than a network with smaller b and the same prices.
  CostParameters low = params();
  CostParameters high = params();
  high.decay = low.decay + 0.3;
  const CostModel low_model(low), high_model(high);
  const double low_cost = low_model.total_cost(
      low_model.optimal_direct_n(),
      low_model.remote_viable() ? low_model.optimal_remote_m() : 0.0);
  const double high_cost = high_model.total_cost(
      high_model.optimal_direct_n(),
      high_model.remote_viable() ? high_model.optimal_remote_m() : 0.0);
  EXPECT_LE(high_cost, low_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PriceGrid, CostModelProperty,
    ::testing::Combine(
        /*decay b*/ ::testing::Values(0.1, 0.35, 0.8, 1.5),
        /*direct fixed g*/ ::testing::Values(0.01, 0.02, 0.06),
        /*remote fixed h*/ ::testing::Values(0.003, 0.006),
        /*remote unit v*/ ::testing::Values(0.3, 0.45, 0.7)));

}  // namespace
}  // namespace rp::econ

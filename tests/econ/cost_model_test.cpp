#include "econ/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rp::econ {
namespace {

CostParameters sane() {
  CostParameters p;
  p.transit_price = 1.0;
  p.direct_fixed = 0.02;
  p.direct_unit = 0.20;
  p.remote_fixed = 0.006;
  p.remote_unit = 0.45;
  p.decay = 0.35;
  return p;
}

TEST(CostParameters, ValidatesStructuralAssumptions) {
  EXPECT_FALSE(sane().validate().has_value());
  auto bad = sane();
  bad.remote_fixed = 0.05;  // h >= g violates ineq. 7.
  EXPECT_TRUE(bad.validate().has_value());
  bad = sane();
  bad.remote_unit = 0.1;  // v <= u violates ineq. 8.
  EXPECT_TRUE(bad.validate().has_value());
  bad = sane();
  bad.remote_unit = 1.2;  // v >= p violates ineq. 8.
  EXPECT_TRUE(bad.validate().has_value());
  bad = sane();
  bad.transit_price = 0.0;
  EXPECT_TRUE(bad.validate().has_value());
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST(CostParameters, ValidateNamesTheViolatedConstraint) {
  auto bad = sane();
  bad.remote_fixed = 0.05;  // h >= g.
  EXPECT_EQ(*bad.validate(),
            "ineq. 7 violated: remote fixed cost h must be below direct g");
  bad = sane();
  bad.remote_fixed = bad.direct_fixed;  // Equality also violates ineq. 7.
  EXPECT_EQ(*bad.validate(),
            "ineq. 7 violated: remote fixed cost h must be below direct g");
  bad = sane();
  bad.remote_unit = 0.1;  // v <= u.
  EXPECT_EQ(*bad.validate(),
            "ineq. 8 violated: direct unit cost u must be below remote v");
  bad = sane();
  bad.remote_unit = 1.2;  // v >= p.
  EXPECT_EQ(*bad.validate(),
            "ineq. 8 violated: remote unit cost v must be below transit p");
  bad = sane();
  bad.decay = -0.1;
  EXPECT_EQ(*bad.validate(),
            "parameters must be positive (decay and unit costs may be zero)");
  bad = sane();
  bad.direct_fixed = 0.0;
  EXPECT_EQ(*bad.validate(),
            "parameters must be positive (decay and unit costs may be zero)");
}

TEST(CostModel, ConstructorPrefixesTheValidateMessage) {
  auto bad = sane();
  bad.remote_fixed = 0.05;
  try {
    CostModel model(bad);
    FAIL() << "CostModel accepted ineq. 7 violation";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(
        error.what(),
        "CostModel: ineq. 7 violated: remote fixed cost h must be below "
        "direct g");
  }
}

TEST(CostModel, TransitFractionIsEq3) {
  const CostModel model(sane());
  EXPECT_DOUBLE_EQ(model.transit_fraction(0.0), 1.0);
  EXPECT_DOUBLE_EQ(model.transit_fraction(2.0), std::exp(-0.7));
}

TEST(CostModel, AllocationSumsToOne) {
  const CostModel model(sane());
  for (double n : {0.0, 1.0, 3.5}) {
    for (double m : {0.0, 2.0, 7.0}) {
      const Allocation a = model.allocation(n, m);
      EXPECT_NEAR(a.transit_fraction + a.direct_fraction + a.remote_fraction,
                  1.0, 1e-12)
          << "n=" << n << " m=" << m;
      EXPECT_GE(a.direct_fraction, 0.0);
      EXPECT_GE(a.remote_fraction, 0.0);
    }
  }
  EXPECT_THROW(model.allocation(-1.0, 0.0), std::invalid_argument);
}

TEST(CostModel, NoPeeringMeansPureTransitCost) {
  const CostModel model(sane());
  EXPECT_DOUBLE_EQ(model.total_cost(0.0, 0.0), 1.0);  // C = p * 1.
}

TEST(CostModel, OptimalDirectNMatchesEq11) {
  const auto params = sane();
  const CostModel model(params);
  const double expected =
      std::log(params.decay * (params.transit_price - params.direct_unit) /
               params.direct_fixed) /
      params.decay;
  EXPECT_NEAR(model.optimal_direct_n(), expected, 1e-12);
  EXPECT_NEAR(model.optimal_direct_fraction(),
              1.0 - std::exp(-params.decay * expected), 1e-12);
}

TEST(CostModel, OptimalDirectNClampedWhenUnprofitable) {
  auto params = sane();
  params.direct_fixed = 0.5;  // IXP presence too expensive: b(p-u)/g < 1.
  const CostModel model(params);
  EXPECT_DOUBLE_EQ(model.optimal_direct_n(), 0.0);
}

TEST(CostModel, OptimalRemoteMMatchesEq13AndViabilityEq14) {
  const auto params = sane();
  const CostModel model(params);
  const double ratio =
      params.direct_fixed * (params.transit_price - params.remote_unit) /
      (params.remote_fixed * (params.transit_price - params.direct_unit));
  EXPECT_NEAR(model.viability_ratio(), ratio, 1e-12);
  EXPECT_NEAR(model.optimal_remote_m(), std::log(ratio) / params.decay,
              1e-12);
  // Eq. 14: viable iff ratio >= e^b, equivalently m~ >= 1.
  EXPECT_EQ(model.remote_viable(), model.optimal_remote_m() >= 1.0);
  EXPECT_NEAR(model.critical_decay(), std::log(ratio), 1e-12);
}

TEST(CostModel, ViabilityFailsForHighDecay) {
  // High b: one IXP offloads nearly everything, so remote peering on top of
  // the direct optimum adds only fees (the paper: networks with localized
  // traffic gain little from remote peering).
  auto params = sane();
  params.decay = 3.0;
  const CostModel model(params);
  EXPECT_FALSE(model.remote_viable());
  auto low = sane();
  low.decay = 0.2;
  EXPECT_TRUE(CostModel(low).remote_viable());
}

TEST(CostModel, RemotePeeringReducesCostWhenViable) {
  const CostModel model(sane());
  ASSERT_TRUE(model.remote_viable());
  const double n = model.optimal_direct_n();
  const double m = model.optimal_remote_m();
  EXPECT_LT(model.total_cost(n, m), model.cost_without_remote(n));
}

TEST(CostModel, NumericSearchConfirmsEq13) {
  // Eq. 13 is the optimal m *given* the network already peers directly at
  // ñ IXPs (the paper's sequential strategy). A 1-D numeric search must
  // land on the closed form.
  const CostModel model(sane());
  const double n_tilde = model.optimal_direct_n();
  EXPECT_NEAR(model.numeric_optimal_m_given_n(n_tilde),
              model.optimal_remote_m(), 1e-6);
}

TEST(CostModel, NumericSearchConfirmsEq13OffTheViabilityRegion) {
  auto params = sane();
  params.decay = 1.2;  // m~ = ln(2.29)/1.2 ~ 0.69 < 1: not viable, yet the
                       // unconstrained optimum is still the closed form.
  const CostModel model(params);
  EXPECT_FALSE(model.remote_viable());
  EXPECT_NEAR(model.numeric_optimal_m_given_n(model.optimal_direct_n()),
              model.optimal_remote_m(), 1e-6);
}

TEST(CostModel, JointOptimumAtMostSequentialCost) {
  // The joint (n, m) optimum can only improve on the paper's sequential
  // strategy, and the total reach n + m is pinned by the first-order
  // condition e^{-b(n+m)} = h / (b (p - v)).
  const auto params = sane();
  const CostModel model(params);
  const Optimum joint = model.numeric_optimum(30.0, 30.0, 0.1);
  const double sequential_cost = model.total_cost(
      model.optimal_direct_n(), model.optimal_remote_m());
  EXPECT_LE(joint.cost, sequential_cost + 1e-9);
  const double pinned_total =
      std::log(params.decay * (params.transit_price - params.remote_unit) /
               params.remote_fixed) /
      params.decay;
  EXPECT_NEAR(joint.n + joint.m, pinned_total, 0.05);
  EXPECT_THROW(model.numeric_optimum(1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(CostModel, CostDecomposesPerEquation9) {
  const auto params = sane();
  const CostModel model(params);
  const double n = 2.0, m = 3.0;
  const Allocation a = model.allocation(n, m);
  const double expected = params.transit_price * a.transit_fraction +
                          params.direct_fixed * n +
                          params.direct_unit * a.direct_fraction +
                          params.remote_fixed * m +
                          params.remote_unit * a.remote_fraction;
  EXPECT_NEAR(model.total_cost(n, m), expected, 1e-12);
}

TEST(CostModel, ZeroDecayMeansNoOffloadEverPays) {
  // b = 0 models networks whose transit traffic cannot be peered away
  // (the paper's "networks that cannot reduce transit by peering").
  auto params = sane();
  params.decay = 0.0;
  const CostModel model(params);
  EXPECT_DOUBLE_EQ(model.optimal_direct_n(), 0.0);
  EXPECT_DOUBLE_EQ(model.optimal_remote_m(), 0.0);
  EXPECT_FALSE(model.remote_viable());
}

TEST(FitDecayParameter, RecoversKnownDecay) {
  std::vector<double> fractions;
  for (int k = 0; k <= 20; ++k) fractions.push_back(std::exp(-0.42 * k));
  EXPECT_NEAR(fit_decay_parameter(fractions), 0.42, 1e-9);
}

TEST(FitDecayParameter, TruncatesAtZero) {
  // Curves that hit zero (fully offloaded) are fit on the positive part.
  std::vector<double> fractions{1.0, 0.5, 0.25, 0.0, 0.0};
  EXPECT_NEAR(fit_decay_parameter(fractions), std::log(2.0), 1e-9);
}

TEST(FitDecayParameter, RejectsDegenerateInput) {
  EXPECT_THROW(fit_decay_parameter({1.0}), std::invalid_argument);
  EXPECT_THROW(fit_decay_parameter({0.0, 0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace rp::econ

#include "ixp/ixp.hpp"

#include <gtest/gtest.h>

#include "geo/cities.hpp"

namespace rp::ixp {
namespace {

const geo::City& city(const char* name) {
  return geo::CityRegistry::world().at(name);
}

net::Ipv4Prefix lan() {
  return net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24);
}

MemberInterface make_iface(std::uint32_t asn, net::Ipv4Addr addr,
                           AttachmentKind kind = AttachmentKind::kDirectColo) {
  MemberInterface iface;
  iface.asn = net::Asn{asn};
  iface.addr = addr;
  iface.mac = net::MacAddr::from_id(asn);
  iface.kind = kind;
  iface.equipment_city = city("Amsterdam");
  return iface;
}

TEST(Ixp, AddAndQueryInterfaces) {
  Ixp ixp(0, "AMS-IX", "Amsterdam Internet Exchange", city("Amsterdam"), 5.48,
          lan());
  ixp.add_interface(make_iface(100, net::Ipv4Addr(198, 18, 0, 1)));
  ixp.add_interface(make_iface(100, net::Ipv4Addr(198, 18, 0, 2)));
  ixp.add_interface(make_iface(200, net::Ipv4Addr(198, 18, 0, 3)));
  EXPECT_EQ(ixp.interfaces().size(), 3u);
  EXPECT_EQ(ixp.member_count(), 2u);
  EXPECT_EQ(ixp.interfaces_of(net::Asn{100}).size(), 2u);
  EXPECT_TRUE(ixp.has_member(net::Asn{200}));
  EXPECT_FALSE(ixp.has_member(net::Asn{300}));
  ASSERT_NE(ixp.interface_at(net::Ipv4Addr(198, 18, 0, 3)), nullptr);
  EXPECT_EQ(ixp.interface_at(net::Ipv4Addr(198, 18, 0, 3))->asn, net::Asn{200});
  EXPECT_EQ(ixp.interface_at(net::Ipv4Addr(198, 18, 0, 99)), nullptr);
}

TEST(Ixp, RejectsAddressesOutsideLanAndDuplicates) {
  Ixp ixp(0, "X", "X", city("London"), 0.1, lan());
  EXPECT_THROW(ixp.add_interface(make_iface(1, net::Ipv4Addr(10, 0, 0, 1))),
               std::invalid_argument);
  ixp.add_interface(make_iface(1, net::Ipv4Addr(198, 18, 0, 1)));
  EXPECT_THROW(ixp.add_interface(make_iface(2, net::Ipv4Addr(198, 18, 0, 1))),
               std::invalid_argument);
}

TEST(MemberInterface, RemoteGroundTruth) {
  EXPECT_FALSE(make_iface(1, net::Ipv4Addr(198, 18, 0, 1),
                          AttachmentKind::kDirectColo)
                   .is_remote_ground_truth());
  EXPECT_FALSE(make_iface(1, net::Ipv4Addr(198, 18, 0, 1),
                          AttachmentKind::kIpTransport)
                   .is_remote_ground_truth());
  EXPECT_TRUE(make_iface(1, net::Ipv4Addr(198, 18, 0, 1),
                         AttachmentKind::kRemoteViaProvider)
                  .is_remote_ground_truth());
  EXPECT_TRUE(make_iface(1, net::Ipv4Addr(198, 18, 0, 1),
                         AttachmentKind::kPartnerIxp)
                  .is_remote_ground_truth());
}

TEST(LookingGlass, OperatorPingCounts) {
  const auto pch = LookingGlass::pch(net::Ipv4Addr(198, 18, 0, 250));
  const auto ripe = LookingGlass::ripe(net::Ipv4Addr(198, 18, 0, 251));
  EXPECT_EQ(pch.pings_per_query, 5);   // §3.1: PCH issues 5 pings per query.
  EXPECT_EQ(ripe.pings_per_query, 3);  // RIPE NCC issues 3.
  EXPECT_EQ(to_string(pch.op), "PCH");
  EXPECT_EQ(to_string(ripe.op), "RIPE NCC");
}

TEST(RemotePeeringProvider, NearestPopAndCircuitDelay) {
  RemotePeeringProvider provider;
  provider.name = "Test";
  provider.pops = {city("London"), city("Budapest")};
  provider.path_stretch = 1.5;
  // A Budapest customer reaching Amsterdam should enter at Budapest.
  EXPECT_EQ(provider.nearest_pop(city("Budapest")).name, "Budapest");
  EXPECT_EQ(provider.nearest_pop(city("Manchester")).name, "London");
  const auto delay =
      provider.circuit_delay(city("Budapest"), city("Amsterdam"));
  // Budapest-Amsterdam ~1,150 km * 1.5 stretch at 2/3 c: one-way ~8.6 ms.
  EXPECT_GT(delay.as_millis_f(), 5.0);
  EXPECT_LT(delay.as_millis_f(), 15.0);
}

TEST(RemotePeeringProvider, NoPopsThrows) {
  RemotePeeringProvider provider;
  provider.name = "Empty";
  EXPECT_THROW(provider.nearest_pop(city("London")), std::logic_error);
}

TEST(IxpEcosystem, AddFindAndMembershipQueries) {
  IxpEcosystem eco;
  const IxpId a = eco.add_ixp("AMS-IX", "Amsterdam", city("Amsterdam"), 5.0,
                              net::Ipv4Prefix::make(
                                  net::Ipv4Addr(198, 18, 0, 0), 24));
  const IxpId b = eco.add_ixp("LINX", "London", city("London"), 2.6,
                              net::Ipv4Prefix::make(
                                  net::Ipv4Addr(198, 18, 1, 0), 24));
  EXPECT_EQ(eco.ixps().size(), 2u);
  EXPECT_NE(eco.find("AMS-IX"), nullptr);
  EXPECT_EQ(eco.find("nope"), nullptr);
  EXPECT_THROW(eco.add_ixp("AMS-IX", "dup", city("Amsterdam"), 1.0,
                           net::Ipv4Prefix::make(
                               net::Ipv4Addr(198, 18, 2, 0), 24)),
               std::invalid_argument);

  eco.ixp(a).add_interface(make_iface(77, net::Ipv4Addr(198, 18, 0, 1)));
  eco.ixp(b).add_interface(make_iface(77, net::Ipv4Addr(198, 18, 1, 1)));
  eco.ixp(b).add_interface(make_iface(88, net::Ipv4Addr(198, 18, 1, 2)));
  EXPECT_EQ(eco.ixps_of(net::Asn{77}), (std::vector<IxpId>{a, b}));
  EXPECT_EQ(eco.ixps_of(net::Asn{88}), (std::vector<IxpId>{b}));
  EXPECT_TRUE(eco.ixps_of(net::Asn{99}).empty());
}

TEST(AttachmentKind, ToStringCoverage) {
  EXPECT_EQ(to_string(AttachmentKind::kDirectColo), "direct-colo");
  EXPECT_EQ(to_string(AttachmentKind::kIpTransport), "ip-transport");
  EXPECT_EQ(to_string(AttachmentKind::kRemoteViaProvider),
            "remote-via-provider");
  EXPECT_EQ(to_string(AttachmentKind::kPartnerIxp), "partner-ixp");
}

}  // namespace
}  // namespace rp::ixp

#include "ixp/seeds.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rp::ixp {
namespace {

TEST(Table1Seeds, HasExactly22Ixps) {
  EXPECT_EQ(table1_seeds().size(), 22u);
}

TEST(Table1Seeds, AllInMeasurementStudyWithLg) {
  for (const auto& seed : table1_seeds()) {
    EXPECT_TRUE(seed.in_measurement_study) << seed.acronym;
    EXPECT_TRUE(seed.has_pch_lg || seed.has_ripe_lg) << seed.acronym;
  }
}

TEST(Table1Seeds, MatchesPaperHeadlineRows) {
  const auto& seeds = table1_seeds();
  EXPECT_EQ(seeds[0].acronym, "AMS-IX");
  EXPECT_DOUBLE_EQ(seeds[0].peak_traffic_tbps, 5.48);
  EXPECT_EQ(seeds[0].member_count, 638);
  EXPECT_EQ(seeds[0].analyzed_interfaces, 665);
  EXPECT_EQ(seeds[1].acronym, "DE-CIX");
  EXPECT_EQ(seeds[2].acronym, "LINX");
  EXPECT_EQ(seeds.back().acronym, "TIE");
  EXPECT_EQ(seeds.back().analyzed_interfaces, 54);
}

TEST(Table1Seeds, AnalyzedInterfacesSumNearPaper) {
  // The paper reports 4,451 analyzed interfaces across the 22 IXPs.
  int total = 0;
  for (const auto& seed : table1_seeds()) total += seed.analyzed_interfaces;
  EXPECT_EQ(total, 4451);
}

TEST(Table1Seeds, RemoteFreeIxpsMatchPaper) {
  // §3.2: only DIX-IE and CABASE show no remote interfaces.
  for (const auto& seed : table1_seeds()) {
    if (seed.acronym == "DIX-IE" || seed.acronym == "CABASE") {
      EXPECT_DOUBLE_EQ(seed.remote_member_fraction, 0.0) << seed.acronym;
    } else {
      EXPECT_GT(seed.remote_member_fraction, 0.0) << seed.acronym;
    }
  }
}

TEST(Table1Seeds, DixIeHasUnknownPeakTraffic) {
  for (const auto& seed : table1_seeds())
    if (seed.acronym == "DIX-IE") {
      EXPECT_LT(seed.peak_traffic_tbps, 0.0);
    }
}

TEST(EuroixSeeds, Has65IxpsSupersetOfTable1) {
  const auto& euroix = euroix_seeds();
  EXPECT_EQ(euroix.size(), 65u);
  std::set<std::string> acronyms;
  for (const auto& seed : euroix) acronyms.insert(seed.acronym);
  EXPECT_EQ(acronyms.size(), 65u);  // Unique.
  for (const auto& seed : table1_seeds())
    EXPECT_TRUE(acronyms.contains(seed.acronym)) << seed.acronym;
}

TEST(EuroixSeeds, ContainsFig7OffloadSites) {
  std::set<std::string> acronyms;
  for (const auto& seed : euroix_seeds()) acronyms.insert(seed.acronym);
  // Fig. 7's top-10 includes these non-Table-1 exchanges.
  for (const char* name : {"Terremark", "SFINX", "CoreSite", "NL-ix"})
    EXPECT_TRUE(acronyms.contains(name)) << name;
  // The vantage's own memberships.
  EXPECT_TRUE(acronyms.contains("CATNIX"));
  EXPECT_TRUE(acronyms.contains("ESpanix"));
}

TEST(EuroixSeeds, CitiesResolveInRegistry) {
  const auto& cities = geo::CityRegistry::world();
  for (const auto& seed : euroix_seeds())
    EXPECT_TRUE(cities.find(seed.city).has_value())
        << seed.acronym << " @ " << seed.city;
}

TEST(ProviderSeeds, AtLeastTwoProvidersWithResolvableCities) {
  const auto& providers = provider_seeds();
  EXPECT_GE(providers.size(), 2u);
  const auto& cities = geo::CityRegistry::world();
  for (const auto& provider : providers) {
    EXPECT_FALSE(provider.pop_cities.empty()) << provider.name;
    EXPECT_GT(provider.path_stretch, 1.0) << provider.name;
    for (const auto& pop : provider.pop_cities)
      EXPECT_TRUE(cities.find(pop).has_value())
          << provider.name << " @ " << pop;
  }
}

}  // namespace
}  // namespace rp::ixp

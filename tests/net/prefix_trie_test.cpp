#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rp::net {
namespace {

Ipv4Prefix pfx(const char* s) {
  const auto p = Ipv4Prefix::parse(s);
  if (!p) throw std::invalid_argument(std::string("bad prefix ") + s);
  return *p;
}

Ipv4Addr addr(const char* s) {
  const auto a = Ipv4Addr::parse(s);
  if (!a) throw std::invalid_argument(std::string("bad addr ") + s);
  return *a;
}

TEST(PrefixTrie, InsertFindExact) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(pfx("10.1.0.0/16"), 2));
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(pfx("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find(pfx("10.2.0.0/16")), nullptr);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8"), 9));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 9);
}

TEST(PrefixTrie, LongestPrefixMatchPrefersSpecific) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.lookup(addr("10.1.2.3")), 24);
  EXPECT_EQ(*trie.lookup(addr("10.1.9.9")), 16);
  EXPECT_EQ(*trie.lookup(addr("10.9.9.9")), 8);
  EXPECT_EQ(trie.lookup(addr("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 0);
  trie.insert(pfx("192.168.0.0/16"), 1);
  EXPECT_EQ(*trie.lookup(addr("8.8.8.8")), 0);
  EXPECT_EQ(*trie.lookup(addr("192.168.1.1")), 1);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("1.2.3.4/32"), 7);
  EXPECT_EQ(*trie.lookup(addr("1.2.3.4")), 7);
  EXPECT_EQ(trie.lookup(addr("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, EraseRemovesOnlyExact) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_FALSE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(addr("10.1.2.3")), 8);
}

TEST(PrefixTrie, LookupMatchReportsPrefix) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.1.0.0/16"), 16);
  const auto match = trie.lookup_match(addr("10.1.2.3"));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->prefix.to_string(), "10.1.0.0/16");
  EXPECT_EQ(*match->value, 16);
  EXPECT_FALSE(trie.lookup_match(addr("11.0.0.1")));
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(pfx("128.0.0.0/1"), 1);
  trie.insert(pfx("0.0.0.0/8"), 2);
  trie.insert(pfx("10.0.0.0/8"), 3);
  std::vector<std::string> seen;
  trie.for_each([&seen](const Ipv4Prefix& p, const int&) {
    seen.push_back(p.to_string());
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "0.0.0.0/8");
  EXPECT_EQ(seen[1], "10.0.0.0/8");
  EXPECT_EQ(seen[2], "128.0.0.0/1");
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  // Property check: trie LPM equals brute-force longest covering prefix.
  util::Rng rng(17);
  PrefixTrie<std::size_t> trie;
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 300; ++i) {
    const auto length = static_cast<unsigned>(rng.uniform_int(4, 28));
    const Ipv4Addr base{static_cast<std::uint32_t>(rng())};
    const auto p = Ipv4Prefix::make(base, length);
    if (trie.insert(p, prefixes.size())) prefixes.push_back(p);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr probe{static_cast<std::uint32_t>(rng())};
    const Ipv4Prefix* best = nullptr;
    for (const auto& p : prefixes) {
      if (!p.contains(probe)) continue;
      if (best == nullptr || p.length() > best->length()) best = &p;
    }
    const auto match = trie.lookup_match(probe);
    if (best == nullptr) {
      EXPECT_FALSE(match.has_value());
    } else {
      ASSERT_TRUE(match.has_value());
      EXPECT_EQ(match->prefix, *best);
    }
  }
}

}  // namespace
}  // namespace rp::net

#include "net/mac.hpp"

#include <gtest/gtest.h>

namespace rp::net {
namespace {

TEST(MacAddr, FromIdIsLocalUnicast) {
  const MacAddr m = MacAddr::from_id(0x01020304);
  EXPECT_EQ(m.to_string(), "02:00:01:02:03:04");
  EXPECT_FALSE(m.is_broadcast());
  EXPECT_FALSE(m.is_multicast());
}

TEST(MacAddr, FromIdUniquePerId) {
  EXPECT_NE(MacAddr::from_id(1), MacAddr::from_id(2));
  EXPECT_EQ(MacAddr::from_id(7), MacAddr::from_id(7));
}

TEST(MacAddr, Broadcast) {
  const MacAddr b = MacAddr::broadcast();
  EXPECT_TRUE(b.is_broadcast());
  EXPECT_TRUE(b.is_multicast());  // Broadcast sets the group bit.
  EXPECT_EQ(b.to_string(), "ff:ff:ff:ff:ff:ff");
}

TEST(MacAddr, ParseValid) {
  const auto m = MacAddr::parse("aa:BB:0c:1d:2E:3f");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_string(), "aa:bb:0c:1d:2e:3f");
}

TEST(MacAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddr::parse(""));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee"));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee:ff:00"));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee:f"));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee:gg"));
}

TEST(MacAddr, ToU64RoundTrip) {
  const MacAddr m({0x02, 0x00, 0x00, 0x00, 0x01, 0x00});
  EXPECT_EQ(m.to_u64(), 0x020000000100ULL);
}

TEST(MacAddr, MulticastBit) {
  const MacAddr multicast({0x01, 0x00, 0x5e, 0x00, 0x00, 0x01});
  EXPECT_TRUE(multicast.is_multicast());
  EXPECT_FALSE(multicast.is_broadcast());
}

}  // namespace
}  // namespace rp::net

#include "net/subnet_allocator.hpp"

#include <gtest/gtest.h>

namespace rp::net {
namespace {

TEST(SubnetAllocator, SequentialDisjointChildren) {
  SubnetAllocator alloc(Ipv4Prefix::make(Ipv4Addr(10, 0, 0, 0), 16));
  const auto a = alloc.allocate(24);
  const auto b = alloc.allocate(24);
  EXPECT_EQ(a.to_string(), "10.0.0.0/24");
  EXPECT_EQ(b.to_string(), "10.0.1.0/24");
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(SubnetAllocator, AlignsMixedSizes) {
  SubnetAllocator alloc(Ipv4Prefix::make(Ipv4Addr(10, 0, 0, 0), 16));
  const auto small = alloc.allocate(26);  // 10.0.0.0/26
  const auto big = alloc.allocate(24);    // Must skip to the next /24 edge.
  EXPECT_EQ(small.to_string(), "10.0.0.0/26");
  EXPECT_EQ(big.to_string(), "10.0.1.0/24");
  EXPECT_FALSE(big.contains(small.network()));
}

TEST(SubnetAllocator, ExhaustionThrows) {
  SubnetAllocator alloc(Ipv4Prefix::make(Ipv4Addr(10, 0, 0, 0), 24));
  alloc.allocate(25);
  alloc.allocate(25);
  EXPECT_THROW(alloc.allocate(25), std::length_error);
}

TEST(SubnetAllocator, RejectsChildShorterThanPool) {
  SubnetAllocator alloc(Ipv4Prefix::make(Ipv4Addr(10, 0, 0, 0), 16));
  EXPECT_THROW(alloc.allocate(8), std::invalid_argument);
  EXPECT_THROW(alloc.allocate(33), std::invalid_argument);
}

TEST(SubnetAllocator, RemainingDecreases) {
  SubnetAllocator alloc(Ipv4Prefix::make(Ipv4Addr(10, 0, 0, 0), 24));
  EXPECT_EQ(alloc.remaining(), 256u);
  alloc.allocate(26);
  EXPECT_EQ(alloc.remaining(), 192u);
}

TEST(HostAllocator, SkipsNetworkAndBroadcast) {
  HostAllocator hosts(Ipv4Prefix::make(Ipv4Addr(192, 0, 2, 0), 29));
  // /29: 8 addresses, usable .1 - .6.
  EXPECT_EQ(hosts.remaining(), 6u);
  EXPECT_EQ(hosts.allocate(), Ipv4Addr(192, 0, 2, 1));
  for (int i = 0; i < 5; ++i) hosts.allocate();
  EXPECT_THROW(hosts.allocate(), std::length_error);
}

TEST(HostAllocator, Slash31UsesBothAddresses) {
  HostAllocator hosts(Ipv4Prefix::make(Ipv4Addr(192, 0, 2, 0), 31));
  EXPECT_EQ(hosts.remaining(), 2u);
  EXPECT_EQ(hosts.allocate(), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(hosts.allocate(), Ipv4Addr(192, 0, 2, 1));
  EXPECT_THROW(hosts.allocate(), std::length_error);
}

}  // namespace
}  // namespace rp::net

#include "net/ip.hpp"

#include <gtest/gtest.h>

namespace rp::net {
namespace {

TEST(Ipv4Addr, OctetConstructorAndToString) {
  const Ipv4Addr a(192, 0, 2, 1);
  EXPECT_EQ(a.to_string(), "192.0.2.1");
  EXPECT_EQ(a.to_u32(), 0xC0000201u);
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("10.1.255.0");
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, Ipv4Addr(10, 1, 255, 0));
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("01.2.3.4"));  // Leading zero.
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.-4"));
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv4Prefix, MakeCanonicalizesHostBits) {
  const auto p = Ipv4Prefix::make(Ipv4Addr(192, 0, 2, 77), 24);
  EXPECT_EQ(p.network(), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.length(), 24u);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
}

TEST(Ipv4Prefix, ParseRoundTrips) {
  const auto p = Ipv4Prefix::parse("10.32.0.0/11");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.32.0.0/11");
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("300.0.0.0/8"));
}

TEST(Ipv4Prefix, MaskAndSize) {
  const auto p24 = Ipv4Prefix::make(Ipv4Addr(1, 2, 3, 0), 24);
  EXPECT_EQ(p24.mask(), Ipv4Addr(255, 255, 255, 0));
  EXPECT_EQ(p24.size(), 256u);
  const auto p0 = Ipv4Prefix::make(Ipv4Addr(0, 0, 0, 0), 0);
  EXPECT_EQ(p0.mask(), Ipv4Addr(0, 0, 0, 0));
  EXPECT_EQ(p0.size(), 1ULL << 32);
  const auto p32 = Ipv4Prefix::make(Ipv4Addr(9, 9, 9, 9), 32);
  EXPECT_EQ(p32.size(), 1u);
}

TEST(Ipv4Prefix, Contains) {
  const auto p = Ipv4Prefix::make(Ipv4Addr(172, 16, 0, 0), 12);
  EXPECT_TRUE(p.contains(Ipv4Addr(172, 16, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Addr(172, 31, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr(172, 32, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(172, 15, 255, 255)));
}

TEST(Ipv4Prefix, Covers) {
  const auto p16 = Ipv4Prefix::make(Ipv4Addr(10, 1, 0, 0), 16);
  const auto p24 = Ipv4Prefix::make(Ipv4Addr(10, 1, 5, 0), 24);
  EXPECT_TRUE(p16.covers(p24));
  EXPECT_FALSE(p24.covers(p16));
  EXPECT_TRUE(p16.covers(p16));
  const auto other = Ipv4Prefix::make(Ipv4Addr(10, 2, 0, 0), 24);
  EXPECT_FALSE(p16.covers(other));
}

TEST(Ipv4Prefix, AddressAtBounds) {
  const auto p = Ipv4Prefix::make(Ipv4Addr(192, 0, 2, 0), 30);
  EXPECT_EQ(p.address_at(0), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.address_at(3), Ipv4Addr(192, 0, 2, 3));
  EXPECT_THROW(p.address_at(4), std::out_of_range);
}

TEST(Ipv4Prefix, MakeRejectsLongLength) {
  EXPECT_THROW(Ipv4Prefix::make(Ipv4Addr(1, 2, 3, 4), 33),
               std::invalid_argument);
}

TEST(Asn, BasicsAndFormatting) {
  const Asn a(64500);
  EXPECT_TRUE(a.is_valid());
  EXPECT_EQ(a.to_string(), "AS64500");
  EXPECT_FALSE(Asn{}.is_valid());
  EXPECT_LT(Asn(1), Asn(2));
}

TEST(Hashing, AddrPrefixAsnUsableInMaps) {
  std::hash<Ipv4Addr> ha;
  std::hash<Ipv4Prefix> hp;
  std::hash<Asn> hasn;
  EXPECT_EQ(ha(Ipv4Addr(1, 2, 3, 4)), ha(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_EQ(hp(Ipv4Prefix::make(Ipv4Addr(1, 0, 0, 0), 8)),
            hp(Ipv4Prefix::make(Ipv4Addr(1, 2, 3, 4), 8)));
  EXPECT_EQ(hasn(Asn(5)), hasn(Asn(5)));
  // Same network, different lengths must differ (they are distinct prefixes).
  EXPECT_NE(hp(Ipv4Prefix::make(Ipv4Addr(1, 0, 0, 0), 8)),
            hp(Ipv4Prefix::make(Ipv4Addr(1, 0, 0, 0), 9)));
}

}  // namespace
}  // namespace rp::net

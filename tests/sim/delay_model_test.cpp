#include "sim/delay_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rp::sim {
namespace {

TEST(QueueJitter, MedianNearConfigured) {
  QueueJitter jitter(util::SimDuration::micros(30), 0.5);
  util::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(
        jitter.sample(util::SimTime::origin(), rng).as_seconds_f());
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 30e-6, 3e-6);
  EXPECT_GT(samples.front(), 0.0);
}

TEST(CongestionEpisodes, OnlyActiveInsideWindows) {
  const auto start = util::SimTime::at(util::SimDuration::hours(1));
  const auto end = util::SimTime::at(util::SimDuration::hours(2));
  CongestionEpisodes model({{start, end, util::SimDuration::millis(5)}});
  util::Rng rng(2);
  EXPECT_EQ(model.sample(util::SimTime::origin(), rng).count_nanos(), 0);
  EXPECT_EQ(model.sample(end, rng).count_nanos(), 0);  // End exclusive.
  double total = 0.0;
  for (int i = 0; i < 5000; ++i)
    total += model.sample(start, rng).as_seconds_f();
  EXPECT_NEAR(total / 5000.0, 5e-3, 5e-4);
}

TEST(CongestionEpisodes, DailyBusyHoursRepeatEachDay) {
  auto model = CongestionEpisodes::daily_busy_hours(
      util::SimTime::origin(), util::SimDuration::days(3),
      util::SimDuration::hours(19), util::SimDuration::hours(2),
      util::SimDuration::millis(3));
  util::Rng rng(3);
  for (int day = 0; day < 3; ++day) {
    const auto busy = util::SimTime::at(util::SimDuration::hours(24 * day + 20));
    const auto quiet = util::SimTime::at(util::SimDuration::hours(24 * day + 3));
    EXPECT_GT(model->sample(busy, rng).count_nanos(), 0) << "day " << day;
    EXPECT_EQ(model->sample(quiet, rng).count_nanos(), 0) << "day " << day;
  }
}

TEST(PersistentCongestion, SweepsConfiguredRange) {
  PersistentCongestion model(util::SimDuration::millis(10),
                             util::SimDuration::millis(400));
  util::Rng rng(4);
  double total = 0.0;
  double min_seen = 1e9, max_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto d = model.sample(util::SimTime::origin(), rng);
    const double s = d.as_seconds_f();
    EXPECT_GE(s, 10e-3);
    EXPECT_LE(s, 400e-3);
    total += s;
    min_seen = std::min(min_seen, s);
    max_seen = std::max(max_seen, s);
  }
  EXPECT_NEAR(total / 20000.0, 205e-3, 5e-3);  // Uniform mean.
  // Broad dispersion is the point: the minimum must be a rare outlier.
  EXPECT_GT(max_seen - min_seen, 300e-3);
}

TEST(PersistentCongestion, MeanConvenienceConstructor) {
  // The mean/3 .. 3*mean sweep averages to 5/3 of the nominal mean.
  PersistentCongestion model(util::SimDuration::millis(9));
  util::Rng rng(6);
  double total = 0.0;
  for (int i = 0; i < 20000; ++i)
    total += model.sample(util::SimTime::origin(), rng).as_seconds_f();
  EXPECT_NEAR(total / 20000.0, 9e-3 * 5.0 / 3.0, 1e-3);
}

TEST(CompositeDelay, SumsParts) {
  std::vector<std::unique_ptr<DelayModel>> parts;
  parts.push_back(std::make_unique<PersistentCongestion>(
      util::SimDuration::millis(2), util::SimDuration::millis(2)));
  parts.push_back(std::make_unique<PersistentCongestion>(
      util::SimDuration::millis(3), util::SimDuration::millis(3)));
  CompositeDelay composite(std::move(parts));
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i)
    EXPECT_NEAR(composite.sample(util::SimTime::origin(), rng).as_seconds_f(),
                5e-3, 1e-9);
}

}  // namespace
}  // namespace rp::sim

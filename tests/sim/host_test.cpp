#include "sim/host.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "sim/l2_switch.hpp"

namespace rp::sim {
namespace {

const net::Ipv4Prefix kLan =
    net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24);

HostConfig host_config(const char* name, std::uint32_t id,
                       net::Ipv4Addr ip) {
  HostConfig config;
  config.name = name;
  config.mac = net::MacAddr::from_id(id);
  config.ip = ip;
  config.subnet = kLan;
  // Deterministic timing for assertions.
  config.processing_median = util::SimDuration::micros(100);
  config.processing_sigma = 0.0;
  return config;
}

struct Lan {
  Simulator sim;
  Network network{sim};
  L2Switch* sw;
  Host* pinger;   // Plays the LG role.
  Host* target;

  explicit Lan(HostConfig target_config,
               util::SimDuration target_link_delay =
                   util::SimDuration::micros(50)) {
    sw = &network.emplace_device<L2Switch>("fabric");
    pinger = &network.emplace_device<Host>(
        sim, host_config("lg", 1, net::Ipv4Addr(198, 18, 0, 1)),
        util::Rng(1));
    target = &network.emplace_device<Host>(sim, std::move(target_config),
                                           util::Rng(2));
    network.connect(*sw, *pinger, util::SimDuration::micros(10));
    network.connect(*sw, *target, target_link_delay);
  }

  std::optional<PingOutcome> ping_once(
      net::Ipv4Addr addr,
      util::SimDuration timeout = util::SimDuration::seconds(2)) {
    std::optional<PingOutcome> outcome;
    pinger->ping(addr, timeout, [&outcome](const PingOutcome& o) {
      outcome = o;
    });
    sim.run();
    return outcome;
  }
};

TEST(Host, PingResolvesArpAndEchoes) {
  Lan lan(host_config("t", 2, net::Ipv4Addr(198, 18, 0, 2)));
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(outcome);
  EXPECT_TRUE(outcome->replied);
  EXPECT_EQ(outcome->reply_ttl, 64);
  EXPECT_EQ(outcome->reply_src, net::Ipv4Addr(198, 18, 0, 2));
  // RTT = 2 * (10us + 50us link) + processing (100us) plus ARP is separate;
  // the echo RTT must exceed the pure propagation floor.
  EXPECT_GT(outcome->rtt, util::SimDuration::micros(120));
  EXPECT_LT(outcome->rtt, util::SimDuration::millis(2));
  EXPECT_EQ(lan.target->echo_requests_received(), 1u);
}

TEST(Host, RttScalesWithCircuitDelay) {
  // A "remote" member: 20 ms one-way circuit -> RTT slightly above 40 ms.
  Lan lan(host_config("remote", 2, net::Ipv4Addr(198, 18, 0, 2)),
          util::SimDuration::millis(20));
  // First ping pays the ARP round trip on top (roughly doubles the RTT) —
  // exactly why campaigns rely on minima over repeated probes.
  const auto cold = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(cold && cold->replied);
  EXPECT_GT(cold->rtt, util::SimDuration::millis(80));
  const auto warm = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(warm && warm->replied);
  EXPECT_GT(warm->rtt, util::SimDuration::millis(40));
  EXPECT_LT(warm->rtt, util::SimDuration::millis(41));
}

TEST(Host, UnresolvableAddressTimesOut) {
  Lan lan(host_config("t", 2, net::Ipv4Addr(198, 18, 0, 2)));
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 99),
                                     util::SimDuration::millis(500));
  ASSERT_TRUE(outcome);
  EXPECT_FALSE(outcome->replied);
  EXPECT_EQ(lan.sim.now().since_origin(), util::SimDuration::millis(500));
}

TEST(Host, BlackholedTargetTimesOut) {
  auto config = host_config("bh", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.blackhole_icmp = true;
  Lan lan(std::move(config));
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2),
                                     util::SimDuration::millis(300));
  ASSERT_TRUE(outcome);
  EXPECT_FALSE(outcome->replied);
  EXPECT_EQ(lan.target->echo_requests_received(), 1u);
}

TEST(Host, InitialTtl255Honored) {
  auto config = host_config("router", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.initial_ttl = 255;
  Lan lan(std::move(config));
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(outcome && outcome->replied);
  EXPECT_EQ(outcome->reply_ttl, 255);
}

TEST(Host, TtlSwitchTakesEffectAtScheduledTime) {
  auto config = host_config("os-change", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.initial_ttl = 64;
  config.ttl_changes.emplace_back(
      util::SimTime::at(util::SimDuration::seconds(10)), 255);
  Lan lan(std::move(config));
  EXPECT_EQ(lan.target->current_initial_ttl(util::SimTime::origin()), 64);
  EXPECT_EQ(lan.target->current_initial_ttl(
                util::SimTime::at(util::SimDuration::seconds(11))), 255);

  const auto before = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(before && before->replied);
  EXPECT_EQ(before->reply_ttl, 64);

  // Advance past the change and ping again.
  lan.sim.run_until(util::SimTime::at(util::SimDuration::seconds(20)));
  const auto after = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(after && after->replied);
  EXPECT_EQ(after->reply_ttl, 255);
}

TEST(Host, ProxiedReplyDecrementsTtlAndChangesSource) {
  auto config = host_config("proxy", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.reply_extra_hops = 2;
  config.reply_src_override = net::Ipv4Addr(198, 51, 100, 7);
  Lan lan(std::move(config));
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(outcome && outcome->replied);
  EXPECT_EQ(outcome->reply_ttl, 62);  // 64 - 2 hops.
  EXPECT_EQ(outcome->reply_src, net::Ipv4Addr(198, 51, 100, 7));
}

TEST(Host, ReplyLossDropsSomeEchoes) {
  auto config = host_config("lossy", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.reply_loss_probability = 0.5;
  Lan lan(std::move(config));
  int replies = 0;
  for (int i = 0; i < 200; ++i) {
    const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2),
                                       util::SimDuration::millis(100));
    if (outcome && outcome->replied) ++replies;
  }
  EXPECT_GT(replies, 60);
  EXPECT_LT(replies, 140);
}

TEST(Host, PerRequesterExtraDelayOnlyHitsThatRequester) {
  auto config = host_config("asym", 2, net::Ipv4Addr(198, 18, 0, 2));
  config.per_requester_extra = {net::Ipv4Addr(198, 18, 0, 1),
                                util::SimDuration::millis(20)};
  Lan lan(std::move(config));
  // Our pinger IS the afflicted requester: RTT inflated well above floor.
  const auto outcome = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(outcome && outcome->replied);
  EXPECT_GT(outcome->rtt, util::SimDuration::millis(1));
}

TEST(Host, SecondPingSkipsArp) {
  Lan lan(host_config("t", 2, net::Ipv4Addr(198, 18, 0, 2)));
  const auto first = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  const auto second = lan.ping_once(net::Ipv4Addr(198, 18, 0, 2));
  ASSERT_TRUE(first && second && first->replied && second->replied);
  // Without the ARP round trip the second RTT cannot exceed the first.
  EXPECT_LE(second->rtt, first->rtt);
}

TEST(Host, CannotBeWiredTwice) {
  Simulator sim;
  Network network{sim};
  auto& sw = network.emplace_device<L2Switch>("sw");
  auto& host = network.emplace_device<Host>(
      sim, host_config("h", 2, net::Ipv4Addr(198, 18, 0, 2)), util::Rng(3));
  network.connect(sw, host, util::SimDuration::micros(1));
  EXPECT_THROW(network.connect(sw, host, util::SimDuration::micros(1)),
               std::logic_error);
}

}  // namespace
}  // namespace rp::sim

// Stress tests for the two-tier event engine: the calendar wheel, the
// far-future heap, window re-basing, and stragglers must together execute
// in exactly (time, schedule-order) — bit-identical to one sorted queue —
// and every stored payload must be destroyed exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/sim_time.hpp"

namespace rp::sim {
namespace {

util::SimTime at_nanos(std::int64_t ns) {
  return util::SimTime::at(util::SimDuration::nanos(ns));
}

std::uint64_t next(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// An execution trace entry: when the event ran and which schedule() call
// created it. The engine's contract is that the trace is sorted by
// (time, schedule order).
using Trace = std::vector<std::pair<std::int64_t, std::uint64_t>>;

bool trace_ordered(const Trace& trace) {
  return std::is_sorted(trace.begin(), trace.end());
}

TEST(EventEngine, OrderMatchesSortedQueueAcrossBothTiers) {
  Simulator sim;
  Trace trace;
  std::uint64_t x = 0x243F6A8885A308D3ull;
  constexpr int kEvents = 20000;
  // A coarse 512 ns grid over ~20 ms: times land on both sides of the
  // ~4.2 ms wheel window, and collisions force plenty of same-time ties
  // whose resolution must be schedule order.
  std::vector<std::int64_t> at(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    at[i] = static_cast<std::int64_t>(next(x) % 40000) * 512;
    sim.schedule(at_nanos(at[i]),
                 [&trace, &sim, i] {
                   trace.emplace_back(sim.now().count_nanos(),
                                      static_cast<std::uint64_t>(i));
                 });
  }
  EXPECT_EQ(sim.pending(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(sim.run(), static_cast<std::size_t>(kEvents));

  Trace expected;
  for (int i = 0; i < kEvents; ++i)
    expected.emplace_back(at[i], static_cast<std::uint64_t>(i));
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(trace, expected);
  EXPECT_TRUE(sim.idle());
}

/// A self-fanning event: runs, logs itself, and schedules two children at
/// mixed fabric-scale (sub-millisecond) and control-scale (up to a second)
/// delays, driving the queue through many window re-bases.
struct Fanout {
  Simulator* sim;
  Trace* trace;
  std::uint64_t* arrivals;
  std::uint64_t my_arrival;
  std::uint64_t x;
  int depth;

  void operator()() {
    trace->emplace_back(sim->now().count_nanos(), my_arrival);
    if (depth == 0) return;
    for (int k = 0; k < 2; ++k) {
      Fanout child = *this;
      next(child.x);
      child.x += static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ull;
      child.my_arrival = (*arrivals)++;
      child.depth = depth - 1;
      // One child stays inside the wheel window, the other lands far out
      // on the heap (and later spills back in).
      const auto delay = (k == 0)
                             ? util::SimDuration::nanos(
                                   static_cast<std::int64_t>(child.x % 900'000))
                             : util::SimDuration::micros(static_cast<std::int64_t>(
                                   child.x % 1'000'000));
      sim->schedule_in(delay, std::move(child));
    }
  }
};
static_assert(Simulator::stored_inline<Fanout>());

TEST(EventEngine, DynamicFanoutStaysOrderedThroughWindowRebases) {
  Simulator sim;
  Trace trace;
  std::uint64_t arrivals = 0;
  constexpr int kDepth = 12;  // 2^13 - 1 events.
  Fanout root{&sim, &trace, &arrivals, arrivals++, 0x9E3779B97F4A7C15ull,
              kDepth};
  sim.schedule(at_nanos(0), std::move(root));

  const std::size_t executed = sim.run();
  EXPECT_EQ(executed, arrivals);
  EXPECT_EQ(trace.size(), arrivals);
  // Arrival order is exactly the engine's internal sequence order, so the
  // trace must be lexicographically sorted by (time, arrival).
  EXPECT_TRUE(trace_ordered(trace));
  EXPECT_EQ(sim.events_executed(), executed);
}

TEST(EventEngine, StragglerBehindRebasedWindowRunsFirst) {
  Simulator sim;
  Trace trace;
  const auto log = [&trace, &sim](std::uint64_t id) {
    return [&trace, &sim, id] {
      trace.emplace_back(sim.now().count_nanos(), id);
    };
  };
  // A lone far-future event; running up to an early deadline forces the
  // wheel to re-base its window at 10 s.
  const std::int64_t far = 10'000'000'000;
  sim.schedule(at_nanos(far), log(2));
  EXPECT_EQ(sim.run_until(at_nanos(1'000'000)), 0u);
  EXPECT_EQ(sim.now().count_nanos(), 1'000'000);

  // Now a straggler lands behind the re-based window (2 ms << 10 s) and an
  // in-window event just after the far one. The straggler must still run
  // first: the heap backstops anything the wheel can no longer hold.
  sim.schedule(at_nanos(2'000'000), log(1));
  sim.schedule(at_nanos(far + 1024), log(3));
  EXPECT_EQ(sim.run(), 3u);

  const Trace expected{{2'000'000, 1}, {far, 2}, {far + 1024, 3}};
  EXPECT_EQ(trace, expected);
}

TEST(EventEngine, CursorStepsBackForAnEarlierBucket) {
  Simulator sim;
  Trace trace;
  const auto log = [&trace, &sim](std::uint64_t id) {
    return [&trace, &sim, id] {
      trace.emplace_back(sim.now().count_nanos(), id);
    };
  };
  const std::int64_t base = 10'000'000'000;
  sim.schedule(at_nanos(base), log(1));
  sim.schedule(at_nanos(base + 2'000'000), log(3));
  // Executes event 1 and leaves the bucket cursor parked on event 3's
  // bucket (~2 ms into the re-based window).
  EXPECT_EQ(sim.run_until(at_nanos(base)), 1u);
  // A new event one bucket-width after `base` lands in a bucket *before*
  // the cursor; the cursor must step back for it.
  sim.schedule(at_nanos(base + 1'000'000), log(2));
  EXPECT_EQ(sim.run(), 2u);

  const Trace expected{{base, 1}, {base + 1'000'000, 2},
                       {base + 2'000'000, 3}};
  EXPECT_EQ(trace, expected);
}

TEST(EventEngine, RunUntilDeadlineSplitsTheSameBucket) {
  Simulator sim;
  Trace trace;
  // Two events 100 ns apart share a 1024 ns bucket; a deadline between
  // them must execute only the first, and the rest of the bucket survives
  // the pause (plus an insertion into the already-sorted active bucket).
  sim.schedule(at_nanos(2048), [&] {
    trace.emplace_back(sim.now().count_nanos(), 1);
  });
  sim.schedule(at_nanos(2148), [&] {
    trace.emplace_back(sim.now().count_nanos(), 3);
  });
  EXPECT_EQ(sim.run_until(at_nanos(2100)), 1u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.schedule(at_nanos(2120), [&] {
    trace.emplace_back(sim.now().count_nanos(), 2);
  });
  EXPECT_EQ(sim.run(), 2u);
  const Trace expected{{2048, 1}, {2120, 2}, {2148, 3}};
  EXPECT_EQ(trace, expected);
}

/// Payload with a live-instance census: every copy/move counts, so leaked
/// or double-destroyed records show up as a non-zero balance.
struct Counted {
  static int live;
  int* runs;
  std::array<std::byte, 16> pad{};
  explicit Counted(int* r) : runs(r) { ++live; }
  Counted(const Counted& o) : runs(o.runs) { ++live; }
  Counted(Counted&& o) noexcept : runs(o.runs) { ++live; }
  ~Counted() { --live; }
  void operator()() const { ++*runs; }
};
int Counted::live = 0;
static_assert(Simulator::stored_inline<Counted>());

/// Oversized payload (beyond the 56-byte inline slot): exercises the boxed
/// fallback, including destruction of unexecuted boxed leftovers.
struct BigCounted {
  static int live;
  int* runs;
  std::array<std::byte, 96> pad{};
  explicit BigCounted(int* r) : runs(r) { ++live; }
  BigCounted(const BigCounted& o) : runs(o.runs) { ++live; }
  BigCounted(BigCounted&& o) noexcept : runs(o.runs) { ++live; }
  ~BigCounted() { --live; }
  void operator()() const { ++*runs; }
};
int BigCounted::live = 0;
static_assert(!Simulator::stored_inline<BigCounted>());

TEST(EventEngine, LeftoverPayloadsDestroyedExactlyOnce) {
  Counted::live = 0;
  BigCounted::live = 0;
  int runs = 0;
  {
    Simulator sim;
    // Executed, wheel leftover, heap leftover — inline and boxed flavours.
    sim.schedule(at_nanos(10), Counted(&runs));
    sim.schedule(at_nanos(20), BigCounted(&runs));
    sim.schedule(at_nanos(1'000'000), Counted(&runs));
    sim.schedule(at_nanos(1'000'001), BigCounted(&runs));
    sim.schedule(at_nanos(8'000'000'000), Counted(&runs));
    sim.schedule(at_nanos(8'000'000'001), BigCounted(&runs));
    EXPECT_EQ(sim.run_until(at_nanos(100)), 2u);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(sim.pending(), 4u);
  }
  // Destroying the simulator tears down the four unexecuted payloads.
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(BigCounted::live, 0);
}

TEST(EventEngine, BoxedCallableRunsAndBalancesItsCensus) {
  BigCounted::live = 0;
  int runs = 0;
  {
    Simulator sim;
    sim.schedule(at_nanos(5), BigCounted(&runs));
    EXPECT_EQ(sim.run(), 1u);
  }
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(BigCounted::live, 0);
}

TEST(EventEngine, AccountingSpansMultipleRuns) {
  Simulator sim;
  for (int i = 0; i < 10; ++i)
    sim.schedule(at_nanos(1000 * (i + 1)), [] {});
  EXPECT_EQ(sim.queue_high_water(), 10u);
  EXPECT_EQ(sim.run_until(at_nanos(5000)), 5u);
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_EQ(sim.pending(), 5u);
  // The high-water mark is a lifetime maximum, not the current depth.
  for (int i = 0; i < 7; ++i)
    sim.schedule(at_nanos(20000 + 1000 * i), [] {});
  EXPECT_EQ(sim.queue_high_water(), 12u);
  EXPECT_EQ(sim.run(), 12u);
  EXPECT_EQ(sim.events_executed(), 17u);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace rp::sim

#include "sim/l2_switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"

namespace rp::sim {
namespace {

/// A test device that records every frame it receives.
class Sink : public Device {
 public:
  explicit Sink(std::string name) : Device(std::move(name)) {}

  void receive(std::size_t, const EthernetFrame& frame) override {
    received.push_back(frame);
  }
  std::size_t allocate_interface() override { return interfaces_++; }

  void send(const EthernetFrame& frame) { transmit(0, frame); }

  std::vector<EthernetFrame> received;

 private:
  std::size_t interfaces_ = 0;
};

EthernetFrame frame_between(net::MacAddr src, net::MacAddr dst) {
  EthernetFrame f;
  f.src = src;
  f.dst = dst;
  Ipv4Packet packet;
  packet.src = net::Ipv4Addr(10, 0, 0, 1);
  packet.dst = net::Ipv4Addr(10, 0, 0, 2);
  f.payload = packet;
  return f;
}

struct Fabric {
  Simulator sim;
  Network network{sim};
  L2Switch* sw;
  Sink* a;
  Sink* b;
  Sink* c;
  net::MacAddr mac_a = net::MacAddr::from_id(1);
  net::MacAddr mac_b = net::MacAddr::from_id(2);
  net::MacAddr mac_c = net::MacAddr::from_id(3);

  Fabric() {
    sw = &network.emplace_device<L2Switch>("sw");
    a = &network.emplace_device<Sink>("a");
    b = &network.emplace_device<Sink>("b");
    c = &network.emplace_device<Sink>("c");
    const auto delay = util::SimDuration::micros(10);
    network.connect(*sw, *a, delay);
    network.connect(*sw, *b, delay);
    network.connect(*sw, *c, delay);
  }
};

TEST(L2Switch, FloodsUnknownUnicast) {
  Fabric f;
  f.a->send(frame_between(f.mac_a, f.mac_b));
  f.sim.run();
  // mac_b unknown: the frame floods to both b and c, but not back to a.
  EXPECT_EQ(f.a->received.size(), 0u);
  EXPECT_EQ(f.b->received.size(), 1u);
  EXPECT_EQ(f.c->received.size(), 1u);
}

TEST(L2Switch, LearnsAndForwardsUnicast) {
  Fabric f;
  f.a->send(frame_between(f.mac_a, f.mac_b));  // Switch learns a's port.
  f.sim.run();
  f.b->send(frame_between(f.mac_b, f.mac_a));  // Learned: direct to a only.
  f.sim.run();
  EXPECT_EQ(f.a->received.size(), 1u);
  EXPECT_EQ(f.c->received.size(), 1u);  // Only the first flood.
  EXPECT_EQ(f.sw->mac_table_size(), 2u);
}

TEST(L2Switch, BroadcastGoesToAllOtherPorts) {
  Fabric f;
  f.a->send(frame_between(f.mac_a, net::MacAddr::broadcast()));
  f.sim.run();
  EXPECT_EQ(f.a->received.size(), 0u);
  EXPECT_EQ(f.b->received.size(), 1u);
  EXPECT_EQ(f.c->received.size(), 1u);
}

TEST(L2Switch, FiltersFrameToIngressPort) {
  Fabric f;
  // Teach the switch that mac_b lives on b's port.
  f.b->send(frame_between(f.mac_b, f.mac_a));
  f.sim.run();
  f.b->received.clear();
  f.a->received.clear();
  f.c->received.clear();
  // b sends a frame addressed to itself (bounced): filtered, delivered
  // nowhere.
  f.b->send(frame_between(f.mac_b, f.mac_b));
  f.sim.run();
  EXPECT_EQ(f.a->received.size(), 0u);
  EXPECT_EQ(f.b->received.size(), 0u);
  EXPECT_EQ(f.c->received.size(), 0u);
}

TEST(L2Switch, CountsForwardAndFlood) {
  Fabric f;
  f.a->send(frame_between(f.mac_a, f.mac_b));
  f.sim.run();
  EXPECT_EQ(f.sw->frames_flooded(), 1u);
  f.b->send(frame_between(f.mac_b, f.mac_a));
  f.sim.run();
  EXPECT_EQ(f.sw->frames_forwarded(), 1u);
}

TEST(Link, DeliversAfterConfiguredDelay) {
  Simulator sim;
  Network network{sim};
  auto& a = network.emplace_device<Sink>("a");
  auto& b = network.emplace_device<Sink>("b");
  network.connect(a, b, util::SimDuration::millis(7));
  a.send(frame_between(net::MacAddr::from_id(1), net::MacAddr::from_id(2)));
  util::SimTime delivered;
  sim.run();
  EXPECT_EQ(sim.now().since_origin(), util::SimDuration::millis(7));
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Link, LossDropsFrames) {
  Simulator sim;
  Network network{sim};
  auto& a = network.emplace_device<Sink>("a");
  auto& b = network.emplace_device<Sink>("b");
  Link& link = network.connect(a, b, util::SimDuration::micros(1), nullptr,
                               /*loss_probability=*/1.0);
  for (int i = 0; i < 10; ++i)
    a.send(frame_between(net::MacAddr::from_id(1), net::MacAddr::from_id(2)));
  sim.run();
  EXPECT_EQ(b.received.size(), 0u);
  EXPECT_EQ(link.frames_dropped(), 10u);
  EXPECT_EQ(link.frames_delivered(), 0u);
}

TEST(Frame, ToStringIsInformative) {
  auto f = frame_between(net::MacAddr::from_id(1), net::MacAddr::from_id(2));
  const std::string s = f.to_string();
  EXPECT_NE(s.find("IPv4"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(s.find("echo-request"), std::string::npos);

  EthernetFrame arp;
  arp.src = net::MacAddr::from_id(1);
  arp.dst = net::MacAddr::broadcast();
  arp.payload = ArpMessage{ArpMessage::Op::kRequest, net::MacAddr::from_id(1),
                           net::Ipv4Addr(10, 0, 0, 1), net::MacAddr{},
                           net::Ipv4Addr(10, 0, 0, 2)};
  EXPECT_NE(arp.to_string().find("who-has 10.0.0.2"), std::string::npos);
}

}  // namespace
}  // namespace rp::sim

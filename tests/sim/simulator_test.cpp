#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rp::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(util::SimTime::at(util::SimDuration::millis(30)),
               [&order] { order.push_back(3); });
  sim.schedule(util::SimTime::at(util::SimDuration::millis(10)),
               [&order] { order.push_back(1); });
  sim.schedule(util::SimTime::at(util::SimDuration::millis(20)),
               [&order] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = util::SimTime::at(util::SimDuration::seconds(1));
  for (int i = 0; i < 5; ++i)
    sim.schedule(t, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  util::SimTime seen;
  sim.schedule_in(util::SimDuration::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.since_origin(), util::SimDuration::millis(5));
  EXPECT_EQ(sim.now().since_origin(), util::SimDuration::millis(5));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_in(util::SimDuration::millis(1), chain);
  };
  sim.schedule_in(util::SimDuration::millis(1), chain);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_EQ(sim.now().since_origin(), util::SimDuration::millis(10));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(util::SimDuration::millis(1), [&] { ++fired; });
  sim.schedule_in(util::SimDuration::millis(100), [&] { ++fired; });
  const auto deadline = util::SimTime::at(util::SimDuration::millis(50));
  EXPECT_EQ(sim.run_until(deadline), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), deadline);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_in(util::SimDuration::seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(util::SimTime::origin(), [] {}),
               std::invalid_argument);
}

TEST(Simulator, IdleReflectsQueueState) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_in(util::SimDuration::millis(1), [] {});
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace rp::sim

# Empty dependencies file for perf_bgp.
# This may be replaced when dependencies are built.

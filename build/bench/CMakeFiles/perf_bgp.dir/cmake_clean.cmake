file(REMOVE_RECURSE
  "CMakeFiles/perf_bgp.dir/perf_bgp.cpp.o"
  "CMakeFiles/perf_bgp.dir/perf_bgp.cpp.o.d"
  "perf_bgp"
  "perf_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

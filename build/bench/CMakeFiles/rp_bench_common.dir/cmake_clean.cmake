file(REMOVE_RECURSE
  "CMakeFiles/rp_bench_common.dir/common.cpp.o"
  "CMakeFiles/rp_bench_common.dir/common.cpp.o.d"
  "librp_bench_common.a"
  "librp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_bench_common.a"
)

# Empty compiler generated dependencies file for rp_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/eq_viability.dir/eq_viability.cpp.o"
  "CMakeFiles/eq_viability.dir/eq_viability.cpp.o.d"
  "eq_viability"
  "eq_viability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq_viability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for eq_viability.
# This may be replaced when dependencies are built.

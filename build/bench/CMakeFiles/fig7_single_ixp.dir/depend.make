# Empty dependencies file for fig7_single_ixp.
# This may be replaced when dependencies are built.

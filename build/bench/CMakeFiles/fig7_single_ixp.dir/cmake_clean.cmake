file(REMOVE_RECURSE
  "CMakeFiles/fig7_single_ixp.dir/fig7_single_ixp.cpp.o"
  "CMakeFiles/fig7_single_ixp.dir/fig7_single_ixp.cpp.o.d"
  "fig7_single_ixp"
  "fig7_single_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

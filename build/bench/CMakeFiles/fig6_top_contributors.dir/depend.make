# Empty dependencies file for fig6_top_contributors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_top_contributors.dir/fig6_top_contributors.cpp.o"
  "CMakeFiles/fig6_top_contributors.dir/fig6_top_contributors.cpp.o.d"
  "fig6_top_contributors"
  "fig6_top_contributors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_top_contributors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3_interface_classes.dir/fig3_interface_classes.cpp.o"
  "CMakeFiles/fig3_interface_classes.dir/fig3_interface_classes.cpp.o.d"
  "fig3_interface_classes"
  "fig3_interface_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_interface_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

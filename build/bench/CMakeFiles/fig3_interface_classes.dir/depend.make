# Empty dependencies file for fig3_interface_classes.
# This may be replaced when dependencies are built.

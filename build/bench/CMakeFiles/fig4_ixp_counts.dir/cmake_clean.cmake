file(REMOVE_RECURSE
  "CMakeFiles/fig4_ixp_counts.dir/fig4_ixp_counts.cpp.o"
  "CMakeFiles/fig4_ixp_counts.dir/fig4_ixp_counts.cpp.o.d"
  "fig4_ixp_counts"
  "fig4_ixp_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ixp_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

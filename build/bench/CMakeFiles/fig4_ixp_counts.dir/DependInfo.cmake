
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_ixp_counts.cpp" "bench/CMakeFiles/fig4_ixp_counts.dir/fig4_ixp_counts.cpp.o" "gcc" "bench/CMakeFiles/fig4_ixp_counts.dir/fig4_ixp_counts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/rp_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/rp_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/layer2/CMakeFiles/rp_layer2.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/rp_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/rp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/rp_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig4_ixp_counts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_traffic.dir/fig5_traffic.cpp.o"
  "CMakeFiles/fig5_traffic.dir/fig5_traffic.cpp.o.d"
  "fig5_traffic"
  "fig5_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

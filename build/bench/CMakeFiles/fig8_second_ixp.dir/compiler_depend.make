# Empty compiler generated dependencies file for fig8_second_ixp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_second_ixp.dir/fig8_second_ixp.cpp.o"
  "CMakeFiles/fig8_second_ixp.dir/fig8_second_ixp.cpp.o.d"
  "fig8_second_ixp"
  "fig8_second_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_second_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_ixp_properties.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_ixp_properties.dir/table1_ixp_properties.cpp.o"
  "CMakeFiles/table1_ixp_properties.dir/table1_ixp_properties.cpp.o.d"
  "table1_ixp_properties"
  "table1_ixp_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ixp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

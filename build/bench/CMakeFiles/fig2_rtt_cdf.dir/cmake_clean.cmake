file(REMOVE_RECURSE
  "CMakeFiles/fig2_rtt_cdf.dir/fig2_rtt_cdf.cpp.o"
  "CMakeFiles/fig2_rtt_cdf.dir/fig2_rtt_cdf.cpp.o.d"
  "fig2_rtt_cdf"
  "fig2_rtt_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rtt_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_rtt_cdf.
# This may be replaced when dependencies are built.

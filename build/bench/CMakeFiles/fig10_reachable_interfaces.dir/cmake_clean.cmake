file(REMOVE_RECURSE
  "CMakeFiles/fig10_reachable_interfaces.dir/fig10_reachable_interfaces.cpp.o"
  "CMakeFiles/fig10_reachable_interfaces.dir/fig10_reachable_interfaces.cpp.o.d"
  "fig10_reachable_interfaces"
  "fig10_reachable_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reachable_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

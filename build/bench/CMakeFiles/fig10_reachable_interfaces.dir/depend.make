# Empty dependencies file for fig10_reachable_interfaces.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/perf_net.dir/perf_net.cpp.o"
  "CMakeFiles/perf_net.dir/perf_net.cpp.o.d"
  "perf_net"
  "perf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

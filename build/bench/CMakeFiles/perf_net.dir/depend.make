# Empty dependencies file for perf_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/validation_ground_truth.dir/validation_ground_truth.cpp.o"
  "CMakeFiles/validation_ground_truth.dir/validation_ground_truth.cpp.o.d"
  "validation_ground_truth"
  "validation_ground_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_ground_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

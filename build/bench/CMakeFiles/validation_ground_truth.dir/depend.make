# Empty dependencies file for validation_ground_truth.
# This may be replaced when dependencies are built.

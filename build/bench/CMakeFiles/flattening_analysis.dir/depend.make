# Empty dependencies file for flattening_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flattening_analysis.dir/flattening_analysis.cpp.o"
  "CMakeFiles/flattening_analysis.dir/flattening_analysis.cpp.o.d"
  "flattening_analysis"
  "flattening_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flattening_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig9_remaining_transit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_remaining_transit.dir/fig9_remaining_transit.cpp.o"
  "CMakeFiles/fig9_remaining_transit.dir/fig9_remaining_transit.cpp.o.d"
  "fig9_remaining_transit"
  "fig9_remaining_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_remaining_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/perf_topology.dir/perf_topology.cpp.o"
  "CMakeFiles/perf_topology.dir/perf_topology.cpp.o.d"
  "perf_topology"
  "perf_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/economic_planner.dir/economic_planner.cpp.o"
  "CMakeFiles/economic_planner.dir/economic_planner.cpp.o.d"
  "economic_planner"
  "economic_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economic_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for economic_planner.
# This may be replaced when dependencies are built.

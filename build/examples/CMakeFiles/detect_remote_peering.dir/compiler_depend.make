# Empty compiler generated dependencies file for detect_remote_peering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/detect_remote_peering.dir/detect_remote_peering.cpp.o"
  "CMakeFiles/detect_remote_peering.dir/detect_remote_peering.cpp.o.d"
  "detect_remote_peering"
  "detect_remote_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_remote_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

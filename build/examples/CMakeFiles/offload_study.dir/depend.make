# Empty dependencies file for offload_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librp_offload.a"
)

# Empty dependencies file for rp_offload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_offload.dir/analyzer.cpp.o"
  "CMakeFiles/rp_offload.dir/analyzer.cpp.o.d"
  "CMakeFiles/rp_offload.dir/peer_groups.cpp.o"
  "CMakeFiles/rp_offload.dir/peer_groups.cpp.o.d"
  "librp_offload.a"
  "librp_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

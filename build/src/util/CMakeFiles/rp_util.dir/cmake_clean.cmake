file(REMOVE_RECURSE
  "CMakeFiles/rp_util.dir/fit.cpp.o"
  "CMakeFiles/rp_util.dir/fit.cpp.o.d"
  "CMakeFiles/rp_util.dir/rng.cpp.o"
  "CMakeFiles/rp_util.dir/rng.cpp.o.d"
  "CMakeFiles/rp_util.dir/sim_time.cpp.o"
  "CMakeFiles/rp_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/rp_util.dir/stats.cpp.o"
  "CMakeFiles/rp_util.dir/stats.cpp.o.d"
  "CMakeFiles/rp_util.dir/strings.cpp.o"
  "CMakeFiles/rp_util.dir/strings.cpp.o.d"
  "CMakeFiles/rp_util.dir/table.cpp.o"
  "CMakeFiles/rp_util.dir/table.cpp.o.d"
  "librp_util.a"
  "librp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

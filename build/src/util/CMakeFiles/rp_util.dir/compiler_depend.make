# Empty compiler generated dependencies file for rp_util.
# This may be replaced when dependencies are built.

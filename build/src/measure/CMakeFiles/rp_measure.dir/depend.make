# Empty dependencies file for rp_measure.
# This may be replaced when dependencies are built.

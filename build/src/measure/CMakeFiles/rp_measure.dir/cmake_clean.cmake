file(REMOVE_RECURSE
  "CMakeFiles/rp_measure.dir/campaign.cpp.o"
  "CMakeFiles/rp_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/rp_measure.dir/classifier.cpp.o"
  "CMakeFiles/rp_measure.dir/classifier.cpp.o.d"
  "CMakeFiles/rp_measure.dir/dataset_io.cpp.o"
  "CMakeFiles/rp_measure.dir/dataset_io.cpp.o.d"
  "CMakeFiles/rp_measure.dir/faults.cpp.o"
  "CMakeFiles/rp_measure.dir/faults.cpp.o.d"
  "CMakeFiles/rp_measure.dir/filters.cpp.o"
  "CMakeFiles/rp_measure.dir/filters.cpp.o.d"
  "CMakeFiles/rp_measure.dir/report.cpp.o"
  "CMakeFiles/rp_measure.dir/report.cpp.o.d"
  "CMakeFiles/rp_measure.dir/testbed.cpp.o"
  "CMakeFiles/rp_measure.dir/testbed.cpp.o.d"
  "librp_measure.a"
  "librp_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

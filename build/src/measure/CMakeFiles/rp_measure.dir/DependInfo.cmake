
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/campaign.cpp" "src/measure/CMakeFiles/rp_measure.dir/campaign.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/campaign.cpp.o.d"
  "/root/repo/src/measure/classifier.cpp" "src/measure/CMakeFiles/rp_measure.dir/classifier.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/classifier.cpp.o.d"
  "/root/repo/src/measure/dataset_io.cpp" "src/measure/CMakeFiles/rp_measure.dir/dataset_io.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/dataset_io.cpp.o.d"
  "/root/repo/src/measure/faults.cpp" "src/measure/CMakeFiles/rp_measure.dir/faults.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/faults.cpp.o.d"
  "/root/repo/src/measure/filters.cpp" "src/measure/CMakeFiles/rp_measure.dir/filters.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/filters.cpp.o.d"
  "/root/repo/src/measure/report.cpp" "src/measure/CMakeFiles/rp_measure.dir/report.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/report.cpp.o.d"
  "/root/repo/src/measure/testbed.cpp" "src/measure/CMakeFiles/rp_measure.dir/testbed.cpp.o" "gcc" "src/measure/CMakeFiles/rp_measure.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ixp/CMakeFiles/rp_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

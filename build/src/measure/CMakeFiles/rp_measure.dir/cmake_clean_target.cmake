file(REMOVE_RECURSE
  "librp_measure.a"
)

# Empty dependencies file for rp_geo.
# This may be replaced when dependencies are built.

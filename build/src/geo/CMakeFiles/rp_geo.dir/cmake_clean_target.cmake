file(REMOVE_RECURSE
  "librp_geo.a"
)

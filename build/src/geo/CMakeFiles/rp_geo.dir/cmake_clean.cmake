file(REMOVE_RECURSE
  "CMakeFiles/rp_geo.dir/cities.cpp.o"
  "CMakeFiles/rp_geo.dir/cities.cpp.o.d"
  "CMakeFiles/rp_geo.dir/geo.cpp.o"
  "CMakeFiles/rp_geo.dir/geo.cpp.o.d"
  "librp_geo.a"
  "librp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

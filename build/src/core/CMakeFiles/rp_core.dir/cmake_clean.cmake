file(REMOVE_RECURSE
  "CMakeFiles/rp_core.dir/offload_study.cpp.o"
  "CMakeFiles/rp_core.dir/offload_study.cpp.o.d"
  "CMakeFiles/rp_core.dir/scenario.cpp.o"
  "CMakeFiles/rp_core.dir/scenario.cpp.o.d"
  "CMakeFiles/rp_core.dir/spread_study.cpp.o"
  "CMakeFiles/rp_core.dir/spread_study.cpp.o.d"
  "CMakeFiles/rp_core.dir/viability_study.cpp.o"
  "CMakeFiles/rp_core.dir/viability_study.cpp.o.d"
  "librp_core.a"
  "librp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rp_topology.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librp_topology.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rp_topology.dir/as_graph.cpp.o"
  "CMakeFiles/rp_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/rp_topology.dir/generator.cpp.o"
  "CMakeFiles/rp_topology.dir/generator.cpp.o.d"
  "librp_topology.a"
  "librp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

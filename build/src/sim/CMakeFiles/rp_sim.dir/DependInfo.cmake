
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_model.cpp" "src/sim/CMakeFiles/rp_sim.dir/delay_model.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/delay_model.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/rp_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/l2_switch.cpp" "src/sim/CMakeFiles/rp_sim.dir/l2_switch.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/l2_switch.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/rp_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/sim/CMakeFiles/rp_sim.dir/packet.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/packet.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/rp_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/rp_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

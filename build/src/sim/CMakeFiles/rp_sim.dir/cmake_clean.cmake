file(REMOVE_RECURSE
  "CMakeFiles/rp_sim.dir/delay_model.cpp.o"
  "CMakeFiles/rp_sim.dir/delay_model.cpp.o.d"
  "CMakeFiles/rp_sim.dir/host.cpp.o"
  "CMakeFiles/rp_sim.dir/host.cpp.o.d"
  "CMakeFiles/rp_sim.dir/l2_switch.cpp.o"
  "CMakeFiles/rp_sim.dir/l2_switch.cpp.o.d"
  "CMakeFiles/rp_sim.dir/link.cpp.o"
  "CMakeFiles/rp_sim.dir/link.cpp.o.d"
  "CMakeFiles/rp_sim.dir/packet.cpp.o"
  "CMakeFiles/rp_sim.dir/packet.cpp.o.d"
  "CMakeFiles/rp_sim.dir/simulator.cpp.o"
  "CMakeFiles/rp_sim.dir/simulator.cpp.o.d"
  "librp_sim.a"
  "librp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_econ.a"
)

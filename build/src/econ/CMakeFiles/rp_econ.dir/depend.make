# Empty dependencies file for rp_econ.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_econ.dir/cost_model.cpp.o"
  "CMakeFiles/rp_econ.dir/cost_model.cpp.o.d"
  "librp_econ.a"
  "librp_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

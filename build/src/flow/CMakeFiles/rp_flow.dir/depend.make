# Empty dependencies file for rp_flow.
# This may be replaced when dependencies are built.

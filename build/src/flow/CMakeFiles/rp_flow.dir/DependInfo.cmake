
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/netflow.cpp" "src/flow/CMakeFiles/rp_flow.dir/netflow.cpp.o" "gcc" "src/flow/CMakeFiles/rp_flow.dir/netflow.cpp.o.d"
  "/root/repo/src/flow/rate_model.cpp" "src/flow/CMakeFiles/rp_flow.dir/rate_model.cpp.o" "gcc" "src/flow/CMakeFiles/rp_flow.dir/rate_model.cpp.o.d"
  "/root/repo/src/flow/traffic_matrix.cpp" "src/flow/CMakeFiles/rp_flow.dir/traffic_matrix.cpp.o" "gcc" "src/flow/CMakeFiles/rp_flow.dir/traffic_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/rp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

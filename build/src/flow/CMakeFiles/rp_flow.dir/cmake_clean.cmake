file(REMOVE_RECURSE
  "CMakeFiles/rp_flow.dir/netflow.cpp.o"
  "CMakeFiles/rp_flow.dir/netflow.cpp.o.d"
  "CMakeFiles/rp_flow.dir/rate_model.cpp.o"
  "CMakeFiles/rp_flow.dir/rate_model.cpp.o.d"
  "CMakeFiles/rp_flow.dir/traffic_matrix.cpp.o"
  "CMakeFiles/rp_flow.dir/traffic_matrix.cpp.o.d"
  "librp_flow.a"
  "librp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

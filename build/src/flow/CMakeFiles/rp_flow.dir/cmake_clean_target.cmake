file(REMOVE_RECURSE
  "librp_flow.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rp_bgp.dir/rib.cpp.o"
  "CMakeFiles/rp_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/rp_bgp.dir/route_computer.cpp.o"
  "CMakeFiles/rp_bgp.dir/route_computer.cpp.o.d"
  "librp_bgp.a"
  "librp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rp_bgp.
# This may be replaced when dependencies are built.

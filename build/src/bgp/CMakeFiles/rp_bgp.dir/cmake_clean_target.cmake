file(REMOVE_RECURSE
  "librp_bgp.a"
)

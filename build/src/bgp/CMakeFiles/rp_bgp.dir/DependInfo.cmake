
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/rp_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/rp_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/route_computer.cpp" "src/bgp/CMakeFiles/rp_bgp.dir/route_computer.cpp.o" "gcc" "src/bgp/CMakeFiles/rp_bgp.dir/route_computer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

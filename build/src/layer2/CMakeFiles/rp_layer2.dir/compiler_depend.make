# Empty compiler generated dependencies file for rp_layer2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librp_layer2.a"
)

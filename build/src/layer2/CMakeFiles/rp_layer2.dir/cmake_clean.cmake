file(REMOVE_RECURSE
  "CMakeFiles/rp_layer2.dir/entity_path.cpp.o"
  "CMakeFiles/rp_layer2.dir/entity_path.cpp.o.d"
  "CMakeFiles/rp_layer2.dir/risk.cpp.o"
  "CMakeFiles/rp_layer2.dir/risk.cpp.o.d"
  "librp_layer2.a"
  "librp_layer2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_layer2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

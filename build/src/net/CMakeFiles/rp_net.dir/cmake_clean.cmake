file(REMOVE_RECURSE
  "CMakeFiles/rp_net.dir/ip.cpp.o"
  "CMakeFiles/rp_net.dir/ip.cpp.o.d"
  "CMakeFiles/rp_net.dir/mac.cpp.o"
  "CMakeFiles/rp_net.dir/mac.cpp.o.d"
  "CMakeFiles/rp_net.dir/subnet_allocator.cpp.o"
  "CMakeFiles/rp_net.dir/subnet_allocator.cpp.o.d"
  "librp_net.a"
  "librp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

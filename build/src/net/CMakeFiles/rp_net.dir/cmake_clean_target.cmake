file(REMOVE_RECURSE
  "librp_net.a"
)

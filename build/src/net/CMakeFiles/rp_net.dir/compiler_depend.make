# Empty compiler generated dependencies file for rp_net.
# This may be replaced when dependencies are built.

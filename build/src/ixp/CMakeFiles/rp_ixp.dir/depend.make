# Empty dependencies file for rp_ixp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_ixp.dir/ixp.cpp.o"
  "CMakeFiles/rp_ixp.dir/ixp.cpp.o.d"
  "CMakeFiles/rp_ixp.dir/seeds.cpp.o"
  "CMakeFiles/rp_ixp.dir/seeds.cpp.o.d"
  "librp_ixp.a"
  "librp_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

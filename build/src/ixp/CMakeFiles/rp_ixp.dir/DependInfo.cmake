
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ixp/ixp.cpp" "src/ixp/CMakeFiles/rp_ixp.dir/ixp.cpp.o" "gcc" "src/ixp/CMakeFiles/rp_ixp.dir/ixp.cpp.o.d"
  "/root/repo/src/ixp/seeds.cpp" "src/ixp/CMakeFiles/rp_ixp.dir/seeds.cpp.o" "gcc" "src/ixp/CMakeFiles/rp_ixp.dir/seeds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

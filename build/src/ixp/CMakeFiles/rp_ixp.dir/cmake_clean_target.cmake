file(REMOVE_RECURSE
  "librp_ixp.a"
)

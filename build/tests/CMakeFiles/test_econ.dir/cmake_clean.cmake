file(REMOVE_RECURSE
  "CMakeFiles/test_econ.dir/econ/cost_model_test.cpp.o"
  "CMakeFiles/test_econ.dir/econ/cost_model_test.cpp.o.d"
  "CMakeFiles/test_econ.dir/econ/econ_property_test.cpp.o"
  "CMakeFiles/test_econ.dir/econ/econ_property_test.cpp.o.d"
  "test_econ"
  "test_econ.pdb"
  "test_econ[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ixp.dir/ixp/ixp_test.cpp.o"
  "CMakeFiles/test_ixp.dir/ixp/ixp_test.cpp.o.d"
  "CMakeFiles/test_ixp.dir/ixp/seeds_test.cpp.o"
  "CMakeFiles/test_ixp.dir/ixp/seeds_test.cpp.o.d"
  "test_ixp"
  "test_ixp.pdb"
  "test_ixp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_ixp.
# This may be replaced when dependencies are built.

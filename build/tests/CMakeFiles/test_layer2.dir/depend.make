# Empty dependencies file for test_layer2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_layer2.dir/layer2/entity_path_test.cpp.o"
  "CMakeFiles/test_layer2.dir/layer2/entity_path_test.cpp.o.d"
  "CMakeFiles/test_layer2.dir/layer2/flattening_integration_test.cpp.o"
  "CMakeFiles/test_layer2.dir/layer2/flattening_integration_test.cpp.o.d"
  "CMakeFiles/test_layer2.dir/layer2/risk_test.cpp.o"
  "CMakeFiles/test_layer2.dir/layer2/risk_test.cpp.o.d"
  "test_layer2"
  "test_layer2.pdb"
  "test_layer2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bitset_test.cpp" "tests/CMakeFiles/test_util.dir/util/bitset_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/bitset_test.cpp.o.d"
  "/root/repo/tests/util/fit_test.cpp" "tests/CMakeFiles/test_util.dir/util/fit_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/fit_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/sim_time_test.cpp" "tests/CMakeFiles/test_util.dir/util/sim_time_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/sim_time_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/layer2/CMakeFiles/rp_layer2.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/rp_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/rp_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/rp_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/rp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/rp_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

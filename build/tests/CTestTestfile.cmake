# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_ixp[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_econ[1]_include.cmake")
include("/root/repo/build/tests/test_layer2[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")

// Bin sources: the arrival-order feed of the streaming ingest.
//
// The batch path of §4 materializes a whole month of 5-minute bins before
// any analysis runs. A BinSource instead replays bins one at a time, in
// arrival order, from either of two backends:
//
//   RateModelBinSource   computes each bin on demand from the deterministic
//                        flow::RateModel — the "live collector" stand-in.
//                        Per-network rates are identical (bit for bit) to
//                        what RateModel::aggregate_series folds into the
//                        batch series, so a stream consumer can match the
//                        batch outputs exactly.
//   BinLogSource         replays an RPSNAP-serialized bin log written by
//                        write_bin_log — the "recorded NetFlow" stand-in.
//                        Frames round-trip through the exact f64 codec, so
//                        a replay is byte-identical to the live feed it
//                        recorded. Each frame read passes the `stream.bin`
//                        fault site, which CI uses to kill an ingest
//                        mid-stream and prove checkpoint resume.
//
// A frame is columnar: schema position i of BinSchema::networks owns
// in_bps[i] / out_bps[i]. Keeping one fixed schema per stream (rather than
// per-frame maps) makes per-bin aggregation a single ordered scan — the
// property the byte-identity contract of DESIGN.md §16 rests on.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <unordered_map>
#include <vector>

#include "flow/rate_model.hpp"
#include "io/container.hpp"

namespace rp::stream {

/// The fixed network universe of one stream, in aggregation order.
struct BinSchema {
  std::vector<net::Asn> networks;

  std::size_t size() const { return networks.size(); }
  bool operator==(const BinSchema&) const = default;
};

/// One 5-minute bin: per-network rates in schema order.
struct BinFrame {
  std::uint64_t bin = 0;
  std::vector<double> in_bps;
  std::vector<double> out_bps;
};

class BinSource {
 public:
  virtual ~BinSource() = default;

  virtual const BinSchema& schema() const = 0;
  /// Total bins this source will deliver.
  virtual std::uint64_t bin_count() const = 0;
  /// Fills `frame` with the next bin; returns false at end of stream.
  virtual bool next(BinFrame& frame) = 0;
  /// Repositions so the next frame delivered is `bin` (resume support).
  /// Throws std::out_of_range past bin_count().
  virtual void seek(std::uint64_t bin) = 0;
};

/// Streams bins straight out of the deterministic rate model. Frames for
/// distinct networks are independent, so each frame fans the per-network
/// rate evaluations across the global ThreadPool into fixed slots —
/// byte-identical columns at any RP_THREADS.
class RateModelBinSource : public BinSource {
 public:
  RateModelBinSource(const flow::RateModel& model,
                     std::vector<net::Asn> networks);

  const BinSchema& schema() const override { return schema_; }
  std::uint64_t bin_count() const override;
  bool next(BinFrame& frame) override;
  void seek(std::uint64_t bin) override;

 private:
  const flow::RateModel* model_;
  BinSchema schema_;
  std::uint64_t next_bin_ = 0;
};

/// Writes `bins` frames of `source` (from its current position) to an RPSNAP
/// bin-log container at `path` (atomic rename, like every snapshot write).
/// Returns the number of frames written.
std::uint64_t write_bin_log(BinSource& source, std::uint64_t bins,
                            const std::filesystem::path& path);

/// Replays a bin log written by write_bin_log. Construction validates the
/// container (magic, per-section checksums) and decodes the schema; frames
/// decode lazily per chunk. Every next() passes the stream.bin fault site.
class BinLogSource : public BinSource {
 public:
  explicit BinLogSource(const std::filesystem::path& path);

  const BinSchema& schema() const override { return schema_; }
  std::uint64_t bin_count() const override { return frame_count_; }
  bool next(BinFrame& frame) override;
  void seek(std::uint64_t bin) override;

 private:
  void load_chunk(std::uint64_t chunk);

  io::ContainerReader reader_;
  BinSchema schema_;
  std::uint64_t frame_count_ = 0;
  std::uint64_t chunk_size_ = 0;
  std::uint64_t next_bin_ = 0;
  std::uint64_t first_bin_ = 0;

  /// Decoded frames of the chunk holding next_bin_ (invalid when empty).
  std::uint64_t loaded_chunk_ = ~std::uint64_t{0};
  std::vector<BinFrame> chunk_frames_;
};

}  // namespace rp::stream

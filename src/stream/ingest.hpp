// StreamIngest: online 95th-percentile state over an arriving bin stream.
//
// The batch path (core::OffloadStudy::time_series + util::p95_billing_rate)
// materializes the whole month before a single percentile is known. The
// ingest instead folds each BinFrame as it arrives into
//
//   * one P95Sketch per (network, direction)   — every transit endpoint's
//     own billing percentile, and
//   * four aggregate sketches                  — transit in/out (all schema
//     networks) and offload in/out (the covered subset), the Fig. 5b pair.
//
// Byte-identity contract (DESIGN.md §16): per-bin aggregate sums accumulate
// in schema order — the same network order RateModel::aggregate_series folds
// with — and the offload aggregate sums the covered subset in ascending
// schema index, matching the index-ordered covered_endpoints() list the
// batch path aggregates. Networks the model rates at zero add +0.0, which
// is exact, so after N bins transit_p95()/offload_p95() equal
// util::p95_billing_rate over the batch series bit for bit (while the
// sketches are in their exact regime).
//
// The complete state round-trips through the snapshot byte codec, so a
// checkpointed ingest resumes with bit-identical percentiles.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/traffic_matrix.hpp"
#include "io/container.hpp"
#include "stream/bin_source.hpp"
#include "stream/p95.hpp"
#include "util/bitset.hpp"

namespace rp::stream {

class StreamIngest {
 public:
  /// `covered` flags the schema positions whose networks are offloadable
  /// (endpoint-space coverage at the reached IXPs); its size must equal the
  /// schema's. `exact_capacity` = 0 uses configured_exact_capacity().
  StreamIngest(BinSchema schema, util::DynamicBitset covered,
               std::size_t exact_capacity = 0);

  /// Folds one bin. Frames must arrive in order: frame.bin must equal
  /// next_bin() (the contract a resumed checkpoint relies on). Throws
  /// std::invalid_argument on a gap, rewind, or column-size mismatch.
  void consume(const BinFrame& frame);

  const BinSchema& schema() const { return schema_; }
  const util::DynamicBitset& covered() const { return covered_; }
  /// Bins folded so far.
  std::uint64_t bins() const { return bins_; }
  /// The bin index the next consume() must carry.
  std::uint64_t next_bin() const { return next_bin_; }

  /// Aggregate billing percentiles (throw std::logic_error before any bin).
  double transit_p95(flow::Direction dir) const;
  double offload_p95(flow::Direction dir) const;
  const P95Sketch& transit_sketch(flow::Direction dir) const;
  const P95Sketch& offload_sketch(flow::Direction dir) const;

  /// Per-network sketch at a schema position.
  const P95Sketch& network_sketch(std::size_t index,
                                  flow::Direction dir) const;

  /// Bytes retained across every sketch (diagnostic; feeds the
  /// rp.stream.retained_bytes gauge).
  std::size_t retained_bytes() const;

  void serialize(io::ByteWriter& writer) const;
  static StreamIngest deserialize(io::ByteReader& reader);

 private:
  BinSchema schema_;
  util::DynamicBitset covered_;
  std::uint64_t bins_ = 0;
  std::uint64_t next_bin_ = 0;

  /// Per-network sketches, schema order.
  std::vector<P95Sketch> in_sketches_;
  std::vector<P95Sketch> out_sketches_;
  P95Sketch transit_in_;
  P95Sketch transit_out_;
  P95Sketch offload_in_;
  P95Sketch offload_out_;
};

}  // namespace rp::stream

#include "stream/incremental.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {

namespace {

/// Endpoints per partial-sum block. 256 keeps a dirty-block rescan to four
/// bitset words while the per-block bookkeeping stays negligible next to the
/// masks themselves.
constexpr std::size_t kBlockSize = 256;

obs::Counter& delta_adds() {
  static obs::Counter c("rp.stream.delta.adds");
  return c;
}
obs::Counter& delta_removes() {
  static obs::Counter c("rp.stream.delta.removes");
  return c;
}
obs::Counter& block_flushes() {
  static obs::Counter c("rp.stream.delta.block_flushes");
  return c;
}

}  // namespace

IncrementalOffload::IncrementalOffload(
    const offload::OffloadAnalyzer& analyzer,
    const ixp::IxpEcosystem& ecosystem, offload::PeerGroup group)
    : analyzer_(&analyzer),
      ecosystem_(&ecosystem),
      group_(group),
      coverage_(&analyzer.coverage_masks(group)),
      endpoint_count_(analyzer.transit_endpoints().size()),
      base_in_(endpoint_count_),
      base_out_(endpoint_count_),
      weight_(endpoint_count_),
      reached_flag_(coverage_->size(), false),
      cover_count_(endpoint_count_, 0),
      covered_(endpoint_count_),
      blocks_((endpoint_count_ + kBlockSize - 1) / kBlockSize) {
  const auto& endpoints = analyzer.transit_endpoints();
  for (std::size_t i = 0; i < endpoint_count_; ++i) {
    base_in_[i] = endpoints[i].inbound_bps;
    base_out_[i] = endpoints[i].outbound_bps;
    weight_[i] = endpoints[i].total_bps();
  }
}

bool IncrementalOffload::is_reached(ixp::IxpId id) const {
  return id < reached_flag_.size() && reached_flag_[id];
}

void IncrementalOffload::mark_dirty(std::size_t endpoint) {
  Block& block = blocks_[endpoint / kBlockSize];
  block.base_dirty = true;
  block.live_dirty = true;
  total_valid_ = false;
}

void IncrementalOffload::apply_mask(const util::DynamicBitset& mask,
                                    bool add) {
  if (add) {
    mask.for_each([this](std::size_t i) {
      if (cover_count_[i]++ == 0) {
        covered_.set(i);
        mark_dirty(i);
      }
    });
  } else {
    mask.for_each([this](std::size_t i) {
      if (--cover_count_[i] == 0) {
        covered_.reset(i);
        mark_dirty(i);
      }
    });
  }
}

void IncrementalOffload::add_ixp(ixp::IxpId id) {
  if (id >= coverage_->size())
    throw std::invalid_argument("IncrementalOffload::add_ixp: unknown IXP");
  if (reached_flag_[id])
    throw std::invalid_argument(
        "IncrementalOffload::add_ixp: already reached");
  apply_mask((*coverage_)[id], /*add=*/true);
  reached_flag_[id] = true;
  reached_.push_back(id);
  delta_adds().add();
}

void IncrementalOffload::remove_ixp(ixp::IxpId id) {
  if (id >= coverage_->size() || !reached_flag_[id])
    throw std::invalid_argument(
        "IncrementalOffload::remove_ixp: not reached");
  apply_mask((*coverage_)[id], /*add=*/false);
  reached_flag_[id] = false;
  reached_.erase(std::find(reached_.begin(), reached_.end(), id));
  delta_removes().add();
}

void IncrementalOffload::reset(std::span<const ixp::IxpId> ixps) {
  while (!reached_.empty()) remove_ixp(reached_.back());
  for (ixp::IxpId id : ixps)
    if (!is_reached(id)) add_ixp(id);
}

void IncrementalOffload::flush_base(std::size_t block) {
  Block& b = blocks_[block];
  b.base_in = 0.0;
  b.base_out = 0.0;
  b.covered = 0;
  const std::size_t begin = block * kBlockSize;
  const std::size_t end = std::min(begin + kBlockSize, endpoint_count_);
  // Ascending index order: the block sum is a pure function of which bits
  // are covered, never of the add/remove history that got them there.
  for (std::size_t i = begin; i < end; ++i) {
    if (!covered_.test(i)) continue;
    b.base_in += base_in_[i];
    b.base_out += base_out_[i];
    ++b.covered;
  }
  b.base_dirty = false;
  block_flushes().add();
}

void IncrementalOffload::flush_live(std::size_t block) {
  Block& b = blocks_[block];
  b.live_in = 0.0;
  b.live_out = 0.0;
  const std::size_t begin = block * kBlockSize;
  const std::size_t end = std::min(begin + kBlockSize, endpoint_count_);
  for (std::size_t i = begin; i < end; ++i) {
    if (!covered_.test(i)) continue;
    b.live_in += live_in_[i];
    b.live_out += live_out_[i];
  }
  b.live_dirty = false;
  block_flushes().add();
}

offload::Potential IncrementalOffload::potential() {
  // The ordered block sum is a pure function of the covered set, so the
  // clean total can be cached verbatim between deltas.
  if (total_valid_) return cached_total_;
  offload::Potential p;
  for (std::size_t block = 0; block < blocks_.size(); ++block) {
    if (blocks_[block].base_dirty) flush_base(block);
    p.inbound_bps += blocks_[block].base_in;
    p.outbound_bps += blocks_[block].base_out;
    p.covered_networks += blocks_[block].covered;
  }
  cached_total_ = p;
  total_valid_ = true;
  return p;
}

offload::Potential IncrementalOffload::what_if(
    std::span<const ixp::IxpId> added) {
  obs::Span span("stream.whatif");
  static obs::Counter whatifs("rp.stream.whatifs");
  whatifs.add();
  // A what-if is a pure read: the delta is the endpoints the added masks
  // would newly cover, found with word-level and-not against the live
  // covered set. Nothing is applied, so there is no rollback and no block
  // dirtying — cost O(words + popcount of the new bits), independent of
  // |reached|. The extra terms add in ascending endpoint order on top of
  // the blockwise potential, so the result stays a pure function of
  // (covered set, added set) — query order across clients cannot move it.
  offload::Potential p = potential();
  const auto& covered_words = covered_.words();
  auto scan_new_bits = [&](const std::uint64_t* union_words) {
    for (std::size_t w = 0; w < covered_words.size(); ++w) {
      std::uint64_t bits = union_words[w] & ~covered_words[w];
      while (bits != 0) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        p.inbound_bps += base_in_[i];
        p.outbound_bps += base_out_[i];
        ++p.covered_networks;
        bits &= bits - 1;
      }
    }
  };
  auto validate = [&](ixp::IxpId id) {
    if (id >= coverage_->size())
      throw std::invalid_argument(
          "IncrementalOffload::what_if: unknown IXP");
  };
  if (added.size() == 1) {
    // The dominant serve query — one marginal IXP — skips the union scratch.
    validate(added[0]);
    if (!is_reached(added[0]))
      scan_new_bits((*coverage_)[added[0]].words().data());
    return p;
  }
  scratch_.assign(covered_words.size(), 0);
  bool any = false;
  for (ixp::IxpId id : added) {
    validate(id);
    if (is_reached(id)) continue;
    const auto& mask_words = (*coverage_)[id].words();
    for (std::size_t w = 0; w < mask_words.size(); ++w)
      scratch_[w] |= mask_words[w];
    any = true;
  }
  if (any) scan_new_bits(scratch_.data());
  return p;
}

double IncrementalOffload::gain_of(ixp::IxpId id) const {
  if (id >= coverage_->size())
    throw std::invalid_argument("IncrementalOffload::gain_of: unknown IXP");
  if (reached_flag_[id]) return 0.0;
  double gain = 0.0;
  // Word-level and-not over the mask's uncovered bits, summed in ascending
  // endpoint order — the summation order of the batch greedy's
  // for_each_intersection(remaining) scan.
  const auto& mask_words = (*coverage_)[id].words();
  const auto& covered_words = covered_.words();
  for (std::size_t w = 0; w < mask_words.size(); ++w) {
    std::uint64_t bits = mask_words[w] & ~covered_words[w];
    while (bits != 0) {
      gain += weight_[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))];
      bits &= bits - 1;
    }
  }
  return gain;
}

std::vector<double> IncrementalOffload::frontier() const {
  std::vector<double> gains(coverage_->size());
  util::ThreadPool::global().parallel_for(
      coverage_->size(),
      [this, &gains](std::size_t x) {
        gains[x] = reached_flag_[x] ? 0.0
                                    : gain_of(static_cast<ixp::IxpId>(x));
      });
  return gains;
}

std::vector<offload::GreedyStep> IncrementalOffload::greedy(
    std::size_t max_steps) const {
  // A step-for-step replica of OffloadAnalyzer::greedy over the same cached
  // masks: identical summation orders, identical strict-> argmax with ties
  // to the lower IXP index, identical stop condition — so the curve matches
  // the batch greedy_by_traffic byte for byte.
  obs::Span span("stream.greedy");
  const std::vector<util::DynamicBitset>& coverage = *coverage_;

  util::DynamicBitset remaining(endpoint_count_);
  for (std::size_t i = 0; i < endpoint_count_; ++i) remaining.set(i);

  double remaining_in = analyzer_->transit_inbound_bps();
  double remaining_out = analyzer_->transit_outbound_bps();
  double remaining_weight = 0.0;
  for (std::size_t i = 0; i < endpoint_count_; ++i)
    remaining_weight += weight_[i];

  std::vector<bool> used(coverage.size(), false);
  std::vector<offload::GreedyStep> steps;
  std::vector<double> gains(coverage.size());
  util::ThreadPool& pool = util::ThreadPool::global();
  const auto& endpoints = analyzer_->transit_endpoints();

  for (std::size_t step = 0; step < max_steps; ++step) {
    pool.parallel_for(coverage.size(), [&](std::size_t x) {
      if (used[x]) {
        gains[x] = 0.0;
        return;
      }
      double gain = 0.0;
      coverage[x].for_each_intersection(
          remaining, [this, &gain](std::size_t i) { gain += weight_[i]; });
      gains[x] = gain;
    });
    double best_gain = 0.0;
    std::size_t best_ixp = coverage.size();
    for (std::size_t x = 0; x < coverage.size(); ++x) {
      if (used[x]) continue;
      if (gains[x] > best_gain) {
        best_gain = gains[x];
        best_ixp = x;
      }
    }
    if (best_ixp == coverage.size() || best_gain <= 0.0) break;

    offload::GreedyStep result;
    result.ixp_id = ecosystem_->ixps()[best_ixp].id();
    result.acronym = ecosystem_->ixps()[best_ixp].acronym();
    result.gained = best_gain;

    coverage[best_ixp].for_each_intersection(
        remaining,
        [&endpoints, &remaining_in, &remaining_out](std::size_t i) {
          remaining_in -= endpoints[i].inbound_bps;
          remaining_out -= endpoints[i].outbound_bps;
        });
    remaining.subtract(coverage[best_ixp]);
    remaining_weight -= best_gain;
    used[best_ixp] = true;

    result.remaining = remaining_weight;
    result.remaining_inbound_bps = remaining_in;
    result.remaining_outbound_bps = remaining_out;
    steps.push_back(std::move(result));
  }
  return steps;
}

std::size_t IncrementalOffload::retained_bytes() const {
  return (base_in_.capacity() + base_out_.capacity() + weight_.capacity() +
          live_in_.capacity() + live_out_.capacity()) *
             sizeof(double) +
         cover_count_.capacity() * sizeof(std::uint32_t) +
         covered_.words().size() * sizeof(std::uint64_t) +
         blocks_.capacity() * sizeof(Block) +
         reached_.capacity() * sizeof(ixp::IxpId);
}

void IncrementalOffload::on_bin(const BinFrame& frame) {
  if (frame.in_bps.size() != endpoint_count_ ||
      frame.out_bps.size() != endpoint_count_)
    throw std::invalid_argument(
        "IncrementalOffload::on_bin: frame width != endpoints");
  live_in_ = frame.in_bps;
  live_out_ = frame.out_bps;
  live_bin_ = frame.bin;
  has_live_ = true;
  for (Block& block : blocks_) block.live_dirty = true;
}

offload::Potential IncrementalOffload::live_potential() {
  if (!has_live_)
    throw std::logic_error(
        "IncrementalOffload::live_potential: no bin published");
  offload::Potential p;
  for (std::size_t block = 0; block < blocks_.size(); ++block) {
    // The covered count lives with the base sums; bring both layers current.
    if (blocks_[block].base_dirty) flush_base(block);
    if (blocks_[block].live_dirty) flush_live(block);
    p.inbound_bps += blocks_[block].live_in;
    p.outbound_bps += blocks_[block].live_out;
    p.covered_networks += blocks_[block].covered;
  }
  return p;
}

}  // namespace rp::stream

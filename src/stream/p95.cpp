#include "stream/p95.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace rp::stream {

namespace {

/// Compactor level width: large enough that the rank error of a month-scale
/// overflow stays well under one bin, small enough that a sketch is a few
/// kilobytes.
constexpr std::size_t kLevelCapacity = 512;

std::size_t clamp_capacity(long long v) {
  if (v < 16) return 16;
  if (v > (1ll << 22)) return std::size_t{1} << 22;
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t configured_exact_capacity() {
  static const std::size_t cached = [] {
    const char* env = std::getenv("RP_STREAM_EXACT_CAP");
    if (env == nullptr || env[0] == '\0') return kPaperScaleBins;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0) return kPaperScaleBins;
    return clamp_capacity(v);
  }();
  return cached;
}

P95Sketch::P95Sketch(std::size_t exact_capacity)
    : exact_capacity_(exact_capacity == 0 ? configured_exact_capacity()
                                          : clamp_capacity(static_cast<long long>(
                                                exact_capacity))),
      level_capacity_(kLevelCapacity) {}

void P95Sketch::add(double value) {
  ++count_;
  if (levels_.empty()) {
    if (ring_.size() < exact_capacity_) {
      ring_.push_back(value);
      return;
    }
    // First sample beyond the ring: hand the exact series to the compactor.
    spill_ring_into_levels();
  }
  levels_[0].items.push_back(value);
  if (levels_[0].items.size() >= level_capacity_) compact_level(0);
}

void P95Sketch::spill_ring_into_levels() {
  levels_.emplace_back();
  levels_[0].items.reserve(level_capacity_);
  for (double v : ring_) {
    levels_[0].items.push_back(v);
    if (levels_[0].items.size() >= level_capacity_) compact_level(0);
  }
  ring_.clear();
  ring_.shrink_to_fit();
}

void P95Sketch::compact_level(std::size_t level) {
  // Grow the level vector before taking references: emplace_back may
  // reallocate and would dangle them.
  if (level + 1 >= levels_.size()) levels_.emplace_back();
  Level& src = levels_[level];
  std::sort(src.items.begin(), src.items.end());
  // Deterministic compaction: keep every other element of the sorted
  // buffer, starting at index 0 or 1 on alternate compactions so the
  // one-half-rank bias cancels over time. Survivors double their weight by
  // moving one level up.
  Level& dst = levels_[level + 1];
  for (std::size_t i = src.keep_odd ? 1 : 0; i < src.items.size(); i += 2)
    dst.items.push_back(src.items[i]);
  src.keep_odd = !src.keep_odd;
  src.items.clear();
  if (dst.items.size() >= level_capacity_) compact_level(level + 1);
}

double P95Sketch::quantile(double q) const {
  if (count_ == 0) throw std::logic_error("P95Sketch::quantile: empty sketch");
  if (!(q > 0.0 && q <= 1.0))
    throw std::invalid_argument("P95Sketch::quantile: q out of (0, 1]");
  if (levels_.empty()) {
    // Exact regime: reproduce util::p95_billing_rate — sort the retained
    // series, pick nearest-rank ceil(q n).
    std::vector<double> sorted = ring_;
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    return sorted[rank - 1];
  }
  // Compactor regime: nearest-rank over the weighted survivors.
  struct Weighted {
    double value;
    std::uint64_t weight;
  };
  std::vector<Weighted> items;
  std::uint64_t total = 0;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const std::uint64_t weight = std::uint64_t{1} << level;
    for (double v : levels_[level].items) {
      items.push_back({v, weight});
      total += weight;
    }
  }
  if (items.empty()) throw std::logic_error("P95Sketch::quantile: no items");
  std::sort(items.begin(), items.end(),
            [](const Weighted& a, const Weighted& b) {
              return a.value < b.value;
            });
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (const Weighted& item : items) {
    seen += item.weight;
    if (seen >= rank) return item.value;
  }
  return items.back().value;
}

std::size_t P95Sketch::retained_bytes() const {
  std::size_t bytes = ring_.capacity() * sizeof(double);
  for (const Level& level : levels_)
    bytes += level.items.capacity() * sizeof(double) + sizeof(Level);
  return bytes;
}

void P95Sketch::serialize(io::ByteWriter& writer) const {
  writer.varint(exact_capacity_);
  writer.varint(level_capacity_);
  writer.varint(count_);
  writer.varint(ring_.size());
  for (double v : ring_) writer.f64(v);
  writer.varint(levels_.size());
  for (const Level& level : levels_) {
    writer.u8(level.keep_odd ? 1 : 0);
    writer.varint(level.items.size());
    for (double v : level.items) writer.f64(v);
  }
}

P95Sketch P95Sketch::deserialize(io::ByteReader& reader) {
  P95Sketch sketch(1);  // Placeholder capacity; overwritten below.
  sketch.exact_capacity_ = static_cast<std::size_t>(reader.varint());
  sketch.level_capacity_ = static_cast<std::size_t>(reader.varint());
  sketch.count_ = reader.varint();
  const std::size_t ring_size = static_cast<std::size_t>(reader.varint());
  if (ring_size > sketch.exact_capacity_)
    throw io::SnapshotError("P95Sketch: ring larger than its capacity");
  sketch.ring_.reserve(ring_size);
  for (std::size_t i = 0; i < ring_size; ++i)
    sketch.ring_.push_back(reader.f64());
  const std::size_t level_count = static_cast<std::size_t>(reader.varint());
  if (level_count > 64)
    throw io::SnapshotError("P95Sketch: implausible level count");
  sketch.levels_.resize(level_count);
  for (Level& level : sketch.levels_) {
    level.keep_odd = reader.u8() != 0;
    const std::size_t items = static_cast<std::size_t>(reader.varint());
    if (items > sketch.level_capacity_)
      throw io::SnapshotError("P95Sketch: level larger than its capacity");
    level.items.reserve(items);
    for (std::size_t i = 0; i < items; ++i)
      level.items.push_back(reader.f64());
  }
  if (!sketch.levels_.empty() && !sketch.ring_.empty())
    throw io::SnapshotError("P95Sketch: ring and levels both populated");
  return sketch;
}

}  // namespace rp::stream

// Online 95th-percentile state for streaming traffic rates.
//
// The transit bill of §2.1 is set by the 95th percentile of the 5-minute
// rates, so a streaming ingest must fold each arriving bin into a quantile
// estimate instead of materializing the whole month. P95Sketch has two
// regimes with a deterministic hand-off:
//
//   exact ring   while at most `exact_capacity` samples have arrived (the
//                default, 8064, is one paper month of 5-minute bins) every
//                sample is retained, and quantiles reproduce
//                util::p95_billing_rate on the full series byte for byte —
//                same sort, same nearest-rank ceil(0.95 n) selection.
//   compactor    the first sample beyond the ring capacity collapses the
//                ring into a deterministic multi-level compacting sketch
//                (KLL-style, but with an alternating keep-even/keep-odd rule
//                instead of coin flips so replays are byte-identical).
//                Memory stays O(levels * level_capacity); the rank error of
//                a quantile is bounded by the compaction depth (see
//                DESIGN.md §16 for the bound).
//
// Both regimes are pure functions of the sample sequence: no randomness, no
// wall clock, no scheduling dependence. The full state serializes through
// the snapshot byte codec (exact f64 round trip), so a checkpointed stream
// resumes with bit-identical quantiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/container.hpp"

namespace rp::stream {

/// One paper month of 5-minute bins (28 days * 24 h * 12 bins) — the default
/// exact-ring capacity.
inline constexpr std::size_t kPaperScaleBins = 8064;

/// Reads RP_STREAM_EXACT_CAP (exact-ring capacity for every sketch built
/// with the default constructor); unset/unparsable falls back to
/// kPaperScaleBins. Clamped to [16, 1<<22].
std::size_t configured_exact_capacity();

class P95Sketch {
 public:
  /// `exact_capacity` = 0 uses configured_exact_capacity().
  explicit P95Sketch(std::size_t exact_capacity = 0);

  /// Folds one sample (a 5-minute rate in bps).
  void add(double value);

  std::uint64_t count() const { return count_; }
  /// True while every sample is retained (quantiles are exact).
  bool exact() const { return levels_.empty(); }
  std::size_t exact_capacity() const { return exact_capacity_; }

  /// The billing quantile: nearest-rank at ceil(0.95 n), the operator
  /// convention of util::p95_billing_rate. Exact mode reproduces the batch
  /// value byte for byte. Throws std::logic_error on an empty sketch.
  double p95() const { return quantile(0.95); }

  /// Nearest-rank quantile at ceil(q * n) over the retained (weighted)
  /// samples; q in (0, 1]. Throws std::logic_error when empty,
  /// std::invalid_argument on q out of range.
  double quantile(double q) const;

  /// Bytes retained by the sample store (diagnostic; excludes the handle).
  std::size_t retained_bytes() const;

  /// Serializes the complete state (regime, buffers in insertion order,
  /// counters). The inverse restore() reproduces a sketch whose future
  /// behaviour is bit-identical to the original's.
  void serialize(io::ByteWriter& writer) const;
  static P95Sketch deserialize(io::ByteReader& reader);

 private:
  /// One compactor level: samples of weight 2^level, insertion-ordered.
  struct Level {
    std::vector<double> items;
    /// Alternates per compaction so the kept-rank bias cancels.
    bool keep_odd = false;
  };

  void compact_level(std::size_t level);
  void spill_ring_into_levels();

  std::size_t exact_capacity_;
  std::size_t level_capacity_;
  std::uint64_t count_ = 0;
  /// Exact regime: every sample, insertion order. Compactor regime: empty.
  std::vector<double> ring_;
  /// Compactor regime: levels_[k] holds weight-2^k samples.
  std::vector<Level> levels_;
};

}  // namespace rp::stream

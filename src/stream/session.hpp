// StreamSession: one end-to-end streaming run — source → ingest →
// incremental offload — with crash-consistent checkpoints.
//
// The session pulls bins from a BinSource in arrival order, folds each into
// the StreamIngest percentile state, publishes the frame to the
// IncrementalOffload live view, and every `checkpoint_every` bins writes the
// complete ingest state (plus the reached IXP set) to an RPSNAP container
// with the usual atomic-rename discipline. A replay killed mid-ingest (the
// stream.bin fault site) therefore leaves a valid checkpoint on disk;
// resume() restores it, seeks the source, and the continued run's
// percentiles and greedy curve are byte-identical to an uninterrupted one —
// the property the ci.sh stream smoke asserts.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>

#include "ixp/ixp.hpp"
#include "offload/analyzer.hpp"
#include "stream/bin_source.hpp"
#include "stream/incremental.hpp"
#include "stream/ingest.hpp"

namespace rp::stream {

struct StreamSessionConfig {
  /// Write a checkpoint after every N consumed bins (0 disables).
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint file (required when checkpoint_every > 0).
  std::filesystem::path checkpoint_path;
};

class StreamSession {
 public:
  /// The source's schema must match `analyzer.transit_endpoints()` order —
  /// the order every byte-identity claim is anchored to. Throws
  /// std::invalid_argument otherwise. The ingest's covered mask is the
  /// union of `group` coverage over all reachable IXPs (the maximal-offload
  /// series of Fig. 5b).
  StreamSession(BinSource& source, const offload::OffloadAnalyzer& analyzer,
                const ixp::IxpEcosystem& ecosystem, offload::PeerGroup group,
                StreamSessionConfig config = {});

  /// Consumes up to `max_bins` further bins (until the source runs dry),
  /// checkpointing on the configured cadence. Returns the number of bins
  /// consumed by this call. An InjectedFault (or any source error)
  /// propagates after the state has already been checkpointed at the last
  /// boundary.
  std::uint64_t run(
      std::uint64_t max_bins = std::numeric_limits<std::uint64_t>::max());

  /// Restores the configured checkpoint if present and valid, seeking the
  /// source to the first unconsumed bin. Returns true when a checkpoint was
  /// restored, false when none exists. Throws io::SnapshotError on a
  /// corrupt checkpoint or a schema that does not match the source.
  bool resume();

  /// Writes a checkpoint now (requires a configured path).
  void checkpoint() const;

  const StreamIngest& ingest() const { return ingest_; }
  IncrementalOffload& incremental() { return incremental_; }
  const IncrementalOffload& incremental() const { return incremental_; }

 private:
  BinSource* source_;
  StreamSessionConfig config_;
  StreamIngest ingest_;
  IncrementalOffload incremental_;
};

}  // namespace rp::stream

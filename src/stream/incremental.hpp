// IncrementalOffload: live offload-potential state under peering-set deltas.
//
// The batch OffloadAnalyzer answers "what if we reached IXP set S?" by
// re-unioning |S| coverage masks and scanning every set bit — fine for a
// study, wasteful when rp::serve answers a stream of what-ifs that differ by
// one IXP. This layer keeps the covered set *live*:
//
//   add_ixp / remove_ixp    multiset coverage counts per endpoint. An IXP
//                           delta walks only that IXP's mask; a 0→1 (or 1→0)
//                           count transition flips the endpoint's covered
//                           bit and dirties its block. Cost: O(popcount of
//                           one mask), independent of |reached|.
//   potential()             blockwise partial sums over the covered set.
//                           Only dirty blocks rescan (in ascending index
//                           order); clean blocks reuse their sums. The total
//                           is the ordered sum of block sums — a pure
//                           function of the covered set, so a serve daemon
//                           answering interleaved what-ifs returns the same
//                           bytes regardless of query order or history.
//                           (It is the blockwise regrouping of the batch
//                           sum, not its bit-for-bit FP twin; the contract
//                           is self-consistency, documented in DESIGN.md
//                           §16.)
//   gain_of / frontier()    marginal gain of one more IXP against the live
//                           covered set — the greedy frontier, without
//                           recomputing the already-reached union.
//   greedy()                the Fig. 9 curve from the live masks, replicating
//                           the batch greedy_by_traffic step for step
//                           (same summation order, same tie-break), so the
//                           streaming curve is byte-identical to the batch
//                           one at any RP_THREADS.
//   on_bin / live_potential the latest bin's rates over the covered set —
//                           "what is offloadable right now" — updated by one
//                           column swap per arriving frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ixp/ixp.hpp"
#include "offload/analyzer.hpp"
#include "stream/bin_source.hpp"
#include "util/bitset.hpp"

namespace rp::stream {

class IncrementalOffload {
 public:
  /// Binds to `analyzer`'s cached coverage masks for `group` (building them
  /// on first use). The analyzer and ecosystem must outlive this object.
  IncrementalOffload(const offload::OffloadAnalyzer& analyzer,
                     const ixp::IxpEcosystem& ecosystem,
                     offload::PeerGroup group);

  offload::PeerGroup group() const { return group_; }
  /// Reached IXPs in add order.
  const std::vector<ixp::IxpId>& reached() const { return reached_; }
  bool is_reached(ixp::IxpId id) const;

  /// Adds one IXP to the reached set. Throws std::invalid_argument on an
  /// unknown id or an already-reached IXP.
  void add_ixp(ixp::IxpId id);
  /// Removes one reached IXP. Throws std::invalid_argument if not reached.
  void remove_ixp(ixp::IxpId id);
  /// Replaces the reached set (duplicates collapse to one membership each).
  void reset(std::span<const ixp::IxpId> ixps);

  /// Offload potential of the live covered set, §4-average weights.
  offload::Potential potential();
  /// Potential after additionally reaching `added` (ids already reached are
  /// ignored). A pure read: word-level and-not of the added masks against
  /// the live covered set, no state change — the serve what-if fast path.
  offload::Potential what_if(std::span<const ixp::IxpId> added);

  /// Marginal §4-average-weight gain of adding `id` to the current reached
  /// set (0 for an already-reached id).
  double gain_of(ixp::IxpId id) const;
  /// gain_of for every IXP, indexed by IxpId (computed across the pool;
  /// values are identical at any RP_THREADS).
  std::vector<double> frontier() const;

  /// The Fig. 9 greedy curve from the live coverage masks, byte-identical to
  /// OffloadAnalyzer::greedy_by_traffic(group, max_steps). Ignores (and does
  /// not disturb) the current reached set.
  std::vector<offload::GreedyStep> greedy(std::size_t max_steps) const;

  /// Publishes the latest bin's per-endpoint rates (columns in endpoint
  /// order — the analyzer's transit_endpoints() order). Throws
  /// std::invalid_argument on a width mismatch.
  void on_bin(const BinFrame& frame);
  /// True once a bin has been published.
  bool has_live_bin() const { return has_live_; }
  std::uint64_t live_bin() const { return live_bin_; }
  /// Potential of the covered set at the latest published bin's rates.
  /// Throws std::logic_error before the first on_bin.
  offload::Potential live_potential();

  std::size_t endpoint_count() const { return endpoint_count_; }

  /// Bytes held by the live state (weights, counts, blocks; the coverage
  /// masks belong to the analyzer). Feeds the serve stats surface.
  std::size_t retained_bytes() const;

 private:
  struct Block {
    double base_in = 0.0;
    double base_out = 0.0;
    double live_in = 0.0;
    double live_out = 0.0;
    std::size_t covered = 0;
    bool base_dirty = false;
    bool live_dirty = false;
  };

  void flush_base(std::size_t block);
  void flush_live(std::size_t block);
  void mark_dirty(std::size_t endpoint);
  void apply_mask(const util::DynamicBitset& mask, bool add);

  const offload::OffloadAnalyzer* analyzer_;
  const ixp::IxpEcosystem* ecosystem_;
  offload::PeerGroup group_;
  /// Coverage masks indexed by IxpId (borrowed from the analyzer's cache).
  const std::vector<util::DynamicBitset>* coverage_;
  std::size_t endpoint_count_ = 0;

  /// §4-average endpoint weights, endpoint order.
  std::vector<double> base_in_;
  std::vector<double> base_out_;
  std::vector<double> weight_;
  /// Latest bin's rates, endpoint order (empty before the first on_bin).
  std::vector<double> live_in_;
  std::vector<double> live_out_;
  bool has_live_ = false;
  std::uint64_t live_bin_ = 0;

  std::vector<ixp::IxpId> reached_;
  std::vector<bool> reached_flag_;  ///< Indexed by IxpId.
  /// Multiset coverage count per endpoint; covered_ holds count > 0.
  std::vector<std::uint32_t> cover_count_;
  util::DynamicBitset covered_;
  std::vector<Block> blocks_;
  /// What-if union scratch (word-sized, reused across queries).
  std::vector<std::uint64_t> scratch_;
  /// Clean blockwise total, valid until the next covered-bit transition.
  offload::Potential cached_total_;
  bool total_valid_ = false;
};

}  // namespace rp::stream

#include "stream/bin_source.hpp"

#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {

namespace {

/// Bin-log container sections: one header, then frame chunks in bin order.
constexpr std::uint32_t kSectionHeader = 1;
constexpr std::uint32_t kSectionChunkBase = 100;
/// Frames per chunk: big enough to amortize section overhead, small enough
/// that a seek decodes at most a few hundred frames it does not need.
constexpr std::uint64_t kChunkFrames = 256;

fault::Site& bin_site() {
  static fault::Site site(fault::kSiteStreamBin);
  return site;
}

obs::Counter& frames_read() {
  static obs::Counter c("rp.stream.log.frames_read");
  return c;
}

}  // namespace

RateModelBinSource::RateModelBinSource(const flow::RateModel& model,
                                       std::vector<net::Asn> networks)
    : model_(&model), schema_{std::move(networks)} {}

std::uint64_t RateModelBinSource::bin_count() const {
  return model_->bin_count();
}

bool RateModelBinSource::next(BinFrame& frame) {
  if (next_bin_ >= bin_count()) return false;
  const std::uint64_t bin = next_bin_++;
  frame.bin = bin;
  frame.in_bps.resize(schema_.size());
  frame.out_bps.resize(schema_.size());
  // Each network's rate is an independent pure function of (asn, dir, bin);
  // fan out into fixed slots so the columns are byte-identical at any
  // RP_THREADS.
  util::ThreadPool::global().parallel_for(
      schema_.size(), [this, bin, &frame](std::size_t i) {
        const net::Asn asn = schema_.networks[i];
        frame.in_bps[i] = model_->rate_bps(
            asn, flow::Direction::kInbound, static_cast<std::size_t>(bin));
        frame.out_bps[i] = model_->rate_bps(
            asn, flow::Direction::kOutbound, static_cast<std::size_t>(bin));
      });
  return true;
}

void RateModelBinSource::seek(std::uint64_t bin) {
  if (bin > bin_count())
    throw std::out_of_range("RateModelBinSource::seek past end");
  next_bin_ = bin;
}

std::uint64_t write_bin_log(BinSource& source, std::uint64_t bins,
                            const std::filesystem::path& path) {
  obs::Span span("stream.log.write");
  io::ContainerWriter container;

  std::vector<BinFrame> pending;
  std::vector<std::vector<std::uint8_t>> chunks;
  std::uint64_t written = 0;
  std::uint64_t first_bin = 0;
  bool first = true;

  auto flush_chunk = [&] {
    if (pending.empty()) return;
    io::ByteWriter chunk;
    chunk.varint(pending.size());
    for (const BinFrame& frame : pending) {
      chunk.varint(frame.bin);
      for (double v : frame.in_bps) chunk.f64(v);
      for (double v : frame.out_bps) chunk.f64(v);
    }
    chunks.push_back(chunk.take());
    pending.clear();
  };

  BinFrame frame;
  while (written < bins && source.next(frame)) {
    if (first) {
      first_bin = frame.bin;
      first = false;
    }
    pending.push_back(frame);
    ++written;
    if (pending.size() >= kChunkFrames) flush_chunk();
  }
  flush_chunk();

  io::ByteWriter header;
  const BinSchema& schema = source.schema();
  header.varint(schema.size());
  for (net::Asn asn : schema.networks) header.varint(asn.value());
  header.varint(written);
  header.varint(kChunkFrames);
  header.varint(first_bin);
  container.add_section(kSectionHeader, header.take());
  for (std::size_t i = 0; i < chunks.size(); ++i)
    container.add_section(kSectionChunkBase + static_cast<std::uint32_t>(i),
                          std::move(chunks[i]));
  container.write_file_atomic(path);

  if (obs::metrics_enabled()) {
    static obs::Counter logs("rp.stream.log.writes");
    static obs::Counter frames("rp.stream.log.frames_written");
    logs.add();
    frames.add(written);
  }
  return written;
}

BinLogSource::BinLogSource(const std::filesystem::path& path)
    : reader_(io::ContainerReader::from_file(path)) {
  io::ByteReader header(reader_.section(kSectionHeader), "bin-log header");
  const std::size_t networks = static_cast<std::size_t>(header.varint());
  schema_.networks.reserve(networks);
  for (std::size_t i = 0; i < networks; ++i)
    schema_.networks.push_back(net::Asn{
        static_cast<std::uint32_t>(header.varint())});
  frame_count_ = header.varint();
  chunk_size_ = header.varint();
  first_bin_ = header.varint();
  header.expect_end();
  if (chunk_size_ == 0)
    throw io::SnapshotError("bin-log header: zero chunk size");
}

void BinLogSource::load_chunk(std::uint64_t chunk) {
  io::ByteReader body(
      reader_.section(kSectionChunkBase + static_cast<std::uint32_t>(chunk)),
      "bin-log chunk");
  const std::size_t frames = static_cast<std::size_t>(body.varint());
  if (frames > chunk_size_)
    throw io::SnapshotError("bin-log chunk: more frames than chunk size");
  chunk_frames_.resize(frames);
  for (BinFrame& frame : chunk_frames_) {
    frame.bin = body.varint();
    frame.in_bps.resize(schema_.size());
    frame.out_bps.resize(schema_.size());
    for (double& v : frame.in_bps) v = body.f64();
    for (double& v : frame.out_bps) v = body.f64();
  }
  body.expect_end();
  loaded_chunk_ = chunk;
}

bool BinLogSource::next(BinFrame& frame) {
  if (next_bin_ >= frame_count_) return false;
  // The kill-a-stream-mid-ingest hook: CI arms stream.bin:nth=K to abort a
  // replay at a chosen frame and then proves checkpoint resume produces
  // byte-identical state.
  bin_site().maybe_throw();
  const std::uint64_t chunk = next_bin_ / chunk_size_;
  if (chunk != loaded_chunk_) load_chunk(chunk);
  frame = chunk_frames_[next_bin_ % chunk_size_];
  ++next_bin_;
  frames_read().add();
  return true;
}

void BinLogSource::seek(std::uint64_t bin) {
  // next_bin_ is a slot index into the log; a log written mid-stream
  // (first_bin_ > 0) keeps its frames' original bin numbers, so seeking to
  // an absolute bin lands on slot bin - first_bin_.
  if (bin < first_bin_ || bin - first_bin_ > frame_count_)
    throw std::out_of_range("BinLogSource::seek past end");
  next_bin_ = bin - first_bin_;
}

}  // namespace rp::stream

#include "stream/ingest.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::stream {

StreamIngest::StreamIngest(BinSchema schema, util::DynamicBitset covered,
                           std::size_t exact_capacity)
    : schema_(std::move(schema)),
      covered_(std::move(covered)),
      in_sketches_(schema_.size(), P95Sketch(exact_capacity)),
      out_sketches_(schema_.size(), P95Sketch(exact_capacity)),
      transit_in_(exact_capacity),
      transit_out_(exact_capacity),
      offload_in_(exact_capacity),
      offload_out_(exact_capacity) {
  if (covered_.size() != schema_.size())
    throw std::invalid_argument(
        "StreamIngest: covered mask size does not match schema");
}

void StreamIngest::consume(const BinFrame& frame) {
  if (frame.bin != next_bin_)
    throw std::invalid_argument("StreamIngest: out-of-order bin");
  if (frame.in_bps.size() != schema_.size() ||
      frame.out_bps.size() != schema_.size())
    throw std::invalid_argument("StreamIngest: frame width != schema");

  // Per-network sketches are independent; fan the folds across the pool.
  // Each position only touches its own sketch, so the result is identical
  // at any RP_THREADS.
  util::ThreadPool::global().parallel_for(
      schema_.size(), [this, &frame](std::size_t i) {
        in_sketches_[i].add(frame.in_bps[i]);
        out_sketches_[i].add(frame.out_bps[i]);
      });

  // Aggregates accumulate serially in schema order — the exact summation
  // order of RateModel::aggregate_series — so the fed samples (and hence the
  // percentiles) are bit-identical to the batch series.
  double transit_in = 0.0;
  double transit_out = 0.0;
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    transit_in += frame.in_bps[i];
    transit_out += frame.out_bps[i];
  }
  double offload_in = 0.0;
  double offload_out = 0.0;
  covered_.for_each([&frame, &offload_in, &offload_out](std::size_t i) {
    offload_in += frame.in_bps[i];
    offload_out += frame.out_bps[i];
  });
  transit_in_.add(transit_in);
  transit_out_.add(transit_out);
  offload_in_.add(offload_in);
  offload_out_.add(offload_out);

  ++bins_;
  next_bin_ = frame.bin + 1;

  if (obs::metrics_enabled()) {
    static obs::Counter bins("rp.stream.bins_ingested");
    static obs::Gauge retained("rp.stream.retained_bytes");
    bins.add();
    retained.set(static_cast<double>(retained_bytes()));
  }
}

double StreamIngest::transit_p95(flow::Direction dir) const {
  return transit_sketch(dir).p95();
}

double StreamIngest::offload_p95(flow::Direction dir) const {
  return offload_sketch(dir).p95();
}

const P95Sketch& StreamIngest::transit_sketch(flow::Direction dir) const {
  return dir == flow::Direction::kInbound ? transit_in_ : transit_out_;
}

const P95Sketch& StreamIngest::offload_sketch(flow::Direction dir) const {
  return dir == flow::Direction::kInbound ? offload_in_ : offload_out_;
}

const P95Sketch& StreamIngest::network_sketch(std::size_t index,
                                              flow::Direction dir) const {
  if (index >= schema_.size())
    throw std::out_of_range("StreamIngest::network_sketch");
  return dir == flow::Direction::kInbound ? in_sketches_[index]
                                          : out_sketches_[index];
}

std::size_t StreamIngest::retained_bytes() const {
  std::size_t bytes = transit_in_.retained_bytes() +
                      transit_out_.retained_bytes() +
                      offload_in_.retained_bytes() +
                      offload_out_.retained_bytes();
  for (const P95Sketch& sketch : in_sketches_) bytes += sketch.retained_bytes();
  for (const P95Sketch& sketch : out_sketches_)
    bytes += sketch.retained_bytes();
  return bytes;
}

void StreamIngest::serialize(io::ByteWriter& writer) const {
  writer.varint(schema_.size());
  for (net::Asn asn : schema_.networks) writer.varint(asn.value());
  writer.varint(covered_.size());
  for (std::uint64_t word : covered_.words()) writer.u64_fixed(word);
  writer.varint(bins_);
  writer.varint(next_bin_);
  for (const P95Sketch& sketch : in_sketches_) sketch.serialize(writer);
  for (const P95Sketch& sketch : out_sketches_) sketch.serialize(writer);
  transit_in_.serialize(writer);
  transit_out_.serialize(writer);
  offload_in_.serialize(writer);
  offload_out_.serialize(writer);
}

StreamIngest StreamIngest::deserialize(io::ByteReader& reader) {
  BinSchema schema;
  const std::size_t networks = static_cast<std::size_t>(reader.varint());
  schema.networks.reserve(networks);
  for (std::size_t i = 0; i < networks; ++i)
    schema.networks.push_back(
        net::Asn{static_cast<std::uint32_t>(reader.varint())});
  const std::size_t covered_bits = static_cast<std::size_t>(reader.varint());
  if (covered_bits != networks)
    throw io::SnapshotError("StreamIngest: covered mask size != schema");
  std::vector<std::uint64_t> words((covered_bits + 63) / 64);
  for (std::uint64_t& word : words) word = reader.u64_fixed();
  util::DynamicBitset covered;
  try {
    covered = util::DynamicBitset::from_words(covered_bits, std::move(words));
  } catch (const std::invalid_argument& e) {
    throw io::SnapshotError(std::string("StreamIngest: ") + e.what());
  }

  StreamIngest ingest(std::move(schema), std::move(covered), 1);
  ingest.bins_ = reader.varint();
  ingest.next_bin_ = reader.varint();
  for (P95Sketch& sketch : ingest.in_sketches_)
    sketch = P95Sketch::deserialize(reader);
  for (P95Sketch& sketch : ingest.out_sketches_)
    sketch = P95Sketch::deserialize(reader);
  ingest.transit_in_ = P95Sketch::deserialize(reader);
  ingest.transit_out_ = P95Sketch::deserialize(reader);
  ingest.offload_in_ = P95Sketch::deserialize(reader);
  ingest.offload_out_ = P95Sketch::deserialize(reader);
  return ingest;
}

}  // namespace rp::stream

#include "stream/session.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::stream {

namespace {

/// Checkpoint container sections.
constexpr std::uint32_t kSectionIngest = 1;
constexpr std::uint32_t kSectionReached = 2;

util::DynamicBitset maximal_coverage(const offload::OffloadAnalyzer& analyzer,
                                     offload::PeerGroup group) {
  util::DynamicBitset covered(analyzer.transit_endpoints().size());
  const auto& masks = analyzer.coverage_masks(group);
  for (ixp::IxpId id : analyzer.all_ixps()) covered |= masks[id];
  return covered;
}

BinSchema endpoint_schema(const offload::OffloadAnalyzer& analyzer) {
  BinSchema schema;
  for (const auto& endpoint : analyzer.transit_endpoints())
    schema.networks.push_back(endpoint.asn);
  return schema;
}

}  // namespace

StreamSession::StreamSession(BinSource& source,
                             const offload::OffloadAnalyzer& analyzer,
                             const ixp::IxpEcosystem& ecosystem,
                             offload::PeerGroup group,
                             StreamSessionConfig config)
    : source_(&source),
      config_(std::move(config)),
      ingest_(endpoint_schema(analyzer), maximal_coverage(analyzer, group)),
      incremental_(analyzer, ecosystem, group) {
  if (!(source.schema() == ingest_.schema()))
    throw std::invalid_argument(
        "StreamSession: source schema != analyzer transit endpoints");
  if (config_.checkpoint_every > 0 && config_.checkpoint_path.empty())
    throw std::invalid_argument(
        "StreamSession: checkpoint cadence without a checkpoint path");
  // Start from the maximal peering set so the live view mirrors the ingest's
  // covered mask (Fig. 5b's offload series); callers can reset() to any
  // other reached set, and resume() restores the checkpointed one.
  const std::vector<ixp::IxpId> all = analyzer.all_ixps();
  incremental_.reset(all);
}

std::uint64_t StreamSession::run(std::uint64_t max_bins) {
  obs::Span span("stream.session.run");
  std::uint64_t consumed = 0;
  BinFrame frame;
  while (consumed < max_bins && source_->next(frame)) {
    ingest_.consume(frame);
    incremental_.on_bin(frame);
    ++consumed;
    if (config_.checkpoint_every > 0 &&
        ingest_.bins() % config_.checkpoint_every == 0)
      checkpoint();
  }
  return consumed;
}

void StreamSession::checkpoint() const {
  if (config_.checkpoint_path.empty())
    throw std::logic_error("StreamSession::checkpoint: no path configured");
  obs::Span span("stream.session.checkpoint");
  io::ContainerWriter container;
  io::ByteWriter ingest_bytes;
  ingest_.serialize(ingest_bytes);
  container.add_section(kSectionIngest, ingest_bytes.take());
  io::ByteWriter reached_bytes;
  reached_bytes.varint(incremental_.reached().size());
  for (ixp::IxpId id : incremental_.reached()) reached_bytes.varint(id);
  container.add_section(kSectionReached, reached_bytes.take());
  container.write_file_atomic(config_.checkpoint_path);
  if (obs::metrics_enabled()) {
    static obs::Counter checkpoints("rp.stream.checkpoints");
    checkpoints.add();
  }
}

bool StreamSession::resume() {
  if (config_.checkpoint_path.empty() ||
      !std::filesystem::exists(config_.checkpoint_path))
    return false;
  obs::Span span("stream.session.resume");
  io::ContainerReader container =
      io::ContainerReader::from_file(config_.checkpoint_path);
  io::ByteReader ingest_bytes(container.section(kSectionIngest),
                              "stream checkpoint ingest");
  StreamIngest restored = StreamIngest::deserialize(ingest_bytes);
  ingest_bytes.expect_end();
  if (!(restored.schema() == source_->schema()))
    throw io::SnapshotError(
        "stream checkpoint: schema does not match the source");
  io::ByteReader reached_bytes(container.section(kSectionReached),
                               "stream checkpoint reached set");
  std::vector<ixp::IxpId> reached(
      static_cast<std::size_t>(reached_bytes.varint()));
  for (ixp::IxpId& id : reached)
    id = static_cast<ixp::IxpId>(reached_bytes.varint());
  reached_bytes.expect_end();

  source_->seek(restored.next_bin());
  ingest_ = std::move(restored);
  incremental_.reset(reached);
  if (obs::metrics_enabled()) {
    static obs::Counter resumes("rp.stream.resumes");
    resumes.add();
  }
  return true;
}

}  // namespace rp::stream

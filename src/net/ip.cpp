#include "net/ip.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace rp::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    unsigned long octet = 0;
    if (!util::parse_u32(part, octet) || octet > 255) return std::nullopt;
    if (part.size() > 1 && part.front() == '0') return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr{bits};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (bits_ >> 24) & 0xFF,
                (bits_ >> 16) & 0xFF, (bits_ >> 8) & 0xFF, bits_ & 0xFF);
  return buf;
}

Ipv4Prefix Ipv4Prefix::make(Ipv4Addr addr, unsigned length) {
  if (length > 32) throw std::invalid_argument("Ipv4Prefix: length > 32");
  const std::uint32_t mask =
      length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  return Ipv4Prefix{Ipv4Addr{addr.to_u32() & mask}, length};
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned long len = 0;
  if (!util::parse_u32(s.substr(slash + 1), len) || len > 32)
    return std::nullopt;
  return make(*addr, static_cast<unsigned>(len));
}

Ipv4Addr Ipv4Prefix::mask() const {
  if (length_ == 0) return Ipv4Addr{0};
  return Ipv4Addr{~std::uint32_t{0} << (32 - length_)};
}

std::uint64_t Ipv4Prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Addr addr) const {
  return (addr.to_u32() & mask().to_u32()) == network_.to_u32();
}

bool Ipv4Prefix::covers(const Ipv4Prefix& other) const {
  return other.length() >= length_ && contains(other.network());
}

Ipv4Addr Ipv4Prefix::address_at(std::uint64_t index) const {
  if (index >= size()) throw std::out_of_range("Ipv4Prefix::address_at");
  return Ipv4Addr{network_.to_u32() + static_cast<std::uint32_t>(index)};
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::string Asn::to_string() const { return "AS" + std::to_string(value_); }

}  // namespace rp::net

// Deterministic carving of a supernet into child prefixes and host addresses.
//
// The scenario generator needs many disjoint address blocks: one peering-LAN
// prefix per IXP, and per-AS address space whose size enters the Fig. 10
// reachable-interfaces metric. This allocator hands out non-overlapping
// prefixes from a pool in a deterministic first-fit order.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/ip.hpp"

namespace rp::net {

/// Allocates consecutive, aligned, non-overlapping child prefixes from a
/// supernet. Throws std::length_error when the pool is exhausted.
class SubnetAllocator {
 public:
  explicit SubnetAllocator(Ipv4Prefix pool);

  /// Allocates the next free child prefix of the given length
  /// (length >= pool length). The result is aligned to its own size.
  Ipv4Prefix allocate(unsigned length);

  /// Addresses not yet covered by any allocation.
  std::uint64_t remaining() const;
  const Ipv4Prefix& pool() const { return pool_; }

 private:
  Ipv4Prefix pool_;
  std::uint64_t next_offset_ = 0;  ///< First unallocated address offset.
};

/// Hands out individual host addresses from a prefix (used to assign member
/// interface IPs inside an IXP peering LAN). Skips the network and broadcast
/// addresses for prefixes shorter than /31.
class HostAllocator {
 public:
  explicit HostAllocator(Ipv4Prefix subnet);

  Ipv4Addr allocate();
  std::uint64_t remaining() const;
  const Ipv4Prefix& subnet() const { return subnet_; }

 private:
  Ipv4Prefix subnet_;
  std::uint64_t next_index_;
  std::uint64_t end_index_;
};

}  // namespace rp::net

// IPv4 value types: addresses, prefixes, and autonomous-system numbers.
//
// The measurement study probes IP interfaces in IXP peering LANs (e.g.
// 80.249.208.0/21 at AMS-IX); the offload study attributes traffic to origin
// and destination ASes. These small, regular value types underpin both.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rp::net {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"); nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view s);

  constexpr std::uint32_t to_u32() const { return bits_; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv4 prefix (address + length) in canonical form: host bits are zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Canonicalizes by masking host bits. Requires length <= 32.
  static Ipv4Prefix make(Ipv4Addr addr, unsigned length);
  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view s);

  constexpr Ipv4Addr network() const { return network_; }
  constexpr unsigned length() const { return length_; }
  /// The netmask as an address (e.g. /24 -> 255.255.255.0).
  Ipv4Addr mask() const;
  /// Number of addresses covered: 2^(32-length).
  std::uint64_t size() const;
  /// True if `addr` falls inside this prefix.
  bool contains(Ipv4Addr addr) const;
  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const Ipv4Prefix& other) const;
  /// The i-th address in the prefix; throws std::out_of_range beyond size().
  Ipv4Addr address_at(std::uint64_t index) const;

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  constexpr Ipv4Prefix(Ipv4Addr network, unsigned length)
      : network_(network), length_(length) {}
  Ipv4Addr network_{};
  unsigned length_ = 0;
};

/// An autonomous-system number (32-bit, RFC 6793).
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_valid() const { return value_ != 0; }
  /// Renders as "AS64500".
  std::string to_string() const;

  constexpr auto operator<=>(const Asn&) const = default;

 private:
  std::uint32_t value_ = 0;  ///< 0 is reserved and used as "unset".
};

}  // namespace rp::net

template <>
struct std::hash<rp::net::Ipv4Addr> {
  std::size_t operator()(const rp::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.to_u32());
  }
};

template <>
struct std::hash<rp::net::Asn> {
  std::size_t operator()(const rp::net::Asn& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<rp::net::Ipv4Prefix> {
  std::size_t operator()(const rp::net::Ipv4Prefix& p) const noexcept {
    const std::size_t h = std::hash<std::uint32_t>{}(p.network().to_u32());
    return h ^ (std::hash<unsigned>{}(p.length()) + 0x9e3779b9 + (h << 6));
  }
};

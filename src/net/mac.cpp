#include "net/mac.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace rp::net {

MacAddr MacAddr::from_id(std::uint32_t id) {
  // 0x02 => locally administered, unicast.
  return MacAddr{{0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                  static_cast<std::uint8_t>(id >> 16),
                  static_cast<std::uint8_t>(id >> 8),
                  static_cast<std::uint8_t>(id)}};
}

std::optional<MacAddr> MacAddr::parse(std::string_view s) {
  const auto parts = util::split(s, ':');
  if (parts.size() != 6) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& p = parts[i];
    if (p.size() != 2) return std::nullopt;
    unsigned value = 0;
    for (char c : p) {
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return std::nullopt;
    }
    octets[i] = static_cast<std::uint8_t>(value);
  }
  return MacAddr{octets};
}

std::uint64_t MacAddr::to_u64() const {
  std::uint64_t v = 0;
  for (std::uint8_t o : octets_) v = (v << 8) | o;
  return v;
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace rp::net

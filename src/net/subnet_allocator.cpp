#include "net/subnet_allocator.hpp"

namespace rp::net {

SubnetAllocator::SubnetAllocator(Ipv4Prefix pool) : pool_(pool) {}

Ipv4Prefix SubnetAllocator::allocate(unsigned length) {
  if (length > 32 || length < pool_.length())
    throw std::invalid_argument("SubnetAllocator: bad child length");
  const std::uint64_t child_size = std::uint64_t{1} << (32 - length);
  // Align the offset up to the child size.
  std::uint64_t offset = (next_offset_ + child_size - 1) & ~(child_size - 1);
  if (offset + child_size > pool_.size())
    throw std::length_error("SubnetAllocator: pool " + pool_.to_string() +
                            " exhausted allocating /" +
                            std::to_string(length));
  next_offset_ = offset + child_size;
  return Ipv4Prefix::make(
      Ipv4Addr{pool_.network().to_u32() + static_cast<std::uint32_t>(offset)},
      length);
}

std::uint64_t SubnetAllocator::remaining() const {
  return pool_.size() - next_offset_;
}

HostAllocator::HostAllocator(Ipv4Prefix subnet)
    : subnet_(subnet),
      next_index_(subnet.length() >= 31 ? 0 : 1),
      end_index_(subnet.length() >= 31 ? subnet.size() : subnet.size() - 1) {}

Ipv4Addr HostAllocator::allocate() {
  if (next_index_ >= end_index_)
    throw std::length_error("HostAllocator: subnet exhausted");
  return subnet_.address_at(next_index_++);
}

std::uint64_t HostAllocator::remaining() const {
  return end_index_ - next_index_;
}

}  // namespace rp::net

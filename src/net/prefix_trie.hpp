// A binary (radix-1) trie over IPv4 prefixes with longest-prefix matching.
//
// The BGP substrate stores per-AS routing tables in this structure; the flow
// classifier uses longest-prefix match to attribute NetFlow records to origin
// and destination ASes, mirroring how the paper joins RedIRIS NetFlow with
// the ASBR BGP tables (§4.1).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/ip.hpp"

namespace rp::net {

/// Maps IPv4 prefixes to values of type T with exact and longest-prefix
/// lookups. Not thread-safe; wrap externally if shared.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value at `prefix`. Returns true if the prefix
  /// was newly inserted, false if an existing value was replaced.
  bool insert(const Ipv4Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the value at exactly `prefix`. Returns true if present.
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = descend_find(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const T* find(const Ipv4Prefix& prefix) const {
    const Node* node = descend_find(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }
  T* find(const Ipv4Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for an address; nullptr if no covering prefix.
  const T* lookup(Ipv4Addr addr) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    const std::uint32_t bits = addr.to_u32();
    for (unsigned depth = 0; depth < 32 && node != nullptr; ++depth) {
      const unsigned bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// As `lookup`, but also reports the matching prefix.
  struct Match {
    Ipv4Prefix prefix;
    const T* value;
  };
  std::optional<Match> lookup_match(Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<Match> best;
    if (node->value) best = Match{Ipv4Prefix::make(Ipv4Addr{0}, 0), &*node->value};
    const std::uint32_t bits = addr.to_u32();
    std::uint32_t accum = 0;
    for (unsigned depth = 0; depth < 32 && node != nullptr; ++depth) {
      const unsigned bit = (bits >> (31 - depth)) & 1;
      accum |= static_cast<std::uint32_t>(bit) << (31 - depth);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        best = Match{Ipv4Prefix::make(Ipv4Addr{accum}, depth + 1),
                     &*node->value};
      }
    }
    return best;
  }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  void for_each(
      const std::function<void(const Ipv4Prefix&, const T&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::array<std::unique_ptr<Node>, 2> child;
  };

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.network().to_u32();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const unsigned bit = (bits >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  const Node* descend_find(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.network().to_u32();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const unsigned bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }
  Node* descend_find(const Ipv4Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend_find(prefix));
  }

  void walk(const Node* node, std::uint32_t accum, unsigned depth,
            const std::function<void(const Ipv4Prefix&, const T&)>& fn) const {
    if (node == nullptr) return;
    if (node->value)
      fn(Ipv4Prefix::make(Ipv4Addr{accum}, depth), *node->value);
    if (depth == 32) return;
    walk(node->child[0].get(), accum, depth + 1, fn);
    walk(node->child[1].get(),
         accum | (std::uint32_t{1} << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace rp::net

// MAC addresses for the layer-2 fabric simulation.
//
// Remote peering is a layer-2 service: frames cross the IXP switching fabric
// and the remote-peering provider's pseudowire addressed by MAC, invisible to
// layer-3 tooling — which is exactly why the paper needs a delay-based
// detection method.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rp::net {

/// A 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Broadcast ff:ff:ff:ff:ff:ff.
  static constexpr MacAddr broadcast() {
    return MacAddr{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }
  /// A locally-administered unicast address derived from a 32-bit id.
  static MacAddr from_id(std::uint32_t id);
  /// Parses "aa:bb:cc:dd:ee:ff"; nullopt on malformed input.
  static std::optional<MacAddr> parse(std::string_view s);

  constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  std::uint64_t to_u64() const;
  std::string to_string() const;

  constexpr auto operator<=>(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace rp::net

template <>
struct std::hash<rp::net::MacAddr> {
  std::size_t operator()(const rp::net::MacAddr& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

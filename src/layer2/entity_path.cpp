#include "layer2/entity_path.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "bgp/route_computer.hpp"

namespace rp::layer2 {

std::string to_string(EntityKind kind) {
  switch (kind) {
    case EntityKind::kAs: return "AS";
    case EntityKind::kIxp: return "IXP";
    case EntityKind::kRemotePeeringProvider: return "remote-peering-provider";
  }
  return "unknown";
}

std::size_t EntityPath::l3_intermediaries() const {
  return static_cast<std::size_t>(
      std::count_if(intermediaries.begin(), intermediaries.end(),
                    [](const PathEntity& e) {
                      return e.kind == EntityKind::kAs;
                    }));
}

std::size_t EntityPath::invisible_intermediaries() const {
  return static_cast<std::size_t>(
      std::count_if(intermediaries.begin(), intermediaries.end(),
                    [](const PathEntity& e) { return e.invisible_on_l3; }));
}

PathEntity EntityPathAnalyzer::as_entity(net::Asn asn) const {
  PathEntity entity;
  entity.kind = EntityKind::kAs;
  entity.asn = asn;
  entity.name = graph_->contains(asn) ? graph_->node(asn).name
                                      : asn.to_string();
  entity.invisible_on_l3 = false;
  return entity;
}

EntityPath EntityPathAnalyzer::from_bgp_route(const bgp::Route& route) const {
  // Hops of a transit (or private-peering) path are private interconnects:
  // the organizations on the path are exactly the intermediate ASes.
  EntityPath path;
  if (route.as_path.size() <= 1) return path;  // Direct or origin.
  for (std::size_t i = 0; i + 1 < route.as_path.size(); ++i)
    path.intermediaries.push_back(as_entity(route.as_path[i]));
  return path;
}

EntityPath EntityPathAnalyzer::via_peering(const PeeringMediation& mediation,
                                           net::Asn peer,
                                           const bgp::Route& tail) const {
  EntityPath path;
  auto add_circuit = [this, &path](ixp::AttachmentKind kind,
                                   const std::optional<std::size_t>& provider) {
    if (kind == ixp::AttachmentKind::kRemoteViaProvider) {
      PathEntity entity;
      entity.kind = EntityKind::kRemotePeeringProvider;
      entity.invisible_on_l3 = true;
      entity.name = provider && *provider < ecosystem_->providers().size()
                        ? ecosystem_->providers()[*provider].name
                        : "remote-peering-provider";
      path.intermediaries.push_back(std::move(entity));
    } else if (kind == ixp::AttachmentKind::kPartnerIxp) {
      PathEntity entity;
      entity.kind = EntityKind::kRemotePeeringProvider;
      entity.invisible_on_l3 = true;
      entity.name = "partner-ixp-interconnect";
      path.intermediaries.push_back(std::move(entity));
    }
    // Direct colo / IP transport: the member has IP presence at the IXP;
    // no additional organization mediates the hop.
  };

  // Source side circuit, then the exchange itself, then the peer's side.
  add_circuit(mediation.left_kind, mediation.left_provider);
  {
    PathEntity entity;
    entity.kind = EntityKind::kIxp;
    entity.invisible_on_l3 = true;  // The fabric does not appear in BGP.
    entity.name = ecosystem_->ixp(mediation.ixp_id).acronym();
    path.intermediaries.push_back(std::move(entity));
  }
  add_circuit(mediation.right_kind, mediation.right_provider);

  // The peer itself mediates unless it is the destination, then the tail's
  // intermediate ASes.
  const bool peer_is_destination = tail.as_path.empty();
  if (!peer_is_destination) {
    path.intermediaries.push_back(as_entity(peer));
    for (std::size_t i = 0; i + 1 < tail.as_path.size(); ++i)
      path.intermediaries.push_back(as_entity(tail.as_path[i]));
  }
  return path;
}

FlatteningStudy::FlatteningStudy(const topology::AsGraph& graph,
                                 const ixp::IxpEcosystem& ecosystem,
                                 net::Asn vantage, const bgp::Rib& vantage_rib,
                                 const offload::OffloadAnalyzer& analyzer)
    : graph_(&graph),
      ecosystem_(&ecosystem),
      vantage_(vantage),
      rib_(&vantage_rib),
      analyzer_(&analyzer),
      paths_(graph, ecosystem) {}

namespace {

/// The vantage's cheapest remote-peering circuit into an IXP: provider
/// index, or nullopt if the ecosystem has no providers.
std::optional<std::size_t> cheapest_provider(
    const ixp::IxpEcosystem& ecosystem, const geo::City& from,
    const geo::City& to) {
  std::optional<std::size_t> best;
  util::SimDuration best_delay = util::SimDuration::days(365);
  for (std::size_t i = 0; i < ecosystem.providers().size(); ++i) {
    const auto delay = ecosystem.providers()[i].circuit_delay(from, to);
    if (delay < best_delay) {
      best_delay = delay;
      best = i;
    }
  }
  return best;
}

/// The peer's attachment at the IXP (first interface).
const ixp::MemberInterface* attachment_of(const ixp::Ixp& ixp, net::Asn peer) {
  for (const auto& iface : ixp.interfaces())
    if (iface.asn == peer) return &iface;
  return nullptr;
}

}  // namespace

std::optional<FlatteningStudy::Assignment> FlatteningStudy::assignment_for(
    net::Asn endpoint, std::span<const ixp::IxpId> ixps,
    offload::PeerGroup group) const {
  const bgp::RouteComputer computer(*graph_);
  const auto routes = computer.routes_to(endpoint);

  std::optional<Assignment> best;
  unsigned best_hops = std::numeric_limits<unsigned>::max();
  std::unordered_set<net::Asn> group_peers;
  for (net::Asn peer : analyzer_->peers_in_group(group))
    group_peers.insert(peer);

  for (ixp::IxpId id : ixps) {
    for (net::Asn member : ecosystem_->ixp(id).member_asns()) {
      if (!group_peers.contains(member)) continue;
      const auto route = routes.route_from(member);
      if (!route) continue;
      // Peering traffic is confined to the peer's customer cone (§2.2).
      if (route->source != bgp::RouteSource::kOrigin &&
          route->source != bgp::RouteSource::kCustomer)
        continue;
      const unsigned hops = route->path_length();
      if (hops < best_hops ||
          (hops == best_hops && best && member < best->peer)) {
        best_hops = hops;
        best = Assignment{member, id, *route};
      }
    }
  }
  return best;
}

FlatteningReport FlatteningStudy::compare(std::span<const ixp::IxpId> ixps,
                                          offload::PeerGroup group) const {
  FlatteningReport report;

  // Candidate (peer, first IXP in span order) pairs per offloadable
  // endpoint: expand the cones of every group peer present at a reached IXP.
  std::unordered_set<net::Asn> group_peers;
  for (net::Asn peer : analyzer_->peers_in_group(group))
    group_peers.insert(peer);
  std::unordered_map<net::Asn, std::vector<std::pair<net::Asn, ixp::IxpId>>>
      candidates;
  std::unordered_set<net::Asn> peer_seen;
  for (ixp::IxpId id : ixps) {
    for (net::Asn member : ecosystem_->ixp(id).member_asns()) {
      if (!group_peers.contains(member)) continue;
      if (!peer_seen.insert(member).second) continue;  // First IXP wins.
      for (net::Asn in_cone : graph_->customer_cone(member))
        candidates[in_cone].emplace_back(member, id);
    }
  }

  const bgp::RouteComputer computer(*graph_);
  const geo::City& home = graph_->node(vantage_).home_city;

  for (const auto& endpoint : analyzer_->transit_endpoints()) {
    const auto candidate_it = candidates.find(endpoint.asn);
    if (candidate_it == candidates.end()) continue;  // Not offloadable.
    const bgp::Route* before_route = rib_->route_to(endpoint.asn);
    if (before_route == nullptr) continue;

    // Choose the carrying peer: shortest tail, ties toward the lower ASN.
    const auto routes = computer.routes_to(endpoint.asn);
    const std::pair<net::Asn, ixp::IxpId>* chosen = nullptr;
    bgp::Route chosen_tail;
    unsigned best_hops = std::numeric_limits<unsigned>::max();
    for (const auto& candidate : candidate_it->second) {
      const auto tail = routes.route_from(candidate.first);
      if (!tail) continue;
      if (tail->source != bgp::RouteSource::kOrigin &&
          tail->source != bgp::RouteSource::kCustomer)
        continue;
      if (tail->path_length() < best_hops ||
          (tail->path_length() == best_hops && chosen != nullptr &&
           candidate.first < chosen->first)) {
        best_hops = tail->path_length();
        chosen = &candidate;
        chosen_tail = *tail;
      }
    }
    if (chosen == nullptr) continue;

    // Before: the transit path.
    const EntityPath before = paths_.from_bgp_route(*before_route);

    // After: the vantage reaches the IXP remotely; the peer attaches as its
    // membership record says.
    const ixp::Ixp& ixp = ecosystem_->ixp(chosen->second);
    PeeringMediation mediation;
    mediation.ixp_id = chosen->second;
    mediation.left_kind = ixp::AttachmentKind::kRemoteViaProvider;
    mediation.left_provider =
        cheapest_provider(*ecosystem_, home, ixp.city());
    if (const auto* iface = attachment_of(ixp, chosen->first)) {
      mediation.right_kind = iface->kind;
      mediation.right_provider = iface->provider_index;
    }
    const EntityPath after =
        paths_.via_peering(mediation, chosen->first, chosen_tail);

    ++report.flows;
    report.mean_l3_before += static_cast<double>(before.l3_intermediaries());
    report.mean_l3_after += static_cast<double>(after.l3_intermediaries());
    report.mean_org_before +=
        static_cast<double>(before.organization_intermediaries());
    report.mean_org_after +=
        static_cast<double>(after.organization_intermediaries());
    report.mean_invisible_after +=
        static_cast<double>(after.invisible_intermediaries());
    if (after.l3_intermediaries() < before.l3_intermediaries())
      ++report.l3_flatter;
    if (after.organization_intermediaries() >=
        before.organization_intermediaries())
      ++report.org_not_flatter;
    if (after.invisible_intermediaries() > 0)
      ++report.with_invisible_intermediaries;
  }

  if (report.flows > 0) {
    const double n = static_cast<double>(report.flows);
    report.mean_l3_before /= n;
    report.mean_l3_after /= n;
    report.mean_org_before /= n;
    report.mean_org_after /= n;
    report.mean_invisible_after /= n;
  }
  return report;
}

}  // namespace rp::layer2

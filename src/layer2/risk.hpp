// Multihoming reliability with invisible layer-2 intermediaries (§6).
//
// "When a provider offers transit and remote peering, buying both might not
// yield reliable multihoming": on layer 3 the two services look like
// independent paths, but if one organization operates both, a single failure
// takes both down. This module quantifies that by evaluating single-
// organization failures against three procurement configurations:
//   * dual transit (the classic redundant baseline),
//   * one transit contract plus remote peering from an independent layer-2
//     provider,
//   * one transit contract plus remote peering that shares infrastructure
//     with the same organization (the paper's warning).
// Scope: failures of the organizations the vantage directly buys from (its
// transit providers, its remote-peering provider, the reached IXPs).
// Failures deeper in the hierarchy affect all configurations alike and are
// out of scope.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "offload/analyzer.hpp"

namespace rp::layer2 {

/// How the vantage buys its connectivity.
enum class Procurement {
  /// Two transit contracts with distinct organizations.
  kDualTransit,
  /// One transit contract plus remote-peering circuits from an organization
  /// independent of the transit provider.
  kTransitPlusIndependentRemote,
  /// One transit contract plus remote-peering circuits operated by the same
  /// organization as the transit provider (shared infrastructure).
  kTransitPlusConflatedRemote,
};

std::string to_string(Procurement p);

/// Result of one single-organization failure.
struct FailureImpact {
  std::string organization;
  /// Fraction of the vantage's transit-endpoint traffic still deliverable
  /// (over any surviving service).
  double surviving_traffic_fraction = 1.0;
};

/// Reliability summary of one procurement configuration.
struct RiskReport {
  Procurement procurement = Procurement::kDualTransit;
  /// Fraction of traffic that survives *every* single-organization failure.
  double tolerant_traffic_fraction = 0.0;
  /// The worst single failure: surviving fraction and the organization.
  double worst_case_surviving = 1.0;
  std::string worst_case_organization;
  std::vector<FailureImpact> failures;
};

class MultihomingRiskStudy {
 public:
  MultihomingRiskStudy(const topology::AsGraph& graph,
                       const ixp::IxpEcosystem& ecosystem, net::Asn vantage,
                       const offload::OffloadAnalyzer& analyzer);

  /// Evaluates a procurement configuration. Remote-peering circuits reach
  /// `ixps` through provider `provider_index`, and peering follows `group`.
  /// For kDualTransit, the remote-peering arguments are ignored.
  RiskReport evaluate(Procurement procurement,
                      std::span<const ixp::IxpId> ixps,
                      offload::PeerGroup group,
                      std::size_t provider_index) const;

 private:
  const topology::AsGraph* graph_;
  const ixp::IxpEcosystem* ecosystem_;
  net::Asn vantage_;
  const offload::OffloadAnalyzer* analyzer_;
};

}  // namespace rp::layer2

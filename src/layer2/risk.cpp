#include "layer2/risk.hpp"

#include <algorithm>
#include <unordered_set>

namespace rp::layer2 {

std::string to_string(Procurement p) {
  switch (p) {
    case Procurement::kDualTransit:
      return "dual transit";
    case Procurement::kTransitPlusIndependentRemote:
      return "transit + independent remote peering";
    case Procurement::kTransitPlusConflatedRemote:
      return "transit + remote peering from the same organization";
  }
  return "unknown";
}

RiskReport MultihomingRiskStudy::evaluate(Procurement procurement,
                                          std::span<const ixp::IxpId> ixps,
                                          offload::PeerGroup group,
                                          std::size_t provider_index) const {
  RiskReport report;
  report.procurement = procurement;

  // Traffic universe: the transit endpoints and their rates.
  double total_traffic = 0.0;
  for (const auto& endpoint : analyzer_->transit_endpoints())
    total_traffic += endpoint.total_bps();
  if (total_traffic <= 0.0) return report;

  // Offloadable traffic per endpoint under the configured reach.
  std::unordered_set<net::Asn> offloadable;
  if (procurement != Procurement::kDualTransit) {
    for (net::Asn covered : analyzer_->covered_endpoints(ixps, group))
      offloadable.insert(covered);
  }
  double offloadable_traffic = 0.0;
  for (const auto& endpoint : analyzer_->transit_endpoints())
    if (offloadable.contains(endpoint.asn))
      offloadable_traffic += endpoint.total_bps();

  const auto providers = graph_->providers_of(vantage_);
  const std::string provider_name =
      provider_index < ecosystem_->providers().size()
          ? ecosystem_->providers()[provider_index].name
          : "remote-peering-provider";

  // Deliverability of an endpoint's traffic given which services survive.
  // Transit delivers everything; peering delivers the offloadable subset.
  auto surviving_fraction = [&](bool transit_up, bool peering_up) {
    if (transit_up) return 1.0;
    if (peering_up) return offloadable_traffic / total_traffic;
    return 0.0;
  };

  auto add_failure = [&report](std::string organization, double surviving) {
    report.failures.push_back({std::move(organization), surviving});
  };

  switch (procurement) {
    case Procurement::kDualTransit: {
      // Each transit organization fails alone; the other keeps delivering.
      for (net::Asn provider : providers)
        add_failure(graph_->node(provider).name,
                    providers.size() >= 2 ? 1.0 : 0.0);
      break;
    }
    case Procurement::kTransitPlusIndependentRemote: {
      // One transit contract (the first provider) plus circuits from an
      // unrelated organization.
      const net::Asn transit = providers.empty() ? net::Asn{} : providers[0];
      add_failure(graph_->contains(transit) ? graph_->node(transit).name
                                            : "transit-provider",
                  surviving_fraction(/*transit_up=*/false,
                                     /*peering_up=*/true));
      add_failure(provider_name,
                  surviving_fraction(/*transit_up=*/true,
                                     /*peering_up=*/false));
      for (ixp::IxpId id : ixps)
        add_failure(ecosystem_->ixp(id).acronym(),
                    surviving_fraction(/*transit_up=*/true,
                                       /*peering_up=*/true));
      break;
    }
    case Procurement::kTransitPlusConflatedRemote: {
      // The same organization operates the transit service and the
      // remote-peering circuits: its failure takes down both at once —
      // the redundancy visible on layer 3 is not real.
      const net::Asn transit = providers.empty() ? net::Asn{} : providers[0];
      const std::string organization =
          (graph_->contains(transit) ? graph_->node(transit).name
                                     : "transit-provider") +
          " (also operating " + provider_name + ")";
      add_failure(organization, surviving_fraction(/*transit_up=*/false,
                                                   /*peering_up=*/false));
      for (ixp::IxpId id : ixps)
        add_failure(ecosystem_->ixp(id).acronym(),
                    surviving_fraction(/*transit_up=*/true,
                                       /*peering_up=*/true));
      break;
    }
  }

  // Worst case and tolerance.
  report.worst_case_surviving = 1.0;
  for (const auto& failure : report.failures) {
    if (failure.surviving_traffic_fraction < report.worst_case_surviving) {
      report.worst_case_surviving = failure.surviving_traffic_fraction;
      report.worst_case_organization = failure.organization;
    }
  }
  // Traffic tolerant to every single failure = the worst case's surviving
  // share (deliverability here is monotone: the traffic surviving the worst
  // failure survives the others too).
  report.tolerant_traffic_fraction = report.worst_case_surviving;
  return report;
}

MultihomingRiskStudy::MultihomingRiskStudy(
    const topology::AsGraph& graph, const ixp::IxpEcosystem& ecosystem,
    net::Asn vantage, const offload::OffloadAnalyzer& analyzer)
    : graph_(&graph),
      ecosystem_(&ecosystem),
      vantage_(vantage),
      analyzer_(&analyzer) {}

}  // namespace rp::layer2

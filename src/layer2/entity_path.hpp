// Layer-2-aware path accounting: the paper's headline, quantified.
//
// On layer 3, a peering interconnection that replaces a transit path makes
// the Internet flatter — fewer intermediary ASes. But when the peering is
// remote, the bypassed layer-3 transit provider is replaced by a layer-2
// remote-peering provider (plus the IXP itself), which BGP cannot see. §6
// calls for topology models that represent those layer-2 organizations as
// economic entities; this module provides one. For any delivery path it
// counts intermediaries in both views:
//   * the layer-3 view: intermediate ASes on the BGP path;
//   * the organization view: intermediate ASes plus every layer-2 entity
//     that mediates a hop — the IXP switching fabric for public peering,
//     and the remote-peering provider(s) carrying either side's circuit.
// "More peering without Internet flattening" is then the observation that
// adopting remote peering reduces the first number but not the second.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.hpp"
#include "ixp/ixp.hpp"
#include "offload/analyzer.hpp"

namespace rp::layer2 {

/// Kinds of economic entities that can sit on a delivery path.
enum class EntityKind {
  kAs,                     ///< A layer-3 network (visible in BGP).
  kIxp,                    ///< A layer-2 switching fabric.
  kRemotePeeringProvider,  ///< A layer-2 circuit operator.
};

std::string to_string(EntityKind kind);

/// One entity occurrence on a path.
struct PathEntity {
  EntityKind kind = EntityKind::kAs;
  std::string name;
  /// Set for kAs entities.
  net::Asn asn;
  /// True when the entity is invisible to layer-3 measurement (BGP,
  /// traceroute): all layer-2 entities are.
  bool invisible_on_l3 = false;
};

/// A delivery path with both accounting views.
struct EntityPath {
  /// Every intermediary organization between the endpoints, in order.
  std::vector<PathEntity> intermediaries;

  /// Intermediate ASes only — what a layer-3 topology would count.
  std::size_t l3_intermediaries() const;
  /// All intermediary organizations, including layer-2 entities.
  std::size_t organization_intermediaries() const {
    return intermediaries.size();
  }
  /// Layer-2 organizations on the path (invisible to BGP/traceroute).
  std::size_t invisible_intermediaries() const;
};

/// How one network attaches to one IXP where a peering is struck.
struct PeeringMediation {
  ixp::IxpId ixp_id = 0;
  /// Attachment of each side; remote attachments add the circuit's
  /// remote-peering provider to the organization view.
  ixp::AttachmentKind left_kind = ixp::AttachmentKind::kDirectColo;
  std::optional<std::size_t> left_provider;
  ixp::AttachmentKind right_kind = ixp::AttachmentKind::kDirectColo;
  std::optional<std::size_t> right_provider;
};

/// Builds entity paths over a fixed world.
class EntityPathAnalyzer {
 public:
  EntityPathAnalyzer(const topology::AsGraph& graph,
                     const ixp::IxpEcosystem& ecosystem)
      : graph_(&graph), ecosystem_(&ecosystem) {}

  /// The organization view of an existing BGP route whose hops are private
  /// interconnections (transit or private peering): the intermediaries are
  /// exactly the intermediate ASes.
  EntityPath from_bgp_route(const bgp::Route& route) const;

  /// The organization view of a path that starts with a (possibly remote)
  /// peering hop at an IXP and continues with the peer's route to the
  /// destination: source =IXP= peer -> ... -> destination.
  /// `tail` is the peer's route toward the destination (customer route).
  EntityPath via_peering(const PeeringMediation& mediation, net::Asn peer,
                         const bgp::Route& tail) const;

 private:
  PathEntity as_entity(net::Asn asn) const;

  const topology::AsGraph* graph_;
  const ixp::IxpEcosystem* ecosystem_;
};

/// Summary of a flattening comparison over a set of flows.
struct FlatteningReport {
  std::size_t flows = 0;  ///< Offloaded endpoint networks examined.
  double mean_l3_before = 0.0;
  double mean_l3_after = 0.0;
  double mean_org_before = 0.0;
  double mean_org_after = 0.0;
  /// Flows whose layer-3 intermediary count strictly decreased (the
  /// "flattening" a BGP-based study would report).
  std::size_t l3_flatter = 0;
  /// Flows whose organization-level count did NOT decrease.
  std::size_t org_not_flatter = 0;
  /// Flows whose new path crosses at least one layer-2 organization that is
  /// invisible to layer-3 measurement.
  std::size_t with_invisible_intermediaries = 0;
  /// Mean invisible intermediaries per offloaded flow after adoption.
  double mean_invisible_after = 0.0;
};

/// Simulates the vantage network adopting remote peering at a set of IXPs
/// (peering with every eligible member of `group` there) and compares the
/// two accounting views before and after, traffic-weighted per endpoint
/// network. The vantage reaches every IXP remotely — that is the scenario
/// the paper studies — using the cheapest provider circuit from its home
/// city; peers contribute their own attachment kinds.
class FlatteningStudy {
 public:
  FlatteningStudy(const topology::AsGraph& graph,
                  const ixp::IxpEcosystem& ecosystem, net::Asn vantage,
                  const bgp::Rib& vantage_rib,
                  const offload::OffloadAnalyzer& analyzer);

  /// Runs the comparison for remote-peering adoption at `ixps` under
  /// `group`. Endpoints not offloadable at those IXPs keep their transit
  /// paths and are excluded from the per-flow deltas.
  FlatteningReport compare(std::span<const ixp::IxpId> ixps,
                           offload::PeerGroup group) const;

  /// The peer chosen to carry an endpoint's traffic under the adoption
  /// (smallest resulting AS path, ties toward the lower peer ASN), with the
  /// IXP where the peering is struck. Returns nullopt when not offloadable.
  struct Assignment {
    net::Asn peer;
    ixp::IxpId ixp_id;
    bgp::Route tail;  ///< Peer's (customer) route to the endpoint.
  };
  std::optional<Assignment> assignment_for(net::Asn endpoint,
                                           std::span<const ixp::IxpId> ixps,
                                           offload::PeerGroup group) const;

 private:
  const topology::AsGraph* graph_;
  const ixp::IxpEcosystem* ecosystem_;
  net::Asn vantage_;
  const bgp::Rib* rib_;
  const offload::OffloadAnalyzer* analyzer_;
  EntityPathAnalyzer paths_;
};

}  // namespace rp::layer2

#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "core/config_fields.hpp"
#include "io/container.hpp"
#include "util/varint.hpp"

namespace rp::serve {

namespace {

/// Bounds-checked payload reader: io::ByteReader with its SnapshotError
/// rethrown as ProtocolError, so serve callers never see snapshot errors.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : reader_(payload, "frame") {}

  std::uint8_t u8() { return guard([&] { return reader_.u8(); }); }
  std::uint64_t varint() { return guard([&] { return reader_.varint(); }); }
  double f64() { return guard([&] { return reader_.f64(); }); }
  std::string str() { return guard([&] { return reader_.str(); }); }
  void expect_end() {
    guard([&] {
      reader_.expect_end();
      return 0;
    });
  }

 private:
  template <typename Fn>
  auto guard(Fn&& fn) -> decltype(fn()) {
    try {
      return fn();
    } catch (const io::SnapshotError& e) {
      throw ProtocolError(std::string("malformed payload: ") + e.what());
    }
  }
  io::ByteReader reader_;
};

void encode_world(io::ByteWriter& w, const WorldSpec& world) {
  w.u8(world.fast ? 1 : 0);
  w.varint(world.fields.size());
  for (const auto& [field, value] : world.fields) {
    w.str(field);
    w.str(value);
  }
}

WorldSpec decode_world(PayloadReader& r) {
  WorldSpec world;
  world.fast = r.u8() != 0;
  const std::uint64_t n = r.varint();
  world.fields.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string field = r.str();
    std::string value = r.str();
    world.fields.emplace_back(std::move(field), std::move(value));
  }
  return world;
}

void encode_prices(io::ByteWriter& w, const EconPrices& prices) {
  w.f64(prices.p);
  w.f64(prices.g);
  w.f64(prices.u);
  w.f64(prices.h);
  w.f64(prices.v);
}

EconPrices decode_prices(PayloadReader& r) {
  EconPrices prices;
  prices.p = r.f64();
  prices.g = r.f64();
  prices.u = r.f64();
  prices.h = r.f64();
  prices.v = r.f64();
  return prices;
}

void encode_strlist(io::ByteWriter& w, const std::vector<std::string>& list) {
  w.varint(list.size());
  for (const std::string& s : list) w.str(s);
}

std::vector<std::string> decode_strlist(PayloadReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<std::string> list;
  list.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) list.push_back(r.str());
  return list;
}

}  // namespace

core::ScenarioConfig WorldSpec::resolve() const {
  core::ScenarioConfig config;
  if (fast) core::apply_fast_mode(config);
  for (const auto& [field, value] : fields)
    core::set_config_field(config, field, value);
  return config;
}

std::string_view Response::field(std::string_view key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return v;
  return {};
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string format_double_or_null(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v);
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  io::ByteWriter w;
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(request.type));
  w.varint(request.id);
  switch (request.type) {
    case RequestType::kPing:
      w.str(request.token);
      break;
    case RequestType::kWorldInfo:
    case RequestType::kSpread:
      encode_world(w, request.world);
      break;
    case RequestType::kOffloadCurve:
      encode_world(w, request.world);
      w.u8(request.group);
      w.varint(request.max_steps);
      break;
    case RequestType::kViability:
      encode_world(w, request.world);
      encode_prices(w, request.prices);
      w.u8(request.fitted_decay ? 1 : 0);
      if (!request.fitted_decay) w.f64(request.decay);
      break;
    case RequestType::kWhatIf:
      encode_world(w, request.world);
      w.u8(request.whatif_mode);
      if (request.whatif_mode == 1) {
        encode_prices(w, request.prices);
        encode_prices(w, request.variant);
      } else {
        w.u8(request.group);
        encode_strlist(w, request.reached_ixps);
        encode_strlist(w, request.added_ixps);
      }
      break;
    case RequestType::kShutdown:
      break;
    case RequestType::kStats:
      w.varint(request.stats_window);
      break;
    case RequestType::kWorldAtEpoch:
      encode_world(w, request.world);
      w.str(request.timeline);
      w.varint(request.epoch);
      break;
    case RequestType::kEpochSeries:
      encode_world(w, request.world);
      w.str(request.timeline);
      w.u8(request.group);
      w.varint(request.max_steps);
      break;
  }
  return std::move(w).take();
}

Request decode_request(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion)
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  Request request;
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(RequestType::kPing) ||
      type > static_cast<std::uint8_t>(RequestType::kEpochSeries))
    throw ProtocolError("unknown request type " + std::to_string(type));
  request.type = static_cast<RequestType>(type);
  request.id = r.varint();
  switch (request.type) {
    case RequestType::kPing:
      request.token = r.str();
      break;
    case RequestType::kWorldInfo:
    case RequestType::kSpread:
      request.world = decode_world(r);
      break;
    case RequestType::kOffloadCurve:
      request.world = decode_world(r);
      request.group = r.u8();
      request.max_steps = r.varint();
      break;
    case RequestType::kViability:
      request.world = decode_world(r);
      request.prices = decode_prices(r);
      request.fitted_decay = r.u8() != 0;
      if (!request.fitted_decay) request.decay = r.f64();
      break;
    case RequestType::kWhatIf:
      request.world = decode_world(r);
      request.whatif_mode = r.u8();
      if (request.whatif_mode == 1) {
        request.prices = decode_prices(r);
        request.variant = decode_prices(r);
      } else if (request.whatif_mode == 2) {
        request.group = r.u8();
        request.reached_ixps = decode_strlist(r);
        request.added_ixps = decode_strlist(r);
      } else {
        throw ProtocolError("unknown what-if mode " +
                            std::to_string(request.whatif_mode));
      }
      break;
    case RequestType::kShutdown:
      break;
    case RequestType::kStats:
      request.stats_window = r.varint();
      break;
    case RequestType::kWorldAtEpoch:
      request.world = decode_world(r);
      request.timeline = r.str();
      request.epoch = r.varint();
      break;
    case RequestType::kEpochSeries:
      request.world = decode_world(r);
      request.timeline = r.str();
      request.group = r.u8();
      request.max_steps = r.varint();
      break;
  }
  r.expect_end();
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  io::ByteWriter w;
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.varint(response.id);
  if (response.status == Status::kOk) {
    w.varint(response.fields.size());
    for (const auto& [key, value] : response.fields) {
      w.str(key);
      w.str(value);
    }
  } else {
    w.str(response.message);
  }
  return std::move(w).take();
}

Response decode_response(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion)
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  Response response;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kBusy))
    throw ProtocolError("unknown response status " + std::to_string(status));
  response.status = static_cast<Status>(status);
  response.id = r.varint();
  if (response.status == Status::kOk) {
    const std::uint64_t n = r.varint();
    response.fields.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = r.str();
      std::string value = r.str();
      response.fields.emplace_back(std::move(key), std::move(value));
    }
  } else {
    response.message = r.str();
  }
  r.expect_end();
  return response;
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload)
    throw ProtocolError("frame payload of " + std::to_string(payload.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFramePayload) + "-byte ceiling");
  util::varint_encode(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

std::optional<std::pair<std::size_t, std::span<const std::uint8_t>>>
try_parse_frame(std::span<const std::uint8_t> buffer) {
  const util::VarintResult length = util::varint_decode(buffer);
  if (length.status == util::VarintStatus::kTruncated) return std::nullopt;
  if (length.status == util::VarintStatus::kOverflow)
    throw ProtocolError("malformed frame length varint");
  if (length.value > kMaxFramePayload)
    throw ProtocolError("frame payload of " + std::to_string(length.value) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFramePayload) + "-byte ceiling");
  const std::size_t total =
      length.consumed + static_cast<std::size_t>(length.value);
  if (buffer.size() < total) return std::nullopt;
  return std::make_pair(
      total, buffer.subspan(length.consumed,
                            static_cast<std::size_t>(length.value)));
}

}  // namespace rp::serve

// WorldPool — the daemon's warm-world residency layer.
//
// A World is a resident core::Scenario plus the study artifacts queries
// need, each computed at most once per residency and cached for the world's
// lifetime (the §4 offload study, its greedy curve, and the §3 spread
// study). The pool keys worlds by their config digest (io::config_digest),
// keeps at most `capacity` of them resident with LRU eviction, and
// single-flights loading: concurrent acquires of the same digest share one
// Scenario::build_cached call — the builders' snapshot cache does the
// cross-process caching, the pool does the in-process residency.
//
// Eviction drops the pool's reference only; in-flight requests keep evicted
// worlds alive through their shared_ptr until they finish.
//
// Counters: rp.serve.pool.hits / .misses / .waits (acquires that joined an
// in-flight load) / .evictions, plus the rp.serve.pool.resident gauge.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "stream/incremental.hpp"

namespace rp::serve {

/// A resident world. The scenario is immutable; the study accessors build
/// lazily (single-flight via the entry mutex) and cache for the lifetime of
/// the residency. Thread-safe.
class World {
 public:
  World(core::Scenario scenario, std::uint64_t digest,
        core::SnapshotCacheResult cache_result);

  const core::Scenario& scenario() const { return scenario_; }
  std::uint64_t digest() const { return digest_; }
  const core::SnapshotCacheResult& cache_result() const {
    return cache_result_;
  }

  /// The §4 study (traffic matrix, RIB, offload analyzer). Built on first
  /// call; later callers block until it is ready, then share it.
  const core::OffloadStudy& offload() const;

  /// The greedy all-IXP expansion (group 4, 20 steps) — the decay-fit input
  /// for viability queries.
  const std::vector<offload::GreedyStep>& greedy_curve() const;

  /// The §3 study (campaigns + filters + classification).
  const core::SpreadStudy& spread() const;

  /// Exclusive lease on the per-group incremental what-if engine
  /// (rp::stream::IncrementalOffload over the offload analyzer's cached
  /// coverage masks). Built on first use per group; the lease's lock
  /// serializes the engine's delta state across request threads, so a
  /// what-if is answered by O(one mask) coverage-count transitions instead
  /// of a full potential recompute.
  struct WhatIfLease {
    std::unique_lock<std::mutex> lock;
    stream::IncrementalOffload* engine = nullptr;
  };
  WhatIfLease what_if_engine(offload::PeerGroup group) const;

  /// Lower-bound estimate of this residency's memory footprint: the world's
  /// snapshot-file size (a good proxy for the deserialized scenario) plus
  /// the directly measurable footprint of each artifact built so far. Used
  /// by the stats surface; not an allocator-exact number.
  std::size_t resident_bytes() const;

 private:
  core::Scenario scenario_;
  std::uint64_t digest_;
  core::SnapshotCacheResult cache_result_;
  std::size_t snapshot_bytes_ = 0;

  mutable std::mutex mutex_;
  mutable std::unique_ptr<core::OffloadStudy> offload_;
  mutable std::unique_ptr<std::vector<offload::GreedyStep>> greedy_;
  mutable std::unique_ptr<core::SpreadStudy> spread_;

  /// Per-group what-if engines, indexed by static_cast of PeerGroup. Each
  /// slot has its own mutex (the lease lock), taken after mutex_ never
  /// before it.
  mutable std::array<std::mutex, 5> whatif_mutexes_;
  mutable std::array<std::unique_ptr<stream::IncrementalOffload>, 5> whatif_;
};

class WorldPool {
 public:
  /// `capacity` >= 1 resident worlds; scenarios build through
  /// Scenario::build_cached against `cache_dir`.
  WorldPool(std::size_t capacity, std::filesystem::path cache_dir);

  /// Returns the resident world for `config`, loading it if necessary.
  /// Concurrent acquires of one digest share a single build (single-flight);
  /// a failed build propagates to the acquire that ran it, while waiters
  /// retry. May evict the least-recently-used resident world.
  std::shared_ptr<const World> acquire(const core::ScenarioConfig& config);

  std::size_t capacity() const { return capacity_; }
  /// Currently resident (ready) worlds.
  std::size_t resident() const;
  const std::filesystem::path& cache_dir() const { return cache_dir_; }

  /// Per-entry accounting for the stats surface.
  struct EntryStats {
    std::uint64_t digest = 0;
    std::uint64_t hits = 0;       ///< Acquires served from residency.
    std::uint64_t last_used = 0;  ///< Pool use-clock tick (higher = fresher).
    bool ready = false;           ///< False while the load is in flight.
    std::size_t resident_bytes = 0;  ///< World::resident_bytes (0 in flight).
  };

  /// One EntryStats per slot (resident or in flight), most recently used
  /// first; ties (never expected — the use clock is unique) break by digest.
  std::vector<EntryStats> entry_stats() const;

 private:
  struct Slot {
    std::shared_ptr<const World> world;  ///< Set when ready.
    bool ready = false;
    std::uint64_t last_used = 0;
    std::uint64_t hits = 0;
  };

  void evict_over_capacity_locked();

  std::size_t capacity_;
  std::filesystem::path cache_dir_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> slots_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace rp::serve

#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rp::serve {

Client Client::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw ClientError(ClientErrorClass::kConnect,
                      std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ClientError(ClientErrorClass::kConnect,
                      "unparsable host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ClientError(ClientErrorClass::kConnect,
                      "connect " + host + ":" + std::to_string(port) + ": " +
                          why);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_bytes(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw ClientError(ClientErrorClass::kConnect,
                        std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> Client::read_payload() {
  std::uint8_t chunk[4096];
  for (;;) {
    std::optional<std::pair<std::size_t, std::span<const std::uint8_t>>> frame;
    try {
      frame = try_parse_frame(buffer_);
    } catch (const ProtocolError& e) {
      throw ClientError(ClientErrorClass::kProtocol, e.what());
    }
    if (frame) {
      std::vector<std::uint8_t> payload(frame->second.begin(),
                                        frame->second.end());
      buffer_.erase(
          buffer_.begin(),
          buffer_.begin() + static_cast<std::ptrdiff_t>(frame->first));
      return payload;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw ClientError(ClientErrorClass::kConnect,
                        n == 0 ? "daemon closed the connection"
                               : std::string("recv: ") + std::strerror(errno));
    }
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

std::vector<std::uint8_t> Client::call_raw(const Request& request) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(request));
  send_bytes(frame);
  return read_payload();
}

Response Client::call(const Request& request) {
  const std::vector<std::uint8_t> payload = call_raw(request);
  try {
    return decode_response(payload);
  } catch (const ProtocolError& e) {
    throw ClientError(ClientErrorClass::kProtocol, e.what());
  }
}

}  // namespace rp::serve

#include "serve/executor.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/viability_study.hpp"
#include "econ/cost_model.hpp"
#include "evolve/engine.hpp"
#include "evolve/timeline.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "offload/peer_groups.hpp"

namespace rp::serve {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

offload::PeerGroup to_group(std::uint8_t group) {
  if (group < 1 || group > 4)
    throw std::invalid_argument("peer group must be 1..4, got " +
                                std::to_string(group));
  return static_cast<offload::PeerGroup>(group);
}

econ::CostParameters to_params(const EconPrices& prices, double decay) {
  econ::CostParameters params;
  params.transit_price = prices.p;
  params.direct_fixed = prices.g;
  params.direct_unit = prices.u;
  params.remote_fixed = prices.h;
  params.remote_unit = prices.v;
  params.decay = decay;
  return params;
}

void emit(Response& response, std::string key, std::string value) {
  response.fields.emplace_back(std::move(key), std::move(value));
}

void emit_f(Response& response, std::string key, double value) {
  emit(response, std::move(key), format_double(value));
}

void exec_world_info(const Request&, const World& world, Response& response) {
  const core::Scenario& scenario = world.scenario();
  emit(response, "world.digest", hex16(world.digest()));
  emit(response, "world.ases", fmt_u64(scenario.graph().as_count()));
  emit(response, "world.ixps", fmt_u64(scenario.ecosystem().ixps().size()));
  std::size_t interfaces = 0;
  for (const auto& ixp : scenario.ecosystem().ixps())
    interfaces += ixp.interfaces().size();
  emit(response, "world.interfaces", fmt_u64(interfaces));
  emit(response, "world.measured_ixps",
       fmt_u64(scenario.measured_ixps().size()));
  emit(response, "world.vantage_asn", fmt_u64(scenario.vantage().value()));
  const char* outcome = "hit";
  switch (world.cache_result().outcome) {
    case core::SnapshotCacheResult::Outcome::kHit:
      outcome = "hit";
      break;
    case core::SnapshotCacheResult::Outcome::kMiss:
      outcome = "miss";
      break;
    case core::SnapshotCacheResult::Outcome::kFallback:
      outcome = "fallback";
      break;
  }
  emit(response, "world.cache", outcome);
}

void exec_offload_curve(const Request& request, const World& world,
                        Response& response) {
  const core::OffloadStudy& study = world.offload();
  const offload::OffloadAnalyzer& analyzer = study.analyzer();
  const auto steps = analyzer.greedy_by_traffic(
      to_group(request.group),
      static_cast<std::size_t>(request.max_steps));
  emit_f(response, "offload.initial_bps",
         analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps());
  emit(response, "offload.steps", fmt_u64(steps.size()));
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::string prefix = "step." + std::to_string(i);
    emit(response, prefix + ".acronym", steps[i].acronym);
    emit_f(response, prefix + ".gained_bps", steps[i].gained);
    emit_f(response, prefix + ".remaining_bps", steps[i].remaining);
  }
}

core::ViabilityStudy viability_for(const Request& request,
                                   const World& world) {
  if (!request.fitted_decay)
    return core::ViabilityStudy::from_decay(
        request.decay, to_params(request.prices, request.decay));
  const offload::OffloadAnalyzer& analyzer = world.offload().analyzer();
  return core::ViabilityStudy::from_greedy_curve(
      world.greedy_curve(),
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps(),
      to_params(request.prices, 0.0));
}

void exec_viability(const Request& request, const World& world,
                    Response& response) {
  const core::ViabilityStudy study = viability_for(request, world);
  emit_f(response, "viability.decay", study.fitted_decay());
  emit(response, "viability.viable", study.remote_viable() ? "1" : "0");
  emit_f(response, "viability.optimal_n", study.optimal_direct_n());
  emit_f(response, "viability.optimal_m", study.optimal_remote_m());
  const econ::CostModel& model = study.model();
  emit_f(response, "viability.cost_without_remote",
         model.cost_without_remote(study.optimal_direct_n()));
  emit_f(response, "viability.cost_with_remote",
         model.total_cost(study.optimal_direct_n(), study.optimal_remote_m()));
  emit_f(response, "viability.critical_decay", model.critical_decay());
}

void exec_spread(const Request&, const World& world, Response& response) {
  const measure::SpreadReport& report = world.spread().report();
  emit(response, "spread.probed", fmt_u64(report.total_probed()));
  emit(response, "spread.analyzed", fmt_u64(report.total_analyzed()));
  emit(response, "spread.identified_networks",
       fmt_u64(report.identified_networks()));
  emit(response, "spread.remote_networks", fmt_u64(report.remote_networks()));
  emit_f(response, "spread.ixps_with_remote_fraction",
         report.ixps_with_remote_fraction());
}

void emit_econ_point(Response& response, const std::string& prefix,
                     const econ::CostModel& model) {
  emit(response, prefix + ".viable", model.remote_viable() ? "1" : "0");
  emit_f(response, prefix + ".optimal_n", model.optimal_direct_n());
  emit_f(response, prefix + ".optimal_m", model.optimal_remote_m());
  emit_f(response, prefix + ".cost",
         model.total_cost(model.optimal_direct_n(), model.optimal_remote_m()));
}

std::vector<ixp::IxpId> resolve_ixps(const core::Scenario& scenario,
                                     const std::vector<std::string>& acronyms) {
  std::vector<ixp::IxpId> ids;
  ids.reserve(acronyms.size());
  for (const std::string& acronym : acronyms) {
    const ixp::Ixp* ixp = scenario.ecosystem().find(acronym);
    if (ixp == nullptr)
      throw std::invalid_argument("unknown IXP acronym '" + acronym + "'");
    ids.push_back(ixp->id());
  }
  return ids;
}

void exec_what_if(const Request& request, const World& world,
                  Response& response) {
  if (request.whatif_mode == 1) {
    // Econ what-if: both parameter sets against the world's fitted decay.
    const core::ViabilityStudy base = viability_for(request, world);
    const double decay = base.fitted_decay();
    const econ::CostModel variant(to_params(request.variant, decay));
    emit_f(response, "whatif.decay", decay);
    emit_econ_point(response, "base", base.model());
    emit_econ_point(response, "variant", variant);
    emit_f(response, "whatif.cost_delta",
           variant.total_cost(variant.optimal_direct_n(),
                              variant.optimal_remote_m()) -
               base.model().total_cost(base.optimal_direct_n(),
                                       base.optimal_remote_m()));
    return;
  }
  // Peering-set what-if: the offload potential of reaching `added_ixps` on
  // top of `reached_ixps`, answered by the world's incremental engine — a
  // coverage-count delta per IXP instead of re-unioning masks per query.
  // Blockwise sums are a pure function of the covered set, so the response
  // bytes are independent of what-if ordering across clients.
  const offload::PeerGroup group = to_group(request.group);
  const std::vector<ixp::IxpId> reached =
      resolve_ixps(world.scenario(), request.reached_ixps);
  const std::vector<ixp::IxpId> added =
      resolve_ixps(world.scenario(), request.added_ixps);
  World::WhatIfLease lease = world.what_if_engine(group);
  stream::IncrementalOffload& engine = *lease.engine;
  engine.reset(reached);
  const offload::Potential base = engine.potential();
  const offload::Potential whatif = engine.what_if(added);
  emit_f(response, "base.offload_bps", base.total_bps());
  emit(response, "base.covered", fmt_u64(base.covered_networks));
  emit_f(response, "whatif.offload_bps", whatif.total_bps());
  emit(response, "whatif.covered", fmt_u64(whatif.covered_networks));
  emit_f(response, "whatif.gained_bps",
         whatif.total_bps() - base.total_bps());
}

/// Parses a request's timeline and checks it targets the request's world:
/// the pooled scenario must carry exactly the config the timeline's base
/// lines resolve to, or every epoch would silently describe a different
/// world than the one the client addressed.
evolve::Timeline timeline_for(const Request& request, const World& world) {
  evolve::Timeline timeline = evolve::parse_timeline(request.timeline);
  if (io::config_digest(world.scenario().config()) !=
      io::config_digest(timeline.base_config()))
    throw std::invalid_argument(
        "timeline base config does not match the request's world spec "
        "(world " + io::config_digest_hex(world.scenario().config()) +
        ", timeline base " +
        io::config_digest_hex(timeline.base_config()) + ")");
  return timeline;
}

void emit_epoch_composition(Response& response, const std::string& prefix,
                            const evolve::EpochState& state) {
  emit(response, prefix + ".label", state.label);
  emit(response, prefix + ".events", fmt_u64(state.events));
  emit(response, prefix + ".joins", fmt_u64(state.joins));
  emit(response, prefix + ".leaves", fmt_u64(state.leaves));
  emit(response, prefix + ".new_ixps", fmt_u64(state.new_ixps));
  emit(response, prefix + ".stashed", fmt_u64(state.stashed));
  emit(response, prefix + ".ixps", fmt_u64(state.ecosystem.ixps().size()));
  std::size_t interfaces = 0;
  std::size_t remote = 0;
  for (const ixp::Ixp& ixp : state.ecosystem.ixps()) {
    interfaces += ixp.interfaces().size();
    for (const ixp::MemberInterface& iface : ixp.interfaces())
      remote += iface.is_remote_ground_truth() ? 1 : 0;
  }
  emit(response, prefix + ".interfaces", fmt_u64(interfaces));
  emit(response, prefix + ".remote_interfaces", fmt_u64(remote));
  emit_f(response, prefix + ".traffic_scale", state.traffic_scale);
}

void exec_world_at_epoch(const Request& request, const World& world,
                         Response& response) {
  const evolve::Timeline timeline = timeline_for(request, world);
  if (request.epoch >= timeline.epochs.size())
    throw std::invalid_argument(
        "epoch " + std::to_string(request.epoch) + " out of range (timeline '" +
        timeline.name + "' has " + std::to_string(timeline.epochs.size()) +
        " epochs)");
  evolve::EpochTimeline engine(timeline, world.scenario());
  const std::size_t k = static_cast<std::size_t>(request.epoch);
  const evolve::EpochState& state = engine.state_at(k);
  emit(response, "timeline.name", timeline.name);
  emit(response, "timeline.digest", evolve::timeline_digest_hex(timeline));
  emit(response, "epoch.index", fmt_u64(k));
  emit_epoch_composition(response, "epoch", state);
}

void exec_epoch_series(const Request& request, const World& world,
                       Response& response) {
  const evolve::Timeline timeline = timeline_for(request, world);
  const offload::PeerGroup group = to_group(request.group);
  evolve::EpochTimeline engine(timeline, world.scenario());
  emit(response, "timeline.name", timeline.name);
  emit(response, "timeline.digest", evolve::timeline_digest_hex(timeline));
  emit(response, "series.epochs", fmt_u64(engine.epoch_count()));
  for (std::size_t k = 0; k < engine.epoch_count(); ++k) {
    const std::string prefix = "epoch." + std::to_string(k);
    emit_epoch_composition(response, prefix, engine.state_at(k));
    // The §4 numbers over the epoch overlay — same study entry point a plain
    // world query uses, so the bytes are RP_THREADS-independent.
    const core::OffloadStudy study = core::OffloadStudy::run(
        engine.view_at(k), engine.study_config_at(k));
    const offload::OffloadAnalyzer& analyzer = study.analyzer();
    const double transit_bps =
        analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
    const auto curve = analyzer.greedy_by_traffic(
        group, static_cast<std::size_t>(request.max_steps));
    emit_f(response, prefix + ".transit_bps", transit_bps);
    emit(response, prefix + ".greedy_picked", fmt_u64(curve.size()));
    emit_f(response, prefix + ".offload_fraction",
           !curve.empty() && transit_bps > 0.0
               ? (transit_bps - curve.back().remaining) / transit_bps
               : 0.0);
  }
}

}  // namespace

ArtifactNeeds artifact_needs(const Request& request) {
  ArtifactNeeds needs;
  switch (request.type) {
    case RequestType::kOffloadCurve:
      needs.offload = true;
      break;
    case RequestType::kViability:
      needs.offload = needs.greedy = request.fitted_decay;
      break;
    case RequestType::kSpread:
      needs.spread = true;
      break;
    case RequestType::kWhatIf:
      needs.offload = true;
      needs.greedy = request.whatif_mode == 1;
      break;
    default:
      break;
  }
  return needs;
}

void prewarm(const Request& request, const World* world) {
  if (world == nullptr) return;
  const ArtifactNeeds needs = artifact_needs(request);
  try {
    if (needs.offload) world->offload();
    if (needs.greedy) world->greedy_curve();
    if (needs.spread) world->spread();
  } catch (const std::exception&) {
    // execute_request reports the failure in its own error response.
  }
}

Response execute_request(const Request& request, const World* world) {
  static obs::Counter executed("rp.serve.requests.executed");
  static obs::Counter failed("rp.serve.requests.failed");
  Response response;
  response.id = request.id;
  try {
    switch (request.type) {
      case RequestType::kPing:
        response.fields.emplace_back("token", request.token);
        break;
      case RequestType::kShutdown:
        response.fields.emplace_back("shutdown", "1");
        break;
      case RequestType::kStats:
        // Answered inline by the daemon, which owns the queue/pool state the
        // report describes; reaching the executor means a worldless driver
        // (tests) sent one, and that is an error, not a crash.
        throw std::runtime_error("stats requests are answered by the daemon");
      default: {
        if (world == nullptr)
          throw std::runtime_error("no resident world for request");
        switch (request.type) {
          case RequestType::kWorldInfo:
            exec_world_info(request, *world, response);
            break;
          case RequestType::kOffloadCurve:
            exec_offload_curve(request, *world, response);
            break;
          case RequestType::kViability:
            exec_viability(request, *world, response);
            break;
          case RequestType::kSpread:
            exec_spread(request, *world, response);
            break;
          case RequestType::kWhatIf:
            exec_what_if(request, *world, response);
            break;
          case RequestType::kWorldAtEpoch:
            exec_world_at_epoch(request, *world, response);
            break;
          case RequestType::kEpochSeries:
            exec_epoch_series(request, *world, response);
            break;
          default:
            throw std::runtime_error("unhandled request type");
        }
      }
    }
    executed.add();
  } catch (const std::exception& e) {
    response.status = Status::kError;
    response.fields.clear();
    response.message = e.what();
    failed.add();
  }
  return response;
}

}  // namespace rp::serve

// The query executor: a pure function from (decoded request, resident
// world) to a Response. Split from the daemon so tests can drive every
// request type without sockets, and so responses are trivially deterministic
// — the outcome depends only on the request and the world, never on
// scheduling, which is what makes answers byte-identical at any RP_THREADS
// or client count.
#pragma once

#include "serve/protocol.hpp"
#include "serve/world_pool.hpp"

namespace rp::serve {

/// Executes one request against `world` (nullptr for ping/shutdown, which
/// need none). Never throws: failures become Status::kError responses with
/// the exception message.
Response execute_request(const Request& request, const World* world);

/// Which artifacts `type` reads, so the daemon can pre-warm a world on the
/// dispatcher thread (full pool parallelism) before fanning a batch out.
struct ArtifactNeeds {
  bool offload = false;
  bool greedy = false;
  bool spread = false;
};
ArtifactNeeds artifact_needs(const Request& request);

/// Pre-builds the artifacts `request` needs on `world` (no-op for nullptr).
/// Failures are swallowed — execute_request reports them per request.
void prewarm(const Request& request, const World* world);

}  // namespace rp::serve

#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/executor.hpp"
#include "util/thread_pool.hpp"

namespace rp::serve {

namespace {

obs::Counter& accepted_counter() {
  static obs::Counter c("rp.serve.connections.accepted");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter c("rp.serve.connections.rejected");
  return c;
}
obs::Counter& killed_counter() {
  static obs::Counter c("rp.serve.connections.killed");
  return c;
}
obs::Counter& received_counter() {
  static obs::Counter c("rp.serve.requests.received");
  return c;
}
obs::Counter& busy_counter() {
  static obs::Counter c("rp.serve.busy", obs::Stability::kScheduling);
  return c;
}
obs::Counter& responses_counter() {
  static obs::Counter c("rp.serve.responses.sent");
  return c;
}
obs::Histogram& batch_occupancy() {
  static obs::Histogram h("rp.serve.batch.occupancy");
  return h;
}
obs::Histogram& request_ns() {
  static obs::Histogram h("rp.serve.request_ns");
  return h;
}
obs::Histogram& exec_ns() {
  static obs::Histogram h("rp.serve.exec_ns");
  return h;
}
// Per-request phase breakdown (all wall-clock, hence kScheduling — the
// Histogram default). The same numbers feed the RequestTracer rings; the
// histograms exist so the time-series sampler and metric exports see them.
obs::Histogram& phase_queue_ns() {
  static obs::Histogram h("rp.serve.phase.queue_ns");
  return h;
}
obs::Histogram& phase_pool_ns() {
  static obs::Histogram h("rp.serve.phase.pool_ns");
  return h;
}
obs::Histogram& phase_compute_ns() {
  static obs::Histogram h("rp.serve.phase.compute_ns");
  return h;
}
obs::Histogram& phase_write_ns() {
  static obs::Histogram h("rp.serve.phase.write_ns");
  return h;
}

fault::Site& accept_site() {
  static fault::Site site(fault::kSiteServeAccept);
  return site;
}
fault::Site& parse_site() {
  static fault::Site site(fault::kSiteServeParse);
  return site;
}
fault::Site& respond_site() {
  static fault::Site site(fault::kSiteServeRespond);
  return site;
}
fault::Site& stats_site() {
  static fault::Site site(fault::kSiteServeStats);
  return site;
}

// The "serve.request" flow name: one arrow per request id across threads.
constexpr const char* kRequestFlow = "serve.request";

/// True when per-request telemetry should be collected: the tracer wants
/// records, or a trace session wants flow events.
bool request_tracking_enabled() {
  return obs::RequestTracer::global().enabled() || obs::trace_enabled();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace

// ---------------------------------------------------------------- Connection

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::send_payload(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 4);
  append_frame(frame, payload);

  std::lock_guard<std::mutex> lock(write_mutex_);
  if (!alive()) return false;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      alive_.store(false, std::memory_order_relaxed);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Connection::kill() {
  if (alive_.exchange(false, std::memory_order_relaxed))
    ::shutdown(fd_, SHUT_RDWR);
}

// -------------------------------------------------------------- RequestQueue

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool RequestQueue::try_push(QueueItem item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
  }
  cv_.notify_one();
  return true;
}

std::vector<QueueItem> RequestQueue::pop_batch(std::size_t max_batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return stopped_ || !items_.empty(); });
  std::vector<QueueItem> batch;
  const std::size_t take = std::min(items_.size(), std::max<std::size_t>(
                                                       1, max_batch));
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return batch;
}

void RequestQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

std::size_t RequestQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

// -------------------------------------------------------------- DaemonConfig

DaemonConfig DaemonConfig::from_env() {
  DaemonConfig config;
  config.port = static_cast<std::uint16_t>(
      env_size("RP_SERVE_PORT", config.port));
  config.worlds = env_size("RP_SERVE_WORLDS", config.worlds);
  config.queue_capacity = env_size("RP_SERVE_QUEUE", config.queue_capacity);
  return config;
}

// -------------------------------------------------------------------- Daemon

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      pool_(config_.worlds, config_.cache_dir.empty()
                                ? io::default_cache_dir()
                                : config_.cache_dir),
      queue_(config_.queue_capacity) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("unparsable listen host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on " + config_.host + ":" +
                             std::to_string(config_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  // Arm the serving telemetry: a resident daemon always wants its metrics
  // (the stats surface reads them), the request tracer, and — unless
  // RP_OBS_SAMPLE_MS=0 — the time-series sampler. All scheduling-tagged, so
  // deterministic snapshots are unaffected.
  obs::set_metrics_enabled(true);
  obs::RequestTracer::global().set_enabled(true);
  obs::TimeSeriesRecorder::global().start(
      obs::TimeSeriesRecorder::interval_ms_from_env());
  start_ns_ = obs::monotonic_ns();

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Daemon::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Daemon::stop() {
  if (stopped_.exchange(true)) return;
  running_.store(false, std::memory_order_release);

  // Wake the accept thread, then the dispatcher (which drains what is
  // already queued), then the readers. Readers are joined last so every
  // in-flight handle they hold stays valid.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  queue_.stop();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections.swap(connections_);
    readers.swap(readers_);
  }
  for (auto& connection : connections) connection->kill();
  for (auto& reader : readers)
    if (reader.joinable()) reader.join();

  // Disarm what start() armed (metrics stay on: other components may share
  // the flag, and a stopped daemon recording nothing costs nothing).
  obs::TimeSeriesRecorder::global().stop();
  obs::RequestTracer::global().set_enabled(false);

  request_shutdown();  // Unblock a wait()er that did not see a client ask.
}

void Daemon::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) return;
      continue;
    }
    obs::Span span("serve.accept");
    if (accept_site().fire()) {
      // The fault kills only the brand-new connection: the listener and
      // every established client are untouched.
      ::close(fd);
      rejected_counter().add();
      continue;
    }
    auto connection = std::make_shared<Connection>(fd);
    accepted_counter().add();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.push_back(connection);
    readers_.emplace_back(
        [this, connection] { reader_loop(connection); });
  }
}

void Daemon::reader_loop(std::shared_ptr<Connection> connection) {
  std::vector<std::uint8_t> buffer;
  std::uint8_t chunk[4096];
  while (connection->alive()) {
    const ssize_t n = ::recv(connection->fd(), chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      connection->kill();
      return;
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
    // Drain every complete frame in the buffer (clients may pipeline).
    for (;;) {
      std::optional<std::pair<std::size_t, std::span<const std::uint8_t>>>
          frame;
      try {
        obs::Span span("serve.parse");
        frame = try_parse_frame(buffer);
        // The fault site fires only once a complete frame parsed: nth= then
        // counts frames, not drain-loop polls, so it neither depends on TCP
        // segmentation nor races an arm() against the leftover-buffer check
        // that runs after the previous response was already sent.
        if (frame) {
          parse_site().maybe_throw();
          handle_frame(connection, frame->second);
        }
      } catch (const std::exception&) {
        // Malformed frame or injected parse fault: this connection is
        // unrecoverable (framing is lost), so it dies — alone.
        connection->kill();
        killed_counter().add();
        return;
      }
      if (!frame) break;
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(frame->first));
    }
  }
}

void Daemon::handle_frame(const std::shared_ptr<Connection>& connection,
                          std::span<const std::uint8_t> payload) {
  // decode_request throws ProtocolError on malformed payloads — the caller
  // kills the connection, which is the contract for framing-level damage.
  Request request = decode_request(payload);
  received_counter().add();

  // Assign the server-side request id and open its flow arrow ('s' binds to
  // the enclosing serve.parse slice on this reader thread).
  obs::RequestTracer& tracer = obs::RequestTracer::global();
  const bool tracked = request_tracking_enabled();
  const std::uint64_t server_id = tracked ? tracer.next_request_id() : 0;
  const std::uint64_t accept_ns = tracked ? obs::monotonic_ns() : 0;
  if (server_id != 0) obs::flow_begin(kRequestFlow, server_id);

  if (request.type == RequestType::kPing ||
      request.type == RequestType::kShutdown ||
      request.type == RequestType::kStats) {
    // No world needed: answer inline on the reader thread. The serve.stats
    // site throws into the reader's catch, so a firing stats fault kills
    // exactly this connection — the daemon and its other clients carry on.
    const std::uint64_t compute_start = tracked ? obs::monotonic_ns() : 0;
    Response response;
    if (request.type == RequestType::kStats) {
      stats_site().maybe_throw();
      response = stats_response(request.stats_window);
      response.id = request.id;
    } else {
      response = execute_request(request, nullptr);
    }
    const std::uint64_t write_start = tracked ? obs::monotonic_ns() : 0;
    connection->send_payload(encode_response(response));
    responses_counter().add();
    if (tracked) {
      const std::uint64_t end_ns = obs::monotonic_ns();
      phase_compute_ns().record(write_start - compute_start);
      phase_write_ns().record(end_ns - write_start);
      obs::RequestRecord record;
      record.request_id = server_id;
      record.type = static_cast<std::uint8_t>(request.type);
      record.ok = response.status == Status::kOk;
      record.accept_ns = accept_ns;
      record.compute_ns = write_start - compute_start;
      record.write_ns = end_ns - write_start;
      tracer.record(record);
      obs::flow_end(kRequestFlow, server_id);
    }
    if (request.type == RequestType::kShutdown) request_shutdown();
    return;
  }

  QueueItem item;
  item.connection = connection;
  item.request = std::move(request);
  item.server_id = server_id;
  item.accept_ns = accept_ns;
  if (obs::metrics_enabled() || tracked) item.enqueue_ns = obs::monotonic_ns();
  const std::uint64_t id = item.request.id;
  if (!queue_.try_push(std::move(item))) {
    busy_counter().add();
    Response busy;
    busy.status = Status::kBusy;
    busy.id = id;
    busy.message = "queue full (" + std::to_string(queue_.capacity()) +
                   " requests); retry";
    connection->send_payload(encode_response(busy));
    // The request dies at admission: close its flow so s/f stay balanced.
    if (server_id != 0) obs::flow_end(kRequestFlow, server_id);
  }
}

void Daemon::dispatcher_loop() {
  for (;;) {
    std::vector<QueueItem> batch = queue_.pop_batch(config_.max_batch);
    if (batch.empty()) return;  // Stopped and drained.
    batch_occupancy().record(batch.size());

    const std::size_t count = batch.size();
    // Per-request phase attribution (all zero when nothing is tracking):
    // queue wait ends here, at dequeue.
    const bool tracked = request_tracking_enabled();
    const std::uint64_t dequeue_ns = tracked ? obs::monotonic_ns() : 0;
    std::vector<std::uint64_t> queue_waits(count, 0);
    std::vector<std::uint64_t> pool_waits(count, 0);
    std::vector<std::uint64_t> compute_times(count, 0);
    if (tracked) {
      for (std::size_t i = 0; i < count; ++i)
        if (batch[i].enqueue_ns != 0 && dequeue_ns > batch[i].enqueue_ns)
          queue_waits[i] = dequeue_ns - batch[i].enqueue_ns;
    }

    // Resolve each item's world spec and group the batch by config digest so
    // every distinct world is acquired (and its artifacts warmed) once.
    std::vector<Response> responses(count);
    std::vector<bool> done(count, false);
    std::vector<std::shared_ptr<const World>> worlds(count);
    std::vector<core::ScenarioConfig> configs(count);
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_digest;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        configs[i] = batch[i].request.world.resolve();
        by_digest[io::config_digest(configs[i])].push_back(i);
      } catch (const std::exception& e) {
        responses[i].status = Status::kError;
        responses[i].id = batch[i].request.id;
        responses[i].message = e.what();
        done[i] = true;
      }
    }
    for (const auto& [digest, indices] : by_digest) {
      const std::uint64_t pool_start = tracked ? obs::monotonic_ns() : 0;
      try {
        const auto world = pool_.acquire(configs[indices.front()]);
        for (std::size_t i : indices) worlds[i] = world;
        // Pre-warm shared artifacts here, with the pool's full parallelism,
        // so the per-request fan-out below only reads.
        for (std::size_t i : indices) prewarm(batch[i].request, world.get());
      } catch (const std::exception& e) {
        for (std::size_t i : indices) {
          responses[i].status = Status::kError;
          responses[i].id = batch[i].request.id;
          responses[i].message = std::string("world load failed: ") + e.what();
          done[i] = true;
        }
      }
      if (tracked) {
        // The group's acquire+prewarm wall time is attributed to each member
        // — every one of them waited on it.
        const std::uint64_t pool_wall = obs::monotonic_ns() - pool_start;
        for (std::size_t i : indices) pool_waits[i] = pool_wall;
      }
    }

    // One request's compute, on whichever worker runs it. The 't' flow step
    // lands inside the serve.exec_one slice, tying the cross-thread arrow to
    // this request's span in the Perfetto view.
    auto run_one = [&](std::size_t i) {
      obs::Span span("serve.exec_one");
      if (batch[i].server_id != 0)
        obs::flow_step(kRequestFlow, batch[i].server_id);
      const std::uint64_t compute_start = tracked ? obs::monotonic_ns() : 0;
      responses[i] = execute_request(batch[i].request, worlds[i].get());
      if (tracked) compute_times[i] = obs::monotonic_ns() - compute_start;
      done[i] = true;
    };

    {
      obs::Span span("serve.exec");
      obs::ScopedTimer timer(exec_ns());
      try {
        util::ThreadPool::global().parallel_for(count, [&](std::size_t i) {
          if (done[i]) return;
          run_one(i);
        });
      } catch (const std::exception&) {
        // An injected pool.task fault aborted the fan-out; the serial sweep
        // below finishes whatever it skipped.
      }
      for (std::size_t i = 0; i < count; ++i)
        if (!done[i]) run_one(i);
    }

    // Responses go out sequentially in enqueue order: per-connection FIFO is
    // part of the protocol contract.
    obs::Span span("serve.respond");
    obs::RequestTracer& tracer = obs::RequestTracer::global();
    for (std::size_t i = 0; i < count; ++i) {
      if (respond_site().fire()) {
        batch[i].connection->kill();
        killed_counter().add();
        // The response never goes out, but the request is over: close the
        // flow so every 's' still meets an 'f'.
        if (batch[i].server_id != 0)
          obs::flow_end(kRequestFlow, batch[i].server_id);
        continue;
      }
      const std::uint64_t write_start = tracked ? obs::monotonic_ns() : 0;
      if (batch[i].connection->send_payload(encode_response(responses[i])))
        responses_counter().add();
      if (batch[i].enqueue_ns != 0 && obs::metrics_enabled())
        request_ns().record(obs::monotonic_ns() - batch[i].enqueue_ns);
      if (tracked) {
        const std::uint64_t write_wall = obs::monotonic_ns() - write_start;
        phase_queue_ns().record(queue_waits[i]);
        phase_pool_ns().record(pool_waits[i]);
        phase_compute_ns().record(compute_times[i]);
        phase_write_ns().record(write_wall);
        obs::RequestRecord record;
        record.request_id = batch[i].server_id;
        record.type = static_cast<std::uint8_t>(batch[i].request.type);
        record.ok = responses[i].status == Status::kOk;
        record.world_digest = worlds[i] ? worlds[i]->digest() : 0;
        record.accept_ns = batch[i].accept_ns;
        record.queue_ns = queue_waits[i];
        record.pool_ns = pool_waits[i];
        record.compute_ns = compute_times[i];
        record.write_ns = write_wall;
        tracer.record(record);
        if (batch[i].server_id != 0)
          obs::flow_end(kRequestFlow, batch[i].server_id);
      }
    }
  }
}

}  // namespace rp::serve

// A small blocking client for the rp::serve protocol, shared by the rpq CLI,
// the load generator, and the daemon tests. One Client is one connection;
// call() is synchronous (send one frame, read one response frame).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace rp::serve {

/// Why a client operation failed — maps onto rpq exit codes.
enum class ClientErrorClass : std::uint8_t {
  kConnect = 3,   ///< Cannot reach / talk to the daemon (socket-level).
  kProtocol = 4,  ///< The daemon's bytes do not parse as a response.
};

class ClientError : public std::runtime_error {
 public:
  ClientError(ClientErrorClass error_class, const std::string& message)
      : std::runtime_error(message), class_(error_class) {}
  ClientErrorClass error_class() const { return class_; }

 private:
  ClientErrorClass class_;
};

class Client {
 public:
  /// Connects to host:port; throws ClientError(kConnect) on failure.
  static Client connect(const std::string& host, std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `request` and blocks for the matching response.
  Response call(const Request& request);

  /// Like call(), but returns the raw response payload bytes — the
  /// byte-identity tests compare these across clients and thread counts.
  std::vector<std::uint8_t> call_raw(const Request& request);

  /// Writes raw bytes as-is (no framing) — for poking the daemon with
  /// malformed input. Throws ClientError(kConnect) when the write fails.
  void send_bytes(std::span<const std::uint8_t> bytes);

  /// Reads one response payload off the socket. Throws ClientError(kConnect)
  /// when the daemon hangs up first.
  std::vector<std::uint8_t> read_payload();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace rp::serve

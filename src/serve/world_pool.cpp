#include "serve/world_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::serve {

namespace {
obs::Counter& pool_hits() {
  static obs::Counter c("rp.serve.pool.hits");
  return c;
}
obs::Counter& pool_misses() {
  static obs::Counter c("rp.serve.pool.misses");
  return c;
}
obs::Counter& pool_waits() {
  static obs::Counter c("rp.serve.pool.waits",
                        obs::Stability::kScheduling);
  return c;
}
obs::Counter& pool_evictions() {
  static obs::Counter c("rp.serve.pool.evictions");
  return c;
}
obs::Gauge& pool_resident() {
  static obs::Gauge g("rp.serve.pool.resident");
  return g;
}
}  // namespace

World::World(core::Scenario scenario, std::uint64_t digest,
             core::SnapshotCacheResult cache_result)
    : scenario_(std::move(scenario)),
      digest_(digest),
      cache_result_(std::move(cache_result)) {
  // The snapshot file is the footprint proxy for the deserialized scenario;
  // a missing file (pure in-memory build) just leaves the estimate at the
  // artifact terms.
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(cache_result_.path, ec);
  if (!ec) snapshot_bytes_ = static_cast<std::size_t>(bytes);
}

std::size_t World::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = snapshot_bytes_;
  if (offload_) bytes += sizeof(core::OffloadStudy);
  if (greedy_)
    bytes += sizeof(*greedy_) + greedy_->capacity() * sizeof(offload::GreedyStep);
  if (spread_) bytes += sizeof(core::SpreadStudy);
  for (std::size_t g = 0; g < whatif_.size(); ++g) {
    std::lock_guard<std::mutex> engine_lock(whatif_mutexes_[g]);
    if (whatif_[g]) bytes += whatif_[g]->retained_bytes();
  }
  return bytes;
}

const core::OffloadStudy& World::offload() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!offload_) {
    obs::Span span("serve.world.offload_study");
    offload_ = std::make_unique<core::OffloadStudy>(
        core::OffloadStudy::run(scenario_));
  }
  return *offload_;
}

const std::vector<offload::GreedyStep>& World::greedy_curve() const {
  const core::OffloadStudy& study = offload();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!greedy_) {
    obs::Span span("serve.world.greedy_curve");
    greedy_ = std::make_unique<std::vector<offload::GreedyStep>>(
        study.analyzer().greedy_by_traffic(offload::PeerGroup::kAll, 20));
  }
  return *greedy_;
}

World::WhatIfLease World::what_if_engine(offload::PeerGroup group) const {
  const auto slot = static_cast<std::size_t>(group);
  if (slot >= whatif_.size())
    throw std::invalid_argument("World::what_if_engine: bad peer group");
  // offload() takes and releases mutex_ internally, so the lock order stays
  // mutex_ → whatif_mutexes_[slot] (matching resident_bytes).
  const core::OffloadStudy& study = offload();
  std::unique_lock<std::mutex> lock(whatif_mutexes_[slot]);
  if (!whatif_[slot]) {
    obs::Span span("serve.world.whatif_engine");
    whatif_[slot] = std::make_unique<stream::IncrementalOffload>(
        study.analyzer(), scenario_.ecosystem(), group);
  }
  return {std::move(lock), whatif_[slot].get()};
}

const core::SpreadStudy& World::spread() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!spread_) {
    obs::Span span("serve.world.spread_study");
    spread_ =
        std::make_unique<core::SpreadStudy>(core::SpreadStudy::run(scenario_));
  }
  return *spread_;
}

WorldPool::WorldPool(std::size_t capacity, std::filesystem::path cache_dir)
    : capacity_(std::max<std::size_t>(1, capacity)),
      cache_dir_(std::move(cache_dir)) {}

std::shared_ptr<const World> WorldPool::acquire(
    const core::ScenarioConfig& config) {
  const std::uint64_t digest = io::config_digest(config);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = slots_.find(digest);
    if (it == slots_.end()) break;
    Slot& slot = *it->second;
    if (slot.ready) {
      slot.last_used = ++use_clock_;
      ++slot.hits;
      pool_hits().add();
      return slot.world;
    }
    // Another thread is loading this digest: join its flight. The slot can
    // be gone when we wake (the load failed) — then the loop falls through
    // to a fresh load attempt of our own.
    pool_waits().add();
    ready_cv_.wait(lock);
  }

  auto slot = std::make_shared<Slot>();
  slots_.emplace(digest, slot);
  pool_misses().add();
  lock.unlock();

  std::shared_ptr<const World> world;
  try {
    obs::Span span("serve.world.load");
    core::SnapshotCacheResult cache;
    core::Scenario scenario =
        core::Scenario::build_cached(config, cache_dir_, &cache);
    world = std::make_shared<World>(std::move(scenario), digest,
                                    std::move(cache));
  } catch (...) {
    lock.lock();
    slots_.erase(digest);
    ready_cv_.notify_all();
    throw;
  }

  lock.lock();
  slot->world = world;
  slot->ready = true;
  slot->last_used = ++use_clock_;
  evict_over_capacity_locked();
  pool_resident().set(static_cast<double>(slots_.size()));
  ready_cv_.notify_all();
  return world;
}

std::vector<WorldPool::EntryStats> WorldPool::entry_stats() const {
  std::vector<EntryStats> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(slots_.size());
  for (const auto& [digest, slot] : slots_) {
    EntryStats entry;
    entry.digest = digest;
    entry.hits = slot->hits;
    entry.last_used = slot->last_used;
    entry.ready = slot->ready;
    // Lock order is pool → world only (World never calls back into the
    // pool), so taking the world mutex here cannot deadlock.
    entry.resident_bytes = slot->ready ? slot->world->resident_bytes() : 0;
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const EntryStats& a,
                                       const EntryStats& b) {
    if (a.last_used != b.last_used) return a.last_used > b.last_used;
    return a.digest < b.digest;
  });
  return out;
}

std::size_t WorldPool::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [digest, slot] : slots_)
    if (slot->ready) ++ready;
  return ready;
}

void WorldPool::evict_over_capacity_locked() {
  for (;;) {
    std::size_t ready = 0;
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second->ready) continue;  // In-flight loads are not evictable.
      ++ready;
      if (victim == slots_.end() ||
          it->second->last_used < victim->second->last_used)
        victim = it;
    }
    if (ready <= capacity_ || victim == slots_.end()) return;
    slots_.erase(victim);
    pool_evictions().add();
  }
}

}  // namespace rp::serve

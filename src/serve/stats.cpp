// Daemon::stats_response — the daemon's live stats surface, answered inline
// on the reader thread (it needs no world and must work even when the
// admission queue is saturated).
//
// Row set (flat key/value, like every kOk report; doubles canonically
// formatted):
//   stats.uptime_s / stats.completed / stats.ring_capacity
//   queue.depth / queue.capacity / queue.high_water
//   pool.capacity / pool.resident / pool.worlds
//   pool.world.<i>.{digest,hits,ready,resident_bytes,last_used}
//       (most recently used first — the order WorldPool::entry_stats yields)
//   req.<type>.{count,p50_us,p99_us,max_us}   per request type seen
//   slow.<i>.{request_id,type,compute_us,world}  top-K by compute time
//   ts.samples / ts.interval_ms
//   ts.<series> = comma-joined last `window` values   (window > 0 only)
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/timeseries.hpp"
#include "serve/daemon.hpp"

namespace rp::serve {

namespace {

constexpr std::size_t kSlowLogK = 5;

const char* request_type_name(std::uint8_t type) {
  switch (static_cast<RequestType>(type)) {
    case RequestType::kPing:
      return "ping";
    case RequestType::kWorldInfo:
      return "world-info";
    case RequestType::kOffloadCurve:
      return "offload-curve";
    case RequestType::kViability:
      return "viability";
    case RequestType::kSpread:
      return "spread";
    case RequestType::kWhatIf:
      return "what-if";
    case RequestType::kShutdown:
      return "shutdown";
    case RequestType::kStats:
      return "stats";
    case RequestType::kWorldAtEpoch:
      return "world-at-epoch";
    case RequestType::kEpochSeries:
      return "epoch-series";
  }
  return "other";
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void emit(Response& response, std::string key, std::string value) {
  response.fields.emplace_back(std::move(key), std::move(value));
}

void emit_u64(Response& response, std::string key, std::uint64_t value) {
  emit(response, std::move(key), std::to_string(value));
}

void emit_f(Response& response, std::string key, double value) {
  // Latency quantiles borrow MetricValue::quantile, whose empty-histogram
  // result is NaN — that must reach JSON consumers as null, never "nan".
  emit(response, std::move(key), format_double_or_null(value));
}

}  // namespace

Response Daemon::stats_response(std::uint64_t window) const {
  const obs::RequestTracer& tracer = obs::RequestTracer::global();
  const obs::TimeSeriesRecorder& recorder = obs::TimeSeriesRecorder::global();

  Response response;
  emit_f(response, "stats.uptime_s",
         static_cast<double>(obs::monotonic_ns() - start_ns_) / 1e9);
  emit_u64(response, "stats.completed", tracer.completed());
  emit_u64(response, "stats.ring_capacity", tracer.ring_capacity());

  emit_u64(response, "queue.depth", queue_.size());
  emit_u64(response, "queue.capacity", queue_.capacity());
  emit_u64(response, "queue.high_water", queue_.high_water());

  const std::vector<WorldPool::EntryStats> entries = pool_.entry_stats();
  emit_u64(response, "pool.capacity", pool_.capacity());
  emit_u64(response, "pool.resident", pool_.resident());
  emit_u64(response, "pool.worlds", entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string prefix = "pool.world." + std::to_string(i);
    emit(response, prefix + ".digest", hex16(entries[i].digest));
    emit_u64(response, prefix + ".hits", entries[i].hits);
    emit(response, prefix + ".ready", entries[i].ready ? "1" : "0");
    emit_u64(response, prefix + ".resident_bytes", entries[i].resident_bytes);
    emit_u64(response, prefix + ".last_used", entries[i].last_used);
  }

  for (const obs::TypeLatency& latency : tracer.type_latencies()) {
    const std::string prefix =
        std::string("req.") + request_type_name(latency.type);
    emit_u64(response, prefix + ".count", latency.count);
    emit_f(response, prefix + ".p50_us", latency.p50_ns / 1e3);
    emit_f(response, prefix + ".p99_us", latency.p99_ns / 1e3);
    emit_f(response, prefix + ".max_us",
           static_cast<double>(latency.max_ns) / 1e3);
  }

  const std::vector<obs::RequestRecord> slow = tracer.slowest(kSlowLogK);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    const std::string prefix = "slow." + std::to_string(i);
    emit_u64(response, prefix + ".request_id", slow[i].request_id);
    emit(response, prefix + ".type", request_type_name(slow[i].type));
    emit_f(response, prefix + ".compute_us",
           static_cast<double>(slow[i].compute_ns) / 1e3);
    emit(response, prefix + ".world", hex16(slow[i].world_digest));
  }

  emit_u64(response, "ts.samples", recorder.samples());
  emit_u64(response, "ts.interval_ms", recorder.interval_ms());
  if (window > 0) {
    for (const std::string& key : recorder.keys()) {
      const std::vector<obs::SeriesPoint> points =
          recorder.window(key, static_cast<std::size_t>(window));
      std::string joined;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (i != 0) joined += ',';
        joined += format_double(points[i].value);
      }
      emit(response, "ts." + key, std::move(joined));
    }
  }
  return response;
}

}  // namespace rp::serve

// The rp::serve daemon: a resident TCP query server over warm worlds.
//
// Thread shape
//   accept thread    accepts connections (serve.accept fault site: a fire
//                    closes the one new socket, never the listener) and
//                    spawns one blocking reader per connection.
//   reader threads   frame + decode incoming requests (serve.parse site). A
//                    malformed or fault-poisoned frame kills that connection
//                    only. Well-formed requests go through admission control:
//                    a full queue earns an immediate kBusy response and the
//                    connection stays healthy. ping/shutdown/stats are
//                    answered inline (they need no world; stats works even
//                    when the queue is saturated, and carries its own
//                    serve.stats fault site).
//   dispatcher       pops batches off the bounded queue, resolves each
//                    batch's distinct worlds once through the WorldPool,
//                    pre-warms the artifacts the batch needs, executes the
//                    requests on the global ThreadPool (indexed fan-out, so
//                    responses are independent of scheduling), then writes
//                    responses back in enqueue order (serve.respond site: a
//                    fire kills the one target connection).
//
// Determinism: a response's payload is a pure function of (request, world) —
// batching, thread count, and client interleaving only affect latency,
// never bytes.
//
// Observability: rp.serve.* counters, rp.serve.batch.occupancy /
// .request_ns / .exec_ns histograms, per-phase rp.serve.phase.{queue,pool,
// compute,write}_ns histograms, and serve.accept / serve.parse / serve.exec
// / serve.respond spans.
//
// Request tracing: every accepted frame gets a server-side request id from
// the obs::RequestTracer, threaded accept → parse → enqueue → batch-group →
// pool lookup → execute → respond. Completion records the per-phase latency
// breakdown into the tracer's per-thread rings, and — when an RP_TRACE
// session is live — emits "serve.request" flow events ('s' at admission on
// the reader thread, 't' at execute on the worker, 'f' at respond on the
// dispatcher) that tie one request's spans together across threads in the
// Perfetto view. start() arms metrics, the tracer, and the RP_OBS_SAMPLE_MS
// time-series sampler; stop() disarms what it armed. All of this telemetry
// is wall-clock and therefore scheduling-tagged — deterministic_snapshot()
// never sees it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/world_pool.hpp"

namespace rp::serve {

/// One live client connection. Writes are serialized by an internal mutex
/// (the reader answers busy/ping inline while the dispatcher writes query
/// responses). kill() shuts the socket down, which unblocks the reader and
/// fails later writes; the fd closes when the last reference drops.
class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  bool alive() const { return alive_.load(std::memory_order_relaxed); }

  /// Frames `payload` and writes it out. Returns false (and marks the
  /// connection dead) when the peer is gone.
  bool send_payload(std::span<const std::uint8_t> payload);

  /// Marks the connection dead and shuts the socket down both ways (wakes a
  /// blocked reader). Idempotent.
  void kill();

 private:
  int fd_;
  std::mutex write_mutex_;
  std::atomic<bool> alive_{true};
};

/// A queued, decoded request awaiting dispatch.
struct QueueItem {
  std::shared_ptr<Connection> connection;
  Request request;
  std::uint64_t enqueue_ns = 0;  ///< Set when metrics/tracing are enabled.
  std::uint64_t server_id = 0;   ///< Daemon-assigned request id (0 untracked).
  std::uint64_t accept_ns = 0;   ///< monotonic_ns at admission (0 untracked).
};

/// The bounded admission queue between readers and the dispatcher.
/// try_push never blocks — a full queue is the daemon's backpressure signal
/// (the reader turns it into a kBusy response).
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Enqueues unless the queue is full or stopped; returns success.
  bool try_push(QueueItem item);

  /// Pops up to `max_batch` items, blocking while the queue is empty and
  /// running. After stop(), drains without blocking; an empty return means
  /// stopped-and-drained.
  std::vector<QueueItem> pop_batch(std::size_t max_batch);

  /// Wakes the consumer; pending items remain poppable, new pushes fail.
  void stop();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Deepest the queue has ever been (monotone; survives drains).
  std::size_t high_water() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueueItem> items_;
  std::size_t high_water_ = 0;
  bool stopped_ = false;
};

struct DaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = ephemeral; read back via port().
  std::size_t worlds = 4;        ///< WorldPool capacity.
  std::size_t queue_capacity = 128;
  std::size_t max_batch = 64;
  std::filesystem::path cache_dir;  ///< Empty = io::default_cache_dir().

  /// Overlays RP_SERVE_PORT / RP_SERVE_WORLDS / RP_SERVE_QUEUE onto the
  /// defaults (unparsable values are ignored).
  static DaemonConfig from_env();
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and starts the accept + dispatcher threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The bound port (after start(); resolves port 0 to the actual one).
  std::uint16_t port() const { return port_; }

  /// Blocks until a client sends shutdown or stop() is called elsewhere.
  void wait();

  /// Stops accepting, drains the queue, kills remaining connections, and
  /// joins every thread. Idempotent.
  void stop();

  const WorldPool& pool() const { return pool_; }
  const RequestQueue& queue() const { return queue_; }

  /// Builds the kOk stats report (see src/serve/stats.cpp for the row set):
  /// uptime, queue depth/capacity/high-water, pool occupancy with per-world
  /// hit/resident-bytes accounting, per-request-type latency quantiles, the
  /// slow-query log, and — when `window` > 0 — the most recent `window`
  /// points of every recorded time series. Exposed for tests; the daemon
  /// answers kStats requests with it inline on the reader thread.
  Response stats_response(std::uint64_t window) const;

 private:
  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> connection);
  void dispatcher_loop();
  void handle_frame(const std::shared_ptr<Connection>& connection,
                    std::span<const std::uint8_t> payload);
  void request_shutdown();

  DaemonConfig config_;
  WorldPool pool_;
  RequestQueue queue_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t start_ns_ = 0;  ///< monotonic_ns at start(), for uptime.
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace rp::serve

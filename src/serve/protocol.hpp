// The rp::serve wire protocol: length-prefixed binary frames over TCP,
// packed with the same varint codec the snapshot container uses
// (util/varint.hpp via io::ByteWriter/ByteReader).
//
// Framing
//   frame   := varint payload_length, payload bytes
// A payload longer than kMaxFramePayload, or a malformed length varint, is a
// protocol violation — the daemon closes that connection (and only that
// connection).
//
// Request payload
//   request := u8 version, u8 type, varint id, body
// The id is chosen by the client and echoed verbatim in the response, so
// pipelined clients can match answers to questions. Bodies:
//   ping           str token (echoed back)
//   world-info     world
//   offload-curve  world, u8 group, varint max_steps
//   viability      world, prices, u8 fitted (1: fit decay from the world's
//                  greedy curve; 0: use the explicit f64 decay that follows)
//   spread         world
//   what-if        world, u8 mode
//                    mode 1 (econ):    prices base, prices variant
//                    mode 2 (peering): u8 group, strlist reached, strlist add
//   shutdown       (empty)
//   stats          varint window (time-series points per series to include;
//                  0 = no time-series rows)
//   world-at-epoch world, str timeline, varint epoch — replay the canonical
//                  timeline text over the world (which must equal the
//                  timeline's own base; the executor validates the digests
//                  match so the WorldPool key stays honest) and report epoch
//                  k's composition
//   epoch-series   world, str timeline, u8 group, varint max_steps — replay
//                  the whole timeline and report one row block per epoch
//                  (members, remote share, transit, offload fraction)
// with
//   world   := u8 fast, varint n, n x (str field, str value)   — dotted
//              core::ScenarioConfig field assignments (config_fields.hpp)
//   prices  := f64 p, f64 g, f64 u, f64 h, f64 v               — §5 symbols
//   strlist := varint n, n x str
//
// Response payload
//   response := u8 version, u8 status, varint id, body
//   status 0 (ok):    varint n, n x (str key, str value) — a flat, ordered
//                     key/value report; doubles are canonically formatted, so
//                     identical queries produce byte-identical payloads at
//                     any RP_THREADS / client count.
//   status 1 (error): str message (the request was understood but failed —
//                     unknown config field, bad prices, unknown IXP, ...)
//   status 2 (busy):  str message (admission control rejected the request;
//                     retry later. The connection stays healthy.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/scenario.hpp"

namespace rp::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;
/// Ceiling on a frame payload; larger lengths are a protocol violation.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Raised on any malformed frame or payload (bad version, unknown type,
/// truncated body, oversized length). The daemon maps it to "kill this
/// connection"; clients map it to exit code 4.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RequestType : std::uint8_t {
  kPing = 1,
  kWorldInfo = 2,
  kOffloadCurve = 3,
  kViability = 4,
  kSpread = 5,
  kWhatIf = 6,
  kShutdown = 7,
  kStats = 8,
  kWorldAtEpoch = 9,
  kEpochSeries = 10,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,
  kBusy = 2,
};

/// The §5 price symbols carried by viability / what-if requests (the decay b
/// is either fitted from the world or sent explicitly alongside).
struct EconPrices {
  double p = 1.0;    ///< transit_price
  double g = 0.02;   ///< direct_fixed
  double u = 0.20;   ///< direct_unit
  double h = 0.006;  ///< remote_fixed
  double v = 0.45;   ///< remote_unit
};

/// A world addressed by config delta: dotted ScenarioConfig field
/// assignments applied on top of the default config (plus the shared fast
/// shrink). Resolution is deterministic, so equal specs hit the same
/// config digest — the WorldPool key.
struct WorldSpec {
  bool fast = false;
  std::vector<std::pair<std::string, std::string>> fields;

  /// Applies the spec to a default ScenarioConfig. Throws
  /// std::invalid_argument (from config_fields) on unknown fields or
  /// unparsable values.
  core::ScenarioConfig resolve() const;
};

/// One decoded request. A single struct (rather than a variant) keeps the
/// codec flat; only the fields of the active `type` are meaningful.
struct Request {
  RequestType type = RequestType::kPing;
  std::uint64_t id = 0;
  std::string token;                    ///< ping
  WorldSpec world;                      ///< all world-backed queries
  std::uint8_t group = 4;               ///< offload::PeerGroup (kAll)
  std::uint64_t max_steps = 8;          ///< offload-curve
  EconPrices prices;                    ///< viability / what-if base
  bool fitted_decay = true;             ///< viability
  double decay = 0.35;                  ///< viability when !fitted_decay
  std::uint8_t whatif_mode = 1;         ///< 1 econ, 2 peering
  EconPrices variant;                   ///< what-if econ
  std::vector<std::string> reached_ixps;  ///< what-if peering: current set
  std::vector<std::string> added_ixps;    ///< what-if peering: delta
  std::uint64_t stats_window = 0;         ///< stats: ts points per series
  std::string timeline;  ///< world-at-epoch / epoch-series: canonical text
  std::uint64_t epoch = 0;                ///< world-at-epoch: epoch index
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t id = 0;
  std::string message;  ///< kError / kBusy explanation.
  /// kOk report rows, in emission order.
  std::vector<std::pair<std::string, std::string>> fields;

  std::string_view field(std::string_view key) const;  ///< "" when absent.
};

/// Canonical double formatting for response values ("%.10g", like the
/// config-field registry) — one spelling per value, so responses diff clean.
std::string format_double(double v);

/// format_double for values that may legitimately be "absent": NaN and
/// infinities (e.g. MetricValue::quantile on an empty histogram) render as
/// the literal "null", which every JSON consumer passes through unquoted —
/// "%.10g" would print "nan", and a quoted "nan" string is not a number.
std::string format_double_or_null(double v);

std::vector<std::uint8_t> encode_request(const Request& request);
/// Throws ProtocolError on any malformed payload.
Request decode_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_response(const Response& response);
/// Throws ProtocolError on any malformed payload.
Response decode_response(std::span<const std::uint8_t> payload);

/// Appends a length-prefixed frame around `payload` to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Attempts to slice one complete frame off the front of `buffer`.
/// Returns {total frame bytes, payload span into `buffer`} when a full frame
/// is present, nullopt when more bytes are needed, and throws ProtocolError
/// when the length prefix is malformed or exceeds kMaxFramePayload.
std::optional<std::pair<std::size_t, std::span<const std::uint8_t>>>
try_parse_frame(std::span<const std::uint8_t> buffer);

}  // namespace rp::serve

// Autonomous systems as economic entities (§2 of the paper).
//
// Each AS carries the attributes the studies need: a business class (tier-1
// transit down to enterprise stub), a home city for geography-derived
// latencies, originated address space (the Fig. 10 reachable-interface
// metric), an intrinsic traffic scale (the Fig. 5a heavy tail), and a
// PeeringDB-style peering policy (the §4 peer groups).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.hpp"
#include "net/ip.hpp"

namespace rp::topology {

/// Business class of an autonomous system.
enum class AsClass {
  kTier1,       ///< Provider-free transit backbone; peers with all other T1s.
  kTier2,       ///< Regional/national transit provider.
  kAccess,      ///< Eyeball/access network serving end users.
  kContent,     ///< Content provider (large origin traffic).
  kCdn,         ///< Content delivery network (distributed, large traffic).
  kNren,        ///< National research & education network (like RedIRIS).
  kEnterprise,  ///< Stub enterprise network.
};

std::string to_string(AsClass c);

/// Peering policy as published in PeeringDB (§2.2): open networks peer with
/// anyone (commonly via the IXP route server), selective networks impose
/// conditions, restrictive networks almost never peer.
enum class PeeringPolicy {
  kOpen,
  kSelective,
  kRestrictive,
};

std::string to_string(PeeringPolicy p);

/// An autonomous system and its study-relevant attributes.
struct AsNode {
  net::Asn asn;
  std::string name;
  AsClass cls = AsClass::kEnterprise;
  PeeringPolicy policy = PeeringPolicy::kOpen;
  geo::City home_city;
  /// Prefixes originated by this AS. Disjoint across ASes by construction.
  std::vector<net::Ipv4Prefix> prefixes;
  /// Relative traffic popularity; drives the per-network contributions to a
  /// vantage network's transit traffic (Fig. 5a).
  double traffic_scale = 1.0;

  /// Number of IP interfaces (addresses) originated by this AS.
  std::uint64_t address_count() const {
    std::uint64_t total = 0;
    for (const auto& p : prefixes) total += p.size();
    return total;
  }
};

}  // namespace rp::topology

// Synthetic AS-level topology generation.
//
// Substitute for the real 2013/2014 Internet (see DESIGN.md): a hierarchical
// AS ecosystem with a tier-1 clique, regional tier-2 transit providers, and
// stub classes (access/eyeball, content, CDN, NREN, enterprise), wired with
// Gao-Rexford-consistent customer-provider and peering relationships. Every
// AS gets a home city, originated address space, a traffic popularity scale
// and a PeeringDB-style policy, which together drive the §3 and §4 studies.
#pragma once

#include <cstdint>

#include "geo/cities.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace rp::topology {

/// Knobs for the topology generator. Defaults give a world of ~12,500 ASes
/// originating ~2.6 billion addresses (the scale Fig. 10 reports). The AS
/// universe is intentionally much larger than the IXP-member population —
/// in 2013 roughly 45k ASes existed while the 65 Euro-IX exchanges had a
/// few thousand distinct members, and that gap is what keeps the offload
/// potential partial (§4.3).
struct GeneratorConfig {
  std::size_t tier1_count = 10;
  std::size_t tier2_count = 1500;
  std::size_t access_count = 3500;
  std::size_t content_count = 800;
  std::size_t cdn_count = 40;
  std::size_t nren_count = 40;
  std::size_t enterprise_count = 6500;

  /// Mean number of transit providers for multihomed (non-tier-1) ASes.
  double multihoming_mean = 1.7;
  /// Probability that two same-continent tier-2 providers peer directly.
  double tier2_peering_prob = 0.015;
  /// Probability that a content/CDN network peers with a given large access
  /// network on the same continent (private interconnects outside IXPs).
  double content_access_peering_prob = 0.01;
  /// Create a GEANT-like backbone that all NRENs attach to.
  bool nren_backbone = true;

  /// First ASN handed out; ASes get consecutive numbers.
  std::uint32_t first_asn = 100;

  /// Zipf exponent for the traffic popularity of networks within a class.
  double popularity_zipf_exponent = 1.05;
};

/// Generates a topology. Deterministic for a given (config, rng-state).
/// The result always passes AsGraph::validate().
AsGraph generate_topology(const GeneratorConfig& config, util::Rng& rng,
                          const geo::CityRegistry& cities =
                              geo::CityRegistry::world());

/// Name of the backbone AS created when `nren_backbone` is set.
inline constexpr const char* kNrenBackboneName = "NREN-Backbone";

}  // namespace rp::topology

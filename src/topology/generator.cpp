#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/subnet_allocator.hpp"

namespace rp::topology {
namespace {

// Address pools for originated AS space. Together they cover 3.2 B addresses;
// with the default class mix the generated world originates ~2.6 B, matching
// the scale of Fig. 10. Small secondary announcements come from their own
// pool so they never fragment the large-block pools (first-fit alignment
// waste). Infrastructure (IXP peering LANs at 198.18.0.0/15) stays clear of
// all three.
const net::Ipv4Prefix kPoolA = net::Ipv4Prefix::make(net::Ipv4Addr{0, 0, 0, 0}, 1);
const net::Ipv4Prefix kPoolB =
    net::Ipv4Prefix::make(net::Ipv4Addr{128, 0, 0, 0}, 2);
const net::Ipv4Prefix kPoolSmall =
    net::Ipv4Prefix::make(net::Ipv4Addr{194, 0, 0, 0}, 7);

/// Draws prefixes for one AS from the pools; falls back to the second pool
/// when the first is exhausted.
class AddressSpace {
 public:
  AddressSpace() : a_(kPoolA), b_(kPoolB), small_(kPoolSmall) {}

  net::Ipv4Prefix allocate(unsigned length) {
    const std::uint64_t need = std::uint64_t{1} << (32 - length);
    if (a_.remaining() >= need * 2) return a_.allocate(length);
    return b_.allocate(length);
  }

  /// Secondary (small) announcements: kept in a dedicated pool to avoid
  /// alignment fragmentation between mega-blocks.
  net::Ipv4Prefix allocate_small(unsigned length) {
    return small_.allocate(length);
  }

 private:
  net::SubnetAllocator a_;
  net::SubnetAllocator b_;
  net::SubnetAllocator small_;
};

/// Continent sampling weights: where networks are headquartered. Skewed
/// toward Europe/North America like the IXP ecosystem the paper measures.
geo::Continent sample_continent(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.40) return geo::Continent::kEurope;
  if (u < 0.63) return geo::Continent::kNorthAmerica;
  if (u < 0.80) return geo::Continent::kAsia;
  if (u < 0.90) return geo::Continent::kSouthAmerica;
  if (u < 0.96) return geo::Continent::kAfrica;
  return geo::Continent::kOceania;
}

geo::City sample_city(util::Rng& rng, const geo::CityRegistry& cities) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const auto continent = sample_continent(rng);
    const auto candidates = cities.on_continent(continent);
    if (!candidates.empty())
      return candidates[rng.uniform_int(0, candidates.size() - 1)];
  }
  const auto& all = cities.all();
  return all[rng.uniform_int(0, all.size() - 1)];
}

/// Prefix length by class. Access networks hold most of the address space
/// (they number their subscribers); content and enterprise hold little.
unsigned prefix_length_for_class(AsClass cls, util::Rng& rng) {
  switch (cls) {
    case AsClass::kTier1: return 12;
    case AsClass::kTier2: return 14;
    case AsClass::kAccess:
      // Mix of /12.../14, averaging ~0.6M addresses; with the default 4,000
      // access networks this yields ~2.4B originated addresses (Fig. 10).
      return static_cast<unsigned>(12 + rng.uniform_int(0, 2));
    case AsClass::kContent: return 18;
    case AsClass::kCdn: return 16;
    case AsClass::kNren: return 14;
    case AsClass::kEnterprise:
      return static_cast<unsigned>(19 + rng.uniform_int(0, 3));
  }
  return 20;
}

PeeringPolicy sample_policy(AsClass cls, util::Rng& rng) {
  const double u = rng.uniform();
  switch (cls) {
    case AsClass::kTier1:
      return PeeringPolicy::kRestrictive;
    case AsClass::kTier2:
      if (u < 0.15) return PeeringPolicy::kOpen;
      if (u < 0.80) return PeeringPolicy::kSelective;
      return PeeringPolicy::kRestrictive;
    case AsClass::kAccess:
      if (u < 0.65) return PeeringPolicy::kOpen;
      if (u < 0.92) return PeeringPolicy::kSelective;
      return PeeringPolicy::kRestrictive;
    case AsClass::kContent:
      if (u < 0.60) return PeeringPolicy::kOpen;
      if (u < 0.90) return PeeringPolicy::kSelective;
      return PeeringPolicy::kRestrictive;
    case AsClass::kCdn:
      if (u < 0.45) return PeeringPolicy::kOpen;
      return PeeringPolicy::kSelective;
    case AsClass::kNren:
      if (u < 0.40) return PeeringPolicy::kOpen;
      return PeeringPolicy::kSelective;
    case AsClass::kEnterprise:
      if (u < 0.80) return PeeringPolicy::kOpen;
      return PeeringPolicy::kSelective;
  }
  return PeeringPolicy::kOpen;
}

/// Traffic popularity multiplier per class: CDNs and content dominate
/// inter-domain traffic (Fig. 6 finds Microsoft, Yahoo and CDNs at the top).
double class_traffic_multiplier(AsClass cls) {
  switch (cls) {
    case AsClass::kCdn: return 60.0;
    case AsClass::kContent: return 12.0;
    case AsClass::kAccess: return 4.0;
    case AsClass::kTier1: return 3.0;
    case AsClass::kTier2: return 2.0;
    case AsClass::kNren: return 1.5;
    case AsClass::kEnterprise: return 1.0;
  }
  return 1.0;
}

int sample_provider_count(double mean, util::Rng& rng) {
  // 1 + (roughly) Poisson-like extra providers; clamp to [1, 4].
  int extra = 0;
  double budget = mean - 1.0;
  while (budget > 0.0 && rng.chance(std::min(budget, 0.75)) && extra < 3) {
    ++extra;
    budget -= 1.0;
  }
  return 1 + extra;
}

}  // namespace

AsGraph generate_topology(const GeneratorConfig& config, util::Rng& rng,
                          const geo::CityRegistry& cities) {
  if (config.tier1_count == 0)
    throw std::invalid_argument("generate_topology: need at least one tier-1");

  AsGraph graph;
  AddressSpace space;
  std::uint32_t next_asn = config.first_asn;

  std::vector<net::Asn> tier1s, tier2s, accesses, contents, cdns, nrens,
      enterprises;

  auto make_as = [&](AsClass cls, const std::string& name_prefix,
                     std::size_t serial) {
    AsNode node;
    node.asn = net::Asn{next_asn++};
    node.cls = cls;
    node.home_city = sample_city(rng, cities);
    node.name = name_prefix + "-" + node.home_city.name + "-" +
                std::to_string(serial);
    node.policy = sample_policy(cls, rng);
    node.prefixes.push_back(space.allocate(prefix_length_for_class(cls, rng)));
    // Real networks announce several prefixes; give a third of them 1-3
    // extra, much smaller blocks (exercises longest-prefix matching without
    // inflating the Fig. 10 address totals beyond the pools).
    if (rng.chance(0.33)) {
      const auto extra = 1 + rng.uniform_int(0, 2);
      for (std::uint64_t e = 0; e < extra; ++e) {
        const unsigned base_len = prefix_length_for_class(cls, rng);
        node.prefixes.push_back(
            space.allocate_small(std::max(18u, std::min(24u, base_len + 7))));
      }
    }
    graph.add_as(std::move(node));
    return net::Asn{next_asn - 1};
  };

  for (std::size_t i = 0; i < config.tier1_count; ++i)
    tier1s.push_back(make_as(AsClass::kTier1, "T1", i));
  for (std::size_t i = 0; i < config.tier2_count; ++i)
    tier2s.push_back(make_as(AsClass::kTier2, "T2", i));
  for (std::size_t i = 0; i < config.access_count; ++i)
    accesses.push_back(make_as(AsClass::kAccess, "ACC", i));
  for (std::size_t i = 0; i < config.content_count; ++i)
    contents.push_back(make_as(AsClass::kContent, "CNT", i));
  for (std::size_t i = 0; i < config.cdn_count; ++i)
    cdns.push_back(make_as(AsClass::kCdn, "CDN", i));
  for (std::size_t i = 0; i < config.nren_count; ++i)
    nrens.push_back(make_as(AsClass::kNren, "NREN", i));
  for (std::size_t i = 0; i < config.enterprise_count; ++i)
    enterprises.push_back(make_as(AsClass::kEnterprise, "ENT", i));

  // Traffic popularity: Zipf rank over all stub-ish networks scaled by class.
  {
    std::vector<net::Asn> everyone;
    for (const auto& n : graph.nodes()) everyone.push_back(n.asn);
    rng.shuffle(everyone);  // Random rank assignment.
    for (std::size_t rank = 0; rank < everyone.size(); ++rank) {
      AsNode& node = graph.node(everyone[rank]);
      const double zipf =
          1.0 / std::pow(static_cast<double>(rank + 1),
                         config.popularity_zipf_exponent);
      node.traffic_scale = zipf * class_traffic_multiplier(node.cls);
    }
  }

  // Tier-1 clique: every pair of tier-1s peers (definition of provider-free).
  for (std::size_t i = 0; i < tier1s.size(); ++i)
    for (std::size_t j = i + 1; j < tier1s.size(); ++j)
      graph.add_peering(tier1s[i], tier1s[j]);

  // Helper: prefer same-continent providers 3:1 over others.
  auto pick_providers = [&](const AsNode& who,
                            const std::vector<net::Asn>& pool, int count) {
    std::vector<net::Asn> chosen;
    std::vector<double> weights(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const AsNode& candidate = graph.node(pool[i]);
      weights[i] =
          candidate.home_city.continent == who.home_city.continent ? 3.0 : 1.0;
    }
    while (chosen.size() < static_cast<std::size_t>(count) &&
           chosen.size() < pool.size()) {
      const std::size_t pick = rng.weighted_index(weights);
      weights[pick] = 0.0;
      bool all_zero = true;
      for (double w : weights) all_zero = all_zero && w == 0.0;
      chosen.push_back(pool[pick]);
      if (all_zero) break;
    }
    return chosen;
  };

  // Tier-2: buy transit from 1-2 tier-1s.
  for (net::Asn t2 : tier2s) {
    const int count = std::min<int>(2, sample_provider_count(1.5, rng));
    for (net::Asn provider : pick_providers(graph.node(t2), tier1s, count))
      graph.add_transit(provider, t2);
  }

  // Tier-2 regional peering mesh.
  for (std::size_t i = 0; i < tier2s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2s.size(); ++j) {
      const AsNode& a = graph.node(tier2s[i]);
      const AsNode& b = graph.node(tier2s[j]);
      if (a.home_city.continent == b.home_city.continent &&
          rng.chance(config.tier2_peering_prob))
        graph.add_peering(tier2s[i], tier2s[j]);
    }
  }

  // Stub classes buy transit from tier-2s (mostly) or tier-1s (sometimes).
  auto attach_stub = [&](net::Asn stub, double tier1_prob) {
    const AsNode& who = graph.node(stub);
    const int count = sample_provider_count(config.multihoming_mean, rng);
    const auto& pool = rng.chance(tier1_prob) ? tier1s : tier2s;
    for (net::Asn provider : pick_providers(who, pool, count))
      graph.add_transit(provider, stub);
  };
  // Tier-1-only homing matters downstream: a stub whose providers are all
  // tier-1s is reachable for the vantage only through transit, and no IXP
  // member's customer cone can cover it (§4.2 excludes the tier-1s). Large
  // content players often buy exactly such blended tier-1 transit.
  for (net::Asn as : accesses) attach_stub(as, 0.15);
  for (net::Asn as : contents) attach_stub(as, 0.45);
  for (net::Asn as : cdns) attach_stub(as, 0.50);
  for (net::Asn as : enterprises) attach_stub(as, 0.05);
  // NRENs buy transit from tier-1s, mirroring RedIRIS's two tier-1 providers.
  for (net::Asn as : nrens) {
    for (net::Asn provider : pick_providers(graph.node(as), tier1s, 2))
      graph.add_transit(provider, as);
  }

  // Optional GEANT-like backbone: peers with every NREN, giving the research
  // networks cost-effective mutual reachability (the §4.2 exclusion rule).
  if (config.nren_backbone && !nrens.empty()) {
    AsNode backbone;
    backbone.asn = net::Asn{next_asn++};
    backbone.name = kNrenBackboneName;
    backbone.cls = AsClass::kNren;
    backbone.policy = PeeringPolicy::kSelective;
    backbone.home_city = cities.at("Amsterdam");
    backbone.prefixes.push_back(space.allocate(16));
    backbone.traffic_scale = 1.0;
    const net::Asn backbone_asn = backbone.asn;
    graph.add_as(std::move(backbone));
    for (net::Asn provider : tier1s) {
      graph.add_transit(provider, backbone_asn);
      if (graph.providers_of(backbone_asn).size() >= 2) break;
    }
    for (net::Asn as : nrens) graph.add_peering(backbone_asn, as);
  }

  // Private content/CDN <-> access peering (bypasses both transit and IXPs).
  for (const auto& list : {contents, cdns}) {
    for (net::Asn src : list) {
      const AsNode& a = graph.node(src);
      for (net::Asn dst : accesses) {
        const AsNode& b = graph.node(dst);
        if (a.home_city.continent == b.home_city.continent &&
            rng.chance(config.content_access_peering_prob))
          graph.add_peering(src, dst);
      }
    }
  }

  if (const auto problem = graph.validate())
    throw std::logic_error("generate_topology: " + *problem);
  return graph;
}

}  // namespace rp::topology

#include "topology/as_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace rp::topology {

void AsGraph::add_as(AsNode node) {
  if (!node.asn.is_valid())
    throw std::invalid_argument("AsGraph::add_as: invalid ASN 0");
  if (index_.contains(node.asn))
    throw std::invalid_argument("AsGraph::add_as: duplicate " +
                                node.asn.to_string());
  index_.emplace(node.asn, nodes_.size());
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
}

void AsGraph::add_transit(net::Asn provider, net::Asn customer) {
  if (provider == customer)
    throw std::invalid_argument("AsGraph::add_transit: self-loop");
  if (is_transit(provider, customer) || is_transit(customer, provider) ||
      is_peering(provider, customer))
    throw std::invalid_argument(
        "AsGraph::add_transit: relationship already exists between " +
        provider.to_string() + " and " + customer.to_string());
  adj_[index_of(provider)].customers.push_back(customer);
  adj_[index_of(customer)].providers.push_back(provider);
  ++transit_links_;
}

void AsGraph::add_peering(net::Asn a, net::Asn b) {
  if (a == b) throw std::invalid_argument("AsGraph::add_peering: self-loop");
  if (is_peering(a, b) || is_transit(a, b) || is_transit(b, a))
    throw std::invalid_argument(
        "AsGraph::add_peering: relationship already exists between " +
        a.to_string() + " and " + b.to_string());
  adj_[index_of(a)].peers.push_back(b);
  adj_[index_of(b)].peers.push_back(a);
  ++peering_links_;
}

bool AsGraph::contains(net::Asn asn) const { return index_.contains(asn); }

const AsNode& AsGraph::node(net::Asn asn) const {
  return nodes_[index_of(asn)];
}

AsNode& AsGraph::node(net::Asn asn) { return nodes_[index_of(asn)]; }

std::span<const net::Asn> AsGraph::providers_of(net::Asn asn) const {
  return adjacency(asn).providers;
}

std::span<const net::Asn> AsGraph::customers_of(net::Asn asn) const {
  return adjacency(asn).customers;
}

std::span<const net::Asn> AsGraph::peers_of(net::Asn asn) const {
  return adjacency(asn).peers;
}

bool AsGraph::is_transit(net::Asn provider, net::Asn customer) const {
  if (!contains(provider) || !contains(customer)) return false;
  const auto& customers = adjacency(provider).customers;
  return std::find(customers.begin(), customers.end(), customer) !=
         customers.end();
}

bool AsGraph::is_peering(net::Asn a, net::Asn b) const {
  if (!contains(a) || !contains(b)) return false;
  const auto& peers = adjacency(a).peers;
  return std::find(peers.begin(), peers.end(), b) != peers.end();
}

std::vector<net::Asn> AsGraph::customer_cone(net::Asn asn) const {
  std::vector<net::Asn> cone;
  std::unordered_set<net::Asn> seen;
  std::deque<net::Asn> frontier{asn};
  seen.insert(asn);
  while (!frontier.empty()) {
    const net::Asn current = frontier.front();
    frontier.pop_front();
    cone.push_back(current);
    for (net::Asn customer : customers_of(current)) {
      if (seen.insert(customer).second) frontier.push_back(customer);
    }
  }
  return cone;
}

std::uint64_t AsGraph::cone_address_count(net::Asn asn) const {
  std::uint64_t total = 0;
  for (net::Asn member : customer_cone(asn))
    total += node(member).address_count();
  return total;
}

std::uint64_t AsGraph::total_address_count() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.address_count();
  return total;
}

std::optional<std::string> AsGraph::validate() const {
  // Provider hierarchy must be acyclic: Kahn's algorithm over provider ->
  // customer edges.
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (net::Asn customer : adj_[i].customers)
      ++in_degree[index_of(customer)];
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (in_degree[i] == 0) ready.push_back(i);
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++visited;
    for (net::Asn customer : adj_[i].customers) {
      const std::size_t j = index_of(customer);
      if (--in_degree[j] == 0) ready.push_back(j);
    }
  }
  if (visited != nodes_.size())
    return "transit hierarchy contains a customer-provider cycle";

  // No pair may hold both transit and peering (checked on insert, but a
  // defensive re-check keeps the invariant explicit).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (net::Asn peer : adj_[i].peers) {
      if (is_transit(nodes_[i].asn, peer) || is_transit(peer, nodes_[i].asn))
        return "pair " + nodes_[i].asn.to_string() + "/" + peer.to_string() +
               " holds both transit and peering";
    }
  }
  return std::nullopt;
}

std::size_t AsGraph::index_of(net::Asn asn) const {
  const auto it = index_.find(asn);
  if (it == index_.end())
    throw std::out_of_range("AsGraph: unknown " + asn.to_string());
  return it->second;
}

const AsGraph::Adjacency& AsGraph::adjacency(net::Asn asn) const {
  return adj_[index_of(asn)];
}

std::string to_string(AsClass c) {
  switch (c) {
    case AsClass::kTier1: return "tier1";
    case AsClass::kTier2: return "tier2";
    case AsClass::kAccess: return "access";
    case AsClass::kContent: return "content";
    case AsClass::kCdn: return "cdn";
    case AsClass::kNren: return "nren";
    case AsClass::kEnterprise: return "enterprise";
  }
  return "unknown";
}

std::string to_string(PeeringPolicy p) {
  switch (p) {
    case PeeringPolicy::kOpen: return "open";
    case PeeringPolicy::kSelective: return "selective";
    case PeeringPolicy::kRestrictive: return "restrictive";
  }
  return "unknown";
}

}  // namespace rp::topology

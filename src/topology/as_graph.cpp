#include "topology/as_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

namespace rp::topology {

AsGraph::AsGraph(const AsGraph& other) { *this = other; }

AsGraph& AsGraph::operator=(const AsGraph& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(other.cone_mutex_);
  nodes_ = other.nodes_;
  index_ = other.index_;
  adj_ = other.adj_;
  transit_links_ = other.transit_links_;
  peering_links_ = other.peering_links_;
  cones_built_ = other.cones_built_.load();
  cone_masks_ = other.cone_masks_;
  cone_addresses_ = other.cone_addresses_;
  cone_sizes_ = other.cone_sizes_;
  return *this;
}

AsGraph::AsGraph(AsGraph&& other) noexcept { *this = std::move(other); }

AsGraph& AsGraph::operator=(AsGraph&& other) noexcept {
  if (this == &other) return *this;
  nodes_ = std::move(other.nodes_);
  index_ = std::move(other.index_);
  adj_ = std::move(other.adj_);
  transit_links_ = other.transit_links_;
  peering_links_ = other.peering_links_;
  cones_built_ = other.cones_built_.load();
  cone_masks_ = std::move(other.cone_masks_);
  cone_addresses_ = std::move(other.cone_addresses_);
  cone_sizes_ = std::move(other.cone_sizes_);
  other.cones_built_ = false;
  return *this;
}

void AsGraph::add_as(AsNode node) {
  if (!node.asn.is_valid())
    throw std::invalid_argument("AsGraph::add_as: invalid ASN 0");
  if (index_.contains(node.asn))
    throw std::invalid_argument("AsGraph::add_as: duplicate " +
                                node.asn.to_string());
  index_.emplace(node.asn, nodes_.size());
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
  invalidate_cones();
}

void AsGraph::add_transit(net::Asn provider, net::Asn customer) {
  if (provider == customer)
    throw std::invalid_argument("AsGraph::add_transit: self-loop");
  if (is_transit(provider, customer) || is_transit(customer, provider) ||
      is_peering(provider, customer))
    throw std::invalid_argument(
        "AsGraph::add_transit: relationship already exists between " +
        provider.to_string() + " and " + customer.to_string());
  adj_[index_of(provider)].customers.push_back(customer);
  adj_[index_of(customer)].providers.push_back(provider);
  ++transit_links_;
  invalidate_cones();
}

void AsGraph::add_peering(net::Asn a, net::Asn b) {
  if (a == b) throw std::invalid_argument("AsGraph::add_peering: self-loop");
  if (is_peering(a, b) || is_transit(a, b) || is_transit(b, a))
    throw std::invalid_argument(
        "AsGraph::add_peering: relationship already exists between " +
        a.to_string() + " and " + b.to_string());
  adj_[index_of(a)].peers.push_back(b);
  adj_[index_of(b)].peers.push_back(a);
  ++peering_links_;
}

bool AsGraph::contains(net::Asn asn) const { return index_.contains(asn); }

const AsNode& AsGraph::node(net::Asn asn) const {
  return nodes_[index_of(asn)];
}

AsNode& AsGraph::node(net::Asn asn) { return nodes_[index_of(asn)]; }

std::span<const net::Asn> AsGraph::providers_of(net::Asn asn) const {
  return adjacency(asn).providers;
}

std::span<const net::Asn> AsGraph::customers_of(net::Asn asn) const {
  return adjacency(asn).customers;
}

std::span<const net::Asn> AsGraph::peers_of(net::Asn asn) const {
  return adjacency(asn).peers;
}

bool AsGraph::is_transit(net::Asn provider, net::Asn customer) const {
  if (!contains(provider) || !contains(customer)) return false;
  const auto& customers = adjacency(provider).customers;
  return std::find(customers.begin(), customers.end(), customer) !=
         customers.end();
}

bool AsGraph::is_peering(net::Asn a, net::Asn b) const {
  if (!contains(a) || !contains(b)) return false;
  const auto& peers = adjacency(a).peers;
  return std::find(peers.begin(), peers.end(), b) != peers.end();
}

namespace {

/// Reference cone computation: BFS over customer edges. Used as the fallback
/// for nodes caught in a (invalid) provider cycle, where the topological
/// sweep cannot settle.
util::DynamicBitset bfs_cone_mask(const AsGraph& graph, std::size_t root) {
  util::DynamicBitset mask(graph.as_count());
  std::vector<std::size_t> frontier{root};
  mask.set(root);
  while (!frontier.empty()) {
    const std::size_t current = frontier.back();
    frontier.pop_back();
    for (net::Asn customer : graph.customers_of(graph.nodes()[current].asn)) {
      const std::size_t j = graph.index_of(customer);
      if (!mask.test(j)) {
        mask.set(j);
        frontier.push_back(j);
      }
    }
  }
  return mask;
}

}  // namespace

void AsGraph::invalidate_cones() {
  std::scoped_lock lock(cone_mutex_);
  cones_built_.store(false, std::memory_order_release);
  cone_masks_.clear();
  cone_addresses_.clear();
  cone_sizes_.clear();
}

void AsGraph::ensure_cones() const {
  if (cones_built_.load(std::memory_order_acquire)) return;
  std::scoped_lock lock(cone_mutex_);
  if (cones_built_.load(std::memory_order_relaxed)) return;
  const std::size_t n = nodes_.size();
  cone_masks_.assign(n, util::DynamicBitset(n));
  cone_addresses_.assign(n, 0);
  cone_sizes_.assign(n, 1);

  // One reverse-topological sweep: a node's cone is itself plus the union of
  // its customers' cones, so processing customers before providers (Kahn's
  // algorithm on customer -> provider order) computes every cone once.
  std::vector<std::size_t> pending(n, 0);
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    pending[i] = adj_[i].customers.size();
    if (pending[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  std::vector<bool> done(n, false);
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    util::DynamicBitset& mask = cone_masks_[i];
    mask.set(i);
    std::uint64_t addresses = nodes_[i].address_count();
    for (net::Asn customer : adj_[i].customers)
      mask |= cone_masks_[index_of(customer)];
    // The address total cannot be summed from child totals (multihomed
    // customers would double-count), so it is re-counted from the mask.
    if (adj_[i].customers.empty()) {
      cone_addresses_[i] = addresses;
    } else {
      addresses = 0;
      std::size_t members = 0;
      mask.for_each([this, &addresses, &members](std::size_t j) {
        addresses += nodes_[j].address_count();
        ++members;
      });
      cone_addresses_[i] = addresses;
      cone_sizes_[i] = members;
    }
    done[i] = true;
    ++processed;
    for (net::Asn provider : adj_[i].providers) {
      const std::size_t p = index_of(provider);
      if (--pending[p] == 0) ready.push_back(p);
    }
  }

  // A provider cycle (rejected by validate(), but the graph is mutable) would
  // strand nodes; give them correct per-node BFS cones so queries still
  // terminate.
  if (processed != n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      cone_masks_[i] = bfs_cone_mask(*this, i);
      std::uint64_t addresses = 0;
      std::size_t members = 0;
      cone_masks_[i].for_each([this, &addresses, &members](std::size_t j) {
        addresses += nodes_[j].address_count();
        ++members;
      });
      cone_addresses_[i] = addresses;
      cone_sizes_[i] = members;
    }
  }
  cones_built_ = true;
}

const util::DynamicBitset& AsGraph::cone_mask(std::size_t index) const {
  ensure_cones();
  return cone_masks_[index];
}

std::vector<net::Asn> AsGraph::customer_cone(net::Asn asn) const {
  const std::size_t root = index_of(asn);
  const util::DynamicBitset& mask = cone_mask(root);
  std::vector<net::Asn> cone;
  cone.reserve(cone_sizes_[root]);
  cone.push_back(asn);
  mask.for_each([this, root, &cone](std::size_t i) {
    if (i != root) cone.push_back(nodes_[i].asn);
  });
  return cone;
}

std::uint64_t AsGraph::cone_address_count(net::Asn asn) const {
  ensure_cones();
  return cone_addresses_[index_of(asn)];
}

std::uint64_t AsGraph::total_address_count() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.address_count();
  return total;
}

std::optional<std::string> AsGraph::validate() const {
  // Provider hierarchy must be acyclic: Kahn's algorithm over provider ->
  // customer edges.
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (net::Asn customer : adj_[i].customers)
      ++in_degree[index_of(customer)];
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (in_degree[i] == 0) ready.push_back(i);
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++visited;
    for (net::Asn customer : adj_[i].customers) {
      const std::size_t j = index_of(customer);
      if (--in_degree[j] == 0) ready.push_back(j);
    }
  }
  if (visited != nodes_.size())
    return "transit hierarchy contains a customer-provider cycle";

  // No pair may hold both transit and peering (checked on insert, but a
  // defensive re-check keeps the invariant explicit).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (net::Asn peer : adj_[i].peers) {
      if (is_transit(nodes_[i].asn, peer) || is_transit(peer, nodes_[i].asn))
        return "pair " + nodes_[i].asn.to_string() + "/" + peer.to_string() +
               " holds both transit and peering";
    }
  }
  return std::nullopt;
}

AsGraph::SnapshotParts AsGraph::snapshot_parts() const {
  SnapshotParts parts;
  parts.nodes = nodes_;
  parts.providers.reserve(adj_.size());
  parts.customers.reserve(adj_.size());
  parts.peers.reserve(adj_.size());
  for (const Adjacency& a : adj_) {
    parts.providers.push_back(a.providers);
    parts.customers.push_back(a.customers);
    parts.peers.push_back(a.peers);
  }
  return parts;
}

AsGraph AsGraph::restore(SnapshotParts parts) {
  const std::size_t n = parts.nodes.size();
  if (parts.providers.size() != n || parts.customers.size() != n ||
      parts.peers.size() != n)
    throw std::invalid_argument(
        "AsGraph::restore: adjacency/node count mismatch");

  AsGraph graph;
  graph.nodes_ = std::move(parts.nodes);
  graph.index_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::Asn asn = graph.nodes_[i].asn;
    if (!asn.is_valid())
      throw std::invalid_argument("AsGraph::restore: invalid ASN 0");
    if (!graph.index_.emplace(asn, i).second)
      throw std::invalid_argument("AsGraph::restore: duplicate " +
                                  asn.to_string());
  }

  // Symmetry checks over (index, index) edge keys: each directed transit
  // record must have exactly one mirror, each peering likewise. This is the
  // cheap O(E) closure of what add_transit/add_peering enforce per insert.
  auto key = [](std::size_t a, std::size_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  };
  auto index_of_checked = [&graph](net::Asn asn) {
    const auto it = graph.index_.find(asn);
    if (it == graph.index_.end())
      throw std::invalid_argument("AsGraph::restore: edge references unknown " +
                                  asn.to_string());
    return it->second;
  };
  std::unordered_map<std::uint64_t, int> transit;
  std::size_t transit_directed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (net::Asn customer : parts.customers[i]) {
      const std::size_t c = index_of_checked(customer);
      if (c == i)
        throw std::invalid_argument("AsGraph::restore: transit self-loop");
      if (++transit[key(i, c)] > 1)
        throw std::invalid_argument("AsGraph::restore: duplicate transit " +
                                    graph.nodes_[i].asn.to_string() + " -> " +
                                    customer.to_string());
      ++transit_directed;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (net::Asn provider : parts.providers[i]) {
      const std::size_t p = index_of_checked(provider);
      const auto it = transit.find(key(p, i));
      if (it == transit.end() || --it->second < 0)
        throw std::invalid_argument(
            "AsGraph::restore: provider list of " +
            graph.nodes_[i].asn.to_string() +
            " is not the mirror of the customer lists");
      --transit_directed;
    }
  }
  if (transit_directed != 0)
    throw std::invalid_argument(
        "AsGraph::restore: customer and provider lists disagree");

  std::unordered_map<std::uint64_t, int> peering;
  std::size_t peer_directed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (net::Asn peer : parts.peers[i]) {
      const std::size_t j = index_of_checked(peer);
      if (j == i)
        throw std::invalid_argument("AsGraph::restore: peering self-loop");
      if (++peering[key(i, j)] > 1)
        throw std::invalid_argument("AsGraph::restore: duplicate peering " +
                                    graph.nodes_[i].asn.to_string() + " <-> " +
                                    peer.to_string());
      ++peer_directed;
    }
  }
  for (const auto& [k, count] : peering) {
    const std::uint64_t mirror = key(k & 0xFFFFFFFFull, k >> 32);
    const auto it = peering.find(mirror);
    if (it == peering.end() || it->second != count)
      throw std::invalid_argument(
          "AsGraph::restore: peer lists are not symmetric");
  }

  graph.adj_.resize(n);
  std::size_t transit_edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    transit_edges += parts.customers[i].size();
    graph.adj_[i].providers = std::move(parts.providers[i]);
    graph.adj_[i].customers = std::move(parts.customers[i]);
    graph.adj_[i].peers = std::move(parts.peers[i]);
  }
  graph.transit_links_ = transit_edges;
  graph.peering_links_ = peer_directed / 2;
  return graph;
}

AsGraph::ConeMemo AsGraph::export_cones() const {
  ensure_cones();
  std::scoped_lock lock(cone_mutex_);
  return ConeMemo{cone_masks_, cone_addresses_, cone_sizes_};
}

void AsGraph::adopt_cones(ConeMemo memo) {
  const std::size_t n = nodes_.size();
  if (memo.masks.size() != n || memo.addresses.size() != n ||
      memo.sizes.size() != n)
    throw std::invalid_argument("AsGraph::adopt_cones: memo size mismatch");
  for (const auto& mask : memo.masks)
    if (mask.size() != n)
      throw std::invalid_argument("AsGraph::adopt_cones: mask width mismatch");
  std::scoped_lock lock(cone_mutex_);
  cone_masks_ = std::move(memo.masks);
  cone_addresses_ = std::move(memo.addresses);
  cone_sizes_ = std::move(memo.sizes);
  cones_built_.store(true, std::memory_order_release);
}

std::size_t AsGraph::index_of(net::Asn asn) const {
  const auto it = index_.find(asn);
  if (it == index_.end())
    throw std::out_of_range("AsGraph: unknown " + asn.to_string());
  return it->second;
}

const AsGraph::Adjacency& AsGraph::adjacency(net::Asn asn) const {
  return adj_[index_of(asn)];
}

std::string to_string(AsClass c) {
  switch (c) {
    case AsClass::kTier1: return "tier1";
    case AsClass::kTier2: return "tier2";
    case AsClass::kAccess: return "access";
    case AsClass::kContent: return "content";
    case AsClass::kCdn: return "cdn";
    case AsClass::kNren: return "nren";
    case AsClass::kEnterprise: return "enterprise";
  }
  return "unknown";
}

std::string to_string(PeeringPolicy p) {
  switch (p) {
    case PeeringPolicy::kOpen: return "open";
    case PeeringPolicy::kSelective: return "selective";
    case PeeringPolicy::kRestrictive: return "restrictive";
  }
  return "unknown";
}

}  // namespace rp::topology

// The AS-level graph with business relationships and customer cones.
//
// Edges are the two economic relationships of §2: transit (customer-to-
// provider) and settlement-free peering. The customer cone of an AS — itself
// plus its direct and indirect transit customers — determines which traffic a
// peering relationship may carry (§2.2), and therefore what remote peering
// can offload (§4.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/as_node.hpp"
#include "util/bitset.hpp"

namespace rp::topology {

/// A mutable AS graph. ASes are added first, then relationships; the provider
/// hierarchy must stay acyclic (enforced lazily by validate()).
class AsGraph {
 public:
  AsGraph() = default;
  // The cone-memo mutex is not copyable, so the special members are spelled
  // out; they transfer the graph and whatever memo has been built.
  AsGraph(const AsGraph& other);
  AsGraph& operator=(const AsGraph& other);
  AsGraph(AsGraph&& other) noexcept;
  AsGraph& operator=(AsGraph&& other) noexcept;
  ~AsGraph() = default;

  /// Adds an AS. Throws std::invalid_argument on duplicate or invalid ASN.
  void add_as(AsNode node);

  /// Records `provider` selling transit to `customer`.
  /// Throws if either AS is unknown, the edge duplicates an existing
  /// relationship in either direction, or provider == customer.
  void add_transit(net::Asn provider, net::Asn customer);

  /// Records settlement-free peering between a and b.
  /// Throws under the same conditions as add_transit.
  void add_peering(net::Asn a, net::Asn b);

  bool contains(net::Asn asn) const;
  const AsNode& node(net::Asn asn) const;
  AsNode& node(net::Asn asn);
  std::size_t as_count() const { return nodes_.size(); }
  std::size_t transit_link_count() const { return transit_links_; }
  std::size_t peering_link_count() const { return peering_links_; }

  /// All ASes, in insertion order.
  const std::vector<AsNode>& nodes() const { return nodes_; }

  std::span<const net::Asn> providers_of(net::Asn asn) const;
  std::span<const net::Asn> customers_of(net::Asn asn) const;
  std::span<const net::Asn> peers_of(net::Asn asn) const;

  /// True if `provider` directly sells transit to `customer`.
  bool is_transit(net::Asn provider, net::Asn customer) const;
  /// True if a and b directly peer.
  bool is_peering(net::Asn a, net::Asn b) const;

  /// The customer cone: `asn` plus every direct and indirect transit
  /// customer, each AS listed once. The root is always the first element;
  /// the rest follow in node-index (insertion) order.
  std::vector<net::Asn> customer_cone(net::Asn asn) const;

  /// The customer cone of nodes()[index] as an index-space bitset (bit j set
  /// iff nodes()[j] is in the cone). All cones are memoized on first use via
  /// one reverse-topological sweep of the transit DAG; adding ASes or
  /// transit edges invalidates the memo. The reference stays valid until the
  /// next such mutation.
  const util::DynamicBitset& cone_mask(std::size_t index) const;

  /// Number of IP interfaces originated inside the customer cone. Memoized
  /// alongside cone_mask(); assumes node prefixes stop changing once cones
  /// are queried.
  std::uint64_t cone_address_count(net::Asn asn) const;

  /// Total addresses originated by all ASes in the graph.
  std::uint64_t total_address_count() const;

  /// Checks structural invariants: provider hierarchy is acyclic and no pair
  /// of ASes holds both transit and peering relationships.
  /// Returns an explanatory message for the first violation, or nullopt.
  std::optional<std::string> validate() const;

  /// Index of an ASN into nodes(); throws std::out_of_range if unknown.
  std::size_t index_of(net::Asn asn) const;

  // --- Snapshot support (rp::io) --------------------------------------------
  // A graph's observable state is its node list plus the per-node adjacency
  // lists in insertion order (span order is visible to route computation and
  // cone building, so a byte-identical reload must preserve it exactly).

  /// Exact per-node adjacency, indexed like nodes().
  struct SnapshotParts {
    std::vector<AsNode> nodes;
    std::vector<std::vector<net::Asn>> providers;
    std::vector<std::vector<net::Asn>> customers;
    std::vector<std::vector<net::Asn>> peers;
  };

  /// Copies the graph into its snapshot representation.
  SnapshotParts snapshot_parts() const;

  /// Rebuilds a graph from snapshot parts, preserving adjacency order
  /// bit-for-bit. Validates referential symmetry (every transit edge appears
  /// in both endpoints' lists exactly once, every peering in both peer
  /// lists); throws std::invalid_argument on any inconsistency so a corrupt
  /// snapshot can never produce a half-formed graph.
  static AsGraph restore(SnapshotParts parts);

  /// The memoized cone state, exportable so snapshots can persist it.
  struct ConeMemo {
    std::vector<util::DynamicBitset> masks;
    std::vector<std::uint64_t> addresses;
    std::vector<std::size_t> sizes;
  };

  /// Whether the cone memo has been built (and would be exported).
  bool cones_ready() const {
    return cones_built_.load(std::memory_order_acquire);
  }
  /// Builds the memo if needed and returns a copy.
  ConeMemo export_cones() const;
  /// Installs a previously exported memo, skipping the topological sweep.
  /// The memo must come from export_cones() on an identical graph; vector
  /// and bitset dimensions are validated, contents are trusted (snapshot
  /// checksums cover them).
  void adopt_cones(ConeMemo memo);

 private:
  struct Adjacency {
    std::vector<net::Asn> providers;
    std::vector<net::Asn> customers;
    std::vector<net::Asn> peers;
  };

  const Adjacency& adjacency(net::Asn asn) const;

  /// Builds all cone masks (and per-cone address totals) if stale.
  void ensure_cones() const;
  void invalidate_cones();

  std::vector<AsNode> nodes_;
  std::unordered_map<net::Asn, std::size_t> index_;
  std::vector<Adjacency> adj_;
  std::size_t transit_links_ = 0;
  std::size_t peering_links_ = 0;

  // Lazily built cone memo; guarded by cone_mutex_ during construction so
  // concurrent readers (the thread-pool fan-outs) build it exactly once.
  // The built flag is atomic so the post-build fast path takes no lock.
  mutable std::mutex cone_mutex_;
  mutable std::atomic<bool> cones_built_ = false;
  mutable std::vector<util::DynamicBitset> cone_masks_;
  mutable std::vector<std::uint64_t> cone_addresses_;
  mutable std::vector<std::size_t> cone_sizes_;
};

}  // namespace rp::topology

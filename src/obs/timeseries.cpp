#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace rp::obs {

namespace {

std::size_t capacity_from_env() {
  constexpr std::size_t kDefault = 256;
  constexpr std::size_t kFloor = 16;
  const char* raw = std::getenv("RP_OBS_RING");
  if (raw == nullptr || *raw == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) return kDefault;
  return std::max<std::size_t>(kFloor, static_cast<std::size_t>(v));
}

// Fixed ring of points; `next` wraps, `filled` saturates at capacity.
struct Series {
  std::vector<SeriesPoint> points;
  std::size_t next = 0;
  std::size_t filled = 0;

  void push(SeriesPoint p) {
    points[next] = p;
    next = (next + 1) % points.size();
    filled = std::min(filled + 1, points.size());
  }
};

}  // namespace

struct TimeSeriesRecorder::Impl {
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::map<std::string, Series> series;
  // Previous counter totals, for delta → rate.
  std::map<std::string, std::uint64_t> last_counters;
  std::uint64_t last_sample_ns = 0;
  std::uint64_t ticks = 0;
  std::uint64_t interval_ms = 0;
  bool stopping = false;
  std::thread sampler;

  Series& series_for(const std::string& key, std::size_t capacity) {
    auto it = series.find(key);
    if (it == series.end()) {
      it = series.emplace(key, Series{}).first;
      it->second.points.resize(capacity);
    }
    return it->second;
  }
};

TimeSeriesRecorder::TimeSeriesRecorder()
    : impl_(new Impl), capacity_(capacity_from_env()) {}

TimeSeriesRecorder& TimeSeriesRecorder::global() {
  // Leaked like the MetricsRegistry so a still-running sampler at process
  // exit never races static destruction.
  static TimeSeriesRecorder* instance = new TimeSeriesRecorder();
  return *instance;
}

std::uint64_t TimeSeriesRecorder::interval_ms_from_env() {
  const char* raw = std::getenv("RP_OBS_SAMPLE_MS");
  if (raw == nullptr || *raw == '\0') return kDefaultSampleMs;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return kDefaultSampleMs;
  return static_cast<std::uint64_t>(v);  // 0 = sampler disabled
}

void TimeSeriesRecorder::sample_once() {
  const std::vector<MetricValue> snap = MetricsRegistry::global().snapshot();
  const std::uint64_t now = monotonic_ns();

  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t prev_ns = impl_->last_sample_ns;
  const double dt_s =
      prev_ns == 0 ? 0.0 : static_cast<double>(now - prev_ns) / 1e9;
  for (const MetricValue& m : snap) {
    switch (m.kind) {
      case MetricKind::kCounter: {
        auto it = impl_->last_counters.find(m.name);
        const bool have_prev = it != impl_->last_counters.end();
        const std::uint64_t prev = have_prev ? it->second : 0;
        if (have_prev && dt_s > 0.0) {
          const double rate =
              m.count >= prev
                  ? static_cast<double>(m.count - prev) / dt_s
                  : 0.0;  // registry reset between samples
          impl_->series_for(m.name + ".rate", capacity_)
              .push(SeriesPoint{now, rate});
        }
        impl_->last_counters[m.name] = m.count;
        break;
      }
      case MetricKind::kGauge:
        impl_->series_for(m.name, capacity_).push(SeriesPoint{now, m.value});
        break;
      case MetricKind::kHistogram: {
        const double p50 = m.quantile(0.50);
        const double p99 = m.quantile(0.99);
        if (std::isnan(p50)) break;  // empty histogram: suppress the series
        impl_->series_for(m.name + ".p50", capacity_)
            .push(SeriesPoint{now, p50});
        impl_->series_for(m.name + ".p99", capacity_)
            .push(SeriesPoint{now, p99});
        break;
      }
    }
  }
  impl_->last_sample_ns = now;
  ++impl_->ticks;
}

bool TimeSeriesRecorder::start(std::uint64_t interval_ms) {
  if (interval_ms == 0) return false;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->sampler.joinable()) return false;
  impl_->stopping = false;
  impl_->interval_ms = interval_ms;
  impl_->sampler = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    while (!impl_->stopping) {
      impl_->cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return impl_->stopping; });
      if (impl_->stopping) break;
      lock.unlock();
      sample_once();
      lock.lock();
    }
  });
  return true;
}

void TimeSeriesRecorder::stop() {
  std::thread sampler;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->sampler.joinable()) return;
    impl_->stopping = true;
    impl_->interval_ms = 0;
    sampler.swap(impl_->sampler);
  }
  impl_->cv.notify_all();
  sampler.join();
}

bool TimeSeriesRecorder::running() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->sampler.joinable();
}

std::uint64_t TimeSeriesRecorder::interval_ms() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->interval_ms;
}

std::uint64_t TimeSeriesRecorder::samples() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->ticks;
}

std::vector<std::string> TimeSeriesRecorder::keys() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->series.size());
  for (const auto& [key, series] : impl_->series)
    if (series.filled > 0) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

std::vector<SeriesPoint> TimeSeriesRecorder::window(const std::string& key,
                                                    std::size_t max) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->series.find(key);
  if (it == impl_->series.end()) return {};
  const Series& s = it->second;
  const std::size_t n =
      max == 0 ? s.filled : std::min(max, s.filled);
  std::vector<SeriesPoint> out;
  out.reserve(n);
  // Oldest resident point sits at `next` once the ring has wrapped.
  const std::size_t start =
      (s.next + s.points.size() - n) % s.points.size();
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(s.points[(start + i) % s.points.size()]);
  return out;
}

void TimeSeriesRecorder::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->series.clear();
  impl_->last_counters.clear();
  impl_->last_sample_ns = 0;
  impl_->ticks = 0;
}

}  // namespace rp::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace rp::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_env_requested() {
  const char* env = std::getenv("RP_METRICS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

// Fixed shard capacities. Registration beyond these throws, which is a
// programming error (add more instrumentation sites → bump the cap). Fixed
// arrays keep a shard a single allocation and let writers index without any
// synchronization with registration.
constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxHistograms = 48;

struct HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  // Min/max are monotone under concurrent relaxed CAS loops.
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
};

// One writer thread's private block. Held by shared_ptr from both the
// registry (for aggregation) and the owning thread's thread_local slot, so
// it survives whichever side is destroyed first.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::unique_ptr<HistogramShard[]> histograms;  // lazily sized kMaxHistograms

  HistogramShard* histogram_block() {
    HistogramShard* block = histogram_ptr.load(std::memory_order_acquire);
    if (block != nullptr) return block;
    std::lock_guard<std::mutex> lock(init_mutex);
    block = histogram_ptr.load(std::memory_order_relaxed);
    if (block == nullptr) {
      histograms = std::make_unique<HistogramShard[]>(kMaxHistograms);
      block = histograms.get();
      histogram_ptr.store(block, std::memory_order_release);
    }
    return block;
  }

  std::atomic<HistogramShard*> histogram_ptr{nullptr};
  std::mutex init_mutex;
};

struct MetricInfo {
  std::string name;
  MetricKind kind;
  Stability stability;
  std::size_t slot;  // index into the per-kind shard arrays
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::vector<MetricInfo> metrics;                       // by id
  std::unordered_map<std::string, std::size_t> by_name;  // name -> id
  std::size_t counter_slots = 0;
  std::size_t histogram_slots = 0;
  std::vector<double> gauges;  // by gauge slot, guarded by mutex
  std::vector<std::shared_ptr<Shard>> shards;  // live + retired, all threads

  Shard* this_thread_shard() {
    thread_local std::shared_ptr<Shard> local;
    if (!local) {
      local = std::make_shared<Shard>();
      std::lock_guard<std::mutex> lock(mutex);
      shards.push_back(local);
    }
    return local.get();
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

// The registry is a leaked singleton (see global()), so the destructor only
// exists for completeness; it never runs in practice, which sidesteps any
// static-destruction ordering against worker threads still holding shards.
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

std::size_t MetricsRegistry::register_metric(const std::string& name,
                                             MetricKind kind,
                                             Stability stability) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    const MetricInfo& existing = impl_->metrics[it->second];
    if (existing.kind != kind) {
      throw std::logic_error("obs: metric '" + name +
                             "' re-registered with a different kind");
    }
    return it->second;
  }
  std::size_t slot = 0;
  switch (kind) {
    case MetricKind::kCounter:
      slot = impl_->counter_slots++;
      if (slot >= kMaxCounters) {
        throw std::logic_error("obs: counter capacity exceeded; bump kMaxCounters");
      }
      break;
    case MetricKind::kHistogram:
      slot = impl_->histogram_slots++;
      if (slot >= kMaxHistograms) {
        throw std::logic_error(
            "obs: histogram capacity exceeded; bump kMaxHistograms");
      }
      break;
    case MetricKind::kGauge:
      slot = impl_->gauges.size();
      impl_->gauges.push_back(0.0);
      break;
  }
  std::size_t id = impl_->metrics.size();
  impl_->metrics.push_back(MetricInfo{name, kind, stability, slot});
  impl_->by_name.emplace(name, id);
  return id;
}

void MetricsRegistry::counter_add(std::size_t id, std::uint64_t delta) {
  const std::size_t slot = impl_->metrics[id].slot;
  impl_->this_thread_shard()->counters[slot].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::size_t id, double value) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->gauges[impl_->metrics[id].slot] = value;
}

void MetricsRegistry::histogram_record(std::size_t id, std::uint64_t value) {
  const std::size_t slot = impl_->metrics[id].slot;
  HistogramShard& h =
      impl_->this_thread_shard()->histogram_block()[slot];
  h.buckets[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = h.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !h.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = h.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !h.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double MetricValue::quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0)
    return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; rank r means "the r-th smallest sample".
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b).
    if (b == 0) return 0.0;
    const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
    const double hi = b >= 63 ? 2.0 * lo : static_cast<double>(std::uint64_t{1} << b);
    const double fraction =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    const double estimate = lo + fraction * (hi - lo);
    return std::clamp(estimate, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

std::vector<MetricValue> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricValue> out;
  out.reserve(impl_->metrics.size());
  for (const MetricInfo& info : impl_->metrics) {
    MetricValue v;
    v.name = info.name;
    v.kind = info.kind;
    v.stability = info.stability;
    switch (info.kind) {
      case MetricKind::kCounter:
        for (const auto& shard : impl_->shards) {
          v.count +=
              shard->counters[info.slot].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kGauge:
        v.value = impl_->gauges[info.slot];
        break;
      case MetricKind::kHistogram: {
        std::uint64_t min = ~std::uint64_t{0};
        for (const auto& shard : impl_->shards) {
          HistogramShard* block =
              shard->histogram_ptr.load(std::memory_order_acquire);
          if (block == nullptr) continue;
          const HistogramShard& h = block[info.slot];
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            const std::uint64_t n =
                h.buckets[b].load(std::memory_order_relaxed);
            v.buckets[b] += n;
            v.count += n;
          }
          v.sum += h.sum.load(std::memory_order_relaxed);
          min = std::min(min, h.min.load(std::memory_order_relaxed));
          v.max = std::max(v.max, h.max.load(std::memory_order_relaxed));
        }
        v.min = v.count == 0 ? 0 : min;
        break;
      }
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<MetricValue> MetricsRegistry::deterministic_snapshot() const {
  std::vector<MetricValue> all = snapshot();
  std::vector<MetricValue> out;
  for (MetricValue& v : all) {
    if (v.stability == Stability::kDeterministic) out.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& shard : impl_->shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    HistogramShard* block =
        shard->histogram_ptr.load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (std::size_t s = 0; s < kMaxHistograms; ++s) {
      HistogramShard& h = block[s];
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
    }
  }
  for (double& g : impl_->gauges) g = 0.0;
}

}  // namespace rp::obs

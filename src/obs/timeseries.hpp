// rp::obs time-series recorder — periodic MetricsRegistry snapshots reduced
// to fixed-size rings, so a live process (the serve daemon) can answer "what
// happened over the last N seconds" without unbounded memory.
//
// A single sampler thread wakes every `interval_ms`, snapshots the global
// registry, and appends one point per derived series:
//
//   counters   → `<name>.rate`  (delta since previous sample / elapsed s)
//   gauges     → `<name>`       (last value)
//   histograms → `<name>.p50`, `<name>.p99` (cumulative-distribution
//                quantiles; suppressed while the histogram is empty)
//
// Each series is a ring of `capacity` points (RP_OBS_RING, default 256), so
// memory is bounded by series-count × capacity regardless of uptime. When the
// recorder is not started there is no thread and no cost — the same
// disarmed-by-default discipline as the rest of rp::obs. All values here are
// wall-clock rates and latencies, i.e. scheduling-dependent telemetry; the
// recorder never feeds back into the registry, so deterministic_snapshot()
// is unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rp::obs {

/// One sample of one series.
struct SeriesPoint {
  std::uint64_t t_ns = 0;  ///< monotonic_ns at the owning sample tick.
  double value = 0.0;
};

/// Default sampling interval when RP_OBS_SAMPLE_MS is unset.
inline constexpr std::uint64_t kDefaultSampleMs = 500;

/// The process-wide recorder (leaked singleton, like the MetricsRegistry).
class TimeSeriesRecorder {
 public:
  static TimeSeriesRecorder& global();

  /// Sampling interval from RP_OBS_SAMPLE_MS (default kDefaultSampleMs;
  /// 0 disables the sampler entirely).
  static std::uint64_t interval_ms_from_env();

  /// Starts the sampler thread. `interval_ms == 0` is a no-op (recorder
  /// stays disarmed). Returns false when already running or disabled.
  bool start(std::uint64_t interval_ms);

  /// Stops and joins the sampler thread (no-op when not running).
  void stop();

  bool running() const;

  /// Takes one sample synchronously — the sampler thread's body, exposed so
  /// tests (and `rpq top` consumers reading a quiescent process) can drive
  /// the recorder deterministically without the thread.
  void sample_once();

  /// Interval the running sampler was started with (0 when stopped).
  std::uint64_t interval_ms() const;

  /// Total sample ticks taken since construction/reset.
  std::uint64_t samples() const;

  /// Ring capacity per series (RP_OBS_RING, default 256, floor 16).
  std::size_t capacity() const { return capacity_; }

  /// Sorted names of every series with at least one point.
  std::vector<std::string> keys() const;

  /// The most recent `max` points of one series, oldest → newest (0 = the
  /// whole resident ring). Unknown keys return empty.
  std::vector<SeriesPoint> window(const std::string& key,
                                  std::size_t max = 0) const;

  /// Drops every series and zeroes the tick counter (sampler may be running;
  /// tests call this between cases).
  void reset();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

 private:
  TimeSeriesRecorder();
  struct Impl;
  Impl* impl_;
  std::size_t capacity_ = 0;
};

}  // namespace rp::obs

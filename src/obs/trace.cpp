#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rp::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct Event {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t flow_id;  // 's'/'t'/'f' phases only
  int tid;
  char phase;  // 'B', 'E', or the flow phases 's'/'t'/'f'
};

// One thread's event buffer. Held by shared_ptr from both the session
// registry and the owning thread's thread_local slot, so it outlives
// whichever is torn down first (global thread-pool workers can outlive the
// session, and the session can outlive short-lived threads).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  int tid = 0;
};

// Leaked on purpose: worker threads may record trace events during their own
// thread_local destruction at process exit, after function-local statics in
// the main thread would have been destroyed.
struct Session {
  std::mutex mutex;
  std::string path;
  std::uint64_t start_ns = 0;
  std::uint64_t generation = 0;  // bumped by every start_trace
  int next_tid = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Session& session() {
  static Session* s = new Session();
  return *s;
}

ThreadBuffer* this_thread_buffer() {
  thread_local std::uint64_t local_generation = 0;
  thread_local std::shared_ptr<ThreadBuffer> local;
  Session& s = session();
  if (!local || local_generation != s.generation) {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(s.mutex);
    // Re-check under the lock: stop_trace may have ended the session between
    // the enabled check and here, in which case the event is simply dropped
    // into an unregistered buffer.
    fresh->tid = s.next_tid++;
    s.buffers.push_back(fresh);
    local = std::move(fresh);
    local_generation = s.generation;
  }
  return local.get();
}

void record(const char* name, char phase, std::uint64_t flow_id = 0) {
  const std::uint64_t now = monotonic_ns();
  ThreadBuffer* buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf->mutex);
  buf->events.push_back(Event{name, now, flow_id, buf->tid, phase});
}

void atexit_flush() { stop_trace(); }

}  // namespace

bool start_trace(const std::string& path) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (trace_enabled()) return false;
  s.path = path;
  s.buffers.clear();
  s.next_tid = 1;
  ++s.generation;
  s.start_ns = monotonic_ns();
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  return true;
}

std::size_t stop_trace() {
  Session& s = session();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string path;
  std::uint64_t start_ns = 0;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!trace_enabled()) return 0;
    // Flip the gate first: spans starting after this point record nothing,
    // and in-flight appends race only against the per-buffer merge locks.
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
    buffers.swap(s.buffers);
    path.swap(s.path);
    start_ns = s.start_ns;
  }

  std::vector<Event> merged;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  // Per-thread streams are already time-ordered; a stable sort by timestamp
  // keeps B-before-E for zero-length spans within a thread.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return 0;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char ts[64];
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Event& e = merged[i];
    const std::uint64_t rel = e.ts_ns - start_ns;
    // Chrome's ts unit is microseconds; keep nanosecond resolution.
    std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                  static_cast<unsigned long long>(rel / 1000),
                  static_cast<unsigned long long>(rel % 1000));
    os << "{\"name\":\"" << json::escape(e.name) << "\",\"cat\":\"rp\",\"ph\":\""
       << e.phase << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      // Flow events carry the arrow id; "bp":"e" binds the arrow's end to
      // the enclosing slice rather than the next one.
      char id[32];
      std::snprintf(id, sizeof(id), "0x%llx",
                    static_cast<unsigned long long>(e.flow_id));
      os << ",\"id\":\"" << id << "\"";
      if (e.phase == 'f') os << ",\"bp\":\"e\"";
    }
    os << "}" << (i + 1 < merged.size() ? ",\n" : "\n");
  }
  os << "]}\n";
  return merged.size();
}

std::string maybe_start_trace_from_env() {
  static std::mutex env_mutex;
  std::lock_guard<std::mutex> lock(env_mutex);
  static bool checked = false;
  static std::string armed_path;
  if (!checked) {
    checked = true;
    const char* env = std::getenv("RP_TRACE");
    if (env != nullptr && env[0] != '\0') {
      if (start_trace(env)) {
        armed_path = env;
        std::atexit(atexit_flush);
      }
    }
  }
  return armed_path;
}

namespace {
// Arms RP_TRACE at load time so any binary can be traced without code
// changes; the atexit hook flushes the file when the process ends.
[[maybe_unused]] const bool g_env_trace_armed =
    !maybe_start_trace_from_env().empty();
}  // namespace

void flow_begin(const char* name, std::uint64_t id) {
  if (trace_enabled()) record(name, 's', id);
}

void flow_step(const char* name, std::uint64_t id) {
  if (trace_enabled()) record(name, 't', id);
}

void flow_end(const char* name, std::uint64_t id) {
  if (trace_enabled()) record(name, 'f', id);
}

void Span::begin(const char* name) {
  name_ = name;
  record(name, 'B');
}

void Span::end() { record(name_, 'E'); }

}  // namespace rp::obs

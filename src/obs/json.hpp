// Minimal JSON emission helpers shared by the obs exporters and the bench
// harnesses. No parsing, no DOM — just correct escaping and a flat
// name→number object writer, which is all the CI trajectory files need.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rp::obs::json {

/// Escapes a string for inclusion inside JSON double quotes (handles the
/// two mandatory escapes plus control characters as \u00XX).
std::string escape(std::string_view s);

/// Formats a double as a JSON number (finite values only; non-finite values
/// become 0 because JSON has no representation for them).
std::string number(double v);

/// Formats an unsigned integer as a JSON number, exactly.
std::string number(std::uint64_t v);

/// A (key, already-formatted JSON value) pair for write_flat_object.
using Entry = std::pair<std::string, std::string>;

/// Writes `{"k": v, ...}` with one key per line — stable, diffable output
/// for BENCH_*.json and --metrics --json files.
void write_flat_object(std::ostream& os, const std::vector<Entry>& entries);

}  // namespace rp::obs::json

#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace rp::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  // %.17g round-trips doubles but litters output with noise digits; %.6g is
  // plenty for metric values and keeps the files readable.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  std::string s(buf);
  return s;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

void write_flat_object(std::ostream& os, const std::vector<Entry>& entries) {
  os << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  \"" << escape(entries[i].first) << "\": " << entries[i].second
       << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "}\n";
}

}  // namespace rp::obs::json

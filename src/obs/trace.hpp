// rp::obs tracing — scoped phase spans exported as Chrome/Perfetto
// trace_event JSON.
//
// A trace session is opened with start_trace(path) (or by setting
// RP_TRACE=<file> in the environment, which arms tracing at first use and
// flushes at process exit). While a session is active, obs::Span records a
// begin event on construction and an end event on destruction, tagged with a
// small stable thread id. Events accumulate in per-thread buffers (own mutex
// each, no cross-thread contention); stop_trace() merges them, sorts by
// timestamp, and writes the JSON file that chrome://tracing and
// https://ui.perfetto.dev load directly.
//
// When no session is active a Span is a branch on a constant — safe to leave
// in release hot paths at phase granularity.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rp::obs {

namespace detail {
// Relaxed atomic for the same reason as g_metrics_enabled: spans on pool
// workers read it while the main thread starts/stops sessions.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while a trace session is recording.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts recording spans; the trace is written to `path` by stop_trace().
/// Returns false (and records nothing) if a session is already active.
bool start_trace(const std::string& path);

/// Stops the active session and writes the trace file. Returns the number of
/// events written, or 0 if no session was active. Safe to call twice.
std::size_t stop_trace();

/// If RP_TRACE=<file> is set and no session is active, starts a session
/// writing there and registers an atexit flush. Runs automatically at load
/// time (so any binary honours RP_TRACE); examples call it again — it is
/// idempotent — to report the armed destination. Returns the armed path, or
/// an empty string.
std::string maybe_start_trace_from_env();

/// RAII phase span. `name` must outlive the span (string literals do).
class Span {
 public:
  explicit Span(const char* name) : name_(nullptr) {
    if (trace_enabled()) begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();
  const char* name_;
};

}  // namespace rp::obs

// rp::obs tracing — scoped phase spans exported as Chrome/Perfetto
// trace_event JSON.
//
// A trace session is opened with start_trace(path) (or by setting
// RP_TRACE=<file> in the environment, which arms tracing at first use and
// flushes at process exit). While a session is active, obs::Span records a
// begin event on construction and an end event on destruction, tagged with a
// small stable thread id. Events accumulate in per-thread buffers (own mutex
// each, no cross-thread contention); stop_trace() merges them, sorts by
// timestamp, and writes the JSON file that chrome://tracing and
// https://ui.perfetto.dev load directly.
//
// Flow events (flow_begin / flow_step / flow_end) tie spans on different
// threads into one causal arrow — the serve daemon uses them to link a
// request's reader-thread parse span to its dispatcher/worker execute and
// respond spans under one flow id. They map to the Chrome 's'/'t'/'f'
// phases; Perfetto draws the arrows between the slices that enclose them.
//
// When no session is active a Span is a branch on a constant — safe to leave
// in release hot paths at phase granularity.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rp::obs {

namespace detail {
// Relaxed atomic for the same reason as g_metrics_enabled: spans on pool
// workers read it while the main thread starts/stops sessions.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while a trace session is recording.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts recording spans; the trace is written to `path` by stop_trace().
/// Returns false (and records nothing) if a session is already active.
bool start_trace(const std::string& path);

/// Stops the active session and writes the trace file. Returns the number of
/// events written, or 0 if no session was active. Safe to call twice.
std::size_t stop_trace();

/// If RP_TRACE=<file> is set and no session is active, starts a session
/// writing there and registers an atexit flush. Runs automatically at load
/// time (so any binary honours RP_TRACE); examples call it again — it is
/// idempotent — to report the armed destination. Returns the armed path, or
/// an empty string.
std::string maybe_start_trace_from_env();

/// Emits one flow event tying the enclosing spans of several threads into a
/// causal chain keyed by `id`. flow_begin starts the arrow ('s'), flow_step
/// continues it through an intermediate thread ('t'), flow_end terminates it
/// ('f', binding to the enclosing slice). `name` must outlive the session
/// (string literals do); every id must see exactly one begin and one end for
/// the trace to be balanced. No-ops when no session is active.
void flow_begin(const char* name, std::uint64_t id);
void flow_step(const char* name, std::uint64_t id);
void flow_end(const char* name, std::uint64_t id);

/// RAII phase span. `name` must outlive the span (string literals do).
class Span {
 public:
  explicit Span(const char* name) : name_(nullptr) {
    if (trace_enabled()) begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();
  const char* name_;
};

}  // namespace rp::obs

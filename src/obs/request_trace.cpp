#include "obs/request_trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace rp::obs {

namespace {

// One ring slot. Every field is an atomic so single-writer stores can race
// benignly with stats readers; `seq` is the publication marker — the writer
// clears it before touching the payload and stores the new sequence last, and
// a reader that sees `seq` change across its field loads discards the torn
// record. Payload stores are release and payload loads acquire: that orders
// them against the bracketing `seq` accesses without std::atomic_thread_fence,
// which GCC rejects under -fsanitize=thread (-Wtsan) because TSan cannot
// model fences.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> request_id{0};
  std::atomic<std::uint64_t> type_ok{0};  // type | (ok << 8)
  std::atomic<std::uint64_t> world_digest{0};
  std::atomic<std::uint64_t> accept_ns{0};
  std::atomic<std::uint64_t> queue_ns{0};
  std::atomic<std::uint64_t> pool_ns{0};
  std::atomic<std::uint64_t> compute_ns{0};
  std::atomic<std::uint64_t> write_ns{0};
};

// One recording thread's ring. `next` is plain: exactly one thread writes it.
struct Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Slot> slots;
  std::uint64_t next = 0;
};

// Cumulative per-type latency aggregate (log2 buckets like the metrics
// histograms, so quantiles reuse MetricValue::quantile).
struct TypeAggregate {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

std::size_t ring_capacity_from_env() {
  constexpr std::size_t kDefault = 256;
  constexpr std::size_t kFloor = 16;
  const char* raw = std::getenv("RP_OBS_RING");
  if (raw == nullptr || *raw == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) return kDefault;
  return std::max<std::size_t>(kFloor, static_cast<std::size_t>(v));
}

}  // namespace

struct RequestTracer::Impl {
  mutable std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  // live + retired threads
  std::array<TypeAggregate, RequestTracer::kMaxTypes> types{};
  std::uint64_t generation = 0;  // bumped by reset(); invalidates TL rings

  Ring* this_thread_ring(std::size_t capacity) {
    thread_local std::shared_ptr<Ring> local;
    thread_local std::uint64_t local_generation = ~std::uint64_t{0};
    std::uint64_t current = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      current = generation;
    }
    if (!local || local_generation != current) {
      local = std::make_shared<Ring>(capacity);
      local_generation = current;
      std::lock_guard<std::mutex> lock(mutex);
      rings.push_back(local);
    }
    return local.get();
  }
};

RequestTracer::RequestTracer()
    : impl_(new Impl), ring_capacity_(ring_capacity_from_env()) {}

RequestTracer& RequestTracer::global() {
  // Leaked like the MetricsRegistry: worker threads may record during their
  // own teardown at process exit.
  static RequestTracer* instance = new RequestTracer();
  return *instance;
}

void RequestTracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void RequestTracer::record(RequestRecord record) {
  if (!enabled()) return;
  record.seq = 1 + seq_counter_.fetch_add(1, std::memory_order_relaxed);

  Ring* ring = impl_->this_thread_ring(ring_capacity_);
  Slot& slot = ring->slots[ring->next % ring->slots.size()];
  ++ring->next;
  // Unpublish, fill, publish: a reader that loads fields between the two
  // seq stores sees them bracketed by different values and drops the record.
  // Each release payload store keeps the seq=0 store visible before it.
  slot.seq.store(0, std::memory_order_release);
  slot.request_id.store(record.request_id, std::memory_order_release);
  slot.type_ok.store(static_cast<std::uint64_t>(record.type) |
                         (record.ok ? 0x100u : 0u),
                     std::memory_order_release);
  slot.world_digest.store(record.world_digest, std::memory_order_release);
  slot.accept_ns.store(record.accept_ns, std::memory_order_release);
  slot.queue_ns.store(record.queue_ns, std::memory_order_release);
  slot.pool_ns.store(record.pool_ns, std::memory_order_release);
  slot.compute_ns.store(record.compute_ns, std::memory_order_release);
  slot.write_ns.store(record.write_ns, std::memory_order_release);
  slot.seq.store(record.seq, std::memory_order_release);

  const std::size_t type_slot =
      record.type < kMaxTypes ? record.type : 0;
  TypeAggregate& agg = impl_->types[type_slot];
  const std::uint64_t total_ns =
      record.queue_ns + record.pool_ns + record.compute_ns + record.write_ns;
  agg.count.fetch_add(1, std::memory_order_relaxed);
  agg.sum.fetch_add(total_ns, std::memory_order_relaxed);
  agg.buckets[std::bit_width(total_ns)].fetch_add(1,
                                                  std::memory_order_relaxed);
  std::uint64_t seen = agg.min.load(std::memory_order_relaxed);
  while (total_ns < seen && !agg.min.compare_exchange_weak(
                                seen, total_ns, std::memory_order_relaxed)) {
  }
  seen = agg.max.load(std::memory_order_relaxed);
  while (total_ns > seen && !agg.max.compare_exchange_weak(
                                seen, total_ns, std::memory_order_relaxed)) {
  }
}

namespace {

// Reads one slot with the torn-record check; returns false when the slot is
// empty or was overwritten while being read. Acquire payload loads keep the
// final seq re-check from being observed before them.
bool read_slot(const Slot& slot, RequestRecord& out) {
  const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before == 0) return false;
  out.seq = seq_before;
  out.request_id = slot.request_id.load(std::memory_order_acquire);
  const std::uint64_t type_ok = slot.type_ok.load(std::memory_order_acquire);
  out.type = static_cast<std::uint8_t>(type_ok & 0xff);
  out.ok = (type_ok & 0x100u) != 0;
  out.world_digest = slot.world_digest.load(std::memory_order_acquire);
  out.accept_ns = slot.accept_ns.load(std::memory_order_acquire);
  out.queue_ns = slot.queue_ns.load(std::memory_order_acquire);
  out.pool_ns = slot.pool_ns.load(std::memory_order_acquire);
  out.compute_ns = slot.compute_ns.load(std::memory_order_acquire);
  out.write_ns = slot.write_ns.load(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_acquire) == seq_before;
}

}  // namespace

std::vector<RequestRecord> RequestTracer::recent(std::size_t max) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    rings = impl_->rings;
  }
  std::vector<RequestRecord> out;
  RequestRecord record;
  for (const auto& ring : rings)
    for (const Slot& slot : ring->slots)
      if (read_slot(slot, record)) out.push_back(record);
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.seq < b.seq;
            });
  if (max != 0 && out.size() > max)
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max));
  return out;
}

std::vector<RequestRecord> RequestTracer::slowest(std::size_t k) const {
  std::vector<RequestRecord> all = recent(0);
  std::sort(all.begin(), all.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              if (a.compute_ns != b.compute_ns)
                return a.compute_ns > b.compute_ns;
              return a.seq < b.seq;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<TypeLatency> RequestTracer::type_latencies() const {
  std::vector<TypeLatency> out;
  for (std::size_t t = 0; t < kMaxTypes; ++t) {
    const TypeAggregate& agg = impl_->types[t];
    const std::uint64_t count = agg.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    // Borrow MetricValue::quantile: same log2 buckets, same clamp contract.
    MetricValue value;
    value.kind = MetricKind::kHistogram;
    value.count = count;
    value.sum = agg.sum.load(std::memory_order_relaxed);
    value.min = agg.min.load(std::memory_order_relaxed);
    value.max = agg.max.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      value.buckets[b] = agg.buckets[b].load(std::memory_order_relaxed);
    TypeLatency latency;
    latency.type = static_cast<std::uint8_t>(t);
    latency.count = count;
    latency.p50_ns = value.quantile(0.50);
    latency.p99_ns = value.quantile(0.99);
    latency.max_ns = value.max;
    out.push_back(latency);
  }
  return out;
}

void RequestTracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Detach every ring (threads re-register against the new generation) and
  // zero the aggregates and counters.
  impl_->rings.clear();
  ++impl_->generation;
  for (TypeAggregate& agg : impl_->types) {
    agg.count.store(0, std::memory_order_relaxed);
    agg.sum.store(0, std::memory_order_relaxed);
    agg.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    agg.max.store(0, std::memory_order_relaxed);
    for (auto& bucket : agg.buckets)
      bucket.store(0, std::memory_order_relaxed);
  }
  id_counter_.store(0, std::memory_order_relaxed);
  seq_counter_.store(0, std::memory_order_relaxed);
}

}  // namespace rp::obs

// rp::obs request tracing — per-request phase-latency records for the serve
// daemon (and any future request-shaped workload).
//
// Every accepted frame gets a server-side request id; the daemon threads it
// through accept → parse → enqueue → batch-group → pool lookup → execute →
// respond and, when the request completes, records one RequestRecord with
// the per-phase breakdown (queue wait, pool/world wait, compute, response
// write). Records land in a lock-free per-thread ring:
//
//   - one writer per ring (the recording thread), so stores need no CAS;
//   - every field is a relaxed atomic, so a concurrent reader (the stats
//     surface) is TSan-clean. A reader can observe a record mid-overwrite
//     once the ring wraps — acceptable for telemetry, and the completion
//     sequence number lets it discard records that tore;
//   - bounded memory: RP_OBS_RING slots per thread (default 256), fixed at
//     tracer construction.
//
// The tracer also keeps cumulative per-request-type log2 latency histograms
// (the stats surface's p50/p99 source) and a deterministic slow-query view:
// slowest(k) orders by compute time descending with (compute_ns, seq) as the
// total order, so two reads of a quiescent tracer agree exactly.
//
// Everything here measures wall-clock phases, i.e. scheduling: none of it
// is registered in the MetricsRegistry's deterministic namespace, so
// deterministic_snapshot() stays clean by construction.
//
// Disarmed cost is one branch (same discipline as metrics/trace/fault).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rp::obs {

/// One completed request. All times in nanoseconds; phases sum to roughly
/// complete_ns - accept_ns (response write ends the record).
struct RequestRecord {
  std::uint64_t seq = 0;         ///< Tracer-assigned completion sequence (1-based).
  std::uint64_t request_id = 0;  ///< Server-side request id (daemon-assigned).
  std::uint8_t type = 0;         ///< Protocol request type (serve::RequestType).
  bool ok = true;                ///< Response status was kOk.
  std::uint64_t world_digest = 0;  ///< Config digest, 0 for worldless requests.
  std::uint64_t accept_ns = 0;   ///< monotonic_ns at admission (post-parse).
  std::uint64_t queue_ns = 0;    ///< Waiting in the admission queue.
  std::uint64_t pool_ns = 0;     ///< World acquire + artifact prewarm.
  std::uint64_t compute_ns = 0;  ///< execute_request proper.
  std::uint64_t write_ns = 0;    ///< Response encode + socket write.
};

/// Per-request-type latency summary aggregated since the tracer was reset.
struct TypeLatency {
  std::uint8_t type = 0;
  std::uint64_t count = 0;
  double p50_ns = 0.0;  ///< Log2-bucket interpolated, clamped to [min,max].
  double p99_ns = 0.0;
  std::uint64_t max_ns = 0;
};

/// The process-wide request tracer. Like the MetricsRegistry it is a leaked
/// singleton armed by one flag; the serve daemon arms it in start().
class RequestTracer {
 public:
  static RequestTracer& global();

  /// Highest request type tracked by the per-type aggregates (serve types
  /// are 1..8; anything above maps to slot 0 = "other").
  static constexpr std::size_t kMaxTypes = 16;

  void set_enabled(bool on);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity per recording thread (fixed at first use; reads
  /// RP_OBS_RING, default 256, floor 16).
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Issues the next server-side request id (1-based, monotone).
  std::uint64_t next_request_id() {
    return 1 + id_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one completed request (no-op while disabled). `record.seq` is
  /// assigned here.
  void record(RequestRecord record);

  /// Completed requests recorded so far (monotone; survives ring wrap).
  std::uint64_t completed() const {
    return seq_counter_.load(std::memory_order_relaxed);
  }

  /// The most recent completed requests across every thread ring, ordered
  /// oldest → newest by completion sequence, at most `max` of them (0 = all
  /// still resident in the rings). Records that tore mid-overwrite are
  /// dropped.
  std::vector<RequestRecord> recent(std::size_t max = 0) const;

  /// The slow-query log: the top-`k` resident records by compute time,
  /// ordered (compute_ns desc, seq asc) — a deterministic total order, so
  /// repeated reads of a quiescent tracer agree exactly.
  std::vector<RequestRecord> slowest(std::size_t k) const;

  /// Per-type cumulative latency summaries (total request latency: queue +
  /// pool + compute + write), for every type with at least one completion,
  /// ordered by type.
  std::vector<TypeLatency> type_latencies() const;

  /// Zeroes rings, aggregates, and both counters. Call only while no
  /// requests are in flight (tests, daemon restart).
  void reset();

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

 private:
  RequestTracer();
  struct Impl;
  Impl* impl_;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> id_counter_{0};
  std::atomic<std::uint64_t> seq_counter_{0};
  std::size_t ring_capacity_ = 0;
};

}  // namespace rp::obs

// rp::obs — the metrics substrate of the pipeline.
//
// A process-wide registry of named counters, gauges, and log-scale
// histograms, designed around two constraints:
//
//   1. Zero hot-path contention. Counter and histogram updates land in a
//      thread-local shard (one cache-friendly block per thread); nothing is
//      shared between writers. Aggregation happens on read: a snapshot sums
//      the retired shards of exited threads plus every live shard.
//   2. Deterministic totals. Counter and histogram-bucket totals are sums of
//      unsigned integers, so the aggregate is independent of scheduling —
//      the same work produces byte-identical totals at any RP_THREADS.
//      Metrics whose *values* depend on scheduling or wall-clock time (queue
//      waits, busy times, tasks-per-worker) are tagged Stability::kScheduling
//      so tools can exclude them from determinism checks.
//
// Metrics are disabled by default: every update is gated on a single global
// flag, so the disabled cost is one predictable branch (the perf_offload
// greedy benchmark must not move when metrics are off). Enable with
// obs::set_metrics_enabled(true) (the --metrics flag of the examples), or by
// setting RP_METRICS=1 in the environment.
//
// Naming convention: rp.<layer>.<metric>, e.g. "rp.bgp.routes.computed",
// "rp.measure.discard.sample-size", "rp.pool.queue_wait_ns". Histogram and
// duration metrics end in the unit (_ns, _bytes).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rp::obs {

/// What a metric measures: a monotonic count, a point-in-time value, or a
/// distribution over log2-scale buckets.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Whether a metric's aggregate is a pure function of the work performed
/// (identical at any RP_THREADS) or reflects scheduling / wall-clock time.
enum class Stability : std::uint8_t { kDeterministic, kScheduling };

namespace detail {
// Relaxed atomic rather than a plain bool so a toggle concurrent with pool
// workers is a benign (and TSan-clean) race; the relaxed load compiles to
// the same single branch on the hot path.
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// True when metric updates are being recorded. The hot-path gate: every
/// Counter::add / Histogram::record begins with this branch.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flips recording on or off. Not meant to race with running pipelines; call
/// it before the work starts (examples do this while parsing flags).
void set_metrics_enabled(bool on);

/// True when RP_METRICS is set to a non-empty, non-"0" value in the
/// environment (the out-of-band way to enable metrics on any binary).
bool metrics_env_requested();

/// Histogram buckets: value v lands in bucket bit_width(v), i.e. bucket 0
/// holds exactly 0, bucket k holds [2^(k-1), 2^k).
inline constexpr std::size_t kHistogramBuckets = 65;

/// One aggregated metric in a registry snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Stability stability = Stability::kDeterministic;
  /// Counter total, or histogram sample count.
  std::uint64_t count = 0;
  /// Gauge value (kGauge only).
  double value = 0.0;
  /// Histogram sum / min / max over recorded values (kHistogram only;
  /// min/max are 0 when count == 0).
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimates the q-quantile (q in [0, 1]; out-of-range q is clamped) of a
  /// histogram by linear interpolation inside its log2 buckets: the target
  /// rank q * count is located in the cumulative bucket counts, then mapped
  /// linearly across the owning bucket's value range [2^(k-1), 2^k).
  ///
  /// Clamp contract: the estimate is always clamped to the recorded
  /// [min, max], so a quantile never reports a value outside what was
  /// actually observed — degenerate distributions (all samples equal, or a
  /// single bucket) report a value within the recorded range exactly, and
  /// q=0 / q=1 return min / max respectively rather than bucket edges.
  ///
  /// Returns NaN when the histogram is empty or the metric is not a
  /// histogram — "no samples" must be distinguishable from "quantile is 0"
  /// (the JSON exporters map the NaN to 0 because JSON has no NaN, but
  /// in-process consumers like the stats surface use it to suppress rows).
  double quantile(double q) const;
};

/// The process-wide registry. Metric handles (Counter, Gauge, Histogram
/// below) register themselves on construction — typically as function-local
/// statics at the instrumentation site — and updates go through the handle.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Registers (or looks up) a metric and returns its id. Registering the
  /// same name twice returns the same id; a kind mismatch throws
  /// std::logic_error. Registration takes a lock — do it once, not per update.
  std::size_t register_metric(const std::string& name, MetricKind kind,
                              Stability stability);

  void counter_add(std::size_t id, std::uint64_t delta);
  void gauge_set(std::size_t id, double value);
  void histogram_record(std::size_t id, std::uint64_t value);

  /// Aggregates every registered metric, sorted by name. Totals are exact
  /// sums over retired + live shards; safe to call while writers run
  /// (writers are relaxed-atomic), though the snapshot is then a torn-free
  /// but instantaneous-ish view.
  std::vector<MetricValue> snapshot() const;

  /// Snapshot filtered to Stability::kDeterministic metrics — the subset a
  /// determinism check may compare across thread counts.
  std::vector<MetricValue> deterministic_snapshot() const;

  /// Zeroes every metric (retired and live shards, gauges). Call only while
  /// no pipeline is running; used by tests and rpstat between runs.
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

/// A counter handle. Construct once (static local) per instrumentation site.
class Counter {
 public:
  explicit Counter(const char* name,
                   Stability stability = Stability::kDeterministic)
      : id_(MetricsRegistry::global().register_metric(name, MetricKind::kCounter,
                                                      stability)) {}

  void add(std::uint64_t delta = 1) {
    if (!metrics_enabled()) return;
    MetricsRegistry::global().counter_add(id_, delta);
  }

 private:
  std::size_t id_;
};

/// A gauge handle: set-style, last writer wins. Use for sizes computed once
/// (e.g. eligible-peer counts), not from parallel regions.
class Gauge {
 public:
  explicit Gauge(const char* name,
                 Stability stability = Stability::kDeterministic)
      : id_(MetricsRegistry::global().register_metric(name, MetricKind::kGauge,
                                                      stability)) {}

  void set(double value) {
    if (!metrics_enabled()) return;
    MetricsRegistry::global().gauge_set(id_, value);
  }

 private:
  std::size_t id_;
};

/// A log2-scale histogram handle (bucket = bit_width of the value).
class Histogram {
 public:
  explicit Histogram(const char* name,
                     Stability stability = Stability::kScheduling)
      : id_(MetricsRegistry::global().register_metric(
            name, MetricKind::kHistogram, stability)) {}

  void record(std::uint64_t value) {
    if (!metrics_enabled()) return;
    MetricsRegistry::global().histogram_record(id_, value);
  }

 private:
  std::size_t id_;
};

/// Monotonic nanosecond clock for duration metrics (steady_clock based).
std::uint64_t monotonic_ns();

/// RAII timer recording elapsed nanoseconds into a histogram. Costs nothing
/// when metrics are disabled (no clock call).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram),
        start_ns_(metrics_enabled() ? monotonic_ns() : 0),
        active_(metrics_enabled()) {}
  ~ScopedTimer() {
    if (active_) histogram_.record(monotonic_ns() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
  bool active_;
};

}  // namespace rp::obs

#include "obs/export.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rp::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "hist";
  }
  return "?";
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void render_metrics_table(std::ostream& os,
                          const std::vector<MetricValue>& snapshot) {
  util::TextTable table({"metric", "kind", "value", "mean", "min", "max"});
  for (const MetricValue& m : snapshot) {
    switch (m.kind) {
      case MetricKind::kCounter:
        table.add_row({m.name, kind_name(m.kind), fmt_u64(m.count), "", "", ""});
        break;
      case MetricKind::kGauge:
        table.add_row({m.name, kind_name(m.kind), util::fmt_double(m.value),
                       "", "", ""});
        break;
      case MetricKind::kHistogram:
        table.add_row({m.name, kind_name(m.kind), fmt_u64(m.count),
                       util::fmt_double(m.mean(), 1), fmt_u64(m.min),
                       fmt_u64(m.max)});
        break;
    }
  }
  table.render(os);
}

std::vector<json::Entry> metrics_json_entries(
    const std::vector<MetricValue>& snapshot) {
  std::vector<json::Entry> entries;
  entries.reserve(snapshot.size());
  for (const MetricValue& m : snapshot) {
    switch (m.kind) {
      case MetricKind::kCounter:
        entries.emplace_back(m.name, json::number(m.count));
        break;
      case MetricKind::kGauge:
        entries.emplace_back(m.name, json::number(m.value));
        break;
      case MetricKind::kHistogram:
        entries.emplace_back(m.name + ".count", json::number(m.count));
        entries.emplace_back(m.name + ".sum", json::number(m.sum));
        entries.emplace_back(m.name + ".mean", json::number(m.mean()));
        entries.emplace_back(m.name + ".min", json::number(m.min));
        entries.emplace_back(m.name + ".max", json::number(m.max));
        entries.emplace_back(m.name + ".p50", json::number(m.quantile(0.50)));
        entries.emplace_back(m.name + ".p90", json::number(m.quantile(0.90)));
        entries.emplace_back(m.name + ".p99", json::number(m.quantile(0.99)));
        break;
    }
  }
  return entries;
}

void write_metrics_json(std::ostream& os,
                        const std::vector<MetricValue>& snapshot) {
  json::write_flat_object(os, metrics_json_entries(snapshot));
}

std::string prometheus_metric_name(const std::string& key) {
  std::string name;
  name.reserve(key.size() + 3);
  if (key.rfind("rp_", 0) != 0) name = "rp_";
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    name.push_back(ok ? c : '_');
  }
  return name;
}

bool is_canonical_number(const std::string& value) {
  std::size_t i = 0;
  const std::size_t n = value.size();
  auto digits = [&value, n](std::size_t& at) {
    const std::size_t start = at;
    while (at < n && value[at] >= '0' && value[at] <= '9') ++at;
    return at > start;
  };
  if (i < n && value[i] == '-') ++i;
  // Integer part: "0" alone, or a nonzero leading digit. Leading zeros are
  // the tell that a value is a digest, not a number.
  if (i >= n) return false;
  if (value[i] == '0') {
    ++i;
  } else {
    if (!digits(i)) return false;
  }
  if (i < n && value[i] == '.') {
    ++i;
    if (!digits(i)) return false;
  }
  if (i < n && (value[i] == 'e' || value[i] == 'E')) {
    ++i;
    if (i < n && (value[i] == '+' || value[i] == '-')) ++i;
    if (!digits(i)) return false;
  }
  return i == n;
}

std::size_t write_prometheus(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::size_t written = 0;
  for (const auto& [key, value] : rows) {
    // Only numeric rows become samples; anything else (digest strings,
    // comma-joined windows) has no Prometheus representation.
    if (!is_canonical_number(value)) continue;
    const std::string name = prometheus_metric_name(key);
    os << "# TYPE " << name << " gauge\n" << name << ' ' << value << '\n';
    ++written;
  }
  return written;
}

bool dump_global_metrics(std::ostream& os, const std::string& json_path) {
  const std::vector<MetricValue> snap = MetricsRegistry::global().snapshot();
  render_metrics_table(os, snap);
  if (json_path.empty()) return true;
  std::ofstream file(json_path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  write_metrics_json(file, snap);
  return static_cast<bool>(file);
}

}  // namespace rp::obs

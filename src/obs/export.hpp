// Exporters over a MetricsRegistry snapshot: an aligned human-readable table
// (rp::util::TextTable) for terminals, and a flat JSON object for CI and
// bench trajectories. Both take an explicit snapshot so callers can render
// the same instant twice (table to stdout, JSON to a file).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rp::obs {

/// Flattens a snapshot into (key, JSON value) pairs — the rows
/// write_metrics_json emits, reusable by the bench trajectory files.
/// Counters map name → total; gauges map name → value; histograms expand to
/// `<name>.count`, `<name>.sum`, `<name>.mean`, `<name>.min`, `<name>.max`,
/// plus interpolated `<name>.p50` / `<name>.p90` / `<name>.p99` quantiles.
std::vector<json::Entry> metrics_json_entries(
    const std::vector<MetricValue>& snapshot);

/// Renders the snapshot as an aligned table:
///   metric                     | kind    | value | mean | min | max
/// Counters show their total under `value`; histograms show sample count
/// under `value` plus mean/min/max of the recorded values.
void render_metrics_table(std::ostream& os,
                          const std::vector<MetricValue>& snapshot);

/// Writes the snapshot as a flat JSON object. Counters map name → total;
/// gauges map name → value; histograms expand to `<name>.count`,
/// `<name>.sum`, `<name>.mean`, `<name>.min`, `<name>.max`, and the
/// interpolated `<name>.p50` / `<name>.p90` / `<name>.p99` quantiles.
void write_metrics_json(std::ostream& os,
                        const std::vector<MetricValue>& snapshot);

/// Convenience: snapshot the global registry, render the table to `os`, and
/// if `json_path` is non-empty also write the JSON file (errors reported on
/// the returned false).
bool dump_global_metrics(std::ostream& os, const std::string& json_path = "");

}  // namespace rp::obs

// Exporters over a MetricsRegistry snapshot: an aligned human-readable table
// (rp::util::TextTable) for terminals, and a flat JSON object for CI and
// bench trajectories. Both take an explicit snapshot so callers can render
// the same instant twice (table to stdout, JSON to a file).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rp::obs {

/// Flattens a snapshot into (key, JSON value) pairs — the rows
/// write_metrics_json emits, reusable by the bench trajectory files.
/// Counters map name → total; gauges map name → value; histograms expand to
/// `<name>.count`, `<name>.sum`, `<name>.mean`, `<name>.min`, `<name>.max`,
/// plus interpolated `<name>.p50` / `<name>.p90` / `<name>.p99` quantiles.
std::vector<json::Entry> metrics_json_entries(
    const std::vector<MetricValue>& snapshot);

/// Renders the snapshot as an aligned table:
///   metric                     | kind    | value | mean | min | max
/// Counters show their total under `value`; histograms show sample count
/// under `value` plus mean/min/max of the recorded values.
void render_metrics_table(std::ostream& os,
                          const std::vector<MetricValue>& snapshot);

/// Writes the snapshot as a flat JSON object. Counters map name → total;
/// gauges map name → value; histograms expand to `<name>.count`,
/// `<name>.sum`, `<name>.mean`, `<name>.min`, `<name>.max`, and the
/// interpolated `<name>.p50` / `<name>.p90` / `<name>.p99` quantiles.
void write_metrics_json(std::ostream& os,
                        const std::vector<MetricValue>& snapshot);

/// Convenience: snapshot the global registry, render the table to `os`, and
/// if `json_path` is non-empty also write the JSON file (errors reported on
/// the returned false).
bool dump_global_metrics(std::ostream& os, const std::string& json_path = "");

/// Maps an rp metric/stats key to a Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes `_`, and the result is prefixed `rp_`
/// unless the key already starts with it (e.g. "rp.serve.pool.hits" →
/// "rp_serve_pool_hits", "queue.depth" → "rp_queue_depth").
std::string prometheus_metric_name(const std::string& key);

/// True when `value` is exactly one number in canonical JSON grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`) — the only spellings
/// our emitters (std::to_string / "%.10g") produce. Strictness matters:
/// a 16-hex-digit world digest can be all decimal digits
/// ("0000000000000000"), which lenient strtod parsing would accept but a
/// JSON parser rejects (leading zeros) and Prometheus would mis-export as
/// a sample. Rejects inf/nan.
bool is_canonical_number(const std::string& value);

/// Writes flat (key, value) rows — the shape of a daemon stats response —
/// in Prometheus text exposition format (version 0.0.4): one
/// `# TYPE <name> gauge` line followed by `<name> <value>` per row. Rows
/// whose value fails is_canonical_number are skipped (string digests,
/// comma-joined time-series windows), so the output always passes an
/// exposition lint. Returns the number of samples written.
std::size_t write_prometheus(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& rows);

}  // namespace rp::obs

// rp::evolve engine: replay a Timeline as copy-on-write overlays.
//
// The EpochTimeline holds a borrowed immutable base Scenario and advances a
// working cursor through the timeline's epochs. Events mutate only the
// cursor's IxpEcosystem copy, §5 prices, and traffic scale — the AS graph is
// shared untouched across every epoch — and after each epoch the cursor is
// snapshotted into an EpochState. view_at(k) then exposes epoch k as a
// core::WorldView (base config + base graph + epoch ecosystem), so the
// studies, io::save_scenario, and the serve executor all run on an epoch
// exactly as they run on a Scenario, with no per-epoch world rebuild.
//
// Determinism contract: every random decision inside an event (which members
// join/leave, which provider carries a pseudowire) draws from an RNG forked
// purely from (base seed, epoch index, event index), and event application
// is single-threaded. Replaying the same timeline therefore yields
// byte-identical epoch ecosystems at any RP_THREADS — and a *fresh* base
// build replayed through the same events (the from-scratch comparison path)
// lands on the identical state, which is what the overlay-vs-rebuild tests
// and bench/perf_evolve check.
//
// Fault site: "evolve.apply" fires once per event before it is applied, so a
// kill lands between events; the replay layer's per-epoch records make the
// rerun resume byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/world_view.hpp"
#include "econ/cost_model.hpp"
#include "evolve/timeline.hpp"
#include "net/subnet_allocator.hpp"

namespace rp::evolve {

/// The state of the world after one epoch's events.
struct EpochState {
  std::string label;
  ixp::IxpEcosystem ecosystem;          ///< COW overlay (base graph shared).
  std::vector<ixp::IxpId> measured;     ///< Base measured set (ids stable).
  econ::CostParameters prices;          ///< After sets and decays.
  double traffic_scale = 1.0;           ///< Cumulative traffic growth.
  std::size_t events = 0;               ///< Events applied in this epoch.
  std::size_t joins = 0;                ///< Member interfaces added.
  std::size_t leaves = 0;               ///< Member interfaces removed.
  std::size_t new_ixps = 0;
  std::size_t stashed = 0;  ///< Interfaces currently down (outage/provider).
};

class EpochTimeline {
 public:
  /// Borrows `base` for the engine's lifetime. Throws std::invalid_argument
  /// when the base scenario's config does not match timeline.base_config()
  /// (replaying a timeline over the wrong world would silently lie).
  EpochTimeline(Timeline timeline, const core::Scenario& base);

  const Timeline& timeline() const { return timeline_; }
  const core::Scenario& base() const { return *base_; }
  std::size_t epoch_count() const { return timeline_.epochs.size(); }

  /// The state after epoch k's events. Replays forward (and caches) as
  /// needed; throws std::out_of_range past the last epoch.
  const EpochState& state_at(std::size_t k);

  /// Epoch k as a world view: base config + base graph + epoch ecosystem.
  /// The view borrows from this engine — keep it alive while studying.
  core::WorldView view_at(std::size_t k);

  /// `base` with its traffic totals scaled by epoch k's cumulative growth —
  /// the study config an epoch's OffloadStudy should run with.
  core::OffloadStudyConfig study_config_at(std::size_t k,
                                           core::OffloadStudyConfig base = {});

 private:
  struct Stashed {
    ixp::IxpId ixp = 0;
    /// Provider name for provider-fail stashes, empty for outages.
    std::string provider;
    ixp::MemberInterface iface;
  };

  void advance_one();
  void apply_event(const EpochEvent& event, std::size_t epoch_index,
                   std::size_t event_index, EpochState& stats);

  const core::Scenario* base_;
  Timeline timeline_;

  // The working cursor: the state the *next* epoch's events apply to.
  ixp::IxpEcosystem eco_;
  econ::CostParameters prices_;
  double traffic_scale_ = 1.0;
  std::uint32_t mac_serial_;
  net::SubnetAllocator lan_pool_;
  std::vector<Stashed> stash_;

  std::vector<EpochState> states_;  ///< Snapshots of epochs [0, size).
};

/// The from-scratch comparison path: builds a *fresh* base world for the
/// timeline's config (no snapshot cache) and replays events through epoch k,
/// returning the resulting state. Byte-identical to state_at(k) on an
/// overlay engine — the property the determinism tests pin — but pays a full
/// world build per call, which is what bench/perf_evolve measures overlays
/// against.
EpochState rebuild_state_at(const Timeline& timeline, std::size_t k);

}  // namespace rp::evolve

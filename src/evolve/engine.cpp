#include "evolve/engine.hpp"

#include <stdexcept>
#include <utility>

#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "net/subnet_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::evolve {
namespace {

/// Evolve-minted MACs start far above the builder's serials (which count up
/// from 1 through the base world's interfaces), so an epoch join can never
/// collide with a base MAC.
constexpr std::uint32_t kEvolveMacBase = 0x01000000;

/// Peering LANs for epoch-founded IXPs. The base builder carves
/// 198.18.0.0/15 (overflowing into the *lower* half of 100.64.0.0/10 only at
/// stress scale), so the top half of that carrier-grade block is free for
/// evolve — the constructor asserts no base LAN sits inside it.
const net::Ipv4Prefix& evolve_lan_pool() {
  static const net::Ipv4Prefix pool =
      net::Ipv4Prefix::make(net::Ipv4Addr(100, 96, 0, 0), 11);
  return pool;
}

[[noreturn]] void bad_event(std::size_t epoch_index, const EpochEvent& event,
                            const std::string& what) {
  throw std::invalid_argument(
      "timeline epoch " + std::to_string(epoch_index) + ", event '" +
      std::string(event_keyword(event.kind)) +
      (event.target.empty() ? "" : " " + event.target) + "': " + what);
}

ixp::Ixp& find_ixp(ixp::IxpEcosystem& eco, std::size_t epoch_index,
                   const EpochEvent& event, const std::string& acronym) {
  ixp::Ixp* ixp = eco.find(acronym);
  if (ixp == nullptr) bad_event(epoch_index, event, "unknown IXP");
  return *ixp;
}

std::size_t find_provider(const ixp::IxpEcosystem& eco,
                          std::size_t epoch_index, const EpochEvent& event) {
  const auto providers = eco.providers();
  for (std::size_t i = 0; i < providers.size(); ++i)
    if (providers[i].name == event.target) return i;
  bad_event(epoch_index, event, "unknown provider");
}

/// Allocates a free host address in the IXP's LAN, skipping addresses taken
/// by interfaces or looking glasses — the same discipline the base builder
/// uses, so evolve joins never collide.
net::Ipv4Addr allocate_member_addr(const ixp::Ixp& ixp) {
  net::HostAllocator addrs(ixp.peering_lan());
  const auto taken = [&ixp](net::Ipv4Addr candidate) {
    if (ixp.interface_at(candidate) != nullptr) return true;
    for (const auto& lg : ixp.looking_glasses())
      if (lg.addr == candidate) return true;
    return false;
  };
  net::Ipv4Addr addr = addrs.allocate();
  while (taken(addr)) addr = addrs.allocate();
  return addr;
}

obs::Counter& events_counter() {
  static obs::Counter counter("rp.evolve.events.applied");
  return counter;
}
obs::Counter& epochs_counter() {
  static obs::Counter counter("rp.evolve.epochs.replayed");
  return counter;
}
obs::Counter& joins_counter() {
  static obs::Counter counter("rp.evolve.members.joined");
  return counter;
}
obs::Counter& leaves_counter() {
  static obs::Counter counter("rp.evolve.members.left");
  return counter;
}

}  // namespace

EpochTimeline::EpochTimeline(Timeline timeline, const core::Scenario& base)
    : base_(&base),
      timeline_(std::move(timeline)),
      eco_(base.ecosystem()),
      mac_serial_(kEvolveMacBase),
      lan_pool_(evolve_lan_pool()) {
  if (io::config_digest(base.config()) !=
      io::config_digest(timeline_.base_config()))
    throw std::invalid_argument(
        "EpochTimeline: base scenario config does not match the timeline's "
        "base lines (digest " + io::config_digest_hex(base.config()) +
        " vs " + io::config_digest_hex(timeline_.base_config()) + ")");
  for (const ixp::Ixp& ixp : eco_.ixps())
    if (evolve_lan_pool().contains(ixp.peering_lan().network()))
      throw std::invalid_argument(
          "EpochTimeline: base world's LAN allocation reaches into the "
          "evolve pool " + evolve_lan_pool().to_string() +
          " (world too large to evolve)");
}

const EpochState& EpochTimeline::state_at(std::size_t k) {
  if (k >= timeline_.epochs.size())
    throw std::out_of_range("EpochTimeline: epoch " + std::to_string(k) +
                            " out of range (timeline has " +
                            std::to_string(timeline_.epochs.size()) + ")");
  while (states_.size() <= k) advance_one();
  return states_[k];
}

core::WorldView EpochTimeline::view_at(std::size_t k) {
  const EpochState& state = state_at(k);
  return core::WorldView{&base_->config(),  &base_->graph(),
                         &state.ecosystem,  base_->vantage(),
                         state.measured,    base_->config().seed};
}

core::OffloadStudyConfig EpochTimeline::study_config_at(
    std::size_t k, core::OffloadStudyConfig base) {
  const EpochState& state = state_at(k);
  base.traffic.total_inbound_gbps *= state.traffic_scale;
  base.traffic.total_outbound_gbps *= state.traffic_scale;
  return base;
}

void EpochTimeline::advance_one() {
  obs::Span span("evolve.apply_epoch");
  const std::size_t k = states_.size();
  const TimelineEpoch& epoch = timeline_.epochs.at(k);

  EpochState stats;
  stats.label = epoch.label;
  for (std::size_t e = 0; e < epoch.events.size(); ++e)
    apply_event(epoch.events[e], k, e, stats);

  // Snapshot the cursor into the epoch's state (the COW copy).
  stats.ecosystem = eco_;
  stats.measured = base_->measured_ixps();
  stats.prices = prices_;
  stats.traffic_scale = traffic_scale_;
  stats.events = epoch.events.size();
  stats.stashed = stash_.size();
  states_.push_back(std::move(stats));
  epochs_counter().add();
}

void EpochTimeline::apply_event(const EpochEvent& event,
                                std::size_t epoch_index,
                                std::size_t event_index, EpochState& stats) {
  // The kill switch the resume tests arm: RP_FAULT=evolve.apply:nth=K
  // aborts the replay exactly K applied events in.
  static fault::Site apply_site(fault::kSiteEvolveApply);
  apply_site.maybe_throw();
  events_counter().add();

  // Forked purely from (seed, epoch, event): the overlay cursor and a fresh
  // rebuild replaying the same prefix draw identical decisions.
  util::Rng rng = base_->fork_rng(
      (0xE5ULL << 56) ^ (static_cast<std::uint64_t>(epoch_index) << 20) ^
      static_cast<std::uint64_t>(event_index));

  switch (event.kind) {
    case EventKind::kJoin: {
      ixp::Ixp& ixp = find_ixp(eco_, epoch_index, event, event.target);
      const double remote_share = event.values[0];
      // Candidates: every AS not yet at this IXP, in graph node order.
      std::vector<const topology::AsNode*> candidates;
      for (const topology::AsNode& node : base_->graph().nodes())
        if (!ixp.has_member(node.asn)) candidates.push_back(&node);
      const auto providers = eco_.providers();
      for (std::uint64_t i = 0; i < event.count && !candidates.empty(); ++i) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, candidates.size() - 1));
        const topology::AsNode& node = *candidates[pick];
        candidates[pick] = candidates.back();
        candidates.pop_back();

        ixp::MemberInterface iface;
        iface.asn = node.asn;
        iface.addr = allocate_member_addr(ixp);
        iface.mac = net::MacAddr::from_id(mac_serial_++);
        const bool remote = !providers.empty() && rng.chance(remote_share);
        if (remote) {
          iface.kind = ixp::AttachmentKind::kRemoteViaProvider;
          iface.provider_index = static_cast<std::size_t>(
              rng.uniform_int(0, providers.size() - 1));
          iface.equipment_city = node.home_city;
          iface.circuit_one_way =
              providers[*iface.provider_index].circuit_delay(node.home_city,
                                                             ixp.city());
        } else {
          iface.kind = ixp::AttachmentKind::kDirectColo;
          iface.equipment_city = ixp.city();
        }
        iface.uses_route_server = rng.chance(0.5);
        iface.discoverable = true;
        ixp.add_interface(std::move(iface));
        ++stats.joins;
        joins_counter().add();
      }
      break;
    }
    case EventKind::kLeave: {
      ixp::Ixp& ixp = find_ixp(eco_, epoch_index, event, event.target);
      std::vector<net::Asn> members = ixp.member_asns();
      // The vantage's memberships are load-bearing (the §4 analyzer names
      // them); churn never evicts it.
      std::erase(members, base_->vantage());
      for (std::uint64_t i = 0; i < event.count && !members.empty(); ++i) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(0, members.size() - 1));
        const net::Asn leaver = members[pick];
        members[pick] = members.back();
        members.pop_back();
        const std::size_t removed =
            ixp.extract_interfaces([leaver](const ixp::MemberInterface& f) {
              return f.asn == leaver;
            }).size();
        stats.leaves += removed;
        leaves_counter().add(removed);
      }
      break;
    }
    case EventKind::kNewIxp: {
      const ixp::Ixp& like = find_ixp(eco_, epoch_index, event, event.like);
      const geo::City city = like.city();
      try {
        eco_.add_ixp(event.target, event.target + " Internet Exchange", city,
                     event.values[0], lan_pool_.allocate(22));
      } catch (const std::invalid_argument& e) {
        bad_event(epoch_index, event, e.what());
      }
      ++stats.new_ixps;
      break;
    }
    case EventKind::kCapacity:
      find_ixp(eco_, epoch_index, event, event.target)
          .set_peak_traffic_tbps(event.values[0]);
      break;
    case EventKind::kPrices:
      prices_.transit_price = event.values[0];
      prices_.direct_fixed = event.values[1];
      prices_.direct_unit = event.values[2];
      prices_.remote_fixed = event.values[3];
      prices_.remote_unit = event.values[4];
      break;
    case EventKind::kPriceDecay:
      prices_.transit_price *= event.values[0];
      prices_.direct_fixed *= event.values[0];
      prices_.direct_unit *= event.values[0];
      prices_.remote_fixed *= event.values[0];
      prices_.remote_unit *= event.values[0];
      break;
    case EventKind::kTraffic:
      traffic_scale_ *= event.values[0];
      break;
    case EventKind::kOutage: {
      ixp::Ixp& ixp = find_ixp(eco_, epoch_index, event, event.target);
      const ixp::IxpId id = ixp.id();
      for (ixp::MemberInterface& iface : ixp.extract_interfaces(
               [](const ixp::MemberInterface&) { return true; }))
        stash_.push_back(Stashed{id, "", std::move(iface)});
      break;
    }
    case EventKind::kRestore: {
      ixp::Ixp& ixp = find_ixp(eco_, epoch_index, event, event.target);
      const ixp::IxpId id = ixp.id();
      std::vector<Stashed> kept;
      kept.reserve(stash_.size());
      for (Stashed& entry : stash_) {
        if (entry.ixp == id && entry.provider.empty())
          ixp.add_interface(std::move(entry.iface));
        else
          kept.push_back(std::move(entry));
      }
      stash_ = std::move(kept);
      break;
    }
    case EventKind::kProviderFail: {
      const std::size_t pi = find_provider(eco_, epoch_index, event);
      for (ixp::Ixp& ixp : eco_.ixps()) {
        const ixp::IxpId id = ixp.id();
        for (ixp::MemberInterface& iface : ixp.extract_interfaces(
                 [pi](const ixp::MemberInterface& f) {
                   return f.kind == ixp::AttachmentKind::kRemoteViaProvider &&
                          f.provider_index == pi;
                 }))
          stash_.push_back(Stashed{id, event.target, std::move(iface)});
      }
      break;
    }
    case EventKind::kProviderRestore: {
      find_provider(eco_, epoch_index, event);  // validate the name
      std::vector<Stashed> kept;
      kept.reserve(stash_.size());
      for (Stashed& entry : stash_) {
        if (entry.provider == event.target)
          eco_.ixp(entry.ixp).add_interface(std::move(entry.iface));
        else
          kept.push_back(std::move(entry));
      }
      stash_ = std::move(kept);
      break;
    }
    case EventKind::kRegionCap: {
      const std::string city_name =
          find_ixp(eco_, epoch_index, event, event.target).city().name;
      const double factor = event.values[0];
      for (ixp::Ixp& ixp : eco_.ixps()) {
        if (ixp.city().name != city_name) continue;
        if (ixp.peak_traffic_tbps() > 0.0)
          ixp.set_peak_traffic_tbps(ixp.peak_traffic_tbps() * factor);
        // A low-capacity region sheds a share of its *remote* members (the
        // RIXP / "Poor Peering" shape: remote peering retreats first).
        std::vector<net::Ipv4Addr> remote_addrs;
        for (const ixp::MemberInterface& iface : ixp.interfaces())
          if (iface.is_remote_ground_truth())
            remote_addrs.push_back(iface.addr);
        std::size_t shed = static_cast<std::size_t>(
            (1.0 - factor) * static_cast<double>(remote_addrs.size()) + 0.5);
        std::vector<net::Ipv4Addr> picked;
        for (; shed > 0 && !remote_addrs.empty(); --shed) {
          const std::size_t pick = static_cast<std::size_t>(
              rng.uniform_int(0, remote_addrs.size() - 1));
          picked.push_back(remote_addrs[pick]);
          remote_addrs[pick] = remote_addrs.back();
          remote_addrs.pop_back();
        }
        const std::size_t removed =
            ixp.extract_interfaces([&picked](const ixp::MemberInterface& f) {
              for (const net::Ipv4Addr a : picked)
                if (f.addr == a) return true;
              return false;
            }).size();
        stats.leaves += removed;
        leaves_counter().add(removed);
      }
      break;
    }
  }
}

EpochState rebuild_state_at(const Timeline& timeline, std::size_t k) {
  obs::Span span("evolve.rebuild");
  const core::Scenario fresh = core::Scenario::build(timeline.base_config());
  EpochTimeline engine(timeline, fresh);
  // Copy out: the engine (and the fresh base) die at return.
  return engine.state_at(k);
}

}  // namespace rp::evolve

// rp::evolve replay: run a timeline end-to-end and persist one record (and
// optionally one .rpsnap snapshot) per epoch.
//
// Layout of a replay directory:
//
//   <dir>/manifest.txt              "rpevolve-manifest v1" + timeline digest
//                                   + epoch count + the canonical timeline
//                                   block (the manifest alone is enough to
//                                   resume — no timeline file needed)
//   <dir>/epochs/epoch-<k>.rec      one completion record per finished
//                                   epoch: header line (schema, timeline
//                                   digest, epoch index), the epoch's CSV
//                                   row, the epoch's JSON row
//   <dir>/epochs/epoch-<k>.rpsnap   the epoch world as a snapshot —
//                                   `rpworld info` / `rpworld diff` read
//                                   these directly, so two epochs (or an
//                                   epoch against its base) diff like any
//                                   two worlds
//   <dir>/results.csv               header + rows in epoch order
//   <dir>/results.json              the same rows as a JSON document
//
// Resume and determinism: a record is written atomically (temp + rename) the
// moment its epoch finishes, and replay_timeline() skips any epoch whose
// record already carries the current timeline digest — so a replay killed
// mid-timeline (including via the RP_FAULT site "evolve.apply") resumes with
// only the missing epochs, and the engine's deterministic event RNG makes
// the resumed records and snapshots byte-identical to an uninterrupted run.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include "evolve/engine.hpp"
#include "evolve/timeline.hpp"

namespace rp::evolve {

/// Results-table schema version (bumped when columns change meaning).
inline constexpr int kEvolveSchemaVersion = 1;

/// The per-epoch outcome: membership composition plus the §4 offload and §5
/// viability numbers for the epoch's world, prices, and traffic scale.
struct EpochResult {
  std::size_t index = 0;
  std::string label;
  std::size_t events = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t new_ixps = 0;
  std::size_t stashed = 0;        ///< Interfaces down at epoch end.
  std::size_t ixps = 0;           ///< IXPs in the epoch ecosystem.
  std::size_t interfaces = 0;     ///< Member interfaces across all IXPs.
  std::size_t remote_interfaces = 0;  ///< Ground-truth remote among them.
  double traffic_scale = 1.0;
  double transit_bps = 0.0;       ///< Initial transit weight (in + out).
  double offload_fraction = 0.0;  ///< Fraction removed by the greedy curve.
  std::size_t greedy_picked = 0;
  double fitted_decay = 0.0;      ///< b fitted from this epoch's curve.
  double optimal_n = 0.0;         ///< Eq. 11 ñ at epoch prices.
  double optimal_m = 0.0;         ///< Eq. 13 m̃ at epoch prices.
  bool viable = false;            ///< Eq. 14 verdict at epoch prices.
  /// "ok", or "invalid-params" when epoch prices violate ineqs. 7-8 (price
  /// timelines may legitimately cross them; recorded, not fatal).
  std::string status = "ok";
};

/// Paths inside a replay directory.
struct EvolvePaths {
  explicit EvolvePaths(std::filesystem::path dir) : dir(std::move(dir)) {}
  std::filesystem::path dir;
  std::filesystem::path manifest() const { return dir / "manifest.txt"; }
  std::filesystem::path epochs_dir() const { return dir / "epochs"; }
  std::filesystem::path record(std::size_t k) const;
  std::filesystem::path snapshot(std::size_t k) const;
  std::filesystem::path results_csv() const { return dir / "results.csv"; }
  std::filesystem::path results_json() const { return dir / "results.json"; }
};

/// Writes <dir>/manifest.txt atomically (creating <dir>).
void write_manifest(const Timeline& timeline,
                    const std::filesystem::path& dir);

/// Reads the manifest back into a Timeline. Throws std::runtime_error when
/// it is missing/malformed or its digest does not match its own timeline
/// block (a hand-edited manifest must not silently redefine a replay).
Timeline read_manifest(const std::filesystem::path& dir);

struct ReplayOptions {
  /// Scenario snapshot cache for the base build; empty uses
  /// io::default_cache_dir().
  std::filesystem::path cache_dir;
  /// Write per-epoch .rpsnap snapshots (rpworld-diffable). On by default;
  /// benches that only want the rows switch it off.
  bool snapshots = true;
  /// Peer group for the epoch offload studies (offload::PeerGroup value).
  int group = 4;
  /// Greedy-curve length per epoch.
  std::size_t steps = 8;
  /// Rate-model span in days.
  double days = 7.0;
};

struct ReplayOutcome {
  std::size_t total = 0;     ///< Epochs in the timeline.
  std::size_t executed = 0;  ///< Epochs evaluated and recorded this call.
  std::size_t skipped = 0;   ///< Epochs with a valid prior record.
};

/// Evaluates epoch k on an engine: membership composition from the epoch
/// state, then an OffloadStudy over view_at(k) (traffic scaled, §5 numbers
/// at the epoch's prices). Pure given (timeline, base config, k, options).
EpochResult evaluate_epoch(EpochTimeline& engine, std::size_t k,
                           const ReplayOptions& options);

/// Replays every epoch lacking a valid record, in timeline order, writing a
/// record (and snapshot) per epoch as it completes. Propagates the first
/// failure (including an injected "evolve.apply" fault); records written
/// before it survive, so a rerun resumes. Counts land in rp.evolve.* when
/// metrics are enabled.
ReplayOutcome replay_timeline(const Timeline& timeline,
                              const std::filesystem::path& dir,
                              const ReplayOptions& options = {});

/// Epochs with a valid completion record for this timeline.
std::size_t completed_epochs(const Timeline& timeline,
                             const std::filesystem::path& dir);

/// Collates the records into results.csv / results.json (atomically).
/// Throws std::runtime_error naming the first missing epoch when the replay
/// is incomplete. Returns the number of rows written.
std::size_t summarize_replay(const Timeline& timeline,
                             const std::filesystem::path& dir);

/// The results-table header (fixed columns; timelines have no axes).
std::string results_csv_header();
std::string results_csv_row(const EpochResult& result);
std::string results_json_row(const EpochResult& result);

}  // namespace rp::evolve

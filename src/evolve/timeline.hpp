// rp::evolve timelines: a declarative epoch script over a base world.
//
// A timeline names a base scenario (the same dotted-field pins rpsweep and
// rpserve use) and an ordered list of epochs, each a list of events applied
// on top of the previous epoch's state. Events never touch the AS graph —
// they mutate the IXP ecosystem, the §5 prices, and the traffic scale — so
// the engine (engine.hpp) can replay a decade as copy-on-write ecosystem
// overlays that all share the immutable base graph.
//
// Timeline text is line-based:
//
//   # comment
//   name  <slug>                          output stem (default "timeline")
//   fast  <0|1>                           apply core::apply_fast_mode first
//   base  <field> <value>                 pin a ScenarioConfig field
//   epoch <label>                         open the next epoch (unique labels)
//     join <IXP> <count> [<remote-share>] add members (share via providers)
//     leave <IXP> <count>                 remove members (never the vantage)
//     new-ixp <ACRO> <LIKE> <peak-tbps>   found an IXP in LIKE's city
//     capacity <IXP> <peak-tbps>          port-capacity upgrade
//     prices <p> <g> <u> <h> <v>          set the §5 price symbols
//     price-decay <factor>                multiply all five prices
//     traffic <factor>                    grow the traffic matrix (cumulative)
//     outage <IXP>                        fabric down: interfaces stashed
//     restore <IXP>                       undo an outage
//     provider-fail <name>                remote provider's circuits drop
//     provider-restore <name>             undo a provider failure
//     region-cap <IXP> <factor>           low-capacity region: scale the
//                                         city's peaks, shed remote members
//
// Values are canonicalized at parse time (%.10g for numbers, the config
// registry's canonical tokens for base fields), so two spellings of the same
// timeline produce byte-identical canonical text — and one digest, the
// identity every replay record, manifest, and epoch snapshot carries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/scenario.hpp"

namespace rp::evolve {

enum class EventKind : std::uint8_t {
  kJoin,
  kLeave,
  kNewIxp,
  kCapacity,
  kPrices,
  kPriceDecay,
  kTraffic,
  kOutage,
  kRestore,
  kProviderFail,
  kProviderRestore,
  kRegionCap,
};

/// The timeline keyword for a kind ("join", "new-ixp", ...).
std::string_view event_keyword(EventKind kind);

/// One parsed epoch event. `target` is the IXP acronym (or provider name for
/// the provider events); `like` is new-ixp's city-donor acronym; numeric
/// operands sit in `values` in grammar order (join's remote share, prices'
/// five symbols, every factor).
struct EpochEvent {
  EventKind kind = EventKind::kJoin;
  std::string target;
  std::string like;
  std::uint64_t count = 0;
  std::vector<double> values;
};

struct TimelineEpoch {
  std::string label;
  std::vector<EpochEvent> events;
};

struct Timeline {
  std::string name = "timeline";
  bool fast = false;
  /// Pinned ScenarioConfig fields (canonical tokens, spec order).
  std::vector<std::pair<std::string, std::string>> base;
  std::vector<TimelineEpoch> epochs;

  /// Defaults + fast mode + base pins, in that order — the world the first
  /// epoch's events apply to (and the WorldPool key for serve epoch queries).
  core::ScenarioConfig base_config() const;

  /// Total events across all epochs.
  std::size_t event_count() const;
};

/// Parses timeline text. Throws std::invalid_argument with the 1-based line
/// number and offending token on any violation (unknown keyword, event
/// outside an epoch, duplicate epoch label, bad count/factor/share).
Timeline parse_timeline(std::string_view text);

/// Reads and parses a timeline file. Throws std::runtime_error when the file
/// cannot be read, std::invalid_argument on parse errors.
Timeline load_timeline(const std::string& path);

/// The canonical text form: normalized whitespace, comments dropped, one
/// value spelling (%.10g). parse_timeline(canonical_timeline_text(t))
/// round-trips to an identical Timeline.
std::string canonical_timeline_text(const Timeline& timeline);

/// FNV-1a-64 digest of canonical_timeline_text as 16 hex digits — the
/// identity carried by replay manifests, per-epoch records, and serve
/// epoch queries.
std::string timeline_digest_hex(const Timeline& timeline);

}  // namespace rp::evolve

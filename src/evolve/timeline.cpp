#include "evolve/timeline.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config_fields.hpp"

namespace rp::evolve {
namespace {

[[noreturn]] void bad_timeline(std::size_t line, const std::string& what) {
  throw std::invalid_argument("timeline line " + std::to_string(line) + ": " +
                              what);
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

double parse_double(std::size_t line, const std::string& what,
                    std::string_view token) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc() || ptr != token.data() + token.size())
    bad_timeline(line, what + " wants a number, got '" + std::string(token) +
                           "'");
  return out;
}

std::uint64_t parse_count(std::size_t line, const std::string& what,
                          std::string_view token) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc() || ptr != token.data() + token.size())
    bad_timeline(line, what + " wants an unsigned integer, got '" +
                           std::string(token) + "'");
  return out;
}

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

struct KindSpec {
  std::string_view keyword;
  EventKind kind;
};

constexpr KindSpec kKinds[] = {
    {"join", EventKind::kJoin},
    {"leave", EventKind::kLeave},
    {"new-ixp", EventKind::kNewIxp},
    {"capacity", EventKind::kCapacity},
    {"prices", EventKind::kPrices},
    {"price-decay", EventKind::kPriceDecay},
    {"traffic", EventKind::kTraffic},
    {"outage", EventKind::kOutage},
    {"restore", EventKind::kRestore},
    {"provider-fail", EventKind::kProviderFail},
    {"provider-restore", EventKind::kProviderRestore},
    {"region-cap", EventKind::kRegionCap},
};

const KindSpec* find_kind(std::string_view keyword) {
  for (const KindSpec& spec : kKinds)
    if (spec.keyword == keyword) return &spec;
  return nullptr;
}

/// Parses one event line (tokens[0] is a known keyword). Validates operand
/// counts and ranges so the engine never sees a structurally bad event.
EpochEvent parse_event(std::size_t line, const KindSpec& spec,
                       const std::vector<std::string>& tokens) {
  EpochEvent event;
  event.kind = spec.kind;
  const std::string keyword(spec.keyword);
  const auto want = [&](std::size_t lo, std::size_t hi) {
    const std::size_t got = tokens.size() - 1;
    if (got < lo || got > hi)
      bad_timeline(line, keyword + " wants " + std::to_string(lo) +
                             (hi != lo ? ".." + std::to_string(hi) : "") +
                             " operand(s), got " + std::to_string(got));
  };
  switch (spec.kind) {
    case EventKind::kJoin: {
      want(2, 3);
      event.target = tokens[1];
      event.count = parse_count(line, "join count", tokens[2]);
      if (event.count == 0) bad_timeline(line, "join count must be >= 1");
      double share = 0.25;
      if (tokens.size() == 4)
        share = parse_double(line, "join remote-share", tokens[3]);
      if (share < 0.0 || share > 1.0)
        bad_timeline(line, "join remote-share must be in [0, 1]");
      event.values = {share};
      break;
    }
    case EventKind::kLeave:
      want(2, 2);
      event.target = tokens[1];
      event.count = parse_count(line, "leave count", tokens[2]);
      if (event.count == 0) bad_timeline(line, "leave count must be >= 1");
      break;
    case EventKind::kNewIxp:
      want(3, 3);
      event.target = tokens[1];
      event.like = tokens[2];
      event.values = {parse_double(line, "new-ixp peak-tbps", tokens[3])};
      break;
    case EventKind::kCapacity:
      want(2, 2);
      event.target = tokens[1];
      event.values = {parse_double(line, "capacity peak-tbps", tokens[2])};
      break;
    case EventKind::kPrices: {
      want(5, 5);
      event.values.reserve(5);
      static constexpr const char* kSymbols[] = {"p", "g", "u", "h", "v"};
      for (std::size_t i = 0; i < 5; ++i) {
        const double v = parse_double(
            line, std::string("prices ") + kSymbols[i], tokens[1 + i]);
        if (v <= 0.0)
          bad_timeline(line, std::string("prices ") + kSymbols[i] +
                                 " must be > 0");
        event.values.push_back(v);
      }
      break;
    }
    case EventKind::kPriceDecay:
    case EventKind::kTraffic: {
      want(1, 1);
      const double factor = parse_double(line, keyword + " factor", tokens[1]);
      if (factor <= 0.0) bad_timeline(line, keyword + " factor must be > 0");
      event.values = {factor};
      break;
    }
    case EventKind::kOutage:
    case EventKind::kRestore:
    case EventKind::kProviderFail:
    case EventKind::kProviderRestore:
      want(1, 1);
      event.target = tokens[1];
      break;
    case EventKind::kRegionCap: {
      want(2, 2);
      event.target = tokens[1];
      const double factor =
          parse_double(line, "region-cap factor", tokens[2]);
      if (factor <= 0.0 || factor > 1.0)
        bad_timeline(line, "region-cap factor must be in (0, 1]");
      event.values = {factor};
      break;
    }
  }
  return event;
}

std::string canonical_event_text(const EpochEvent& event) {
  std::string out(event_keyword(event.kind));
  if (!event.target.empty()) {
    out += ' ';
    out += event.target;
  }
  if (!event.like.empty()) {
    out += ' ';
    out += event.like;
  }
  if (event.kind == EventKind::kJoin || event.kind == EventKind::kLeave) {
    out += ' ';
    out += std::to_string(event.count);
  }
  for (const double v : event.values) {
    out += ' ';
    out += format_double(v);
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::string_view event_keyword(EventKind kind) {
  for (const KindSpec& spec : kKinds)
    if (spec.kind == kind) return spec.keyword;
  return "?";
}

core::ScenarioConfig Timeline::base_config() const {
  core::ScenarioConfig config;
  if (fast) core::apply_fast_mode(config);
  for (const auto& [field, value] : base)
    core::set_config_field(config, field, value);
  return config;
}

std::size_t Timeline::event_count() const {
  std::size_t count = 0;
  for (const TimelineEpoch& epoch : epochs) count += epoch.events.size();
  return count;
}

Timeline parse_timeline(std::string_view text) {
  Timeline timeline;
  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tokens = split_tokens(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    const auto want = [&](std::size_t n) {
      if (tokens.size() != n + 1)
        bad_timeline(line_no, key + " wants " + std::to_string(n) +
                                  " value(s), got " +
                                  std::to_string(tokens.size() - 1));
    };
    if (key == "name") {
      want(1);
      timeline.name = tokens[1];
    } else if (key == "fast") {
      want(1);
      if (tokens[1] != "0" && tokens[1] != "1")
        bad_timeline(line_no, "fast must be 0 or 1");
      timeline.fast = tokens[1] == "1";
    } else if (key == "base") {
      want(2);
      if (!timeline.epochs.empty())
        bad_timeline(line_no, "base lines must precede the first epoch");
      try {
        // Round-trip through the config registry for the canonical token;
        // throws (with the field named) on unknown fields or bad values.
        core::ScenarioConfig scratch;
        core::set_config_field(scratch, tokens[1], tokens[2]);
        timeline.base.emplace_back(tokens[1],
                                   core::get_config_field(scratch, tokens[1]));
      } catch (const std::invalid_argument& e) {
        bad_timeline(line_no, e.what());
      }
    } else if (key == "epoch") {
      want(1);
      for (const TimelineEpoch& epoch : timeline.epochs)
        if (epoch.label == tokens[1])
          bad_timeline(line_no, "duplicate epoch label '" + tokens[1] + "'");
      timeline.epochs.push_back(TimelineEpoch{tokens[1], {}});
    } else if (const KindSpec* spec = find_kind(key)) {
      if (timeline.epochs.empty())
        bad_timeline(line_no, "event '" + key + "' outside any epoch");
      timeline.epochs.back().events.push_back(
          parse_event(line_no, *spec, tokens));
    } else {
      bad_timeline(line_no, "unknown keyword '" + key + "'");
    }
  }
  return timeline;
}

Timeline load_timeline(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read timeline: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_timeline(text.str());
}

std::string canonical_timeline_text(const Timeline& timeline) {
  std::ostringstream out;
  out << "name " << timeline.name << "\n";
  out << "fast " << (timeline.fast ? 1 : 0) << "\n";
  for (const auto& [field, value] : timeline.base)
    out << "base " << field << " " << value << "\n";
  for (const TimelineEpoch& epoch : timeline.epochs) {
    out << "epoch " << epoch.label << "\n";
    for (const EpochEvent& event : epoch.events)
      out << canonical_event_text(event) << "\n";
  }
  return out.str();
}

std::string timeline_digest_hex(const Timeline& timeline) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(canonical_timeline_text(timeline))));
  return buffer;
}

}  // namespace rp::evolve

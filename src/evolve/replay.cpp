#include "evolve/replay.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/viability_study.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sim_time.hpp"

namespace rp::evolve {
namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Atomic file write: stage into a sibling temp file, then rename. A killed
/// replay never leaves a partial record or results table visible.
void atomic_write(const std::filesystem::path& path,
                  const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

std::string record_header(const std::string& digest, std::size_t k) {
  return "rpevolve-record v1 " + digest + " " + std::to_string(k);
}

/// Reads a completion record; nullopt when missing, malformed, or written by
/// a different timeline (a stale record must look incomplete, not poison the
/// table).
struct RecordPayload {
  std::string csv;
  std::string json;
};
std::optional<RecordPayload> read_record(const std::filesystem::path& path,
                                         const std::string& digest,
                                         std::size_t k) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string header, csv, json;
  if (!std::getline(in, header) || !std::getline(in, csv) ||
      !std::getline(in, json))
    return std::nullopt;
  if (header != record_header(digest, k) || csv.empty() || json.empty())
    return std::nullopt;
  return RecordPayload{std::move(csv), std::move(json)};
}

}  // namespace

std::filesystem::path EvolvePaths::record(std::size_t k) const {
  char name[32];
  std::snprintf(name, sizeof name, "epoch-%04zu.rec", k);
  return epochs_dir() / name;
}

std::filesystem::path EvolvePaths::snapshot(std::size_t k) const {
  char name[32];
  std::snprintf(name, sizeof name, "epoch-%04zu.rpsnap", k);
  return epochs_dir() / name;
}

void write_manifest(const Timeline& timeline,
                    const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::ostringstream out;
  out << "rpevolve-manifest v1\n"
      << "digest " << timeline_digest_hex(timeline) << "\n"
      << "epochs " << timeline.epochs.size() << "\n"
      << "timeline\n"
      << canonical_timeline_text(timeline);
  atomic_write(EvolvePaths(dir).manifest(), out.str());
}

Timeline read_manifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = EvolvePaths(dir).manifest();
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("no replay manifest at " + path.string() +
                             " (run `rpevolve plan` or `rpevolve replay` "
                             "first)");
  std::string line;
  if (!std::getline(in, line) || line != "rpevolve-manifest v1")
    throw std::runtime_error("unsupported manifest header in " +
                             path.string());
  if (!std::getline(in, line) || line.rfind("digest ", 0) != 0)
    throw std::runtime_error("manifest missing digest line: " + path.string());
  const std::string digest = line.substr(7);
  if (!std::getline(in, line) || line.rfind("epochs ", 0) != 0)
    throw std::runtime_error("manifest missing epochs line: " + path.string());
  const std::size_t epochs = std::strtoull(line.substr(7).c_str(), nullptr, 10);
  if (!std::getline(in, line) || line != "timeline")
    throw std::runtime_error("manifest missing timeline block: " +
                             path.string());
  std::ostringstream timeline_text;
  timeline_text << in.rdbuf();
  const Timeline timeline = parse_timeline(timeline_text.str());
  if (timeline_digest_hex(timeline) != digest)
    throw std::runtime_error("manifest digest mismatch in " + path.string() +
                             " (hand-edited timeline block?)");
  if (timeline.epochs.size() != epochs)
    throw std::runtime_error("manifest epoch count mismatch in " +
                             path.string());
  return timeline;
}

EpochResult evaluate_epoch(EpochTimeline& engine, std::size_t k,
                           const ReplayOptions& options) {
  obs::Span span("evolve.epoch");
  const EpochState& state = engine.state_at(k);

  EpochResult result;
  result.index = k;
  result.label = state.label;
  result.events = state.events;
  result.joins = state.joins;
  result.leaves = state.leaves;
  result.new_ixps = state.new_ixps;
  result.stashed = state.stashed;
  result.traffic_scale = state.traffic_scale;
  result.ixps = state.ecosystem.ixps().size();
  for (const ixp::Ixp& ixp : state.ecosystem.ixps()) {
    result.interfaces += ixp.interfaces().size();
    for (const ixp::MemberInterface& iface : ixp.interfaces())
      result.remote_interfaces += iface.is_remote_ground_truth() ? 1 : 0;
  }

  core::OffloadStudyConfig study_config = engine.study_config_at(k);
  study_config.rate_model.span =
      util::SimDuration::days(static_cast<std::int64_t>(options.days));
  const core::OffloadStudy study =
      core::OffloadStudy::run(engine.view_at(k), study_config);
  const offload::OffloadAnalyzer& analyzer = study.analyzer();
  result.transit_bps =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
  const std::vector<offload::GreedyStep> curve = analyzer.greedy_by_traffic(
      static_cast<offload::PeerGroup>(options.group), options.steps);
  result.greedy_picked = curve.size();
  if (!curve.empty() && result.transit_bps > 0.0)
    result.offload_fraction =
        (result.transit_bps - curve.back().remaining) / result.transit_bps;

  // §5 at the epoch's prices: b fitted from the epoch's own greedy curve (a
  // flat curve keeps the prices' default b — deterministic either way).
  double decay = state.prices.decay;
  try {
    decay = core::ViabilityStudy::from_greedy_curve(curve, result.transit_bps,
                                                    state.prices)
                .fitted_decay();
  } catch (const std::invalid_argument&) {
  }
  try {
    const core::ViabilityStudy viability =
        core::ViabilityStudy::from_decay(decay, state.prices);
    result.fitted_decay = decay;
    result.optimal_n = viability.optimal_direct_n();
    result.optimal_m = viability.optimal_remote_m();
    result.viable = viability.remote_viable();
  } catch (const std::invalid_argument&) {
    // A price timeline may cross ineqs. 7-8 mid-decade; record, don't abort.
    result.status = "invalid-params";
  }
  return result;
}

ReplayOutcome replay_timeline(const Timeline& timeline,
                              const std::filesystem::path& dir,
                              const ReplayOptions& options) {
  obs::Span span("evolve.replay");
  static obs::Counter replays("rp.evolve.replays");
  static obs::Counter epochs_recorded("rp.evolve.epochs.recorded");
  static obs::Counter epochs_skipped("rp.evolve.epochs.skipped");
  replays.add();

  const EvolvePaths paths(dir);
  std::filesystem::create_directories(paths.epochs_dir());
  const std::filesystem::path cache_dir =
      options.cache_dir.empty() ? io::default_cache_dir() : options.cache_dir;
  const std::string digest = timeline_digest_hex(timeline);

  const core::Scenario base =
      core::Scenario::build_cached(timeline.base_config(), cache_dir);
  EpochTimeline engine(timeline, base);

  ReplayOutcome outcome;
  outcome.total = engine.epoch_count();
  for (std::size_t k = 0; k < engine.epoch_count(); ++k) {
    const bool recorded =
        read_record(paths.record(k), digest, k).has_value() &&
        (!options.snapshots || std::filesystem::exists(paths.snapshot(k)));
    if (recorded) {
      // The engine stays lazy: a later missing epoch replays the cursor
      // through this one without re-evaluating its study.
      ++outcome.skipped;
      epochs_skipped.add();
      continue;
    }
    const EpochResult result = evaluate_epoch(engine, k, options);
    if (options.snapshots) {
      io::SaveOptions save;
      save.with_cones = false;  // the cone memo belongs to the shared graph
      io::save_scenario(engine.view_at(k), paths.snapshot(k), save);
    }
    atomic_write(paths.record(k), record_header(digest, k) + "\n" +
                                      results_csv_row(result) + "\n" +
                                      results_json_row(result) + "\n");
    ++outcome.executed;
    epochs_recorded.add();
  }
  return outcome;
}

std::size_t completed_epochs(const Timeline& timeline,
                             const std::filesystem::path& dir) {
  const EvolvePaths paths(dir);
  const std::string digest = timeline_digest_hex(timeline);
  std::size_t completed = 0;
  for (std::size_t k = 0; k < timeline.epochs.size(); ++k)
    completed += read_record(paths.record(k), digest, k).has_value() ? 1 : 0;
  return completed;
}

std::size_t summarize_replay(const Timeline& timeline,
                             const std::filesystem::path& dir) {
  obs::Span span("evolve.summarize");
  static obs::Counter summaries("rp.evolve.summaries");
  const EvolvePaths paths(dir);
  const std::string digest = timeline_digest_hex(timeline);
  const std::size_t total = timeline.epochs.size();

  std::string csv = "#rpevolve-results v" +
                    std::to_string(kEvolveSchemaVersion) + " name=" +
                    timeline.name + " timeline=" + digest + " epochs=" +
                    std::to_string(total) + "\n" + results_csv_header() + "\n";
  std::string json = "{\"schema\":\"rpevolve-results-v" +
                     std::to_string(kEvolveSchemaVersion) + "\",\"name\":\"" +
                     json_escape(timeline.name) + "\",\"timeline\":\"" +
                     digest + "\",\"rows\":[";
  std::size_t recorded = 0;
  for (std::size_t k = 0; k < total; ++k) {
    const auto record = read_record(paths.record(k), digest, k);
    if (!record)
      throw std::runtime_error(
          "replay incomplete: epoch " + std::to_string(k) +
          " has no completion record (" + std::to_string(recorded) + " of " +
          std::to_string(total) +
          " recorded) — `rpevolve replay` finishes it");
    csv += record->csv + "\n";
    if (k != 0) json += ",";
    json += record->json;
    ++recorded;
  }
  json += "]}\n";
  atomic_write(paths.results_csv(), csv);
  atomic_write(paths.results_json(), json);
  summaries.add();
  return recorded;
}

std::string results_csv_header() {
  return "epoch,label,events,joins,leaves,new_ixps,stashed,ixps,interfaces,"
         "remote_interfaces,traffic_scale,status,transit_bps,"
         "offload_fraction,greedy_picked,fitted_decay,optimal_n,optimal_m,"
         "viable";
}

std::string results_csv_row(const EpochResult& result) {
  std::string row = std::to_string(result.index);
  row += "," + result.label;
  row += "," + std::to_string(result.events);
  row += "," + std::to_string(result.joins);
  row += "," + std::to_string(result.leaves);
  row += "," + std::to_string(result.new_ixps);
  row += "," + std::to_string(result.stashed);
  row += "," + std::to_string(result.ixps);
  row += "," + std::to_string(result.interfaces);
  row += "," + std::to_string(result.remote_interfaces);
  row += "," + format_double(result.traffic_scale);
  row += "," + result.status;
  row += "," + format_double(result.transit_bps);
  row += "," + format_double(result.offload_fraction);
  row += "," + std::to_string(result.greedy_picked);
  row += "," + format_double(result.fitted_decay);
  row += "," + format_double(result.optimal_n);
  row += "," + format_double(result.optimal_m);
  row += result.viable ? ",1" : ",0";
  return row;
}

std::string results_json_row(const EpochResult& result) {
  std::ostringstream out;
  out << "{\"epoch\":" << result.index << ",\"label\":\""
      << json_escape(result.label) << "\""
      << ",\"events\":" << result.events << ",\"joins\":" << result.joins
      << ",\"leaves\":" << result.leaves
      << ",\"new_ixps\":" << result.new_ixps
      << ",\"stashed\":" << result.stashed << ",\"ixps\":" << result.ixps
      << ",\"interfaces\":" << result.interfaces
      << ",\"remote_interfaces\":" << result.remote_interfaces
      << ",\"traffic_scale\":" << format_double(result.traffic_scale)
      << ",\"status\":\"" << json_escape(result.status) << "\""
      << ",\"transit_bps\":" << format_double(result.transit_bps)
      << ",\"offload_fraction\":" << format_double(result.offload_fraction)
      << ",\"greedy_picked\":" << result.greedy_picked
      << ",\"fitted_decay\":" << format_double(result.fitted_decay)
      << ",\"optimal_n\":" << format_double(result.optimal_n)
      << ",\"optimal_m\":" << format_double(result.optimal_m)
      << ",\"viable\":" << (result.viable ? "true" : "false") << "}";
  return out.str();
}

}  // namespace rp::evolve

#include "core/config_fields.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace rp::core {
namespace {

[[noreturn]] void bad_value(std::string_view field, std::string_view value,
                            const char* expected) {
  throw std::invalid_argument("config field '" + std::string(field) +
                              "': bad value '" + std::string(value) + "' (" +
                              expected + ")");
}

std::uint64_t parse_u64(std::string_view field, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size())
    bad_value(field, value, "expected an unsigned integer");
  return out;
}

double parse_double(std::string_view field, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size())
    bad_value(field, value, "expected a number");
  return out;
}

bool parse_bool(std::string_view field, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  bad_value(field, value, "expected 0/1/true/false");
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

// Table-row helpers: each macro expands to the two function pointers for one
// member, so a row stays a one-liner and the member is named exactly once.
#define RP_FIELD_U64(member)                                              \
  [](ScenarioConfig& c, std::string_view v) {                             \
    c.member = parse_u64(#member, v);                                     \
  },                                                                      \
      [](const ScenarioConfig& c) { return std::to_string(c.member); }
#define RP_FIELD_SIZE(member)                                             \
  [](ScenarioConfig& c, std::string_view v) {                             \
    c.member = static_cast<std::size_t>(parse_u64(#member, v));           \
  },                                                                      \
      [](const ScenarioConfig& c) { return std::to_string(c.member); }
#define RP_FIELD_DOUBLE(member)                                           \
  [](ScenarioConfig& c, std::string_view v) {                             \
    c.member = parse_double(#member, v);                                  \
  },                                                                      \
      [](const ScenarioConfig& c) { return format_double(c.member); }
#define RP_FIELD_BOOL(member)                                             \
  [](ScenarioConfig& c, std::string_view v) {                             \
    c.member = parse_bool(#member, v);                                    \
  },                                                                      \
      [](const ScenarioConfig& c) { return std::string(c.member ? "1" : "0"); }

// Sorted by name (find_config_field binary-searches).
constexpr ConfigField kFields[] = {
    {"appetite_alpha", "Pareto shape of the per-network IXP appetite",
     RP_FIELD_DOUBLE(appetite_alpha)},
    {"euroix", "1: 65-IXP Euro-IX universe; 0: Table 1's 22 IXPs",
     RP_FIELD_BOOL(euroix)},
    {"measure_all_ixps", "1: looking glass (and campaign) at every IXP",
     RP_FIELD_BOOL(measure_all_ixps)},
    {"member_pool_size", "distinct networks that peer publicly anywhere",
     RP_FIELD_DOUBLE(member_pool_size)},
    {"membership_scale", "scale factor on all IXP member counts",
     RP_FIELD_DOUBLE(membership_scale)},
    {"partner_ixp_share", "remote attachments over partner-IXP interconnects",
     RP_FIELD_DOUBLE(partner_ixp_share)},
    {"probe_headroom", "probed interfaces per IXP vs Table 1's analyzed",
     RP_FIELD_DOUBLE(probe_headroom)},
    {"seed", "the world seed; every stage derives from it",
     RP_FIELD_U64(seed)},
    {"topology.access_count", "access/eyeball AS count",
     RP_FIELD_SIZE(topology.access_count)},
    {"topology.cdn_count", "CDN AS count", RP_FIELD_SIZE(topology.cdn_count)},
    {"topology.content_count", "content AS count",
     RP_FIELD_SIZE(topology.content_count)},
    {"topology.enterprise_count", "enterprise AS count",
     RP_FIELD_SIZE(topology.enterprise_count)},
    {"topology.multihoming_mean", "mean transit providers per multihomed AS",
     RP_FIELD_DOUBLE(topology.multihoming_mean)},
    {"topology.nren_count", "NREN AS count",
     RP_FIELD_SIZE(topology.nren_count)},
    {"topology.tier1_count", "tier-1 clique size",
     RP_FIELD_SIZE(topology.tier1_count)},
    {"topology.tier2_count", "regional tier-2 transit provider count",
     RP_FIELD_SIZE(topology.tier2_count)},
    {"vantage_cdn_peerings", "top CDNs the vantage privately peers with",
     RP_FIELD_SIZE(vantage_cdn_peerings)},
};

#undef RP_FIELD_U64
#undef RP_FIELD_SIZE
#undef RP_FIELD_DOUBLE
#undef RP_FIELD_BOOL

}  // namespace

std::span<const ConfigField> scenario_config_fields() { return kFields; }

const ConfigField* find_config_field(std::string_view name) {
  const auto it = std::lower_bound(
      std::begin(kFields), std::end(kFields), name,
      [](const ConfigField& f, std::string_view n) { return f.name < n; });
  if (it == std::end(kFields) || it->name != name) return nullptr;
  return &*it;
}

void set_config_field(ScenarioConfig& config, std::string_view name,
                      std::string_view value) {
  const ConfigField* field = find_config_field(name);
  if (field == nullptr)
    throw std::invalid_argument("unknown config field '" + std::string(name) +
                                "'");
  field->set(config, value);
}

std::string get_config_field(const ScenarioConfig& config,
                             std::string_view name) {
  const ConfigField* field = find_config_field(name);
  if (field == nullptr)
    throw std::invalid_argument("unknown config field '" + std::string(name) +
                                "'");
  return field->get(config);
}

void apply_fast_mode(ScenarioConfig& config) {
  config.membership_scale = std::min(config.membership_scale, 0.10);
  config.topology.tier2_count = 30;
  config.topology.access_count = 150;
  config.topology.content_count = 40;
  config.topology.cdn_count = 8;
  config.topology.nren_count = 6;
  config.topology.enterprise_count = 80;
}

}  // namespace rp::core

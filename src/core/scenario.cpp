#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/cities.hpp"
#include "net/subnet_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::core {
namespace {

/// How eager a network class is to join IXPs. CDNs chase eyeballs across
/// many exchanges (Fig. 4a's tail reaches 18 IXPs); most regional transit
/// providers, content farms, and enterprises never show up at the big
/// exchanges at all — that scarcity is why the §4 offload potential stays
/// partial even under the all-policies peer group.
double class_appetite(topology::AsClass cls) {
  switch (cls) {
    case topology::AsClass::kCdn: return 20.0;
    case topology::AsClass::kContent: return 0.9;
    case topology::AsClass::kTier1: return 4.0;
    case topology::AsClass::kTier2: return 0.35;
    case topology::AsClass::kAccess: return 0.7;
    case topology::AsClass::kNren: return 0.7;
    case topology::AsClass::kEnterprise: return 0.12;
  }
  return 1.0;
}

double distance_km(const geo::City& a, const geo::City& b) {
  return geo::great_circle_distance_m(a.position, b.position) / 1000.0;
}

}  // namespace

Scenario Scenario::build(const ScenarioConfig& config) {
  obs::Span span("core.scenario.build");
  static obs::Counter builds("rp.core.scenario.builds");
  builds.add();
  Scenario scenario;
  scenario.config_ = config;
  util::Rng rng(config.seed);
  const auto& cities = geo::CityRegistry::world();

  // --- Topology ------------------------------------------------------------
  util::Rng topo_rng = rng.fork(1);
  scenario.graph_ = topology::generate_topology(config.topology, topo_rng,
                                                cities);
  topology::AsGraph& graph = scenario.graph_;

  // --- Vantage network (RedIRIS-like) --------------------------------------
  net::Asn vantage{};
  for (auto& node : graph.nodes()) {
    if (node.cls == topology::AsClass::kNren &&
        node.name != topology::kNrenBackboneName) {
      vantage = node.asn;
      break;
    }
  }
  if (!vantage.is_valid())
    throw std::logic_error("Scenario: topology has no NREN to act as vantage");
  {
    topology::AsNode& node = graph.node(vantage);
    node.name = "RedIRIS-like";
    node.home_city = cities.at("Madrid");
    node.policy = topology::PeeringPolicy::kSelective;
  }
  scenario.vantage_ = vantage;

  // Private peering with the top CDNs ("peers with major CDNs").
  {
    std::vector<net::Asn> cdns;
    for (const auto& node : graph.nodes())
      if (node.cls == topology::AsClass::kCdn) cdns.push_back(node.asn);
    std::sort(cdns.begin(), cdns.end(), [&graph](net::Asn a, net::Asn b) {
      return graph.node(a).traffic_scale > graph.node(b).traffic_scale;
    });
    std::size_t added = 0;
    for (net::Asn cdn : cdns) {
      if (added >= config.vantage_cdn_peerings) break;
      if (graph.is_peering(vantage, cdn) || graph.is_transit(cdn, vantage) ||
          graph.is_transit(vantage, cdn))
        continue;
      graph.add_peering(vantage, cdn);
      ++added;
    }
  }

  // --- Remote-peering providers ---------------------------------------------
  ixp::IxpEcosystem& ecosystem = scenario.ecosystem_;
  for (const auto& seed : ixp::provider_seeds()) {
    ixp::RemotePeeringProvider provider;
    provider.name = seed.name;
    provider.path_stretch = seed.path_stretch;
    for (const auto& pop_city : seed.pop_cities)
      provider.pops.push_back(cities.at(pop_city));
    ecosystem.add_provider(provider);
  }

  // --- The member pool -------------------------------------------------------
  // Membership is modeled in two stages, mirroring the real ecosystem: a
  // small pool of networks peers publicly at all (the paper's candidate
  // population is 2,192 networks out of ~45k ASes), and each pool member
  // has a heavy-tailed target number of IXPs (Fig. 4a: most networks at one
  // exchange, a tail reaching eighteen). Rosters are then filled from the
  // pool with geographic affinity.
  util::Rng appetite_rng = rng.fork(2);
  std::vector<double> appetite(graph.as_count());
  for (std::size_t i = 0; i < graph.as_count(); ++i) {
    const auto& node = graph.nodes()[i];
    appetite[i] = appetite_rng.pareto(1.0, config.appetite_alpha) *
                  class_appetite(node.cls);
  }
  // The vantage's memberships are fixed (CATNIX/ESpanix below), and the
  // NREN backbone does not show up at commercial exchanges.
  appetite[graph.index_of(vantage)] = 0.0;
  for (const auto& node : graph.nodes())
    if (node.name == topology::kNrenBackboneName)
      appetite[graph.index_of(node.asn)] = 0.0;

  // Total roster slots across the chosen IXP universe.
  const auto& seeds =
      config.euroix ? ixp::euroix_seeds() : ixp::table1_seeds();
  double total_slots = 0.0;
  for (const auto& seed : seeds)
    total_slots += std::max(
        3.0, std::round(seed.member_count * config.membership_scale));

  // Pool size: scale the paper-era candidate population with the roster
  // volume (2,600 distinct members over ~8,100 slots at full scale).
  const auto pool_target = static_cast<std::size_t>(std::min(
      static_cast<double>(graph.as_count()) * 0.8,
      std::max(50.0, config.member_pool_size * config.membership_scale)));

  // Draw the pool by appetite, then give each member a heavy-tailed IXP
  // budget proportional to its appetite, normalized to the slot volume.
  std::vector<double> remaining_slots(graph.as_count(), 0.0);
  {
    std::vector<double> draw_weights = appetite;
    std::vector<std::size_t> pool;
    for (std::size_t k = 0; k < pool_target; ++k) {
      double total = 0.0;
      for (double w : draw_weights) total += w;
      if (total <= 0.0) break;
      const std::size_t pick = appetite_rng.weighted_index(draw_weights);
      draw_weights[pick] = 0.0;
      pool.push_back(pick);
    }
    double weight_sum = 0.0;
    for (std::size_t i : pool) weight_sum += appetite[i];
    for (std::size_t i : pool) {
      const double share = appetite[i] / weight_sum * total_slots;
      remaining_slots[i] = std::max(1.0, std::round(share));
    }
  }

  // --- IXPs, memberships, attachments ---------------------------------------
  // Peering LANs come from 198.18.0.0/15 (outside every AS address pool).
  // Stress-scale configs (membership_scale >> 1, used by campaign benches)
  // can outgrow that /15; the overflow falls into 100.64.0.0/10, which the
  // topology generator also never touches. Default-scale worlds never reach
  // the overflow pool, so their addressing stays byte-identical.
  net::SubnetAllocator lan_pool(
      net::Ipv4Prefix::make(net::Ipv4Addr{198, 18, 0, 0}, 15));
  net::SubnetAllocator lan_overflow(
      net::Ipv4Prefix::make(net::Ipv4Addr{100, 64, 0, 0}, 10));
  auto allocate_lan = [&lan_pool, &lan_overflow](unsigned length) {
    try {
      return lan_pool.allocate(length);
    } catch (const std::length_error&) {
      return lan_overflow.allocate(length);
    }
  };
  util::Rng member_rng = rng.fork(3);
  std::uint32_t mac_serial = 1;

  for (const auto& seed : seeds) {
    const geo::City& city = cities.at(seed.city);

    // LAN sizing: /22 (the historic fixed size) unless the roster or the
    // probe target needs more. The estimate upper-bounds the interfaces the
    // IXP can end up with (roster draw never exceeds target_members; the
    // study probe target is independent of the draw) plus looking glasses
    // and forced vantage/tier-1 memberships. Every default-scale IXP fits a
    // /22, so default worlds (and their snapshot digests) are unchanged.
    const auto sizing_members = static_cast<std::size_t>(std::max(
        3.0, std::round(seed.member_count * config.membership_scale)));
    std::size_t sizing_need = sizing_members;
    if (seed.in_measurement_study)
      sizing_need = std::max(
          sizing_need,
          static_cast<std::size_t>(std::round(seed.analyzed_interfaces *
                                              config.probe_headroom *
                                              config.membership_scale)));
    sizing_need += 80;
    unsigned lan_length = 22;
    while (lan_length > 16 &&
           (std::size_t{1} << (32 - lan_length)) - 2 < sizing_need)
      --lan_length;
    const net::Ipv4Prefix lan = allocate_lan(lan_length);
    const ixp::IxpId id = ecosystem.add_ixp(
        seed.acronym, seed.full_name, city, seed.peak_traffic_tbps, lan);
    ixp::Ixp& ixp = ecosystem.ixp(id);
    ixp.set_site_count(seed.site_count);
    net::HostAllocator host_addrs(lan);

    if (seed.in_measurement_study) {
      if (seed.has_pch_lg)
        ixp.add_looking_glass(ixp::LookingGlass::pch(host_addrs.allocate()));
      if (seed.has_ripe_lg)
        ixp.add_looking_glass(ixp::LookingGlass::ripe(host_addrs.allocate()));
      scenario.measured_ixps_.push_back(id);
    } else if (config.measure_all_ixps) {
      // All-IXP campaign mode: exchanges outside the §3 study get a PCH-style
      // LG so the whole universe is probe-able (the what-if of measuring
      // every Euro-IX exchange, used by campaign-scale benches and tests).
      ixp.add_looking_glass(ixp::LookingGlass::pch(host_addrs.allocate()));
      scenario.measured_ixps_.push_back(id);
    }

    // Member counts, split into locally attached and remote members.
    const auto target_members = static_cast<std::size_t>(std::max(
        3.0, std::round(seed.member_count * config.membership_scale)));
    auto remote_target = static_cast<std::size_t>(
        std::round(static_cast<double>(target_members) *
                   seed.remote_member_fraction));

    // Sampling weights for the two pools: only pool members with remaining
    // IXP budget are candidates, with geographic affinity deciding whether
    // they show up locally or remotely.
    std::vector<double> local_weights(graph.as_count());
    std::vector<double> remote_weights(graph.as_count());
    for (std::size_t i = 0; i < graph.as_count(); ++i) {
      if (remaining_slots[i] <= 0.0) continue;
      const auto& node = graph.nodes()[i];
      const double km = distance_km(node.home_city, city);
      const bool same_continent = node.home_city.continent == city.continent;
      const double budget = remaining_slots[i];
      // Local pool: nearby networks, or big ones that extend infrastructure.
      double local = budget;
      if (!same_continent) local *= 0.03;
      else if (km > 2500.0) local *= 0.35;
      local_weights[i] = local;
      // Remote pool: distant networks that cannot justify their own
      // presence; bigger classes rarely need remote peering. Regional
      // (same-continent) remote peering dominates in the paper — Brazilian
      // networks make up most of PTT's remote peers, E4A and Invitel reach
      // European exchanges — with a thinner intercontinental tail (E4A at
      // TorIX and TIE).
      double remote = budget;
      if (km < 500.0) remote *= 0.05;
      if (node.cls == topology::AsClass::kTier1 ||
          node.cls == topology::AsClass::kCdn)
        remote *= 0.2;
      if (!same_continent) remote *= 0.15;
      remote_weights[i] = remote;
    }

    // Draw members without replacement across both pools, consuming the
    // member's global IXP budget.
    std::vector<std::pair<std::size_t, bool>> members;  // (node idx, remote?)
    auto draw = [&](std::vector<double>& weights, bool remote) {
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) return false;
      const std::size_t pick = member_rng.weighted_index(weights);
      members.emplace_back(pick, remote);
      local_weights[pick] = 0.0;
      remote_weights[pick] = 0.0;
      remaining_slots[pick] -= 1.0;
      return true;
    };
    for (std::size_t k = 0; k < target_members; ++k) {
      const bool want_remote = k < remote_target;
      if (!draw(want_remote ? remote_weights : local_weights, want_remote) &&
          !draw(want_remote ? local_weights : remote_weights, !want_remote))
        break;  // Ecosystem smaller than the roster; accept fewer members.
    }

    // Interface counts: measurement-study IXPs probe roughly the Table-1
    // analyzed count (plus headroom for filter discards); elsewhere every
    // member simply has one (non-probed) interface.
    std::size_t probe_target = members.size();
    if (seed.in_measurement_study) {
      probe_target = static_cast<std::size_t>(
          std::round(seed.analyzed_interfaces * config.probe_headroom *
                     config.membership_scale));
      probe_target = std::max<std::size_t>(probe_target, 1);
    }

    std::size_t created = 0;
    auto add_interface = [&](std::size_t node_index, bool remote,
                             bool discoverable) {
      const auto& node = graph.nodes()[node_index];
      ixp::MemberInterface iface;
      iface.asn = node.asn;
      iface.addr = host_addrs.allocate();
      iface.mac = net::MacAddr::from_id(mac_serial++);
      iface.uses_route_server =
          node.policy == topology::PeeringPolicy::kOpen &&
          member_rng.chance(0.9);
      iface.discoverable = discoverable;
      if (remote) {
        iface.equipment_city = node.home_city;
        if (member_rng.chance(config.partner_ixp_share)) {
          iface.kind = ixp::AttachmentKind::kPartnerIxp;
          iface.circuit_one_way = geo::propagation_delay(
              node.home_city.position, city.position, 1.6);
        } else {
          iface.kind = ixp::AttachmentKind::kRemoteViaProvider;
          // Cheapest provider by circuit latency.
          std::size_t best = 0;
          util::SimDuration best_delay = util::SimDuration::days(1);
          for (std::size_t pi = 0; pi < ecosystem.providers().size(); ++pi) {
            const auto delay = ecosystem.providers()[pi].circuit_delay(
                node.home_city, city);
            if (delay < best_delay) {
              best_delay = delay;
              best = pi;
            }
          }
          iface.provider_index = best;
          iface.circuit_one_way = best_delay;
        }
      } else {
        iface.equipment_city = city;
        iface.kind = member_rng.chance(config.ip_transport_share)
                         ? ixp::AttachmentKind::kIpTransport
                         : ixp::AttachmentKind::kDirectColo;
        iface.circuit_one_way = util::SimDuration::nanos(0);
      }
      ixp.add_interface(std::move(iface));
      ++created;
    };

    // First interface per member; discoverability covers the first
    // `probe_target` interfaces (the ones with published addresses).
    for (const auto& [node_index, remote] : members)
      add_interface(node_index, remote, created < probe_target);
    // Extra interfaces (members with several ports) until the probe target
    // is met at measurement-study IXPs.
    std::size_t guard = 0;
    while (created < probe_target && !members.empty() &&
           guard < probe_target * 4) {
      ++guard;
      const auto& [node_index, remote] =
          members[member_rng.uniform_int(0, members.size() - 1)];
      add_interface(node_index, remote, true);
    }
  }

  // --- The vantage's own memberships (CATNIX, ESpanix) ----------------------
  auto force_membership = [&mac_serial](ixp::Ixp& ixp, net::Asn member) {
    if (ixp.has_member(member)) return;
    net::HostAllocator addrs(ixp.peering_lan());
    // Skip addresses already taken by existing interfaces and LGs.
    auto taken = [&ixp](net::Ipv4Addr candidate) {
      if (ixp.interface_at(candidate) != nullptr) return true;
      for (const auto& lg : ixp.looking_glasses())
        if (lg.addr == candidate) return true;
      return false;
    };
    net::Ipv4Addr addr = addrs.allocate();
    while (taken(addr)) addr = addrs.allocate();
    ixp::MemberInterface iface;
    iface.asn = member;
    iface.addr = addr;
    iface.mac = net::MacAddr::from_id(mac_serial++);
    iface.kind = ixp::AttachmentKind::kDirectColo;
    iface.equipment_city = ixp.city();
    iface.discoverable = true;
    ixp.add_interface(std::move(iface));
  };
  for (const char* home : {"ESpanix", "CATNIX"}) {
    if (ixp::Ixp* ixp = ecosystem.find(home)) force_membership(*ixp, vantage);
  }
  // Every tier-1 keeps a presence at the national exchange of the vantage's
  // market. This reproduces the paper's §4.2 exclusion logic verbatim: "we
  // exclude all the other tier-1 networks because they have memberships in
  // ESpanix" — without it, a single tier-1 member at any reached IXP would
  // cover the whole Internet in its customer cone and the offload potential
  // would degenerate to ~100%.
  if (ixp::Ixp* espanix = ecosystem.find("ESpanix")) {
    for (const auto& node : graph.nodes())
      if (node.cls == topology::AsClass::kTier1)
        force_membership(*espanix, node.asn);
  }

  return scenario;
}

}  // namespace rp::core

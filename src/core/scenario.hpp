// Scenario: the deterministic synthetic world behind every experiment.
//
// A Scenario bundles the AS-level topology, the IXP ecosystem (Table-1 and
// Euro-IX seeds, memberships, attachments, remote-peering providers, looking
// glasses), and a RedIRIS-like vantage network. Everything derives from one
// seed: rebuilding a Scenario from the same config yields an identical world,
// so studies, tests, and benches are reproducible.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/world_view.hpp"
#include "ixp/ixp.hpp"
#include "ixp/seeds.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace rp::core {

/// Scenario knobs. Defaults build the full paper-scale world; tests shrink
/// the counts.
struct ScenarioConfig {
  topology::GeneratorConfig topology;
  /// Use the 65-IXP Euro-IX universe; false restricts to Table 1's 22 IXPs.
  bool euroix = true;
  /// Put a looking glass at every IXP (not just the §3 study's) so an
  /// all-IXP campaign can probe the whole universe. Off in the paper
  /// reproduction; campaign-scale benches and shard tests switch it on.
  bool measure_all_ixps = false;
  /// Probed interfaces per measurement-study IXP relative to Table 1's
  /// analyzed column (headroom absorbs the interfaces the filters discard).
  double probe_headroom = 1.06;
  /// Scale factor on all IXP member counts (tests use < 1).
  double membership_scale = 1.0;
  /// Pareto shape of the per-network "IXP appetite" (how many IXPs a
  /// network tends to join); smaller alpha = heavier multi-IXP tail.
  double appetite_alpha = 1.15;
  /// Distinct networks that peer publicly anywhere at all (the candidate
  /// pool; paper-era Euro-IX had a few thousand distinct members while the
  /// AS universe was ~45k). Scaled by membership_scale.
  double member_pool_size = 2300.0;
  /// Probability that a remote attachment runs over a partner-IXP
  /// interconnect instead of a remote-peering provider.
  double partner_ixp_share = 0.15;
  /// Share of direct attachments using a metro IP transport (still direct
  /// peering per §2.2) rather than co-location.
  double ip_transport_share = 0.30;
  /// How many top CDNs the vantage privately peers with (RedIRIS "peers
  /// with major CDNs").
  std::size_t vantage_cdn_peerings = 16;
  std::uint64_t seed = 42;
};

/// How Scenario::build_cached obtained the world.
struct SnapshotCacheResult {
  enum class Outcome {
    kHit,       ///< Loaded from a valid cached snapshot.
    kMiss,      ///< No snapshot for this config; built and cached.
    kFallback,  ///< Snapshot existed but was rejected; rebuilt and recached.
  };
  Outcome outcome = Outcome::kMiss;
  /// The cache file consulted/written.
  std::filesystem::path path;
  /// Why a snapshot was rejected (kFallback only).
  std::string message;
};

class Scenario {
 public:
  /// Builds the world. Throws std::logic_error if the configuration cannot
  /// be satisfied (e.g. no NREN to serve as vantage).
  static Scenario build(const ScenarioConfig& config);

  /// Like build(), but backed by a snapshot cache: the config is hashed to a
  /// file name under `cache_dir`; a valid snapshot is loaded (checksums
  /// verified), a missing one is built and written atomically, and a corrupt
  /// or version-mismatched one is rebuilt from scratch (never partially
  /// loaded). Cache-write failures are non-fatal — the freshly built world
  /// is returned regardless.
  static Scenario build_cached(const ScenarioConfig& config,
                               const std::filesystem::path& cache_dir,
                               SnapshotCacheResult* result = nullptr);

  /// Reassembles a Scenario from snapshot parts (used by rp::io; inline so
  /// rp_io does not need to link against rp_core). The parts must describe a
  /// consistent world — io::load_scenario validates, arbitrary callers are
  /// trusted like Scenario::build's own internals.
  static Scenario from_parts(ScenarioConfig config, topology::AsGraph graph,
                             ixp::IxpEcosystem ecosystem, net::Asn vantage,
                             std::vector<ixp::IxpId> measured_ixps) {
    Scenario scenario;
    scenario.config_ = config;
    scenario.graph_ = std::move(graph);
    scenario.ecosystem_ = std::move(ecosystem);
    scenario.vantage_ = vantage;
    scenario.measured_ixps_ = std::move(measured_ixps);
    return scenario;
  }

  const ScenarioConfig& config() const { return config_; }
  const topology::AsGraph& graph() const { return graph_; }
  topology::AsGraph& graph() { return graph_; }
  const ixp::IxpEcosystem& ecosystem() const { return ecosystem_; }

  /// The RedIRIS-like vantage network (an NREN homed in Madrid, transit
  /// from two tier-1s, member of CATNIX/ESpanix when those exist).
  net::Asn vantage() const { return vantage_; }

  /// IXPs that are part of the §3 measurement study (have looking glasses).
  const std::vector<ixp::IxpId>& measured_ixps() const {
    return measured_ixps_;
  }

  /// A deterministic child RNG for downstream stages.
  util::Rng fork_rng(std::uint64_t label) const {
    util::Rng base(config_.seed);
    return base.fork(label);
  }

  /// A borrowed read-only view over this world (see world_view.hpp): the
  /// WorldView-taking study/encode entry points run identically on a
  /// Scenario and on an epoch overlay.
  WorldView view() const {
    return WorldView{&config_,  &graph_,        &ecosystem_,
                     vantage_,  measured_ixps_, config_.seed};
  }

 private:
  Scenario() = default;

  ScenarioConfig config_;
  topology::AsGraph graph_;
  ixp::IxpEcosystem ecosystem_;
  net::Asn vantage_;
  std::vector<ixp::IxpId> measured_ixps_;
};

}  // namespace rp::core

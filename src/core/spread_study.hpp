// SpreadStudy: the §3 measurement study end-to-end.
//
// Runs the ping campaign at every measured IXP of a Scenario, applies the
// six-filter pipeline, classifies remoteness, and aggregates the SpreadReport
// that backs Table 1 and Figs. 2-4.
#pragma once

#include <vector>

#include "core/scenario.hpp"
#include "measure/campaign.hpp"
#include "measure/classifier.hpp"
#include "measure/filters.hpp"
#include "measure/report.hpp"

namespace rp::core {

/// Configuration of the §3 study.
struct SpreadStudyConfig {
  measure::CampaignConfig campaign;
  measure::FilterConfig filters;
  measure::ClassifierConfig classifier;
};

class SpreadStudy {
 public:
  /// Runs campaigns at all measured IXPs of any world view — a plain
  /// Scenario or an epoch overlay (src/evolve). Deterministic given the view.
  static SpreadStudy run(const WorldView& world,
                         const SpreadStudyConfig& config = {});

  static SpreadStudy run(const Scenario& scenario,
                         const SpreadStudyConfig& config = {}) {
    return run(scenario.view(), config);
  }

  /// Re-analyzes prior raw measurements under different filter/classifier
  /// settings without re-running the simulations (the ablation path).
  static SpreadStudy reanalyze(const std::vector<measure::IxpMeasurement>& raw,
                               const SpreadStudyConfig& config);

  const measure::SpreadReport& report() const { return report_; }
  const std::vector<measure::IxpAnalysis>& analyses() const {
    return analyses_;
  }
  const std::vector<measure::IxpMeasurement>& raw_measurements() const {
    return raw_;
  }
  const SpreadStudyConfig& study_config() const { return config_; }

 private:
  SpreadStudyConfig config_;
  std::vector<measure::IxpMeasurement> raw_;
  std::vector<measure::IxpAnalysis> analyses_;
  measure::SpreadReport report_;
};

}  // namespace rp::core

// OffloadStudy: the §4 traffic-offload analysis end-to-end.
//
// Builds the vantage's traffic matrix and RIB, runs the offload analyzer,
// and exposes the pieces behind Figs. 5-10: per-network contributions, the
// Fig. 5b time series, single-IXP and greedy multi-IXP potentials, and the
// reachable-interfaces generalization.
#pragma once

#include <memory>

#include "bgp/rib.hpp"
#include "core/scenario.hpp"
#include "flow/netflow.hpp"
#include "flow/rate_model.hpp"
#include "flow/traffic_matrix.hpp"
#include "offload/analyzer.hpp"

namespace rp::core {

/// Configuration of the §4 study.
struct OffloadStudyConfig {
  flow::TrafficConfig traffic;
  flow::RateModelConfig rate_model;
  offload::AnalyzerConfig analyzer = {
      .vantage_member_ixps = {"CATNIX", "ESpanix"},
      .exclude_nren_fellows = true,
  };
};

class OffloadStudy {
 public:
  /// Runs the study over any world view — a plain Scenario or an epoch
  /// overlay (src/evolve). Randomness forks from the view's seed, so equal
  /// views yield byte-identical studies through either entry point.
  static OffloadStudy run(const WorldView& world,
                          const OffloadStudyConfig& config = {});

  static OffloadStudy run(const Scenario& scenario,
                          const OffloadStudyConfig& config = {}) {
    return run(scenario.view(), config);
  }

  const flow::TrafficMatrix& matrix() const { return *matrix_; }
  const flow::RateModel& rates() const { return *rates_; }
  const bgp::Rib& rib() const { return *rib_; }
  const offload::OffloadAnalyzer& analyzer() const { return *analyzer_; }
  const OffloadStudyConfig& study_config() const { return config_; }

  /// Fig. 5b: per-bin aggregate series of the vantage's transit traffic and
  /// of the maximal offload potential (group 4, all IXPs).
  struct TimeSeries {
    std::vector<double> transit_bps;
    std::vector<double> offload_bps;
  };
  TimeSeries time_series(flow::Direction dir) const;

 private:
  OffloadStudyConfig config_;
  std::unique_ptr<flow::TrafficMatrix> matrix_;
  std::unique_ptr<flow::RateModel> rates_;
  std::unique_ptr<bgp::Rib> rib_;
  std::unique_ptr<offload::OffloadAnalyzer> analyzer_;
};

}  // namespace rp::core

// WorldView: the immutable-world half of the world/overlay split.
//
// A WorldView is a non-owning, read-only view over the five pieces every
// study consumes — config, AS graph, IXP ecosystem, vantage, measured IXPs.
// A Scenario exposes one over its own members (Scenario::view()), and the
// epoch engine (src/evolve) exposes one per epoch over the shared base graph
// plus a copy-on-write ecosystem overlay — which is how a 20-epoch timeline
// replays without 20 graph rebuilds. Studies that take a WorldView therefore
// run unchanged on a plain Scenario and on any epoch overlay.
//
// Lifetime: a WorldView borrows; the owner (Scenario or evolve::EpochTimeline
// state) must outlive every study run against the view.
#pragma once

#include <cstdint>
#include <span>

#include "ixp/ixp.hpp"
#include "net/ip.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace rp::core {

struct ScenarioConfig;

struct WorldView {
  const ScenarioConfig* config = nullptr;
  const topology::AsGraph* graph = nullptr;
  const ixp::IxpEcosystem* ecosystem = nullptr;
  net::Asn vantage;
  std::span<const ixp::IxpId> measured_ixps;
  /// The scenario seed, duplicated out of the config so fork_rng stays
  /// header-only while ScenarioConfig is only forward-declared here.
  std::uint64_t seed = 0;

  /// A deterministic child RNG for downstream stages — same derivation as
  /// Scenario::fork_rng, so a study sees identical randomness through either
  /// entry point.
  util::Rng fork_rng(std::uint64_t label) const {
    util::Rng base(seed);
    return base.fork(label);
  }
};

}  // namespace rp::core

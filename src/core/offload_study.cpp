#include "core/offload_study.hpp"

#include "obs/trace.hpp"

namespace rp::core {

OffloadStudy OffloadStudy::run(const WorldView& world,
                               const OffloadStudyConfig& config) {
  obs::Span span("core.offload_study.run");
  OffloadStudy study;
  study.config_ = config;

  util::Rng traffic_rng = world.fork_rng(0x200);
  {
    obs::Span traffic_span("flow.traffic_matrix.generate");
    study.matrix_ = std::make_unique<flow::TrafficMatrix>(
        flow::TrafficMatrix::generate(*world.graph, world.vantage,
                                      config.traffic, traffic_rng));
    study.rates_ =
        std::make_unique<flow::RateModel>(*study.matrix_, config.rate_model);
  }
  study.rib_ = std::make_unique<bgp::Rib>(
      bgp::Rib::build(*world.graph, world.vantage));
  study.analyzer_ = std::make_unique<offload::OffloadAnalyzer>(
      *world.graph, *world.ecosystem, world.vantage, *study.matrix_,
      *study.rib_, config.analyzer);
  return study;
}

OffloadStudy::TimeSeries OffloadStudy::time_series(flow::Direction dir) const {
  TimeSeries series;
  std::vector<net::Asn> transit;
  for (const auto& endpoint : analyzer_->transit_endpoints())
    transit.push_back(endpoint.asn);
  series.transit_bps = rates_->aggregate_series(transit, dir);

  const auto everywhere = analyzer_->all_ixps();
  const auto covered =
      analyzer_->covered_endpoints(everywhere, offload::PeerGroup::kAll);
  series.offload_bps = rates_->aggregate_series(covered, dir);
  return series;
}

}  // namespace rp::core
